//===--- Checker.h - Semantic checker for synthesized programs -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "rustc" of the reproduction: a full semantic checker for the
/// straight-line program fragment. It re-checks everything the SAT encoding
/// claims (typing, moves, borrow exclusivity, lifetime containment) and is
/// deliberately STRICTER in the dimensions the paper leaves to compiler
/// feedback:
///
///   * trait bounds on type variables (Section 5.2),
///   * resolution of polymorphic outputs ("type annotations needed"),
///   * defaulted type parameters the collector dropped (petgraph, §7.1),
///   * anonymous parameterized lifetimes (§7.1's residual L&O errors),
///   * skewed collected signatures (arity / method resolution -> Misc).
///
/// Ownership/lifetime model (matching Section 2's narrative):
///   * non-Copy owned values move on use; later uses are Ownership errors;
///   * borrowers die when their root owner is consumed; using a dead
///     borrower is a Borrowing error ("borrow of moved value");
///   * at most one live &mut borrow, or any number of & borrows, per owner
///     (Rules 8/9); `&mut x` additionally requires a mutable binding.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_RUSTSIM_CHECKER_H
#define SYRUST_RUSTSIM_CHECKER_H

#include "api/ApiDatabase.h"
#include "program/Program.h"
#include "rustsim/Diagnostic.h"
#include "types/Subtyping.h"
#include "types/TraitEnv.h"

namespace syrust::obs {
class Recorder;
} // namespace syrust::obs

namespace syrust::rustsim {

/// Per-variable checker state; exposed for white-box tests.
struct VarState {
  const types::Type *Ty = nullptr;
  bool Live = false;        ///< Created and not yet moved/killed.
  bool MovedOut = false;    ///< Consumed by a move.
  bool MutBinding = false;  ///< Declared via `let mut`.
  bool FromLibraryApi = false; ///< Output of a non-builtin API call.
  bool AnonLifetime = false;   ///< Tainted by an AnonLifetime-quirk API.
  /// Root owners this variable (transitively) borrows from; empty for
  /// owners.
  std::vector<program::VarId> BorrowRoots;
  /// True when the borrow grants mutable access.
  bool BorrowIsMut = false;
};

/// Checks whole programs; stateless between calls.
class Checker {
public:
  Checker(types::TypeArena &Arena, const types::TraitEnv &Traits)
      : Arena(Arena), Traits(Traits) {}

  /// Type-, ownership-, and lifetime-checks \p P against \p Db. Returns the
  /// first diagnostic on failure.
  CompileResult check(const program::Program &P,
                      const api::ApiDatabase &Db) const;

  /// Attaches the flight recorder; every check() then emits a
  /// `compile.verdict` trace event (with the rejection category/detail)
  /// and bumps the `compile.*` counters.
  void setRecorder(obs::Recorder *R) { Obs = R; }

private:
  CompileResult checkImpl(const program::Program &P,
                          const api::ApiDatabase &Db) const;

  types::TypeArena &Arena;
  const types::TraitEnv &Traits;
  obs::Recorder *Obs = nullptr;
};

} // namespace syrust::rustsim

#endif // SYRUST_RUSTSIM_CHECKER_H
