//===--- DiagnosticJson.h - cargo-style JSON diagnostics -------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's test executor runs `cargo --message-format=json` and sends
/// the parsed data back to the synthesizer (Section 6.1). This module
/// reproduces that channel: a Diagnostic serializes to a compiler-message
/// JSON object, and the refinement side parses it back - losslessly,
/// including the machine-readable refinement payload (offending API,
/// actual input types, expected output, failing trait bound).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_RUSTSIM_DIAGNOSTICJSON_H
#define SYRUST_RUSTSIM_DIAGNOSTICJSON_H

#include "rustsim/Diagnostic.h"
#include "types/Type.h"

#include <string>

namespace syrust::rustsim {

/// Serializes \p D to a one-line JSON compiler message.
std::string diagnosticToJson(const Diagnostic &D);

/// Parses a message produced by diagnosticToJson. Types are re-interned
/// into \p Arena. Returns false (and sets \p Error) on malformed input.
bool diagnosticFromJson(const std::string &Text, types::TypeArena &Arena,
                        Diagnostic &Out, std::string &Error);

} // namespace syrust::rustsim

#endif // SYRUST_RUSTSIM_DIAGNOSTICJSON_H
