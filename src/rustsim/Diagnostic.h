//===--- Diagnostic.h - Structured compiler diagnostics --------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics in the shape the paper's pipeline consumes: the three
/// top-level categories of Figure 6 (Type, Lifetime & Ownership,
/// Miscellaneous) plus the finer subcategories Figures 9 and 10 break the
/// ablation results into (ownership vs. borrowing; trait vs. polymorphism
/// vs. misc). Each diagnostic also carries the machine-readable payload the
/// hybrid refinement engine (Section 5) needs: offending API, input types
/// at the call site, failing type variable/trait, and the checker-computed
/// correct output type when one exists ("expected String, got Vec<i32>").
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_RUSTSIM_DIAGNOSTIC_H
#define SYRUST_RUSTSIM_DIAGNOSTIC_H

#include "api/ApiSig.h"
#include "types/Type.h"

#include <string>
#include <vector>

namespace syrust::rustsim {

/// Top-level rejection categories (Figure 6 columns).
enum class ErrorCategory : uint8_t {
  Type,
  LifetimeOwnership,
  Misc,
};

/// Finer breakdown used by the ablation tables (Figures 9 and 10).
enum class ErrorDetail : uint8_t {
  None,
  // --- Type ---
  TraitBound,       ///< Type variable instantiated without a required trait.
  Polymorphism,     ///< Wrong/unresolved polymorphic instantiation.
  DefaultTypeParam, ///< Collected spec lost a defaulted type parameter.
  TypeMismatch,     ///< Plain concrete type mismatch.
  // --- Lifetime & Ownership ---
  Ownership,    ///< Use of a moved value.
  Borrowing,    ///< Conflicting borrows / dead borrower use.
  AnonLifetime, ///< Unsupported anonymous parameterized lifetime.
  // --- Misc ---
  Arity,          ///< "expected n arguments, found j".
  MethodNotFound, ///< "method not found" resolution failure.
};

/// Maps a detail to its category.
ErrorCategory categoryOf(ErrorDetail Detail);

/// One compiler diagnostic.
struct Diagnostic {
  ErrorCategory Category = ErrorCategory::Misc;
  ErrorDetail Detail = ErrorDetail::None;
  int Line = -1; ///< 0-based statement index.
  api::ApiId Api = api::ApiIdInvalid;
  std::string Message;

  /// Actual types of the call arguments (refinement duplicates the API with
  /// these, Section 5.3).
  std::vector<const types::Type *> ActualInputs;

  /// Checker-computed correct output type, when determinable; refinement
  /// "fixes directly" from it.
  const types::Type *ExpectedOutput = nullptr;

  /// For trait errors: which type variable failed which trait, and the type
  /// it was bound to.
  std::string BadTypeVar;
  std::string MissingTrait;
  const types::Type *BadBinding = nullptr;
};

/// Result of compiling one test case.
struct CompileResult {
  bool Success = true;
  /// First (rejection-driving) diagnostic; meaningful when !Success.
  Diagnostic Diag;
};

/// Human-readable names for table rendering.
const char *categoryName(ErrorCategory C);
const char *detailName(ErrorDetail D);

} // namespace syrust::rustsim

#endif // SYRUST_RUSTSIM_DIAGNOSTIC_H
