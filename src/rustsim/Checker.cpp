//===--- Checker.cpp - Semantic checker for synthesized programs ----------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rustsim/Checker.h"

#include "obs/Recorder.h"
#include "support/StringUtils.h"

#include <cassert>
#include <set>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::rustsim;
using namespace syrust::types;

ErrorCategory syrust::rustsim::categoryOf(ErrorDetail Detail) {
  switch (Detail) {
  case ErrorDetail::TraitBound:
  case ErrorDetail::Polymorphism:
  case ErrorDetail::DefaultTypeParam:
  case ErrorDetail::TypeMismatch:
    return ErrorCategory::Type;
  case ErrorDetail::Ownership:
  case ErrorDetail::Borrowing:
  case ErrorDetail::AnonLifetime:
    return ErrorCategory::LifetimeOwnership;
  case ErrorDetail::Arity:
  case ErrorDetail::MethodNotFound:
  case ErrorDetail::None:
    return ErrorCategory::Misc;
  }
  return ErrorCategory::Misc;
}

const char *syrust::rustsim::categoryName(ErrorCategory C) {
  switch (C) {
  case ErrorCategory::Type:
    return "Type";
  case ErrorCategory::LifetimeOwnership:
    return "Lifetime&Ownership";
  case ErrorCategory::Misc:
    return "Misc";
  }
  return "?";
}

const char *syrust::rustsim::detailName(ErrorDetail D) {
  switch (D) {
  case ErrorDetail::None:
    return "none";
  case ErrorDetail::TraitBound:
    return "trait";
  case ErrorDetail::Polymorphism:
    return "polymorphism";
  case ErrorDetail::DefaultTypeParam:
    return "default-type-param";
  case ErrorDetail::TypeMismatch:
    return "type-mismatch";
  case ErrorDetail::Ownership:
    return "ownership";
  case ErrorDetail::Borrowing:
    return "borrowing";
  case ErrorDetail::AnonLifetime:
    return "anon-lifetime";
  case ErrorDetail::Arity:
    return "arity";
  case ErrorDetail::MethodNotFound:
    return "method-not-found";
  }
  return "?";
}

namespace {

/// Extends VarState with the exclusivity bookkeeping of Rules 8/9.
struct CheckState {
  VarState Base;
  /// Direct target of a builtin borrow; -1 otherwise.
  VarId DirectTarget = -1;
};

/// Kills \p Root and cascades to every live variable borrowing from it.
void killBorrowers(std::vector<CheckState> &Vars, VarId Root) {
  std::vector<VarId> Worklist{Root};
  while (!Worklist.empty()) {
    VarId Dead = Worklist.back();
    Worklist.pop_back();
    for (size_t W = 0; W < Vars.size(); ++W) {
      VarState &B = Vars[W].Base;
      if (!B.Live)
        continue;
      bool Derived = false;
      for (VarId R : B.BorrowRoots)
        Derived = Derived || R == Dead;
      if (Derived || Vars[W].DirectTarget == Dead) {
        B.Live = false; // Dead borrower, not moved-out.
        Worklist.push_back(static_cast<VarId>(W));
      }
    }
  }
}

Diagnostic makeDiag(ErrorDetail Detail, int Line, ApiId Api,
                    std::string Message) {
  Diagnostic D;
  D.Detail = Detail;
  D.Category = categoryOf(Detail);
  D.Line = Line;
  D.Api = Api;
  D.Message = std::move(Message);
  return D;
}

} // namespace

CompileResult Checker::check(const Program &P,
                             const ApiDatabase &Db) const {
  CompileResult R = checkImpl(P, Db);
  if (Obs) {
    obs::ArgList Args;
    Args.add("ok", R.Success);
    if (!R.Success) {
      Args.add("category", categoryName(R.Diag.Category));
      Args.add("detail", detailName(R.Diag.Detail));
      Args.add("line", R.Diag.Line);
    }
    Obs->instant("compile.verdict", "rustsim", std::move(Args));
    Obs->count("compile.checks");
    if (!R.Success) {
      Obs->count("compile.rejected");
      Obs->count(std::string("compile.rejected.") +
                 categoryName(R.Diag.Category));
    }
  }
  return R;
}

CompileResult Checker::checkImpl(const Program &P,
                                 const ApiDatabase &Db) const {
  std::vector<CheckState> Vars(static_cast<size_t>(P.numVars()));
  for (size_t I = 0; I < P.Inputs.size(); ++I) {
    Vars[I].Base.Ty = P.Inputs[I].Ty;
    Vars[I].Base.Live = true;
  }

  auto Fail = [](Diagnostic D) {
    CompileResult R;
    R.Success = false;
    R.Diag = std::move(D);
    return R;
  };

  for (size_t LineNo = 0; LineNo < P.Stmts.size(); ++LineNo) {
    const Stmt &S = P.Stmts[LineNo];
    const ApiSig &Sig = Db.get(S.Api);
    int Line = static_cast<int>(LineNo);

    // --- Collected-signature quirks that fail any call (Misc). -----------
    if (Sig.Quirks.SkewedArity)
      return Fail(makeDiag(
          ErrorDetail::Arity, Line, S.Api,
          format("this function takes %zu arguments but %zu were supplied",
                 Sig.Inputs.size() + 1, Sig.Inputs.size())));
    if (Sig.Quirks.MethodNotFound)
      return Fail(makeDiag(ErrorDetail::MethodNotFound, Line, S.Api,
                           format("no method named `%s` found",
                                  Sig.Name.c_str())));

    if (S.Args.size() != Sig.Inputs.size())
      return Fail(makeDiag(
          ErrorDetail::Arity, Line, S.Api,
          format("this function takes %zu arguments but %zu were supplied",
                 Sig.Inputs.size(), S.Args.size())));

    // --- Argument liveness (moves and dead borrowers). --------------------
    for (VarId A : S.Args) {
      assert(A >= 0 && A < P.numVars() && "argument out of range");
      const VarState &St = Vars[static_cast<size_t>(A)].Base;
      if (!St.Ty || static_cast<size_t>(A) >=
                        P.Inputs.size() + LineNo) // Declared later.
        return Fail(makeDiag(ErrorDetail::Arity, Line, S.Api,
                             format("cannot find value `%s` in this scope",
                                    P.varName(A).c_str())));
      if (St.MovedOut)
        return Fail(makeDiag(ErrorDetail::Ownership, Line, S.Api,
                             format("use of moved value: `%s`",
                                    P.varName(A).c_str())));
      if (!St.Live)
        return Fail(makeDiag(
            ErrorDetail::Borrowing, Line, S.Api,
            format("borrow of moved value: `%s` does not live long enough",
                   P.varName(A).c_str())));
      if (St.AnonLifetime)
        return Fail(makeDiag(
            ErrorDetail::AnonLifetime, Line, S.Api,
            format("lifetime of `%s` cannot be determined: anonymous "
                   "parameterized lifetime in the signature of `%s`",
                   P.varName(A).c_str(), Sig.Name.c_str())));
    }

    // --- Rule 4: one variable in several positions only if prim/&. -------
    for (size_t I = 0; I < S.Args.size(); ++I) {
      for (size_t J = I + 1; J < S.Args.size(); ++J) {
        if (S.Args[I] != S.Args[J])
          continue;
        const Type *Ty = Vars[static_cast<size_t>(S.Args[I])].Base.Ty;
        if (!Ty->isPrim() && !Ty->isSharedRef())
          return Fail(makeDiag(
              ErrorDetail::Ownership, Line, S.Api,
              format("use of moved value: `%s` used twice in one call",
                     P.varName(S.Args[I]).c_str())));
      }
    }

    CheckState &Out = Vars[static_cast<size_t>(S.Out)];

    // --- Builtins. --------------------------------------------------------
    if (Sig.Builtin != BuiltinKind::None) {
      assert(S.Args.size() == 1 && "builtins are unary");
      VarId Target = S.Args[0];
      CheckState &TargetState = Vars[static_cast<size_t>(Target)];
      const Type *TargetTy = TargetState.Base.Ty;

      switch (Sig.Builtin) {
      case BuiltinKind::LetMut: {
        if (S.DeclType && S.DeclType != TargetTy)
          return Fail(makeDiag(
              ErrorDetail::TypeMismatch, Line, S.Api,
              format("mismatched types: expected `%s`, found `%s`",
                     S.DeclType->str().c_str(), TargetTy->str().c_str())));
        if (!Traits.isCopy(TargetTy)) {
          TargetState.Base.MovedOut = true;
          TargetState.Base.Live = false;
          killBorrowers(Vars, Target);
        }
        Out.Base.Ty = TargetTy;
        Out.Base.Live = true;
        Out.Base.MutBinding = true;
        // A moved reference keeps referring to the same owner.
        Out.Base.BorrowRoots = TargetState.Base.BorrowRoots;
        Out.Base.BorrowIsMut = TargetState.Base.BorrowIsMut;
        continue;
      }
      case BuiltinKind::Borrow:
      case BuiltinKind::BorrowMut: {
        bool WantMut = Sig.Builtin == BuiltinKind::BorrowMut;
        // Binding-mode violation (rustc E0596): an ownership error - it
        // concerns how the owner was bound, not a borrow conflict.
        if (WantMut && !TargetState.Base.MutBinding)
          return Fail(makeDiag(
              ErrorDetail::Ownership, Line, S.Api,
              format("cannot borrow `%s` as mutable, as it is not declared "
                     "as mutable",
                     P.varName(Target).c_str())));
        // Rules 8/9: exclusivity against live borrows of the same target.
        for (size_t W = 0; W < Vars.size(); ++W) {
          const CheckState &Other = Vars[W];
          if (!Other.Base.Live || Other.DirectTarget != Target)
            continue;
          if (WantMut)
            return Fail(makeDiag(
                ErrorDetail::Borrowing, Line, S.Api,
                format("cannot borrow `%s` as mutable because it is also "
                       "borrowed as %s",
                       P.varName(Target).c_str(),
                       Other.Base.BorrowIsMut ? "mutable" : "immutable")));
          if (Other.Base.BorrowIsMut)
            return Fail(makeDiag(
                ErrorDetail::Borrowing, Line, S.Api,
                format("cannot borrow `%s` as immutable because it is also "
                       "borrowed as mutable",
                       P.varName(Target).c_str())));
        }
        const Type *RefTy = Arena.ref(TargetTy, WantMut);
        if (S.DeclType && S.DeclType != RefTy)
          return Fail(makeDiag(
              ErrorDetail::TypeMismatch, Line, S.Api,
              format("mismatched types: expected `%s`, found `%s`",
                     S.DeclType->str().c_str(), RefTy->str().c_str())));
        Out.Base.Ty = RefTy;
        Out.Base.Live = true;
        Out.Base.BorrowIsMut = WantMut;
        Out.DirectTarget = Target;
        // Root owners: the target itself if it owns, else its roots.
        if (TargetState.Base.BorrowRoots.empty())
          Out.Base.BorrowRoots = {Target};
        else
          Out.Base.BorrowRoots = TargetState.Base.BorrowRoots;
        continue;
      }
      case BuiltinKind::None:
        break;
      }
    }

    // --- Library API: typing. ---------------------------------------------
    std::vector<const Type *> Actuals;
    Actuals.reserve(S.Args.size());
    for (VarId A : S.Args)
      Actuals.push_back(Vars[static_cast<size_t>(A)].Base.Ty);

    Substitution Subst;
    if (!matchCall(Actuals, Sig.Inputs, Subst)) {
      bool Poly = Sig.isPolymorphic();
      Diagnostic D = makeDiag(
          Poly ? ErrorDetail::Polymorphism : ErrorDetail::TypeMismatch, Line,
          S.Api,
          format("mismatched types in call to `%s`", Sig.Name.c_str()));
      D.ActualInputs = Actuals;
      return Fail(D);
    }

    // --- Trait bounds (the dimension the encoder ignores, Section 5.2). ---
    // Resolved bounds come from refinement-instantiated signatures, whose
    // type variables are gone but whose trait obligations remain.
    for (const auto &[BoundTy, TraitName] : Sig.ResolvedBounds) {
      if (Traits.implements(BoundTy, TraitName))
        continue;
      Diagnostic D = makeDiag(
          ErrorDetail::TraitBound, Line, S.Api,
          format("the trait bound `%s: %s` is not satisfied",
                 BoundTy->str().c_str(), TraitName.c_str()));
      D.ActualInputs = Actuals;
      D.MissingTrait = TraitName;
      D.BadBinding = BoundTy;
      return Fail(D);
    }
    for (const auto &[VarName, TraitName] : Sig.Bounds) {
      const Type *Bound = Subst.lookup(VarName);
      if (!Bound || !Bound->isConcrete())
        continue; // Unresolved variables are reported below.
      if (!Traits.implements(Bound, TraitName)) {
        Diagnostic D = makeDiag(
            ErrorDetail::TraitBound, Line, S.Api,
            format("the trait bound `%s: %s` is not satisfied",
                   Bound->str().c_str(), TraitName.c_str()));
        D.ActualInputs = Actuals;
        D.BadTypeVar = VarName;
        D.MissingTrait = TraitName;
        D.BadBinding = Bound;
        return Fail(D);
      }
    }

    // --- Defaulted type parameters the collector dropped (petgraph). -----
    if (Sig.Quirks.NeedsDefaultTypeParam) {
      Diagnostic D = makeDiag(
          ErrorDetail::DefaultTypeParam, Line, S.Api,
          format("type annotations needed: cannot infer defaulted type "
                 "parameters of `%s`",
                 Sig.Name.c_str()));
      D.ActualInputs = Actuals;
      return Fail(D);
    }

    // --- Output resolution. -----------------------------------------------
    const Type *CorrectOut = applySubst(Arena, Sig.Output, Subst);
    if (!CorrectOut->isConcrete()) {
      Diagnostic D = makeDiag(
          ErrorDetail::Polymorphism, Line, S.Api,
          format("type annotations needed for `%s`",
                 CorrectOut->str().c_str()));
      D.ActualInputs = Actuals;
      return Fail(D);
    }
    if (S.DeclType && S.DeclType != CorrectOut) {
      Diagnostic D = makeDiag(
          ErrorDetail::Polymorphism, Line, S.Api,
          format("mismatched types: expected `%s`, found `%s`",
                 S.DeclType->str().c_str(), CorrectOut->str().c_str()));
      D.ActualInputs = Actuals;
      D.ExpectedOutput = CorrectOut;
      return Fail(D);
    }

    // --- Effects: moves and lifetime propagation. -------------------------
    // A reference is only reborrowed when the parameter it feeds is itself
    // declared as a reference; `&mut T` passed by value (e.g. to a bare
    // type-variable parameter) moves, because `&mut T` is not Copy.
    std::set<VarId> Consumed;
    for (size_t I = 0; I < S.Args.size(); ++I) {
      VarId A = S.Args[I];
      const Type *ArgTy = Vars[static_cast<size_t>(A)].Base.Ty;
      if (!movesOnUse(ArgTy, Sig.Inputs[I], Traits))
        continue;
      if (!Consumed.insert(A).second)
        continue;
      Vars[static_cast<size_t>(A)].Base.MovedOut = true;
      Vars[static_cast<size_t>(A)].Base.Live = false;
      killBorrowers(Vars, A);
    }

    Out.Base.Ty = CorrectOut;
    Out.Base.Live = true;
    Out.Base.FromLibraryApi = true;
    Out.Base.AnonLifetime = Sig.Quirks.AnonLifetime;
    // Roots are deduplicated: diamond-shaped borrow chains (two refs into
    // one owner rejoined by a propagating API) would otherwise accumulate
    // duplicate roots, growing state quadratically along ref chains.
    auto AddRoot = [&Out](VarId R) {
      for (VarId Existing : Out.Base.BorrowRoots)
        if (Existing == R)
          return;
      Out.Base.BorrowRoots.push_back(R);
    };
    for (int J : Sig.PropagatesFrom) {
      if (J < 0 || static_cast<size_t>(J) >= S.Args.size())
        continue;
      VarId A = S.Args[static_cast<size_t>(J)];
      const CheckState &ArgState = Vars[static_cast<size_t>(A)];
      if (ArgState.Base.BorrowRoots.empty()) {
        AddRoot(A);
      } else {
        for (VarId R : ArgState.Base.BorrowRoots)
          AddRoot(R);
      }
      Out.Base.BorrowIsMut =
          Out.Base.BorrowIsMut || ArgState.Base.BorrowIsMut;
    }
  }

  return CompileResult{};
}
