//===--- DiagnosticJson.cpp - cargo-style JSON diagnostics ----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rustsim/DiagnosticJson.h"

#include "support/Json.h"
#include "types/TypeParser.h"

using namespace syrust;
using namespace syrust::json;
using namespace syrust::rustsim;
using namespace syrust::types;

namespace {

const char *detailTag(ErrorDetail D) { return detailName(D); }

ErrorDetail detailFromTag(const std::string &Tag, bool &Ok) {
  Ok = true;
  static const ErrorDetail All[] = {
      ErrorDetail::None,          ErrorDetail::TraitBound,
      ErrorDetail::Polymorphism,  ErrorDetail::DefaultTypeParam,
      ErrorDetail::TypeMismatch,  ErrorDetail::Ownership,
      ErrorDetail::Borrowing,     ErrorDetail::AnonLifetime,
      ErrorDetail::Arity,         ErrorDetail::MethodNotFound};
  for (ErrorDetail D : All)
    if (Tag == detailName(D))
      return D;
  Ok = false;
  return ErrorDetail::None;
}

} // namespace

std::string syrust::rustsim::diagnosticToJson(const Diagnostic &D) {
  // Shaped like a (simplified) cargo compiler-message record.
  Value Msg = Value::object();
  Msg.set("reason", Value::string("compiler-message"));
  Msg.set("level", Value::string("error"));
  Msg.set("message", Value::string(D.Message));
  Msg.set("category", Value::string(categoryName(D.Category)));
  Msg.set("detail", Value::string(detailTag(D.Detail)));
  Msg.set("line", Value::integer(D.Line));
  Msg.set("api", Value::integer(D.Api));

  Value Refine = Value::object();
  if (!D.ActualInputs.empty()) {
    Value Inputs = Value::array();
    for (const Type *T : D.ActualInputs)
      Inputs.push(Value::string(T->str()));
    Refine.set("actual_inputs", std::move(Inputs));
  }
  if (D.ExpectedOutput)
    Refine.set("expected_output", Value::string(D.ExpectedOutput->str()));
  if (!D.BadTypeVar.empty())
    Refine.set("bad_type_var", Value::string(D.BadTypeVar));
  if (!D.MissingTrait.empty())
    Refine.set("missing_trait", Value::string(D.MissingTrait));
  if (D.BadBinding)
    Refine.set("bad_binding", Value::string(D.BadBinding->str()));
  Msg.set("refinement", std::move(Refine));
  return Msg.dump();
}

bool syrust::rustsim::diagnosticFromJson(const std::string &Text,
                                         TypeArena &Arena, Diagnostic &Out,
                                         std::string &Error) {
  ParseResult R = parse(Text);
  if (!R.Ok) {
    Error = R.Error;
    return false;
  }
  const Value &Msg = R.Val;
  if (Msg.get("reason").asString() != "compiler-message") {
    Error = "not a compiler-message record";
    return false;
  }
  bool TagOk = false;
  Out = Diagnostic();
  Out.Detail = detailFromTag(Msg.get("detail").asString(), TagOk);
  if (!TagOk) {
    Error = "unknown detail tag: " + Msg.get("detail").asString();
    return false;
  }
  Out.Category = categoryOf(Out.Detail);
  if (Msg.get("category").asString() != categoryName(Out.Category)) {
    Error = "category does not match detail";
    return false;
  }
  Out.Message = Msg.get("message").asString();
  Out.Line = static_cast<int>(Msg.get("line").asInt());
  Out.Api = static_cast<api::ApiId>(Msg.get("api").asInt());

  TypeParser Parser(Arena);
  auto ParseTy = [&](const std::string &Spec) -> const Type * {
    const Type *T = Parser.parse(Spec);
    if (!T)
      Error = "bad type in diagnostic: " + Spec + " (" + Parser.error() +
              ")";
    return T;
  };

  const Value &Refine = Msg.get("refinement");
  const Value &Inputs = Refine.get("actual_inputs");
  for (size_t I = 0; I < Inputs.size(); ++I) {
    const Type *T = ParseTy(Inputs.at(I).asString());
    if (!T)
      return false;
    Out.ActualInputs.push_back(T);
  }
  if (Refine.has("expected_output")) {
    Out.ExpectedOutput = ParseTy(Refine.get("expected_output").asString());
    if (!Out.ExpectedOutput)
      return false;
  }
  Out.BadTypeVar = Refine.get("bad_type_var").asString();
  Out.MissingTrait = Refine.get("missing_trait").asString();
  if (Refine.has("bad_binding")) {
    Out.BadBinding = ParseTy(Refine.get("bad_binding").asString());
    if (!Out.BadBinding)
      return false;
  }
  return true;
}
