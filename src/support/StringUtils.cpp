//===--- StringUtils.cpp - Small string helpers ---------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace syrust;

std::string syrust::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string syrust::join(const std::vector<std::string> &Parts,
                         std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result.append(Sep);
    Result.append(Parts[I]);
  }
  return Result;
}

std::vector<std::string> syrust::split(std::string_view Text, char Sep) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Fields.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Fields;
}

std::string_view syrust::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         (Text[Begin] == ' ' || Text[Begin] == '\t' || Text[Begin] == '\n' ||
          Text[Begin] == '\r'))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         (Text[End - 1] == ' ' || Text[End - 1] == '\t' ||
          Text[End - 1] == '\n' || Text[End - 1] == '\r'))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool syrust::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}
