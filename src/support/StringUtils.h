//===--- StringUtils.h - Small string helpers ------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus join/split helpers used by
/// diagnostics, program rendering, and the table renderers.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SUPPORT_STRINGUTILS_H
#define SYRUST_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace syrust {

/// printf-style formatting that returns a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view Text, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// True if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

} // namespace syrust

#endif // SYRUST_SUPPORT_STRINGUTILS_H
