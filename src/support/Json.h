//===--- Json.h - Minimal JSON reading and writing -------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON value type with a writer and a recursive-
/// descent parser. The paper's test executor talks to the synthesizer by
/// parsing `cargo --message-format=json` output (Section 6.1); this module
/// backs the reproduction of that channel (rustsim diagnostics serialized
/// to JSON and parsed back by the refinement side) and the CLI's `--json`
/// result export.
///
/// Supported: objects, arrays, strings (with standard escapes), doubles,
/// integers, booleans, null. Numbers are stored as double plus an
/// integer-ness flag, which is lossless for the magnitudes used here.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SUPPORT_JSON_H
#define SYRUST_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace syrust::json {

/// A JSON value (tree-owning).
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool B);
  static Value number(double D);
  static Value integer(int64_t I);
  static Value string(std::string S);
  static Value array();
  static Value object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  bool asBool() const { return Bool; }
  double asDouble() const { return Num; }
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  const std::string &asString() const { return Str; }

  /// Array access.
  void push(Value V) { Elems.push_back(std::move(V)); }
  size_t size() const { return Elems.size(); }
  const Value &at(size_t I) const { return Elems[I]; }

  /// Object access. get() returns a shared null for missing keys.
  void set(const std::string &Key, Value V);
  const Value &get(const std::string &Key) const;
  bool has(const std::string &Key) const { return Members.count(Key); }
  const std::map<std::string, Value> &members() const { return Members; }

  /// Compact rendering (no whitespace).
  std::string dump() const;

private:
  Kind K = Kind::Null;
  bool Bool = false;
  double Num = 0;
  bool IsInt = false;
  std::string Str;
  std::vector<Value> Elems;
  std::map<std::string, Value> Members;
};

/// Parse outcome.
struct ParseResult {
  bool Ok = false;
  Value Val;
  std::string Error;
};

/// Parses one JSON document; trailing garbage is an error.
ParseResult parse(std::string_view Text);

/// Escapes a string for embedding in JSON output.
std::string escape(std::string_view S);

} // namespace syrust::json

#endif // SYRUST_SUPPORT_JSON_H
