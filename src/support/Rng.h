//===--- Rng.h - Deterministic pseudo-random number generation -*- C++ -*-===//
//
// Part of SyRust-CPP, a reproduction of "SyRust: Automatic Testing of Rust
// Libraries with Semantic-Aware Program Synthesis" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic xoshiro256** generator. Every randomized choice in
/// the system (weighted API selection, tie breaking in the SAT solver) goes
/// through this class so that experiment tables are reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SUPPORT_RNG_H
#define SYRUST_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace syrust {

/// Deterministic xoshiro256** PRNG seeded through SplitMix64.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eed5eed5eedULL) { reseed(Seed); }

  /// Re-initializes the full state from a single 64-bit seed.
  void reseed(uint64_t Seed) {
    for (uint64_t &Word : State) {
      // SplitMix64 step; spreads low-entropy seeds over the full state.
      Seed += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a nonzero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform double in [0, 1).
  double unit() { return (next() >> 11) * 0x1.0p-53; }

  /// True with probability \p P.
  bool chance(double P) { return unit() < P; }

  /// Picks an index in [0, Weights.size()) proportionally to Weights.
  /// All weights must be non-negative and at least one must be positive.
  std::size_t pickWeighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights)
      Total += W;
    assert(Total > 0 && "pickWeighted requires positive total weight");
    double Roll = unit() * Total;
    for (std::size_t I = 0; I < Weights.size(); ++I) {
      Roll -= Weights[I];
      if (Roll < 0)
        return I;
    }
    return Weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (std::size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[below(I)]);
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace syrust

#endif // SYRUST_SUPPORT_RNG_H
