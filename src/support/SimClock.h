//===--- SimClock.h - Deterministic simulated wall clock -------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation ran each library for 10 wall-clock hours across a
/// 64-container cluster. This reproduction replaces wall time with a
/// deterministic simulated clock: each pipeline stage charges a calibrated
/// cost in simulated seconds. Tables derived from "time" (time-to-bug,
/// error-rate-over-time curves, coverage saturation) therefore reproduce
/// exactly across machines.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SUPPORT_SIMCLOCK_H
#define SYRUST_SUPPORT_SIMCLOCK_H

#include <cassert>

namespace syrust {

/// Monotone simulated clock measured in seconds.
class SimClock {
public:
  SimClock() = default;

  /// Advances the clock by \p Seconds (must be non-negative).
  void charge(double Seconds) {
    assert(Seconds >= 0 && "cannot charge negative time");
    NowSeconds += Seconds;
  }

  /// Current simulated time in seconds since the run started.
  double now() const { return NowSeconds; }

  /// True once the clock has passed \p BudgetSeconds.
  bool exhausted(double BudgetSeconds) const {
    return NowSeconds >= BudgetSeconds;
  }

  void reset() { NowSeconds = 0; }

private:
  double NowSeconds = 0;
};

} // namespace syrust

#endif // SYRUST_SUPPORT_SIMCLOCK_H
