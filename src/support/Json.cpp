//===--- Json.cpp - Minimal JSON reading and writing ----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>

using namespace syrust;
using namespace syrust::json;

Value Value::boolean(bool B) {
  Value V;
  V.K = Kind::Bool;
  V.Bool = B;
  return V;
}

Value Value::number(double D) {
  Value V;
  V.K = Kind::Number;
  V.Num = D;
  return V;
}

Value Value::integer(int64_t I) {
  Value V;
  V.K = Kind::Number;
  V.Num = static_cast<double>(I);
  V.IsInt = true;
  return V;
}

Value Value::string(std::string S) {
  Value V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

Value Value::array() {
  Value V;
  V.K = Kind::Array;
  return V;
}

Value Value::object() {
  Value V;
  V.K = Kind::Object;
  return V;
}

void Value::set(const std::string &Key, Value V) {
  Members[Key] = std::move(V);
}

const Value &Value::get(const std::string &Key) const {
  static const Value Null;
  auto It = Members.find(Key);
  return It == Members.end() ? Null : It->second;
}

std::string syrust::json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default: {
      // Escape remaining control characters AND every non-ASCII byte as
      // per-byte \u00XX (the parser's \u path is byte-exact), so hostile
      // type names and messages round-trip losslessly and the emitted
      // document is pure ASCII. The unsigned cast matters: a plain char
      // sign-extends bytes >= 0x80 into garbage escapes.
      unsigned char U = static_cast<unsigned char>(C);
      if (U < 0x20 || U >= 0x7f)
        Out += format("\\u%04x", U);
      else
        Out += C;
    }
    }
  }
  return Out;
}

std::string Value::dump() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return Bool ? "true" : "false";
  case Kind::Number:
    if (IsInt || Num == std::floor(Num))
      return format("%lld", static_cast<long long>(Num));
    return format("%.17g", Num);
  case Kind::String:
    return "\"" + escape(Str) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        Out += ",";
      Out += Elems[I].dump();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    bool First = true;
    for (const auto &[Key, Val] : Members) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"" + escape(Key) + "\":" + Val.dump();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ParseResult run() {
    ParseResult R;
    Value V = parseValue();
    skipSpace();
    if (Failed) {
      R.Error = Error;
      return R;
    }
    if (Pos != Text.size()) {
      R.Error = format("trailing characters at offset %zu", Pos);
      return R;
    }
    R.Ok = true;
    R.Val = std::move(V);
    return R;
  }

private:
  void fail(const std::string &Msg) {
    if (!Failed)
      Error = Msg;
    Failed = true;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipSpace();
    if (Failed || Pos >= Text.size()) {
      fail("unexpected end of input");
      return Value();
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return Value::string(parseString());
    if (literal("true"))
      return Value::boolean(true);
    if (literal("false"))
      return Value::boolean(false);
    if (literal("null"))
      return Value::null();
    return parseNumber();
  }

  Value parseObject() {
    Value Obj = Value::object();
    consume('{');
    skipSpace();
    if (consume('}'))
      return Obj;
    do {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail(format("expected object key at offset %zu", Pos));
        return Obj;
      }
      std::string Key = parseString();
      if (!consume(':')) {
        fail(format("expected ':' at offset %zu", Pos));
        return Obj;
      }
      Obj.set(Key, parseValue());
      if (Failed)
        return Obj;
    } while (consume(','));
    if (!consume('}'))
      fail(format("expected '}' at offset %zu", Pos));
    return Obj;
  }

  Value parseArray() {
    Value Arr = Value::array();
    consume('[');
    skipSpace();
    if (consume(']'))
      return Arr;
    do {
      Arr.push(parseValue());
      if (Failed)
        return Arr;
    } while (consume(','));
    if (!consume(']'))
      fail(format("expected ']' at offset %zu", Pos));
    return Arr;
  }

  std::string parseString() {
    std::string Out;
    ++Pos; // Opening quote.
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'u': {
        // Only the \u00XX range produced by escape() is supported.
        if (Pos + 4 <= Text.size()) {
          unsigned Code = 0;
          std::sscanf(std::string(Text.substr(Pos, 4)).c_str(), "%4x",
                      &Code);
          Out += static_cast<char>(Code);
          Pos += 4;
        }
        break;
      }
      default:
        fail(format("bad escape '\\%c'", E));
        return Out;
      }
    }
    if (Pos >= Text.size()) {
      fail("unterminated string");
      return Out;
    }
    ++Pos; // Closing quote.
    return Out;
  }

  Value parseNumber() {
    size_t Start = Pos;
    bool IsInt = true;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+')) {
      if (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E')
        IsInt = false;
      ++Pos;
    }
    if (Pos == Start) {
      fail(format("expected value at offset %zu", Start));
      return Value();
    }
    double D = std::atof(std::string(Text.substr(Start, Pos - Start)).c_str());
    return IsInt ? Value::integer(static_cast<int64_t>(D))
                 : Value::number(D);
  }

  std::string_view Text;
  size_t Pos = 0;
  bool Failed = false;
  std::string Error;
};

} // namespace

ParseResult syrust::json::parse(std::string_view Text) {
  return Parser(Text).run();
}
