//===--- TraceReport.h - Per-stage trace breakdown -------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline analysis of a flight-recorder trace (the Chrome trace-event
/// JSON written by `--trace-out`): aggregates complete spans per event
/// name into latency/throughput statistics and counts instant events, so
/// `syrust report <trace>` can print a per-stage breakdown without any
/// external tooling.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_REPORT_TRACEREPORT_H
#define SYRUST_REPORT_TRACEREPORT_H

#include <cstdint>
#include <map>
#include <string>

namespace syrust::report {

/// Aggregate over all complete ("X") spans sharing one event name.
struct SpanStats {
  uint64_t Count = 0;
  double TotalSeconds = 0;
  double MinSeconds = 0;
  double MaxSeconds = 0;

  double meanSeconds() const {
    return Count == 0 ? 0.0 : TotalSeconds / static_cast<double>(Count);
  }
};

/// Everything `syrust report` extracts from one trace file.
struct TraceSummary {
  /// Complete-span aggregates keyed by event name (sorted by std::map,
  /// so rendering is deterministic).
  std::map<std::string, SpanStats> Spans;
  /// Instant-event ("i") occurrence counts keyed by event name.
  std::map<std::string, uint64_t> Instants;
  /// Total simulated time covered: the largest ts + dur seen (seconds).
  double EndSeconds = 0;
  uint64_t NumEvents = 0;
};

/// Parses a Chrome trace-event JSON document (the `--trace-out` format)
/// and aggregates it. Returns false and fills \p Err when \p TraceJson is
/// not a valid trace.
bool summarizeTrace(const std::string &TraceJson, TraceSummary &Out,
                    std::string &Err);

/// Renders the per-stage latency/throughput breakdown tables.
std::string renderTraceSummary(const TraceSummary &S);

} // namespace syrust::report

#endif // SYRUST_REPORT_TRACEREPORT_H
