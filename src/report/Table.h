//===--- Table.h - Paper-style table rendering -----------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aligned ASCII tables shared by the evaluation benches, so every
/// reproduced figure prints in a shape directly comparable to the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_REPORT_TABLE_H
#define SYRUST_REPORT_TABLE_H

#include <string>
#include <vector>

namespace syrust::report {

/// A simple column-aligned table with a header row.
class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// "1225952"-style grouping is not used by the paper; plain integers.
std::string fmtCount(uint64_t N);

/// "0.06 %" / "< 0.01 %" formatting used in Figure 6.
std::string fmtPercent(double P);

/// "95.45 %" category-share formatting.
std::string fmtShare(double P);

} // namespace syrust::report

#endif // SYRUST_REPORT_TABLE_H
