//===--- CoverageReport.h - API-pair coverage rendering --------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline analysis behind `syrust coverage <file>`: extracts the
/// api_coverage sections from any document kind that carries them
/// (single-run, campaign aggregate, audit, or the standalone coverage
/// document written by --coverage-out) and renders per-crate coverage
/// tables plus the never-covered edge listings.
///
/// The report library stays free of core: callers supply a resolver
/// that maps a crate name to its API database and dependency graph (the
/// CLI builds these from the bundled crate registry), so the listings
/// can print both endpoint signatures of an uncovered edge. Without a
/// resolver the per-crate table still renders - only the listings need
/// the graph.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_REPORT_COVERAGEREPORT_H
#define SYRUST_REPORT_COVERAGEREPORT_H

#include "api/DependencyGraph.h"
#include "coverage/ApiPairCoverage.h"
#include "support/Json.h"

#include <functional>
#include <string>
#include <vector>

namespace syrust::report {

/// One crate's coverage as extracted from a document.
struct ApiCoverageEntry {
  std::string Crate;
  coverage::ApiCoverageData Data;
};

/// Extracts api_coverage entries from \p Doc, dispatching on its shape:
/// kind "coverage" (crates array), kind "campaign" / "audit" (their
/// api_coverage arrays), or a single-run document (crate +
/// api_coverage). Returns false and fills \p Err for anything else.
bool collectApiCoverage(const json::Value &Doc,
                        std::vector<ApiCoverageEntry> &Out,
                        std::string &Err);

/// What the renderer needs to describe a crate's graph; either pointer
/// may be null (the crate is then rendered without edge listings).
struct CrateApiView {
  const api::ApiDatabase *Db = nullptr;
  const api::DependencyGraph *Graph = nullptr;
};

/// Maps a crate name to its database/graph. The returned pointers must
/// stay valid for the duration of renderApiCoverage.
using CrateApiResolver = std::function<CrateApiView(const std::string &)>;

struct CoverageReportOptions {
  /// Never-covered edges listed per crate (0 disables the listings).
  int TopNeverCovered = 10;
};

/// Renders the per-crate coverage table (covered/total nodes and edges,
/// saturation time) and, when \p Resolver supplies a graph whose totals
/// match the document, up to TopNeverCovered never-covered edges per
/// crate with both endpoint signatures.
std::string renderApiCoverage(const std::vector<ApiCoverageEntry> &Entries,
                              const CrateApiResolver &Resolver,
                              const CoverageReportOptions &Opts = {});

} // namespace syrust::report

#endif // SYRUST_REPORT_COVERAGEREPORT_H
