//===--- Table.cpp - Paper-style table rendering --------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "report/Table.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace syrust;
using namespace syrust::report;

std::string Table::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size() && C < Widths.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t C = 0; C < Widths.size(); ++C) {
      std::string Cell = C < Cells.size() ? Cells[C] : "";
      Cell.resize(Widths[C], ' ');
      Line += Cell;
      if (C + 1 != Widths.size())
        Line += "  ";
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Out = RenderRow(Headers);
  size_t Total = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    Total += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);
  Out += std::string(Total, '-') + "\n";
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

std::string syrust::report::fmtCount(uint64_t N) {
  return format("%llu", static_cast<unsigned long long>(N));
}

std::string syrust::report::fmtPercent(double P) {
  if (P > 0 && P < 0.01)
    return "< 0.01 %";
  return format("%.2f %%", P);
}

std::string syrust::report::fmtShare(double P) {
  return format("%.2f %%", P);
}
