//===--- TraceReport.cpp - Per-stage trace breakdown ----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "report/TraceReport.h"

#include "report/Table.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>

using namespace syrust;
using namespace syrust::report;

bool syrust::report::summarizeTrace(const std::string &TraceJson,
                                    TraceSummary &Out, std::string &Err) {
  json::ParseResult P = json::parse(TraceJson);
  if (!P.Ok) {
    Err = "not valid JSON: " + P.Error;
    return false;
  }
  if (P.Val.kind() != json::Value::Kind::Object ||
      !P.Val.has("traceEvents")) {
    Err = "not a trace: missing top-level \"traceEvents\" array";
    return false;
  }
  const json::Value &Events = P.Val.get("traceEvents");
  if (Events.kind() != json::Value::Kind::Array) {
    Err = "not a trace: \"traceEvents\" is not an array";
    return false;
  }
  for (size_t I = 0; I < Events.size(); ++I) {
    const json::Value &E = Events.at(I);
    if (E.kind() != json::Value::Kind::Object)
      continue;
    ++Out.NumEvents;
    const std::string &Name = E.get("name").asString();
    const std::string &Ph = E.get("ph").asString();
    double TsSeconds = E.get("ts").asDouble() / 1e6;
    if (Ph == "X") {
      double DurSeconds = E.get("dur").asDouble() / 1e6;
      SpanStats &S = Out.Spans[Name];
      if (S.Count == 0) {
        S.MinSeconds = DurSeconds;
        S.MaxSeconds = DurSeconds;
      } else {
        S.MinSeconds = std::min(S.MinSeconds, DurSeconds);
        S.MaxSeconds = std::max(S.MaxSeconds, DurSeconds);
      }
      ++S.Count;
      S.TotalSeconds += DurSeconds;
      Out.EndSeconds = std::max(Out.EndSeconds, TsSeconds + DurSeconds);
    } else {
      if (Ph == "i")
        ++Out.Instants[Name];
      Out.EndSeconds = std::max(Out.EndSeconds, TsSeconds);
    }
  }
  return true;
}

static std::string fmtSeconds(double S) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", S);
  return Buf;
}

static std::string fmtRate(double PerSecond) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", PerSecond);
  return Buf;
}

std::string syrust::report::renderTraceSummary(const TraceSummary &S) {
  std::string Out;
  Out += "Trace summary: " + std::to_string(S.NumEvents) +
         " events over " + fmtSeconds(S.EndSeconds) +
         " simulated seconds\n\n";

  if (!S.Spans.empty()) {
    Table Stages({"stage", "count", "total s", "mean s", "min s", "max s",
                  "per sim-s"});
    for (const auto &[Name, St] : S.Spans) {
      double Rate = S.EndSeconds > 0
                        ? static_cast<double>(St.Count) / S.EndSeconds
                        : 0.0;
      Stages.addRow({Name, fmtCount(St.Count),
                     fmtSeconds(St.TotalSeconds),
                     fmtSeconds(St.meanSeconds()),
                     fmtSeconds(St.MinSeconds), fmtSeconds(St.MaxSeconds),
                     fmtRate(Rate)});
    }
    Out += "Per-stage latency (complete spans):\n";
    Out += Stages.render();
    Out += "\n";
  }

  if (!S.Instants.empty()) {
    Table Events({"event", "count", "per sim-s"});
    for (const auto &[Name, N] : S.Instants) {
      double Rate = S.EndSeconds > 0
                        ? static_cast<double>(N) / S.EndSeconds
                        : 0.0;
      Events.addRow({Name, fmtCount(N), fmtRate(Rate)});
    }
    Out += "Instant events:\n";
    Out += Events.render();
  }
  return Out;
}
