//===--- CoverageReport.cpp - API-pair coverage rendering -----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "report/CoverageReport.h"

#include "report/Table.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::coverage;
using namespace syrust::json;
using namespace syrust::report;

namespace {

bool parseEntry(const Value &Crate, const Value &Cov,
                std::vector<ApiCoverageEntry> &Out, std::string &Err) {
  if (Crate.kind() != Value::Kind::String) {
    Err = "api_coverage entry has no crate name";
    return false;
  }
  ApiCoverageEntry E;
  E.Crate = Crate.asString();
  if (!apiCoverageFromJson(Cov, E.Data, Err)) {
    Err = "crate '" + E.Crate + "': " + Err;
    return false;
  }
  Out.push_back(std::move(E));
  return true;
}

bool bitSet(const std::vector<uint8_t> &Bits, size_t I) {
  return I / 8 < Bits.size() && (Bits[I / 8] >> (I % 8)) & 1;
}

std::string fmtRatio(uint64_t Covered, uint64_t Total) {
  return format("%llu/%llu", static_cast<unsigned long long>(Covered),
                static_cast<unsigned long long>(Total));
}

std::string fmtPct(uint64_t Covered, uint64_t Total) {
  if (Total == 0)
    return "-";
  return format("%.1f %%", 100.0 * static_cast<double>(Covered) /
                               static_cast<double>(Total));
}

std::string fmtSaturation(double Seconds) {
  if (Seconds < 0)
    return "-";
  return format("%g s", Seconds);
}

} // namespace

bool syrust::report::collectApiCoverage(const Value &Doc,
                                        std::vector<ApiCoverageEntry> &Out,
                                        std::string &Err) {
  if (Doc.kind() != Value::Kind::Object) {
    Err = "document is not a JSON object";
    return false;
  }
  const std::string Kind =
      Doc.has("kind") ? Doc.get("kind").asString() : "";
  if (Kind == "coverage") {
    const Value &Crates = Doc.get("crates");
    for (size_t I = 0; I < Crates.size(); ++I) {
      const Value &E = Crates.at(I);
      if (!parseEntry(E.get("crate"), E.get("api_coverage"), Out, Err))
        return false;
    }
    return true;
  }
  if (Kind == "campaign" || Kind == "audit") {
    if (!Doc.has("api_coverage")) {
      Err = "this " + Kind +
            " document predates api_coverage (schema_version < 5); "
            "re-run to regenerate it";
      return false;
    }
    const Value &Arr = Doc.get("api_coverage");
    for (size_t I = 0; I < Arr.size(); ++I) {
      const Value &E = Arr.at(I);
      if (!parseEntry(E.get("crate"), E.get("api_coverage"), Out, Err))
        return false;
    }
    return true;
  }
  if (Doc.has("crate") && Doc.has("api_coverage"))
    return parseEntry(Doc.get("crate"), Doc.get("api_coverage"), Out, Err);
  Err = "document carries no api_coverage section (expected a run, "
        "campaign, audit, or coverage document)";
  return false;
}

std::string
syrust::report::renderApiCoverage(const std::vector<ApiCoverageEntry> &Entries,
                                  const CrateApiResolver &Resolver,
                                  const CoverageReportOptions &Opts) {
  std::string Out;
  Table T({"crate", "nodes", "node %", "edges", "edge %", "unmatched",
           "saturation"});
  for (const ApiCoverageEntry &E : Entries) {
    const ApiCoverageData &D = E.Data;
    T.addRow({E.Crate, fmtRatio(D.nodesCovered(), D.NodesTotal),
              fmtPct(D.nodesCovered(), D.NodesTotal),
              fmtRatio(D.edgesCovered(), D.EdgesTotal),
              fmtPct(D.edgesCovered(), D.EdgesTotal),
              fmtCount(D.UnmatchedEdges),
              fmtSaturation(D.SaturationSeconds)});
  }
  Out += "API-pair coverage (dependency-graph nodes and edges)\n";
  Out += T.render();

  if (Opts.TopNeverCovered <= 0 || !Resolver)
    return Out;
  for (const ApiCoverageEntry &E : Entries) {
    const ApiCoverageData &D = E.Data;
    if (D.EdgesTotal == 0 || D.edgesCovered() == D.EdgesTotal)
      continue;
    CrateApiView View = Resolver(E.Crate);
    if (!View.Db || !View.Graph)
      continue;
    if (View.Graph->numNodes() != D.NodesTotal ||
        View.Graph->numEdges() != D.EdgesTotal) {
      Out += format("\n%s: document totals (%llu nodes, %llu edges) do "
                    "not match the bundled crate model (%zu nodes, %zu "
                    "edges); skipping edge listing\n",
                    E.Crate.c_str(),
                    static_cast<unsigned long long>(D.NodesTotal),
                    static_cast<unsigned long long>(D.EdgesTotal),
                    View.Graph->numNodes(), View.Graph->numEdges());
      continue;
    }
    const uint64_t Missing = D.EdgesTotal - D.edgesCovered();
    Out += format("\n%s: %llu never-covered edge%s", E.Crate.c_str(),
                  static_cast<unsigned long long>(Missing),
                  Missing == 1 ? "" : "s");
    if (static_cast<uint64_t>(Opts.TopNeverCovered) < Missing)
      Out += format(" (top %d by endpoint degree)", Opts.TopNeverCovered);
    Out += "\n";
    // Rank never-covered edges by how connected their endpoints are -
    // the ones whose APIs sit in the thick of the graph are the most
    // actionable gaps. The order is fully pinned: stable sort on
    // descending endpoint-degree sum with the dense edge index (already
    // unique and ascending within equal keys) as tie-break, so the
    // listing is byte-identical across platforms and libc qsorts.
    const std::vector<DependencyEdge> &Edges = View.Graph->edges();
    std::vector<uint64_t> Degree(View.Graph->numNodes(), 0);
    for (const DependencyEdge &Edge : Edges) {
      ++Degree[static_cast<size_t>(Edge.Producer)];
      ++Degree[static_cast<size_t>(Edge.Consumer)];
    }
    std::vector<size_t> Ranked;
    for (size_t I = 0; I < Edges.size(); ++I)
      if (!bitSet(D.EdgeBits, I))
        Ranked.push_back(I);
    auto EdgeDegree = [&](size_t I) {
      return Degree[static_cast<size_t>(Edges[I].Producer)] +
             Degree[static_cast<size_t>(Edges[I].Consumer)];
    };
    std::stable_sort(Ranked.begin(), Ranked.end(),
                     [&](size_t A, size_t B) {
                       const uint64_t DA = EdgeDegree(A), DB = EdgeDegree(B);
                       if (DA != DB)
                         return DA > DB;
                       return A < B;
                     });
    if (Ranked.size() > static_cast<size_t>(Opts.TopNeverCovered))
      Ranked.resize(static_cast<size_t>(Opts.TopNeverCovered));
    for (size_t I : Ranked) {
      const DependencyEdge &Edge = Edges[I];
      const ApiSig &P = View.Db->get(Edge.Producer);
      const ApiSig &C = View.Db->get(Edge.Consumer);
      Out += format("  %s -> %s#%d  [%s => %s%s%s]\n", P.Name.c_str(),
                    C.Name.c_str(), Edge.Slot,
                    P.Output ? P.Output->str().c_str() : "()",
                    C.Inputs[static_cast<size_t>(Edge.Slot)]->str().c_str(),
                    Edge.ByRef ? ", by-ref" : ", by-value",
                    Edge.Generic ? ", generic" : "");
    }
  }
  return Out;
}
