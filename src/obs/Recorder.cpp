//===--- Recorder.cpp - Deterministic flight recorder ---------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Recorder.h"

#include <cmath>
#include <cstdio>

using namespace syrust;
using namespace syrust::obs;

namespace {

/// Renders a double as a JSON number token: integral values print as
/// integers (the common case for microsecond timestamps and counters),
/// everything else with enough digits to round-trip. Deterministic for a
/// fixed input on a fixed platform, which is all golden traces need.
std::string numToken(double V) {
  char Buf[40];
  if (std::floor(V) == V && std::fabs(V) < 9.0e15)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// ArgList
//===----------------------------------------------------------------------===//

ArgList &ArgList::add(std::string Key, const std::string &V) {
  Items.emplace_back(std::move(Key), "\"" + json::escape(V) + "\"");
  return *this;
}

ArgList &ArgList::add(std::string Key, const char *V) {
  return add(std::move(Key), std::string(V));
}

ArgList &ArgList::add(std::string Key, int64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  Items.emplace_back(std::move(Key), Buf);
  return *this;
}

ArgList &ArgList::add(std::string Key, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Items.emplace_back(std::move(Key), Buf);
  return *this;
}

ArgList &ArgList::add(std::string Key, double V) {
  Items.emplace_back(std::move(Key), numToken(V));
  return *this;
}

ArgList &ArgList::add(std::string Key, bool V) {
  Items.emplace_back(std::move(Key), V ? "true" : "false");
  return *this;
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

void Tracer::bindClock(const SimClock *C) {
  if (!C && Clock)
    LastSeconds = Clock->now();
  Clock = C;
}

double Tracer::wallSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       WallStart)
      .count();
}

void Tracer::push(const char *Name, const char *Cat, char Phase,
                  double TsSeconds, double DurSeconds,
                  const ArgList &Args) {
  std::string E;
  E.reserve(96);
  E += "{\"name\":\"";
  E += json::escape(Name);
  E += "\",\"cat\":\"";
  E += json::escape(Cat);
  E += "\",\"ph\":\"";
  E += Phase;
  E += "\",\"ts\":";
  E += numToken(TsSeconds * 1e6);
  if (Phase == 'X') {
    E += ",\"dur\":";
    E += numToken(DurSeconds * 1e6);
  }
  if (Phase == 'i')
    E += ",\"s\":\"t\""; // thread-scoped instant
  E += ",\"pid\":0,\"tid\":";
  E += numToken(Lane);
  if (!Args.empty() || CaptureWall) {
    E += ",\"args\":{";
    bool First = true;
    for (const auto &[K, V] : Args.items()) {
      if (!First)
        E += ',';
      First = false;
      E += "\"" + json::escape(K) + "\":" + V;
    }
    if (CaptureWall) {
      if (!First)
        E += ',';
      E += "\"wall_us\":" + numToken(wallSeconds() * 1e6);
    }
    E += '}';
  }
  E += '}';
  Events.push_back(std::move(E));
}

void Tracer::begin(const char *Name, const char *Cat, ArgList Args) {
  push(Name, Cat, 'B', now(), 0, Args);
}

void Tracer::end(const char *Name, const char *Cat, ArgList Args) {
  push(Name, Cat, 'E', now(), 0, Args);
}

void Tracer::complete(const char *Name, const char *Cat,
                      double StartSeconds, double DurSeconds,
                      ArgList Args) {
  push(Name, Cat, 'X', StartSeconds, DurSeconds, Args);
}

void Tracer::instant(const char *Name, const char *Cat, ArgList Args) {
  push(Name, Cat, 'i', now(), 0, Args);
}

std::string Tracer::chromeJson() const {
  std::string Out;
  Out.reserve(64 + Events.size() * 96);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t I = 0; I < Events.size(); ++I) {
    if (I)
      Out += ',';
    Out += '\n';
    Out += Events[I];
  }
  Out += "\n]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(double FirstEdge, double Factor, size_t NumEdges) {
  Edges.reserve(NumEdges);
  double E = FirstEdge;
  for (size_t I = 0; I < NumEdges; ++I, E *= Factor)
    Edges.push_back(E);
  Counts.assign(NumEdges + 1, 0);
}

void Histogram::observe(double X) {
  ++Total;
  Sum += X;
  for (size_t I = 0; I < Edges.size(); ++I)
    if (X <= Edges[I]) {
      ++Counts[I];
      return;
    }
  ++Counts.back(); // Overflow bucket.
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(const std::string &Name) {
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      double FirstEdge, double Factor,
                                      size_t NumEdges) {
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(FirstEdge, Factor, NumEdges);
  return *Slot;
}

json::Value MetricsRegistry::snapshotValue(double AtSeconds) const {
  json::Value Line = json::Value::object();
  Line.set("t", json::Value::number(AtSeconds));
  if (!Counters.empty()) {
    json::Value C = json::Value::object();
    for (const auto &[Name, Ctr] : Counters)
      C.set(Name,
            json::Value::integer(static_cast<int64_t>(Ctr->value())));
    Line.set("counters", std::move(C));
  }
  if (!Gauges.empty()) {
    json::Value G = json::Value::object();
    for (const auto &[Name, Gg] : Gauges)
      G.set(Name, json::Value::number(Gg->value()));
    Line.set("gauges", std::move(G));
  }
  if (!Histograms.empty()) {
    json::Value H = json::Value::object();
    for (const auto &[Name, Hist] : Histograms) {
      json::Value One = json::Value::object();
      One.set("count",
              json::Value::integer(static_cast<int64_t>(Hist->count())));
      One.set("sum", json::Value::number(Hist->sum()));
      json::Value Edges = json::Value::array();
      for (size_t I = 0; I < Hist->numEdges(); ++I)
        Edges.push(json::Value::number(Hist->upperEdge(I)));
      One.set("edges", std::move(Edges));
      json::Value Buckets = json::Value::array();
      for (size_t I = 0; I <= Hist->numEdges(); ++I)
        Buckets.push(json::Value::integer(
            static_cast<int64_t>(Hist->bucketCount(I))));
      One.set("buckets", std::move(Buckets));
      H.set(Name, std::move(One));
    }
    Line.set("histograms", std::move(H));
  }
  return Line;
}

void MetricsRegistry::snapshot(double AtSeconds) {
  Lines.push_back(snapshotValue(AtSeconds).dump());
}

std::string MetricsRegistry::jsonl() const {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}
