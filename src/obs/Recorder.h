//===--- Recorder.h - Deterministic flight recorder ------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-wide "flight recorder": a Tracer that records begin/end spans,
/// complete spans, and instant events stamped with the deterministic
/// SimClock, exported as Chrome trace-event / Perfetto-compatible JSON;
/// and a MetricsRegistry of named counters, gauges, and fixed-log-bucket
/// histograms with periodic JSONL snapshots.
///
/// Because every timestamp comes from the simulated clock, a trace is
/// byte-identical across machines for a fixed seed, which makes the whole
/// layer golden-testable. Real wall-clock can be attached as an optional
/// second timestamp (`wall_us` arg on every event) for profiling; it is
/// off by default precisely because it breaks that determinism.
///
/// Zero cost when disabled: pipeline components hold a `Recorder *` that
/// is null by default, so the uninstrumented path pays one pointer check.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_OBS_RECORDER_H
#define SYRUST_OBS_RECORDER_H

#include "support/Json.h"
#include "support/SimClock.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace syrust::obs {

/// Ordered key/value list attached to a trace event. Values are stored as
/// rendered JSON tokens so the writer emits them verbatim, in insertion
/// order (deterministic output needs a stable arg order, not map order).
class ArgList {
public:
  ArgList &add(std::string Key, const std::string &V);
  ArgList &add(std::string Key, const char *V);
  ArgList &add(std::string Key, int64_t V);
  ArgList &add(std::string Key, uint64_t V);
  ArgList &add(std::string Key, int V) {
    return add(std::move(Key), static_cast<int64_t>(V));
  }
  ArgList &add(std::string Key, double V);
  ArgList &add(std::string Key, bool V);

  bool empty() const { return Items.empty(); }
  const std::vector<std::pair<std::string, std::string>> &items() const {
    return Items;
  }

private:
  std::vector<std::pair<std::string, std::string>> Items;
};

/// Records trace events against the simulated clock and renders them in
/// the Chrome trace-event format (loadable in Perfetto / chrome://tracing).
class Tracer {
public:
  /// \p Lane becomes the `tid` of every event this tracer records. A
  /// single-run trace uses lane 0 (the historical value); a campaign
  /// gives each pool worker its own lane so the merged trace shows one
  /// named track per worker.
  explicit Tracer(bool CaptureWall = false, int Lane = 0)
      : CaptureWall(CaptureWall), Lane(Lane),
        WallStart(std::chrono::steady_clock::now()) {}

  /// Points the tracer at the clock all timestamps come from. The driver
  /// binds its run-local SimClock at run start and unbinds (nullptr) at
  /// run end; events recorded while unbound are stamped at the last bound
  /// clock's final reading (0 before any bind).
  void bindClock(const SimClock *C);

  /// Current simulated time in seconds.
  double now() const { return Clock ? Clock->now() : LastSeconds; }

  /// Begin/end span pair ("B"/"E" phases). Nest freely; Chrome matches
  /// them per thread by order.
  void begin(const char *Name, const char *Cat, ArgList Args = {});
  void end(const char *Name, const char *Cat, ArgList Args = {});

  /// Complete span ("X" phase) with an explicit start and duration in
  /// simulated seconds — the natural shape for pipeline stages whose cost
  /// is a known SimClock charge.
  void complete(const char *Name, const char *Cat, double StartSeconds,
                double DurSeconds, ArgList Args = {});

  /// Instant event ("i" phase) at the current simulated time.
  void instant(const char *Name, const char *Cat, ArgList Args = {});

  size_t numEvents() const { return Events.size(); }
  int lane() const { return Lane; }

  /// The recorded events, each pre-rendered as one JSON object — what a
  /// multi-tracer merge (campaign worker lanes) concatenates.
  const std::vector<std::string> &events() const { return Events; }

  /// Renders the whole trace as one Chrome trace-event JSON document:
  /// `{"displayTimeUnit":"ms","traceEvents":[...]}` with `ts`/`dur` in
  /// microseconds of simulated time.
  std::string chromeJson() const;

  bool wallEnabled() const { return CaptureWall; }

private:
  void push(const char *Name, const char *Cat, char Phase,
            double TsSeconds, double DurSeconds, const ArgList &Args);
  double wallSeconds() const;

  const SimClock *Clock = nullptr;
  double LastSeconds = 0;
  bool CaptureWall = false;
  int Lane = 0;
  std::chrono::steady_clock::time_point WallStart;
  /// Each event pre-rendered as one JSON object.
  std::vector<std::string> Events;
};

/// Monotone saturating counter (sticks at UINT64_MAX instead of wrapping,
/// so an overflowed metric reads as "huge", not "tiny").
class Counter {
public:
  void inc(uint64_t N = 1) {
    V = (V + N < V) ? UINT64_MAX : V + N;
  }
  uint64_t value() const { return V; }

private:
  uint64_t V = 0;
};

/// Last-write-wins numeric gauge.
class Gauge {
public:
  void set(double X) { V = X; }
  double value() const { return V; }

private:
  double V = 0;
};

/// Fixed logarithmic-bucket histogram: bucket I covers values up to
/// FirstEdge * Factor^I (inclusive); one extra bucket counts overflow.
class Histogram {
public:
  Histogram(double FirstEdge, double Factor, size_t NumEdges);

  void observe(double X);

  size_t numEdges() const { return Edges.size(); }
  double upperEdge(size_t I) const { return Edges[I]; }
  /// I in [0, numEdges()]: the last slot is the overflow bucket.
  uint64_t bucketCount(size_t I) const { return Counts[I]; }
  uint64_t count() const { return Total; }
  double sum() const { return Sum; }

private:
  std::vector<double> Edges;
  std::vector<uint64_t> Counts; ///< Edges.size() + 1 (overflow last).
  uint64_t Total = 0;
  double Sum = 0;
};

/// Named metrics with periodic snapshots. Lookup creates on first use;
/// references stay valid for the registry's lifetime, so hot paths can
/// cache them. Names are emitted in sorted order (deterministic output).
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// Creation parameters apply on first use only.
  Histogram &histogram(const std::string &Name, double FirstEdge = 1.0,
                       double Factor = 2.0, size_t NumEdges = 24);

  /// Appends one snapshot line capturing every metric at simulated time
  /// \p AtSeconds.
  void snapshot(double AtSeconds);
  size_t numSnapshots() const { return Lines.size(); }

  /// One snapshot as a JSON value (what each JSONL line contains).
  json::Value snapshotValue(double AtSeconds) const;

  /// All snapshots so far, one JSON object per line.
  std::string jsonl() const;

  /// Every counter by name (sorted). Campaign merging sums these across
  /// workers into the aggregate's per-stage totals.
  const std::map<std::string, std::unique_ptr<Counter>> &counters() const {
    return Counters;
  }

private:
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::vector<std::string> Lines;
};

/// The flight recorder handed through the pipeline: tracing + metrics
/// behind one pointer, each independently enableable. All convenience
/// methods no-op when the corresponding half is off.
class Recorder {
public:
  struct Options {
    bool Trace = true;
    bool Metrics = true;
    /// Attach real wall-clock (`wall_us`) to every trace event. Breaks
    /// byte-identical traces across runs; for local profiling only.
    bool WallClock = false;
    /// Trace lane (`tid`) for every event; campaign workers get their
    /// worker id here so merged traces show one track per worker.
    int Lane = 0;
  };

  Recorder() : TraceOn(true), MetricsOn(true), Trace(false) {}
  explicit Recorder(Options O)
      : TraceOn(O.Trace), MetricsOn(O.Metrics),
        Trace(O.WallClock, O.Lane) {}

  void bindClock(const SimClock *C) { Trace.bindClock(C); }

  bool tracing() const { return TraceOn; }
  bool metricsOn() const { return MetricsOn; }
  Tracer &tracer() { return Trace; }
  MetricsRegistry &metrics() { return Metrics; }

  void begin(const char *Name, const char *Cat, ArgList Args = {}) {
    if (TraceOn)
      Trace.begin(Name, Cat, std::move(Args));
  }
  void end(const char *Name, const char *Cat, ArgList Args = {}) {
    if (TraceOn)
      Trace.end(Name, Cat, std::move(Args));
  }
  void complete(const char *Name, const char *Cat, double StartSeconds,
                double DurSeconds, ArgList Args = {}) {
    if (TraceOn)
      Trace.complete(Name, Cat, StartSeconds, DurSeconds,
                     std::move(Args));
  }
  void instant(const char *Name, const char *Cat, ArgList Args = {}) {
    if (TraceOn)
      Trace.instant(Name, Cat, std::move(Args));
  }
  double now() const { return Trace.now(); }

  void count(const std::string &Name, uint64_t N = 1) {
    if (MetricsOn)
      Metrics.counter(Name).inc(N);
  }
  void gaugeSet(const std::string &Name, double V) {
    if (MetricsOn)
      Metrics.gauge(Name).set(V);
  }
  void observe(const std::string &Name, double V) {
    if (MetricsOn)
      Metrics.histogram(Name).observe(V);
  }
  void snapshotMetrics(double AtSeconds) {
    if (MetricsOn)
      Metrics.snapshot(AtSeconds);
  }

private:
  bool TraceOn;
  bool MetricsOn;
  Tracer Trace;
  MetricsRegistry Metrics;
};

} // namespace syrust::obs

#endif // SYRUST_OBS_RECORDER_H
