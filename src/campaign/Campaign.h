//===--- Campaign.h - Multi-run campaign specification ---------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluated SyRust with 10-hour campaigns per library fanned
/// across a 64-container cluster (Section 6.2). This module reproduces
/// that shape on one machine: a CampaignSpec names a matrix of
/// `(crate, seed, variant)` jobs, expandMatrix() lays them out in a
/// deterministic order, and CampaignRunner (CampaignRunner.h) fans them
/// across a work-stealing thread pool.
///
/// Everything downstream of the matrix order is deterministic: jobs are
/// merged, totalled, and serialized in matrix order regardless of which
/// worker finished them first, so the aggregate JSON is byte-identical
/// for any `--jobs` count.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CAMPAIGN_CAMPAIGN_H
#define SYRUST_CAMPAIGN_CAMPAIGN_H

#include "core/Session.h"
#include "coverage/ApiPairCoverage.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace syrust::campaign {

/// The job matrix: every named crate × every seed in [SeedBegin,
/// SeedEnd] × every named variant, all sharing one base RunConfig.
struct CampaignSpec {
  /// Crate names (the CLI's `--crates`; Session::supportedCrates() is
  /// the `all` expansion).
  std::vector<std::string> Crates;

  /// Inclusive seed range (`--seeds N..M`; a single seed is N..N).
  uint64_t SeedBegin = 2021;
  uint64_t SeedEnd = 2021;

  /// Named RunConfig transformations; see applyVariant() for the
  /// vocabulary. "base" is the identity.
  std::vector<std::string> Variants = {"base"};

  /// Configuration every job starts from (each job then overrides Seed
  /// and applies its variant).
  core::RunConfig Base;

  /// Pool width (`--jobs`). 1 runs the whole matrix on the calling
  /// thread — through the same code path, so results are identical.
  int Jobs = 1;

  /// Record per-worker flight-recorder traces and merge them into one
  /// multi-lane Chrome trace (CampaignResult::MergedTraceJson).
  bool Trace = false;

  /// Checks the matrix against \p S and the base config against its
  /// domains. Returns one specific message per problem; empty = runnable.
  std::vector<std::string> validate(const core::Session &S) const;
};

/// One cell of the matrix, fully resolved.
struct CampaignJob {
  size_t Index = 0; ///< Position in matrix order (the merge key).
  std::string Crate;
  uint64_t Seed = 0;
  std::string Variant;
  core::RunConfig Config;
};

/// A finished cell.
struct CampaignJobResult {
  CampaignJob Job;
  core::RunResult Result;
  /// Which pool worker ran it. Diagnostic only — never serialized into
  /// the aggregate document, which must not depend on scheduling.
  int Worker = -1;
};

/// Campaign-wide sums, accumulated in matrix order.
struct CampaignTotals {
  uint64_t Synthesized = 0;
  uint64_t Rejected = 0;
  uint64_t Executed = 0;
  uint64_t UbCount = 0;
  uint64_t BugsFound = 0;
  double SimSeconds = 0;
  std::map<rustsim::ErrorCategory, uint64_t> ByCategory;
};

/// Everything a campaign produces.
struct CampaignResult {
  std::vector<CampaignJobResult> Jobs; ///< Matrix order.
  CampaignTotals Totals;
  /// Final per-worker metric counters summed across the pool. Integer
  /// sums commute, so these per-stage totals are identical for any
  /// worker count.
  std::map<std::string, uint64_t> MergedCounters;
  /// Multi-lane Chrome trace (one `tid` per worker, lanes named
  /// "worker-N"); empty unless CampaignSpec::Trace.
  std::string MergedTraceJson;
  /// Per-crate API-pair coverage, OR-merged across the crate's jobs in
  /// matrix order (bitset OR commutes, so this too is identical for any
  /// worker count). One entry per CampaignSpec::Crates name, same order.
  std::vector<std::pair<std::string, coverage::ApiCoverageData>> ApiCoverage;
  /// Workers the pool actually spawned (diagnostic only).
  int Workers = 0;
};

/// Applies a named variant to \p Config. Vocabulary: "base" (identity),
/// "no-semantic", "eager", "lazy", "interleave", "mutate-inputs",
/// "no-incremental", "no-compat-cache", "portfolio", "no-graph-prune",
/// "coverage-bias" (forces InterleaveLengths; the only variant that
/// changes the emitted program stream by design).
/// Returns false for an unknown name.
bool applyVariant(const std::string &Name, core::RunConfig &Config);

/// Lays out the matrix in deterministic order: crates outermost (in the
/// given order), then seeds ascending, then variants in the given order.
std::vector<CampaignJob> expandMatrix(const CampaignSpec &Spec);

/// The aggregate campaign document (schema_version 5, kind "campaign").
/// Contains the matrix, every per-job result in matrix order, campaign
/// totals, per-crate api_coverage, and the merged per-stage metric
/// counters — and deliberately nothing scheduling-dependent, so the
/// document is byte-identical for any worker count.
json::Value campaignToJson(const CampaignSpec &Spec,
                           const CampaignResult &R);

/// Merges per-worker tracers into one Chrome trace-event document with a
/// named lane per worker, in worker-id order.
std::string mergeWorkerTraces(const std::vector<const obs::Tracer *> &Lanes);

} // namespace syrust::campaign

#endif // SYRUST_CAMPAIGN_CAMPAIGN_H
