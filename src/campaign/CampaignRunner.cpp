//===--- CampaignRunner.cpp - Work-stealing campaign pool -----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "campaign/CampaignRunner.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

using namespace syrust;
using namespace syrust::campaign;
using namespace syrust::core;

namespace {

/// One worker's job queue. A plain mutex-guarded deque rather than a
/// lock-free Chase-Lev: jobs here run for milliseconds to minutes, so
/// queue operations are nowhere near the critical path, and the simple
/// version is trivially ThreadSanitizer-clean.
struct WorkerQueue {
  std::mutex Mu;
  std::deque<size_t> Q;

  void push(size_t Job) {
    std::lock_guard<std::mutex> Lock(Mu);
    Q.push_back(Job);
  }
  /// Owner end: newest first.
  std::optional<size_t> popBack() {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Q.empty())
      return std::nullopt;
    size_t Job = Q.back();
    Q.pop_back();
    return Job;
  }
  /// Thief end: oldest first.
  std::optional<size_t> stealFront() {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Q.empty())
      return std::nullopt;
    size_t Job = Q.front();
    Q.pop_front();
    return Job;
  }
};

} // namespace

CampaignRunner::CampaignRunner(const Session &S, CampaignSpec Spec)
    : S(S), Spec(std::move(Spec)) {
  assert(this->Spec.validate(S).empty() &&
         "invalid CampaignSpec; validate() before constructing");
}

void CampaignRunner::onJobDone(
    std::function<void(const CampaignJobResult &)> Fn) {
  JobDone = std::move(Fn);
}

void CampaignRunner::preload(std::map<size_t, PreloadedCell> Cells) {
  Preloaded = std::move(Cells);
}

void CampaignRunner::onJobCheckpoint(CheckpointSink Fn) {
  Checkpoint = std::move(Fn);
}

CampaignResult CampaignRunner::run() {
  std::vector<CampaignJob> Jobs = expandMatrix(Spec);

  CampaignResult Result;
  Result.Jobs.resize(Jobs.size());

  // Resume: finished cells slot straight into their matrix positions and
  // never reach the pool. Worker -1 marks them as not run here.
  size_t Live = 0;
  std::vector<bool> IsPreloaded(Jobs.size(), false);
  for (size_t I = 0; I < Jobs.size(); ++I) {
    auto It = Preloaded.find(I);
    if (It == Preloaded.end()) {
      ++Live;
      continue;
    }
    IsPreloaded[I] = true;
    Result.Jobs[I].Job = Jobs[I];
    Result.Jobs[I].Worker = -1;
    Result.Jobs[I].Result = It->second.Result;
  }

  // Never spawn more workers than live jobs: an idle worker is pure
  // overhead and its empty trace lane is noise.
  int Workers = Spec.Jobs;
  if (static_cast<size_t>(Workers) > Live)
    Workers = static_cast<int>(Live ? Live : 1);
  Result.Workers = Workers;

  // Deal the matrix round-robin so every worker starts with a fair
  // slice; stealing rebalances when job durations diverge (a dashmap
  // run costs ~2x a slab run of the same budget).
  std::vector<WorkerQueue> Queues(Workers);
  for (size_t I = 0; I < Jobs.size(); ++I)
    if (!IsPreloaded[I])
      Queues[I % Workers].push(I);

  // One recorder per worker — owned here, wired into each of that
  // worker's drivers in turn. Lane = worker id, so the merged trace
  // shows one named track per worker.
  std::vector<obs::Recorder> Recorders;
  Recorders.reserve(Workers);
  for (int W = 0; W < Workers; ++W) {
    obs::Recorder::Options Opts;
    Opts.Trace = Spec.Trace;
    Opts.Metrics = true;
    Opts.Lane = W;
    Recorders.emplace_back(Opts);
  }

  std::mutex JobDoneMu;
  auto WorkerLoop = [&](int Me) {
    obs::Recorder &Rec = Recorders[Me];
    for (;;) {
      std::optional<size_t> JobIdx = Queues[Me].popBack();
      for (int Off = 1; !JobIdx && Off < Workers; ++Off)
        JobIdx = Queues[(Me + Off) % Workers].stealFront();
      if (!JobIdx)
        return; // Every deque empty: no work will ever appear again.
      const CampaignJob &Job = Jobs[*JobIdx];
      CampaignJobResult &Slot = Result.Jobs[*JobIdx];
      Slot.Job = Job;
      Slot.Worker = Me;
      // With a checkpoint sink armed, bracket the job with counter
      // snapshots: jobs run serially per worker, so after-minus-before
      // is exactly this job's contribution to the per-stage totals.
      std::map<std::string, uint64_t> Before;
      if (Checkpoint)
        for (const auto &[Name, C] : Rec.metrics().counters())
          Before[Name] = C->value();
      Slot.Result = S.runOne(Job.Crate, Job.Config, &Rec);
      std::map<std::string, uint64_t> Deltas;
      if (Checkpoint)
        // Zero deltas are kept deliberately: the aggregate's merged
        // section lists registered-but-zero counters too, and on a
        // resume with no live cells the stored deltas are the only
        // source of that key set.
        for (const auto &[Name, C] : Rec.metrics().counters()) {
          auto It = Before.find(Name);
          Deltas[Name] =
              C->value() - (It == Before.end() ? 0 : It->second);
        }
      if (JobDone || Checkpoint) {
        std::lock_guard<std::mutex> Lock(JobDoneMu);
        if (JobDone)
          JobDone(Slot);
        if (Checkpoint)
          Checkpoint(Slot, Deltas);
      }
    }
  };

  if (Workers <= 1) {
    WorkerLoop(0); // Same code path, no thread: --jobs 1 is the oracle.
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (int W = 0; W < Workers; ++W)
      Pool.emplace_back(WorkerLoop, W);
    for (std::thread &T : Pool)
      T.join();
  }

  // Merge in matrix order — completion order must never leak into the
  // aggregate. Per-crate API coverage ORs together here: one slot per
  // CampaignSpec::Crates name (matrix order again), fed by that crate's
  // jobs as they appear.
  for (const std::string &Crate : Spec.Crates)
    Result.ApiCoverage.emplace_back(Crate, coverage::ApiCoverageData());
  uint64_t MergeConflicts = 0;
  for (const CampaignJobResult &JR : Result.Jobs) {
    const RunResult &R = JR.Result;
    Result.Totals.Synthesized += R.Synthesized;
    Result.Totals.Rejected += R.Rejected;
    Result.Totals.Executed += R.Executed;
    Result.Totals.UbCount += R.UbCount;
    Result.Totals.BugsFound += R.BugFound ? 1 : 0;
    Result.Totals.SimSeconds += R.ElapsedSeconds;
    for (const auto &[Cat, N] : R.ByCategory)
      Result.Totals.ByCategory[Cat] += N;
    for (auto &[Crate, Data] : Result.ApiCoverage)
      if (Crate == JR.Job.Crate) {
        if (Data.mergeFrom(R.ApiCoverage))
          ++MergeConflicts;
        break;
      }
  }
  // A conflict means covered bits were discarded; record it where every
  // other anomaly counter lives. Added only when nonzero so clean
  // aggregates keep their exact pre-existing key set.
  if (MergeConflicts)
    Result.MergedCounters["coverage.api.merge_conflicts"] += MergeConflicts;

  // Per-stage totals: preloaded cells' recorded deltas plus each live
  // worker's final counters. Integer sums commute, so the totals cannot
  // depend on which worker ran what — or on where a resume split the
  // matrix.
  for (size_t I = 0; I < Jobs.size(); ++I)
    if (IsPreloaded[I])
      for (const auto &[Name, N] : Preloaded.at(I).CounterDeltas)
        Result.MergedCounters[Name] += N;
  for (obs::Recorder &Rec : Recorders)
    for (const auto &[Name, C] : Rec.metrics().counters())
      Result.MergedCounters[Name] += C->value();

  if (Spec.Trace) {
    std::vector<const obs::Tracer *> Lanes;
    for (obs::Recorder &Rec : Recorders)
      Lanes.push_back(&Rec.tracer());
    Result.MergedTraceJson = mergeWorkerTraces(Lanes);
  }
  return Result;
}
