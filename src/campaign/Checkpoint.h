//===--- Checkpoint.h - Campaign checkpoint/resume -------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cell-granular campaign checkpointing: a JSONL file whose header names
/// the spec (by canonical fingerprint) and whose every further line is
/// one finished `(crate, seed, variant)` cell — its full result document
/// plus the per-stage metric counter deltas that cell contributed. A
/// killed campaign (SIGKILL included) resumes by preloading the finished
/// cells into CampaignRunner and running only the remainder; the resumed
/// aggregate is byte-identical to an uninterrupted run's.
///
/// Why cell granularity is sound: each cell is internally deterministic —
/// its RNG is seeded from the cell's own seed and the blocked-model
/// signatures are replayable (see sat/) — so an *unfinished* cell can
/// simply be re-run from scratch and will reproduce the identical result.
/// The frontier therefore needs no mid-cell RNG or solver state: the set
/// of finished indexes IS the checkpoint. Counter deltas ride along
/// because the aggregate's `metrics` section sums per-stage counters
/// across the whole matrix, and integer sums commute, so
/// `sum(preloaded deltas) + sum(live worker counters)` equals the
/// uninterrupted total exactly.
///
/// Crash safety: cells are appended and flushed one line at a time, so a
/// SIGKILL can tear at most the final line. The loader stops at the
/// first malformed line and reports how many cells survived; the torn
/// cell is simply re-run.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CAMPAIGN_CHECKPOINT_H
#define SYRUST_CAMPAIGN_CHECKPOINT_H

#include "campaign/CampaignRunner.h"

#include <cstdio>
#include <map>
#include <string>

namespace syrust::campaign {

/// Canonical fingerprint of everything that determines a campaign's
/// results: crates, seed range, variants, and the full base RunConfig
/// (via core::runConfigToJson). Jobs and Trace are deliberately excluded
/// — pool width never affects results (the byte-identity contract), so a
/// checkpoint taken at `--jobs 8` resumes fine at `--jobs 1`. FNV-1a
/// over the canonical JSON rendering, as 16 hex digits.
std::string specFingerprint(const CampaignSpec &Spec);

/// Everything loadCheckpoint() recovers from a checkpoint file.
struct CheckpointData {
  /// The header's fingerprint; compare against specFingerprint() of the
  /// resuming spec before preloading.
  std::string Fingerprint;
  /// Finished cells by matrix index, ready for CampaignRunner::preload.
  std::map<size_t, PreloadedCell> Cells;
  /// Non-empty when the file ended in a torn line (SIGKILL mid-append);
  /// purely informational — the torn cell re-runs.
  std::string TornTail;
};

/// Loads \p Path. Returns false with \p Err set when the file cannot be
/// read or its header is malformed; a torn *cell* line is not an error
/// (loading stops there and TornTail records it). A missing file is an
/// error — callers distinguish "fresh start" by checking existence.
bool loadCheckpoint(const std::string &Path, CheckpointData &Out,
                    std::string &Err);

/// Appends finished cells to a checkpoint file, one flushed JSONL line
/// per cell, writing the header first when the file starts empty. Wire
/// append() as the CampaignRunner checkpoint sink.
class CheckpointWriter {
public:
  CheckpointWriter() = default;
  ~CheckpointWriter() { close(); }
  CheckpointWriter(const CheckpointWriter &) = delete;
  CheckpointWriter &operator=(const CheckpointWriter &) = delete;

  /// Opens \p Path for append (creating it if needed) and writes the
  /// header line if the file is empty. Returns false with \p Err set on
  /// I/O failure.
  bool open(const std::string &Path, const CampaignSpec &Spec,
            std::string &Err);

  /// Appends one finished cell and flushes, so the line survives a kill
  /// that lands right after the job.
  void append(const CampaignJobResult &JR,
              const std::map<std::string, uint64_t> &CounterDeltas);

  void close();

private:
  std::FILE *F = nullptr;
};

} // namespace syrust::campaign

#endif // SYRUST_CAMPAIGN_CHECKPOINT_H
