//===--- CampaignRunner.h - Work-stealing campaign pool --------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans a campaign's job matrix across a work-stealing thread pool and
/// merges the results deterministically.
///
/// Scheduling: jobs are dealt round-robin onto per-worker deques; a
/// worker pops its own deque from the back (LIFO, cache-warm) and, when
/// empty, steals from other workers' fronts (FIFO, the oldest — and
/// typically largest remaining — work). No new jobs appear after start,
/// so a worker that finds every deque empty can retire.
///
/// Determinism: scheduling affects only *when* a job runs, never what it
/// computes — each job owns its CrateInstance, Rng, and SimClock, and
/// workers share nothing mutable. Results land in a pre-sized slot per
/// job index and every merge (totals, counters, aggregate JSON) walks
/// them in matrix order, so output is byte-identical for any pool width,
/// including Jobs = 1 (which runs the same worker loop inline).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CAMPAIGN_CAMPAIGNRUNNER_H
#define SYRUST_CAMPAIGN_CAMPAIGNRUNNER_H

#include "campaign/Campaign.h"

#include <functional>
#include <map>

namespace syrust::campaign {

/// One finished cell recovered from a checkpoint (Checkpoint.h): the
/// cell's result plus the per-stage counter increments it contributed.
struct PreloadedCell {
  core::RunResult Result;
  std::map<std::string, uint64_t> CounterDeltas;
};

/// Runs one campaign. See file comment for the scheduling and
/// determinism contract.
class CampaignRunner {
public:
  /// \p S must outlive the runner. Precondition: Spec.validate(S) is
  /// empty (the CLI and benches check before constructing).
  CampaignRunner(const core::Session &S, CampaignSpec Spec);

  /// Optional progress callback, fired from worker threads after each
  /// finished job (guarded by an internal mutex, so the callback itself
  /// need not be thread-safe). For CLI progress lines; keep it cheap.
  void onJobDone(std::function<void(const CampaignJobResult &)> Fn);

  /// Marks matrix cells as already finished (resume): their results slot
  /// straight into the aggregate, their counter deltas seed the merged
  /// counters, and only the remaining cells are dealt to the pool.
  /// Indexes beyond the matrix are ignored. The merge still walks matrix
  /// order, so a resumed aggregate is byte-identical to an uninterrupted
  /// one.
  void preload(std::map<size_t, PreloadedCell> Cells);

  /// Optional checkpoint sink, fired (under the same mutex as onJobDone)
  /// after each *live* job with that job's per-stage counter deltas —
  /// what CheckpointWriter::append persists. Never fired for preloaded
  /// cells. Setting a sink makes workers snapshot their counters around
  /// every job; jobs run serially per worker, so the deltas are exact.
  using CheckpointSink = std::function<void(
      const CampaignJobResult &, const std::map<std::string, uint64_t> &)>;
  void onJobCheckpoint(CheckpointSink Fn);

  /// Expands the matrix, runs every job, merges in matrix order.
  CampaignResult run();

private:
  const core::Session &S;
  CampaignSpec Spec;
  std::function<void(const CampaignJobResult &)> JobDone;
  CheckpointSink Checkpoint;
  std::map<size_t, PreloadedCell> Preloaded;
};

} // namespace syrust::campaign

#endif // SYRUST_CAMPAIGN_CAMPAIGNRUNNER_H
