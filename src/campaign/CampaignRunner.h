//===--- CampaignRunner.h - Work-stealing campaign pool --------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans a campaign's job matrix across a work-stealing thread pool and
/// merges the results deterministically.
///
/// Scheduling: jobs are dealt round-robin onto per-worker deques; a
/// worker pops its own deque from the back (LIFO, cache-warm) and, when
/// empty, steals from other workers' fronts (FIFO, the oldest — and
/// typically largest remaining — work). No new jobs appear after start,
/// so a worker that finds every deque empty can retire.
///
/// Determinism: scheduling affects only *when* a job runs, never what it
/// computes — each job owns its CrateInstance, Rng, and SimClock, and
/// workers share nothing mutable. Results land in a pre-sized slot per
/// job index and every merge (totals, counters, aggregate JSON) walks
/// them in matrix order, so output is byte-identical for any pool width,
/// including Jobs = 1 (which runs the same worker loop inline).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CAMPAIGN_CAMPAIGNRUNNER_H
#define SYRUST_CAMPAIGN_CAMPAIGNRUNNER_H

#include "campaign/Campaign.h"

#include <functional>

namespace syrust::campaign {

/// Runs one campaign. See file comment for the scheduling and
/// determinism contract.
class CampaignRunner {
public:
  /// \p S must outlive the runner. Precondition: Spec.validate(S) is
  /// empty (the CLI and benches check before constructing).
  CampaignRunner(const core::Session &S, CampaignSpec Spec);

  /// Optional progress callback, fired from worker threads after each
  /// finished job (guarded by an internal mutex, so the callback itself
  /// need not be thread-safe). For CLI progress lines; keep it cheap.
  void onJobDone(std::function<void(const CampaignJobResult &)> Fn);

  /// Expands the matrix, runs every job, merges in matrix order.
  CampaignResult run();

private:
  const core::Session &S;
  CampaignSpec Spec;
  std::function<void(const CampaignJobResult &)> JobDone;
};

} // namespace syrust::campaign

#endif // SYRUST_CAMPAIGN_CAMPAIGNRUNNER_H
