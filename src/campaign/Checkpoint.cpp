//===--- Checkpoint.cpp - Campaign checkpoint/resume ----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "campaign/Checkpoint.h"

#include "core/ResultJson.h"
#include "support/StringUtils.h"

#include <utility>

using namespace syrust;
using namespace syrust::campaign;
using namespace syrust::json;

namespace {

/// The canonical spec document the fingerprint hashes: everything that
/// determines results, nothing that doesn't (Jobs, Trace).
Value specToCanonicalJson(const CampaignSpec &Spec) {
  Value V = Value::object();
  Value Crates = Value::array();
  for (const std::string &C : Spec.Crates)
    Crates.push(Value::string(C));
  V.set("crates", std::move(Crates));
  V.set("seed_begin", Value::integer(static_cast<int64_t>(Spec.SeedBegin)));
  V.set("seed_end", Value::integer(static_cast<int64_t>(Spec.SeedEnd)));
  Value Variants = Value::array();
  for (const std::string &Var : Spec.Variants)
    Variants.push(Value::string(Var));
  V.set("variants", std::move(Variants));
  V.set("base", core::runConfigToJson(Spec.Base));
  return V;
}

/// One finished cell as a JSONL line body. Object keys render in sorted
/// map order, so the line is canonical for the cell.
Value cellToJson(const CampaignJobResult &JR,
                 const std::map<std::string, uint64_t> &Deltas) {
  Value V = Value::object();
  V.set("index", Value::integer(static_cast<int64_t>(JR.Job.Index)));
  V.set("crate", Value::string(JR.Job.Crate));
  V.set("seed", Value::integer(static_cast<int64_t>(JR.Job.Seed)));
  V.set("variant", Value::string(JR.Job.Variant));
  // Full document (host wall time included): the checkpoint is also the
  // archive of per-cell diagnostics. The aggregate re-renders with
  // HostWallTime=false, so wall jitter never reaches the byte-identity
  // contract.
  V.set("result", core::resultToJson(JR.Result));
  Value Counters = Value::object();
  for (const auto &[Name, N] : Deltas)
    Counters.set(Name, Value::integer(static_cast<int64_t>(N)));
  V.set("counters", std::move(Counters));
  return V;
}

} // namespace

std::string syrust::campaign::specFingerprint(const CampaignSpec &Spec) {
  // FNV-1a 64-bit over the canonical rendering; collision-resistant
  // enough for "did the user point --checkpoint at the wrong file".
  std::string Doc = specToCanonicalJson(Spec).dump();
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Doc) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return format("%016llx", static_cast<unsigned long long>(H));
}

bool syrust::campaign::loadCheckpoint(const std::string &Path,
                                      CheckpointData &Out,
                                      std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open checkpoint file '" + Path + "'";
    return false;
  }
  std::string Text;
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);

  Out = CheckpointData();
  size_t Pos = 0, LineNo = 0;
  bool SawHeader = false;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    // A cell line is only durable once its newline hit the disk; a
    // newline-less tail is the torn final append.
    std::string Line = Eol == std::string::npos
                           ? Text.substr(Pos)
                           : Text.substr(Pos, Eol - Pos);
    bool Complete = Eol != std::string::npos;
    Pos = Complete ? Eol + 1 : Text.size();
    ++LineNo;
    if (Line.empty())
      continue;

    ParseResult P = parse(Line);
    if (!SawHeader) {
      // The header must parse — a file whose first line is garbage is
      // not a checkpoint, and preloading from it would be a lie.
      if (!P.Ok || !Complete) {
        Err = "checkpoint '" + Path + "' line 1: malformed header";
        return false;
      }
      if (P.Val.get("kind").asString() != "campaign_checkpoint") {
        Err = "checkpoint '" + Path + "' is not a campaign checkpoint " +
              "(kind '" + P.Val.get("kind").asString() + "')";
        return false;
      }
      if (P.Val.get("schema_version").asInt() != 5) {
        Err = format("checkpoint '%s' has schema_version %lld, want 5",
                     Path.c_str(),
                     static_cast<long long>(
                         P.Val.get("schema_version").asInt()));
        return false;
      }
      Out.Fingerprint = P.Val.get("fingerprint").asString();
      SawHeader = true;
      continue;
    }

    // Cell lines: stop at the first torn or malformed one — everything
    // after it is untrusted, and re-running those cells is always sound.
    if (!Complete || !P.Ok) {
      Out.TornTail = Line;
      break;
    }
    PreloadedCell Cell;
    std::string CellErr;
    if (!core::resultFromJson(P.Val.get("result"), Cell.Result,
                              CellErr)) {
      Out.TornTail = Line;
      break;
    }
    for (const auto &[Name, V] : P.Val.get("counters").members())
      Cell.CounterDeltas[Name] = static_cast<uint64_t>(V.asInt());
    Out.Cells[static_cast<size_t>(P.Val.get("index").asInt())] =
        std::move(Cell);
  }
  if (!SawHeader) {
    Err = "checkpoint '" + Path + "' is empty";
    return false;
  }
  return true;
}

bool CheckpointWriter::open(const std::string &Path,
                            const CampaignSpec &Spec, std::string &Err) {
  close();
  F = std::fopen(Path.c_str(), "ab");
  if (!F) {
    Err = "cannot open checkpoint file '" + Path + "' for append";
    return false;
  }
  long End = 0;
  if (std::fseek(F, 0, SEEK_END) == 0)
    End = std::ftell(F);
  if (End == 0) {
    Value Header = Value::object();
    Header.set("kind", Value::string("campaign_checkpoint"));
    Header.set("schema_version", Value::integer(5));
    Header.set("fingerprint", Value::string(specFingerprint(Spec)));
    Header.set("spec", specToCanonicalJson(Spec));
    std::string Line = Header.dump();
    Line += '\n';
    std::fwrite(Line.data(), 1, Line.size(), F);
    std::fflush(F);
  }
  return true;
}

void CheckpointWriter::append(
    const CampaignJobResult &JR,
    const std::map<std::string, uint64_t> &CounterDeltas) {
  if (!F)
    return;
  std::string Line = cellToJson(JR, CounterDeltas).dump();
  Line += '\n';
  std::fwrite(Line.data(), 1, Line.size(), F);
  std::fflush(F); // One durable line per finished cell.
}

void CheckpointWriter::close() {
  if (F) {
    std::fclose(F);
    F = nullptr;
  }
}
