//===--- Campaign.cpp - Multi-run campaign specification ------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"

#include "core/ResultJson.h"

#include <cstdio>
#include <set>

using namespace syrust;
using namespace syrust::campaign;
using namespace syrust::core;
using namespace syrust::json;

bool syrust::campaign::applyVariant(const std::string &Name,
                                    RunConfig &Config) {
  if (Name == "base")
    return true;
  if (Name == "no-semantic") {
    Config.SemanticAware = false; // RQ2 (Section 4.4 off).
    return true;
  }
  if (Name == "eager") {
    Config.Mode = refine::RefinementMode::PurelyEager; // RQ3.
    return true;
  }
  if (Name == "lazy") {
    Config.Mode = refine::RefinementMode::PurelyLazy;
    return true;
  }
  if (Name == "interleave") {
    Config.InterleaveLengths = true; // Section 7.4.3.
    return true;
  }
  if (Name == "mutate-inputs") {
    Config.MutateInputs = true; // Section 7.4.2.
    return true;
  }
  if (Name == "no-incremental") {
    Config.IncrementalRefinement = false;
    return true;
  }
  if (Name == "no-compat-cache") {
    Config.UseCompatCache = false; // A/B against the memoized kernel.
    return true;
  }
  if (Name == "portfolio") {
    Config.Portfolio = true; // Strategy racing; streams stay identical.
    return true;
  }
  if (Name == "no-graph-prune") {
    Config.GraphPrune = false; // A/B against graph-guided probes.
    return true;
  }
  if (Name == "coverage-bias") {
    // Coverage-guided enumeration bias. Unlike the variants above, this
    // deliberately *changes* the emitted stream (see DESIGN.md 5h). The
    // biased episode leg only exists in interleaved mode, so the variant
    // forces it on; TrackApiCoverage is the RunConfig default and is
    // required by validate().
    Config.BiasCoverage = true;
    Config.InterleaveLengths = true;
    return true;
  }
  return false;
}

std::vector<std::string>
CampaignSpec::validate(const Session &S) const {
  std::vector<std::string> Errors;
  if (Crates.empty())
    Errors.push_back("CampaignSpec.Crates must name at least one crate");
  std::set<std::string> Seen;
  for (const std::string &Name : Crates) {
    if (!Seen.insert(Name).second)
      Errors.push_back("CampaignSpec.Crates lists '" + Name +
                       "' more than once");
    else if (!S.find(Name))
      Errors.push_back("CampaignSpec.Crates names unknown crate '" +
                       Name + "'; try `syrust list`");
  }
  if (SeedEnd < SeedBegin)
    Errors.push_back("CampaignSpec seed range is empty: SeedEnd " +
                     std::to_string(SeedEnd) + " < SeedBegin " +
                     std::to_string(SeedBegin));
  if (Variants.empty())
    Errors.push_back(
        "CampaignSpec.Variants must name at least one variant");
  for (const std::string &V : Variants) {
    RunConfig Probe;
    if (!applyVariant(V, Probe))
      Errors.push_back("CampaignSpec.Variants names unknown variant '" +
                       V +
                       "'; known: base, no-semantic, eager, lazy, "
                       "interleave, mutate-inputs, no-incremental, "
                       "no-compat-cache, portfolio, no-graph-prune, "
                       "coverage-bias");
  }
  if (Jobs < 1)
    Errors.push_back("CampaignSpec.Jobs must be at least 1, got " +
                     std::to_string(Jobs));
  std::vector<std::string> BaseErrors = Base.validate();
  Errors.insert(Errors.end(), BaseErrors.begin(), BaseErrors.end());
  return Errors;
}

std::vector<CampaignJob>
syrust::campaign::expandMatrix(const CampaignSpec &Spec) {
  std::vector<CampaignJob> Jobs;
  size_t Index = 0;
  for (const std::string &Crate : Spec.Crates) {
    for (uint64_t Seed = Spec.SeedBegin; Seed <= Spec.SeedEnd; ++Seed) {
      for (const std::string &Variant : Spec.Variants) {
        CampaignJob Job;
        Job.Index = Index++;
        Job.Crate = Crate;
        Job.Seed = Seed;
        Job.Variant = Variant;
        Job.Config = Spec.Base;
        Job.Config.Seed = Seed;
        applyVariant(Variant, Job.Config);
        Jobs.push_back(std::move(Job));
      }
      if (Seed == UINT64_MAX)
        break; // Seed + 1 would wrap.
    }
  }
  return Jobs;
}

json::Value syrust::campaign::campaignToJson(const CampaignSpec &Spec,
                                             const CampaignResult &R) {
  Value Root = Value::object();
  // Version 5 across every document kind (see ResultJson.cpp for the
  // history): this aggregate gained the per-crate api_coverage section.
  // Nothing in this document may depend on scheduling (worker ids, pool
  // width, wall time): byte-identical output for any --jobs count is
  // the contract.
  Root.set("schema_version", Value::integer(5));
  Root.set("kind", Value::string("campaign"));

  Value Matrix = Value::object();
  Value CrateList = Value::array();
  for (const std::string &Name : Spec.Crates)
    CrateList.push(Value::string(Name));
  Matrix.set("crates", std::move(CrateList));
  Matrix.set("seed_begin",
             Value::integer(static_cast<int64_t>(Spec.SeedBegin)));
  Matrix.set("seed_end",
             Value::integer(static_cast<int64_t>(Spec.SeedEnd)));
  Value VariantList = Value::array();
  for (const std::string &V : Spec.Variants)
    VariantList.push(Value::string(V));
  Matrix.set("variants", std::move(VariantList));
  Matrix.set("jobs_total",
             Value::integer(static_cast<int64_t>(R.Jobs.size())));
  Root.set("matrix", std::move(Matrix));

  Value Jobs = Value::array();
  for (const CampaignJobResult &JR : R.Jobs) {
    Value Job = Value::object();
    Job.set("crate", Value::string(JR.Job.Crate));
    Job.set("seed", Value::integer(static_cast<int64_t>(JR.Job.Seed)));
    Job.set("variant", Value::string(JR.Job.Variant));
    // Host wall-time fields vary with machine load and worker scheduling;
    // the aggregate excludes them so the document is byte-identical for
    // any pool width (per-job files written by the CLI keep them).
    core::ResultJsonOptions JobOpts;
    JobOpts.HostWallTime = false;
    Job.set("result", resultToJson(JR.Result, JobOpts));
    Jobs.push(std::move(Job));
  }
  Root.set("jobs", std::move(Jobs));

  Value Totals = Value::object();
  Totals.set("synthesized",
             Value::integer(static_cast<int64_t>(R.Totals.Synthesized)));
  Totals.set("rejected",
             Value::integer(static_cast<int64_t>(R.Totals.Rejected)));
  Totals.set("executed",
             Value::integer(static_cast<int64_t>(R.Totals.Executed)));
  Totals.set("ub", Value::integer(static_cast<int64_t>(R.Totals.UbCount)));
  Totals.set("bugs_found",
             Value::integer(static_cast<int64_t>(R.Totals.BugsFound)));
  Totals.set("sim_seconds", Value::number(R.Totals.SimSeconds));
  Value ByCategory = Value::object();
  for (const auto &[Cat, N] : R.Totals.ByCategory)
    ByCategory.set(rustsim::categoryName(Cat),
                   Value::integer(static_cast<int64_t>(N)));
  Totals.set("by_category", std::move(ByCategory));
  Root.set("totals", std::move(Totals));

  // Per-crate API-pair coverage, already OR-merged in matrix order.
  Value ApiCov = Value::array();
  for (const auto &[Crate, Data] : R.ApiCoverage) {
    Value E = Value::object();
    E.set("crate", Value::string(Crate));
    E.set("api_coverage", coverage::apiCoverageToJson(Data));
    ApiCov.push(std::move(E));
  }
  Root.set("api_coverage", std::move(ApiCov));

  // Per-stage totals from the pool's merged metric counters (std::map:
  // sorted, deterministic).
  Value Metrics = Value::object();
  for (const auto &[Name, N] : R.MergedCounters)
    Metrics.set(Name, Value::integer(static_cast<int64_t>(N)));
  Root.set("metrics", std::move(Metrics));
  return Root;
}

std::string syrust::campaign::mergeWorkerTraces(
    const std::vector<const obs::Tracer *> &Lanes) {
  std::string Out;
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Emit = [&](const std::string &Event) {
    if (!First)
      Out += ',';
    First = false;
    Out += '\n';
    Out += Event;
  };
  // Lane-name metadata first, then each worker's events in worker-id
  // order (each lane is internally in recording order).
  for (const obs::Tracer *T : Lanes) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"worker-%d\"}}",
                  T->lane(), T->lane());
    Emit(Buf);
  }
  for (const obs::Tracer *T : Lanes)
    for (const std::string &Event : T->events())
      Emit(Event);
  Out += "\n]}\n";
  return Out;
}
