//===--- TraitEnv.h - Trait implementation database ------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records which types implement which traits, including conditional
/// generic impls ("impl<T: Clone> Clone for Vec<T>"). The synthesis encoder
/// deliberately IGNORES trait bounds (Section 5.2 of the paper: "instead of
/// dealing with complex trait requirements, we use the compiler errors as
/// feedback"); this database is consulted by the rustsim checker, whose
/// trait-mismatch diagnostics drive the lazy refinement loop.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_TYPES_TRAITENV_H
#define SYRUST_TYPES_TRAITENV_H

#include "types/Subtyping.h"
#include "types/Type.h"

#include <string>
#include <vector>

namespace syrust::types {

/// One impl rule: `Pattern` implements `Trait` provided each listed type
/// variable of the pattern implements its required traits.
struct ImplRule {
  std::string Trait;
  const Type *Pattern = nullptr;
  /// Conditions: (type-variable name in Pattern, required trait).
  std::vector<std::pair<std::string, std::string>> Where;
};

/// Database of trait implementations with conditional-impl resolution.
class TraitEnv {
public:
  explicit TraitEnv(TypeArena &Arena) : Arena(Arena) {}

  /// Rebinding copy: the same impl rules, but interning through
  /// \p NewArena. Used when a worker's copy-on-write instance overlays a
  /// shared base instance: the rules' Type pointers stay valid (they live
  /// in the base arena the overlay chains to), while implements() interns
  /// any instantiated obligations into the worker's own arena.
  TraitEnv(const TraitEnv &Other, TypeArena &NewArena)
      : Arena(NewArena), Rules(Other.Rules) {}

  /// Registers an unconditional impl for a concrete or generic pattern.
  void addImpl(const std::string &Trait, const Type *Pattern) {
    Rules.push_back(ImplRule{Trait, Pattern, {}});
  }

  /// Registers a conditional impl.
  void addImpl(const std::string &Trait, const Type *Pattern,
               std::vector<std::pair<std::string, std::string>> Where) {
    Rules.push_back(ImplRule{Trait, Pattern, std::move(Where)});
  }

  /// True if \p T implements \p Trait. Conditional impls recurse into the
  /// bound arguments; recursion depth is bounded to keep pathological rule
  /// sets terminating.
  bool implements(const Type *T, const std::string &Trait) const;

  /// Copy semantics: primitives, shared references, and tuples of Copy
  /// types are Copy; nominal types are Copy iff they implement the Copy
  /// trait. &mut T is never Copy.
  bool isCopy(const Type *T) const;

  /// Default primitive universe, convenient for tests and crate specs.
  void addDefaultPrimImpls();

  const std::vector<ImplRule> &rules() const { return Rules; }

private:
  bool implementsDepth(const Type *T, const std::string &Trait,
                       int Depth) const;

  TypeArena &Arena;
  std::vector<ImplRule> Rules;
};

/// Whether passing a value of type \p ArgTy to a parameter declared as
/// \p Pattern consumes (moves) the argument binding. Rust's rules, which
/// the encoder (synth/Encoding) and the checker (rustsim/Checker) must
/// agree on:
///
///   * Copy values (primitives, shared refs, Copy nominals) never move;
///   * any reference passed to a parameter whose declared type is itself
///     a reference is implicitly reborrowed, not moved;
///   * everything else — owned non-Copy values, and `&mut T` passed to a
///     by-value parameter such as a bare type variable — moves, killing
///     the binding (`&mut T` is not Copy).
inline bool movesOnUse(const Type *ArgTy, const Type *Pattern,
                       const TraitEnv &Traits) {
  if (Traits.isCopy(ArgTy))
    return false;
  if (ArgTy->isRef() && Pattern && Pattern->isRef())
    return false; // Implicit reborrow.
  return true;
}

} // namespace syrust::types

#endif // SYRUST_TYPES_TRAITENV_H
