//===--- CompatCache.h - Memoized type-compatibility kernel ----*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memo tables for the boolean type-compatibility probes the SAT encoder
/// asks during every build (Section 4, Definition 2): "is Actual
/// unifiable with Pattern" per (candidate, slot) and "do two candidates
/// unify with their two slots under one joint substitution" per candidate
/// pair. Types are interned, so a probe's answer is a pure function of
/// the participating Type pointers; after the first computation every
/// repeat - across lines, program lengths, and refinement re-syncs, where
/// the same (type, pattern) pairs recur thousands of times - is a single
/// hash lookup.
///
/// Caches chain: a per-run (or per-campaign-worker) cache can point at an
/// immutable base cache holding the crate's precomputed slot-pairwise
/// matrix (core::CrateAnalysis). Lookups consult local entries, then the
/// base chain read-only, then compute and store locally; the base is
/// never written after construction, so any number of workers can share
/// it without synchronization and per-worker hit/miss counts stay
/// deterministic regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_TYPES_COMPATCACHE_H
#define SYRUST_TYPES_COMPATCACHE_H

#include "types/Subtyping.h"

#include <cstdint>
#include <unordered_map>

namespace syrust::types {

/// Memoized isSubtype/unifiable probes over interned types. See file
/// comment for the chaining and thread-safety contract.
class CompatCache {
public:
  CompatCache() = default;

  /// Chains onto \p Base: probes the base's tables (read-only) before
  /// computing. \p Base must outlive this cache and must not be written
  /// to while chained caches are live.
  explicit CompatCache(const CompatCache *Base) : Base(Base) {}

  /// Memoized `unifiable(A, B)` under a fresh substitution - the
  /// buildCallSites gate "could this value feed this slot".
  bool unifiable2(const Type *A, const Type *B);

  /// Memoized joint probe: `unifiable(A1, P1, S) && unifiable(A2, P2, S)`
  /// under one shared substitution S - the pairwise compatibleTypes check
  /// of Definition 2(3). Not decomposable into two unifiable2 calls: the
  /// slots may share renamed signature variables.
  bool unifiableJoint(const Type *A1, const Type *P1, const Type *A2,
                      const Type *P2);

  /// Memoized `isSubtype(A, P)` under a fresh substitution.
  bool subtype2(const Type *A, const Type *P);

  struct Stats {
    uint64_t Hits = 0;     ///< Answered from this cache's own tables.
    uint64_t BaseHits = 0; ///< Answered from the chained base cache.
    uint64_t Misses = 0;   ///< Computed fresh (and stored locally).
  };
  const Stats &stats() const { return S; }

  /// Entries stored in this cache alone (excludes the base chain).
  size_t size() const {
    return PairMap.size() + QuadMap.size() + SubMap.size();
  }

private:
  struct PairKey {
    const Type *A;
    const Type *B;
    bool operator==(const PairKey &) const = default;
  };
  struct QuadKey {
    const Type *A1;
    const Type *P1;
    const Type *A2;
    const Type *P2;
    bool operator==(const QuadKey &) const = default;
  };
  struct PairHash {
    size_t operator()(const PairKey &K) const;
  };
  struct QuadHash {
    size_t operator()(const QuadKey &K) const;
  };
  template <typename Map, typename Key, typename Compute>
  bool memo(Map CompatCache::*M, const Key &K, Compute &&Fn);

  const CompatCache *Base = nullptr;
  std::unordered_map<PairKey, bool, PairHash> PairMap;
  std::unordered_map<QuadKey, bool, QuadHash> QuadMap;
  std::unordered_map<PairKey, bool, PairHash> SubMap;
  Stats S;
};

} // namespace syrust::types

#endif // SYRUST_TYPES_COMPATCACHE_H
