//===--- TypeParser.cpp - Parse Rust type syntax ---------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/TypeParser.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace syrust;
using namespace syrust::types;

const Type *TypeParser::parse(std::string_view Text) {
  Input = Text;
  Pos = 0;
  Failed = false;
  Error.clear();
  const Type *Result = parseType();
  skipSpace();
  if (!Failed && Pos != Input.size()) {
    fail(format("trailing characters at offset %zu", Pos));
    return nullptr;
  }
  return Failed ? nullptr : Result;
}

void TypeParser::skipSpace() {
  while (Pos < Input.size() && std::isspace(static_cast<unsigned char>(
                                   Input[Pos])))
    ++Pos;
}

bool TypeParser::peekIs(char C) {
  skipSpace();
  return Pos < Input.size() && Input[Pos] == C;
}

bool TypeParser::consume(char C) {
  if (!peekIs(C))
    return false;
  ++Pos;
  return true;
}

void TypeParser::fail(const std::string &Message) {
  if (!Failed)
    Error = Message;
  Failed = true;
}

std::string TypeParser::parseIdent() {
  skipSpace();
  size_t Start = Pos;
  // '#' appears only in renamed type variables ("T#a5"), which must
  // round-trip through the JSON diagnostics channel.
  while (Pos < Input.size() &&
         (std::isalnum(static_cast<unsigned char>(Input[Pos])) ||
          Input[Pos] == '_' || Input[Pos] == ':' || Input[Pos] == '#'))
    ++Pos;
  if (Pos == Start) {
    fail(format("expected identifier at offset %zu", Start));
    return std::string();
  }
  return std::string(Input.substr(Start, Pos - Start));
}

const Type *TypeParser::parseType() {
  skipSpace();
  if (Failed || Pos >= Input.size()) {
    fail("unexpected end of input");
    return nullptr;
  }

  // References: &T and &mut T.
  if (consume('&')) {
    skipSpace();
    bool Mutable = false;
    if (startsWith(Input.substr(Pos), "mut") &&
        (Pos + 3 == Input.size() ||
         !std::isalnum(static_cast<unsigned char>(Input[Pos + 3])))) {
      Mutable = true;
      Pos += 3;
    }
    const Type *Pointee = parseType();
    if (Failed)
      return nullptr;
    return Arena.ref(Pointee, Mutable);
  }

  // Unit and tuples.
  if (consume('(')) {
    if (consume(')'))
      return Arena.unit();
    std::vector<const Type *> Elems;
    do {
      const Type *E = parseType();
      if (Failed)
        return nullptr;
      Elems.push_back(E);
    } while (consume(','));
    if (!consume(')')) {
      fail("expected ')' in tuple type");
      return nullptr;
    }
    if (Elems.size() == 1)
      return Elems[0]; // Parenthesized type, not a tuple.
    return Arena.tuple(std::move(Elems));
  }

  // Identifier head: primitive, type variable, or nominal type.
  std::string Name = parseIdent();
  if (Failed)
    return nullptr;
  std::vector<const Type *> Args;
  if (consume('<')) {
    do {
      const Type *Arg = parseType();
      if (Failed)
        return nullptr;
      Args.push_back(Arg);
    } while (consume(','));
    if (!consume('>')) {
      fail("expected '>' closing generic arguments");
      return nullptr;
    }
  }
  if (Args.empty()) {
    if (TypeArena::isPrimName(Name))
      return Arena.prim(Name);
    if (Vars.count(Name) || Name.find('#') != std::string::npos)
      return Arena.typeVar(Name);
    return Arena.named(Name);
  }
  if (TypeArena::isPrimName(Name) || Vars.count(Name)) {
    fail(format("type '%s' cannot take generic arguments", Name.c_str()));
    return nullptr;
  }
  return Arena.named(Name, std::move(Args));
}
