//===--- CompatCache.cpp - Memoized type-compatibility kernel -------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/CompatCache.h"

using namespace syrust::types;

namespace {

/// Pointer mixing in the spirit of boost::hash_combine; interned Type
/// pointers are stable for the arena's lifetime, which is all a hash
/// needs (the maps are never iterated, so pointer-order nondeterminism
/// cannot leak into results).
size_t mix(size_t H, const void *P) {
  auto V = reinterpret_cast<uintptr_t>(P);
  return H ^ (static_cast<size_t>(V) + 0x9e3779b97f4a7c15ULL + (H << 6) +
              (H >> 2));
}

} // namespace

size_t CompatCache::PairHash::operator()(const PairKey &K) const {
  return mix(mix(0, K.A), K.B);
}

size_t CompatCache::QuadHash::operator()(const QuadKey &K) const {
  return mix(mix(mix(mix(0, K.A1), K.P1), K.A2), K.P2);
}

template <typename Map, typename Key, typename Compute>
bool CompatCache::memo(Map CompatCache::*M, const Key &K, Compute &&Fn) {
  auto &Local = this->*M;
  if (auto It = Local.find(K); It != Local.end()) {
    ++S.Hits;
    return It->second;
  }
  for (const CompatCache *C = Base; C; C = C->Base) {
    const auto &Chained = C->*M;
    if (auto It = Chained.find(K); It != Chained.end()) {
      ++S.BaseHits;
      return It->second;
    }
  }
  bool Result = Fn();
  Local.emplace(K, Result);
  ++S.Misses;
  return Result;
}

bool CompatCache::unifiable2(const Type *A, const Type *B) {
  return memo(&CompatCache::PairMap, PairKey{A, B}, [&] {
    Substitution Probe;
    return unifiable(A, B, Probe);
  });
}

bool CompatCache::unifiableJoint(const Type *A1, const Type *P1,
                                 const Type *A2, const Type *P2) {
  return memo(&CompatCache::QuadMap, QuadKey{A1, P1, A2, P2}, [&] {
    Substitution Joint;
    return unifiable(A1, P1, Joint) && unifiable(A2, P2, Joint);
  });
}

bool CompatCache::subtype2(const Type *A, const Type *P) {
  return memo(&CompatCache::SubMap, PairKey{A, P}, [&] {
    Substitution Probe;
    return isSubtype(A, P, Probe);
  });
}
