//===--- TraitEnv.cpp - Trait implementation database ---------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/TraitEnv.h"

using namespace syrust::types;

namespace {
constexpr int MaxTraitDepth = 8;
} // namespace

bool TraitEnv::implements(const Type *T, const std::string &Trait) const {
  return implementsDepth(T, Trait, 0);
}

bool TraitEnv::implementsDepth(const Type *T, const std::string &Trait,
                               int Depth) const {
  if (Depth > MaxTraitDepth)
    return false;
  // References inherit a few marker traits structurally; everything else is
  // rule-driven. Shared references to any type are hashable/comparable etc.
  // only when their pointee is, which a rule with pattern &T can encode, so
  // no special casing here beyond the rules.
  for (const ImplRule &Rule : Rules) {
    if (Rule.Trait != Trait)
      continue;
    Substitution Subst;
    if (!isSubtype(T, Rule.Pattern, Subst))
      continue;
    bool ConditionsHold = true;
    for (const auto &[VarName, NeededTrait] : Rule.Where) {
      const Type *Bound = Subst.lookup(VarName);
      if (!Bound || !implementsDepth(Bound, NeededTrait, Depth + 1)) {
        ConditionsHold = false;
        break;
      }
    }
    if (ConditionsHold)
      return true;
  }
  return false;
}

bool TraitEnv::isCopy(const Type *T) const {
  switch (T->kind()) {
  case TypeKind::Prim:
    return true;
  case TypeKind::Ref:
    return T->isSharedRef();
  case TypeKind::Tuple: {
    for (const Type *E : T->args())
      if (!isCopy(E))
        return false;
    return true;
  }
  case TypeKind::Named:
    return implements(T, "Copy");
  case TypeKind::Var:
    return false; // Conservative: unknown instantiation.
  }
  return false;
}

void TraitEnv::addDefaultPrimImpls() {
  static const char *PrimNames[] = {"i8",   "i16",   "i32",   "i64",
                                    "u8",   "u16",   "u32",   "u64",
                                    "usize", "isize", "f32",   "f64",
                                    "bool", "char"};
  static const char *MarkerTraits[] = {"Copy", "Clone", "Default", "Debug"};
  for (const char *P : PrimNames) {
    const Type *Prim = Arena.prim(P);
    for (const char *Tr : MarkerTraits)
      addImpl(Tr, Prim);
    // Floats are not Eq/Ord/Hash in Rust.
    if (P[0] != 'f') {
      addImpl("Eq", Prim);
      addImpl("Ord", Prim);
      addImpl("Hash", Prim);
    }
  }
}
