//===--- Subtyping.cpp - Subtype matching and substitutions ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/Subtyping.h"

#include <cassert>

using namespace syrust::types;

namespace {

/// Structural match of \p Actual against \p Pattern. \p AllowCoercion
/// permits the top-level &mut-to-& subtyping step; inside generic arguments
/// Rust types are invariant, so recursion clears it.
bool matchImpl(const Type *Actual, const Type *Pattern, Substitution &Subst,
               bool AllowCoercion) {
  assert(Actual && Pattern && "match over null types");
  if (Actual == Pattern)
    return true;

  // A pattern variable matches anything (∀τ. τ ⊑ T), subject to consistency
  // with previous bindings of the same variable.
  if (Pattern->isVar())
    return Subst.bind(Pattern, Actual);

  if (Actual->kind() != Pattern->kind())
    return false;

  switch (Pattern->kind()) {
  case TypeKind::Prim:
    return Actual->name() == Pattern->name();
  case TypeKind::Var:
    return false; // Handled above; an actual Var never equals here.
  case TypeKind::Named: {
    if (Actual->name() != Pattern->name() ||
        Actual->args().size() != Pattern->args().size())
      return false;
    for (size_t I = 0; I < Actual->args().size(); ++I)
      if (!matchImpl(Actual->args()[I], Pattern->args()[I], Subst,
                     /*AllowCoercion=*/false))
        return false;
    return true;
  }
  case TypeKind::Ref: {
    // &mut τ ⊑ &τ at the top level only.
    if (Actual->isMutRef() != Pattern->isMutRef()) {
      if (!(AllowCoercion && Actual->isMutRef() && !Pattern->isMutRef()))
        return false;
    }
    return matchImpl(Actual->pointee(), Pattern->pointee(), Subst,
                     /*AllowCoercion=*/false);
  }
  case TypeKind::Tuple: {
    if (Actual->args().size() != Pattern->args().size())
      return false;
    for (size_t I = 0; I < Actual->args().size(); ++I)
      if (!matchImpl(Actual->args()[I], Pattern->args()[I], Subst,
                     /*AllowCoercion=*/false))
        return false;
    return true;
  }
  }
  return false;
}

} // namespace

bool syrust::types::isSubtype(const Type *Actual, const Type *Pattern,
                              Substitution &Subst) {
  return matchImpl(Actual, Pattern, Subst, /*AllowCoercion=*/true);
}

bool syrust::types::isSubtype(const Type *Actual, const Type *Pattern) {
  Substitution Subst;
  return isSubtype(Actual, Pattern, Subst);
}

bool syrust::types::matchCall(const std::vector<const Type *> &Actuals,
                              const std::vector<const Type *> &Patterns,
                              Substitution &SubstOut) {
  if (Actuals.size() != Patterns.size())
    return false;
  Substitution Subst;
  for (size_t I = 0; I < Actuals.size(); ++I)
    if (!isSubtype(Actuals[I], Patterns[I], Subst))
      return false;
  SubstOut = std::move(Subst);
  return true;
}

namespace {

bool unifyImpl(const Type *A, const Type *B, Substitution &Subst,
               bool AllowCoercion, int Depth) {
  if (Depth > 32)
    return false; // Defensive bound; the fragment has no infinite types.
  if (A == B)
    return true;
  // Resolve already-bound variables first.
  if (A->isVar()) {
    if (const Type *Bound = Subst.lookup(A))
      return Bound == A ||
             unifyImpl(Bound, B, Subst, AllowCoercion, Depth + 1);
    return Subst.bind(A, B);
  }
  if (B->isVar()) {
    if (const Type *Bound = Subst.lookup(B))
      return Bound == B ||
             unifyImpl(A, Bound, Subst, AllowCoercion, Depth + 1);
    return Subst.bind(B, A);
  }
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Prim:
    return A->name() == B->name();
  case TypeKind::Var:
    return false; // Unreachable: handled above.
  case TypeKind::Named: {
    if (A->name() != B->name() || A->args().size() != B->args().size())
      return false;
    for (size_t I = 0; I < A->args().size(); ++I)
      if (!unifyImpl(A->args()[I], B->args()[I], Subst,
                     /*AllowCoercion=*/false, Depth + 1))
        return false;
    return true;
  }
  case TypeKind::Ref: {
    if (A->isMutRef() != B->isMutRef() &&
        !(AllowCoercion && A->isMutRef() && !B->isMutRef()))
      return false;
    return unifyImpl(A->pointee(), B->pointee(), Subst,
                     /*AllowCoercion=*/false, Depth + 1);
  }
  case TypeKind::Tuple: {
    if (A->args().size() != B->args().size())
      return false;
    for (size_t I = 0; I < A->args().size(); ++I)
      if (!unifyImpl(A->args()[I], B->args()[I], Subst,
                     /*AllowCoercion=*/false, Depth + 1))
        return false;
    return true;
  }
  }
  return false;
}

} // namespace

bool syrust::types::unifiable(const Type *A, const Type *B,
                              Substitution &Subst) {
  return unifyImpl(A, B, Subst, /*AllowCoercion=*/true, 0);
}

const Type *syrust::types::renameVars(TypeArena &Arena, const Type *T,
                                      const std::string &Suffix) {
  switch (T->kind()) {
  case TypeKind::Var:
    return Arena.typeVar(T->name() + "#" + Suffix);
  case TypeKind::Prim:
    return T;
  case TypeKind::Named: {
    if (T->isConcrete())
      return T;
    std::vector<const Type *> Args;
    Args.reserve(T->args().size());
    for (const Type *Arg : T->args())
      Args.push_back(renameVars(Arena, Arg, Suffix));
    return Arena.named(T->name(), std::move(Args));
  }
  case TypeKind::Ref:
    if (T->isConcrete())
      return T;
    return Arena.ref(renameVars(Arena, T->pointee(), Suffix),
                     T->isMutRef());
  case TypeKind::Tuple: {
    if (T->isConcrete())
      return T;
    std::vector<const Type *> Elems;
    Elems.reserve(T->args().size());
    for (const Type *E : T->args())
      Elems.push_back(renameVars(Arena, E, Suffix));
    return Arena.tuple(std::move(Elems));
  }
  }
  return T;
}

const Type *syrust::types::applySubst(TypeArena &Arena, const Type *T,
                                      const Substitution &Subst) {
  switch (T->kind()) {
  case TypeKind::Prim:
    return T;
  case TypeKind::Var: {
    const Type *Bound = Subst.lookup(T);
    return Bound ? Bound : T;
  }
  case TypeKind::Named: {
    if (T->isConcrete())
      return T;
    std::vector<const Type *> Args;
    Args.reserve(T->args().size());
    for (const Type *Arg : T->args())
      Args.push_back(applySubst(Arena, Arg, Subst));
    return Arena.named(T->name(), std::move(Args));
  }
  case TypeKind::Ref:
    if (T->isConcrete())
      return T;
    return Arena.ref(applySubst(Arena, T->pointee(), Subst), T->isMutRef());
  case TypeKind::Tuple: {
    if (T->isConcrete())
      return T;
    std::vector<const Type *> Elems;
    Elems.reserve(T->args().size());
    for (const Type *E : T->args())
      Elems.push_back(applySubst(Arena, E, Subst));
    return Arena.tuple(std::move(Elems));
  }
  }
  return T;
}
