//===--- Subtyping.h - Subtype matching and substitutions ------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the subtype operator (⊑) of Definition 2 in the paper:
///
///   * reflexivity:              τ ⊑ τ
///   * reference mutability:     &mut τ ⊑ &τ       (top level only; generic
///                               parameters are invariant, as in Rust)
///   * polymorphism:             ∀τ. τ ⊑ T          (binding T := τ)
///
/// Matching an actual type against a (possibly polymorphic) signature type
/// produces a Substitution; the compatibleTypes check of Definition 2(3) is
/// "all arguments of one call match under a single joint substitution".
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_TYPES_SUBTYPING_H
#define SYRUST_TYPES_SUBTYPING_H

#include "types/Type.h"

#include <cassert>
#include <string>
#include <vector>

namespace syrust::types {

/// A binding of type variables to types. Stored as a small flat vector
/// keyed by the variables' dense per-arena indices (Type::varIndex()):
/// signatures bind a handful of variables at most, so a linear scan over
/// ints beats the name-keyed std::map this used to be - no tree walk, no
/// string hashing, no node allocation in the encoder's unifiability
/// probes, which run once per (candidate, slot) pair per encoding build.
class Substitution {
public:
  struct Entry {
    int Idx = -1;              ///< Var->varIndex(), the scan key.
    const Type *Var = nullptr; ///< The variable itself, for name lookups.
    const Type *Bound = nullptr;
  };

  /// Returns the binding of the interned variable \p Var, or nullptr when
  /// unbound. \p Var must come from the same arena chain as every other
  /// variable bound through this substitution.
  const Type *lookup(const Type *Var) const {
    assert(Var->isVar() && "substitution lookup on a non-variable");
    int Idx = Var->varIndex();
    for (const Entry &E : Entries)
      if (E.Idx == Idx)
        return E.Bound;
    return nullptr;
  }

  /// Name-keyed lookup for callers that only have the variable's spelling
  /// (trait-bound resolution, diagnostics). Cold path.
  const Type *lookup(const std::string &Name) const {
    for (const Entry &E : Entries)
      if (E.Var->name() == Name)
        return E.Bound;
    return nullptr;
  }

  /// Binds \p Var to \p T. Returns false - leaving the substitution
  /// unchanged - if \p Var is already bound to a different type. Bindings
  /// made before a failing bind always survive: isSubtype/unifiable extend
  /// one substitution across many slots and rely on this
  /// partial-extension-on-failure contract (callers copy when they need
  /// rollback).
  bool bind(const Type *Var, const Type *T) {
    assert(Var->isVar() && "substitution bind on a non-variable");
    int Idx = Var->varIndex();
    for (const Entry &E : Entries)
      if (E.Idx == Idx)
        return E.Bound == T;
    Entries.push_back(Entry{Idx, Var, T});
    return true;
  }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  /// The bindings in first-bound order.
  const std::vector<Entry> &entries() const { return Entries; }

private:
  std::vector<Entry> Entries;
};

/// Checks Actual ⊑ Pattern, extending \p Subst with any type-variable
/// bindings required. On failure \p Subst may be partially extended; use a
/// copy if rollback matters.
bool isSubtype(const Type *Actual, const Type *Pattern, Substitution &Subst);

/// Convenience wrapper with a throwaway substitution.
bool isSubtype(const Type *Actual, const Type *Pattern);

/// Checks that a whole argument vector matches a signature's input vector
/// under one joint substitution (the compatibleTypes condition). Returns
/// the substitution through \p SubstOut on success.
bool matchCall(const std::vector<const Type *> &Actuals,
               const std::vector<const Type *> &Patterns,
               Substitution &SubstOut);

/// Applies \p Subst to \p T, interning results in \p Arena. Unbound type
/// variables are left in place.
const Type *applySubst(TypeArena &Arena, const Type *T,
                       const Substitution &Subst);

/// Two-sided unification: type variables on EITHER side may bind (a
/// variable binds to the other side's type; two variables bind by name).
/// Mutability coercion is permitted at the top level, like isSubtype. The
/// synthesis encoder uses this optimistic relation - "could these types
/// match under some instantiation" - and lets the compiler reject bad
/// instantiations, which is what drives the refinement loop (Section 5).
bool unifiable(const Type *A, const Type *B, Substitution &Subst);

/// Renames every type variable "X" in \p T to "X#Suffix" so signatures
/// instantiated at different call sites cannot capture each other's
/// variables.
const Type *renameVars(TypeArena &Arena, const Type *T,
                       const std::string &Suffix);

} // namespace syrust::types

#endif // SYRUST_TYPES_SUBTYPING_H
