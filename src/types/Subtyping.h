//===--- Subtyping.h - Subtype matching and substitutions ------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the subtype operator (⊑) of Definition 2 in the paper:
///
///   * reflexivity:              τ ⊑ τ
///   * reference mutability:     &mut τ ⊑ &τ       (top level only; generic
///                               parameters are invariant, as in Rust)
///   * polymorphism:             ∀τ. τ ⊑ T          (binding T := τ)
///
/// Matching an actual type against a (possibly polymorphic) signature type
/// produces a Substitution; the compatibleTypes check of Definition 2(3) is
/// "all arguments of one call match under a single joint substitution".
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_TYPES_SUBTYPING_H
#define SYRUST_TYPES_SUBTYPING_H

#include "types/Type.h"

#include <map>
#include <string>
#include <vector>

namespace syrust::types {

/// A binding of type-variable names to types.
class Substitution {
public:
  /// Returns the binding of \p Name, or nullptr when unbound.
  const Type *lookup(const std::string &Name) const {
    auto It = Map.find(Name);
    return It == Map.end() ? nullptr : It->second;
  }

  /// Binds \p Name to \p T. Returns false if \p Name is already bound to a
  /// different type.
  bool bind(const std::string &Name, const Type *T) {
    auto [It, Inserted] = Map.emplace(Name, T);
    return Inserted || It->second == T;
  }

  bool empty() const { return Map.empty(); }
  size_t size() const { return Map.size(); }

  const std::map<std::string, const Type *> &bindings() const { return Map; }

private:
  std::map<std::string, const Type *> Map;
};

/// Checks Actual ⊑ Pattern, extending \p Subst with any type-variable
/// bindings required. On failure \p Subst may be partially extended; use a
/// copy if rollback matters.
bool isSubtype(const Type *Actual, const Type *Pattern, Substitution &Subst);

/// Convenience wrapper with a throwaway substitution.
bool isSubtype(const Type *Actual, const Type *Pattern);

/// Checks that a whole argument vector matches a signature's input vector
/// under one joint substitution (the compatibleTypes condition). Returns
/// the substitution through \p SubstOut on success.
bool matchCall(const std::vector<const Type *> &Actuals,
               const std::vector<const Type *> &Patterns,
               Substitution &SubstOut);

/// Applies \p Subst to \p T, interning results in \p Arena. Unbound type
/// variables are left in place.
const Type *applySubst(TypeArena &Arena, const Type *T,
                       const Substitution &Subst);

/// Two-sided unification: type variables on EITHER side may bind (a
/// variable binds to the other side's type; two variables bind by name).
/// Mutability coercion is permitted at the top level, like isSubtype. The
/// synthesis encoder uses this optimistic relation - "could these types
/// match under some instantiation" - and lets the compiler reject bad
/// instantiations, which is what drives the refinement loop (Section 5).
bool unifiable(const Type *A, const Type *B, Substitution &Subst);

/// Renames every type variable "X" in \p T to "X#Suffix" so signatures
/// instantiated at different call sites cannot capture each other's
/// variables.
const Type *renameVars(TypeArena &Arena, const Type *T,
                       const std::string &Suffix);

} // namespace syrust::types

#endif // SYRUST_TYPES_SUBTYPING_H
