//===--- Type.h - Interned Rust type representation ------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Rust type fragment SyRust reasons about: primitives, named (possibly
/// generic) nominal types, shared/mutable references, tuples, and type
/// variables. Types are immutable and interned in a TypeArena, so equality
/// is pointer equality and types can be used as map keys directly.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_TYPES_TYPE_H
#define SYRUST_TYPES_TYPE_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace syrust::types {

class TypeArena;

/// Discriminates the structural forms of a type.
enum class TypeKind : uint8_t {
  Prim,  ///< Built-in scalar: i32, usize, bool, char, f64, unit, ...
  Named, ///< Nominal type, possibly generic: String, Vec<T>, Option<i32>.
  Ref,   ///< Reference: &T or &mut T.
  Tuple, ///< Tuple: (A, B, C). The unit type is modeled as Prim "()".
  Var,   ///< A type variable from a polymorphic API signature.
};

/// An immutable, interned Rust type. Construct only through TypeArena.
class Type {
public:
  TypeKind kind() const { return Kind; }

  /// Name for Prim / Named / Var kinds ("i32", "Vec", "T").
  const std::string &name() const { return Name; }

  /// Generic arguments (Named) or element types (Tuple).
  const std::vector<const Type *> &args() const { return Args; }

  /// Referent of a Ref type.
  const Type *pointee() const { return Args.empty() ? nullptr : Args[0]; }

  /// True for &mut references.
  bool isMutRef() const { return Kind == TypeKind::Ref && MutRef; }

  /// True for shared (&) references.
  bool isSharedRef() const { return Kind == TypeKind::Ref && !MutRef; }

  bool isRef() const { return Kind == TypeKind::Ref; }
  bool isPrim() const { return Kind == TypeKind::Prim; }
  bool isVar() const { return Kind == TypeKind::Var; }
  bool isUnit() const { return Kind == TypeKind::Prim && Name == "()"; }

  /// True when no type variable occurs anywhere in the type.
  bool isConcrete() const { return Concrete; }

  /// Dense per-arena index of a Var type, assigned in first-intern order;
  /// -1 for every other kind. Substitution keys its flat entry vector on
  /// this, so the unifiability hot loop compares small ints instead of
  /// hashing variable names. Overlay arenas continue their base arena's
  /// sequence, keeping indices unique across a base/overlay chain.
  int varIndex() const { return VarIdx; }

  /// Canonical Rust-syntax rendering ("&mut Vec<String>").
  const std::string &str() const { return Rendered; }

  /// Collects the distinct type-variable names occurring in this type, in
  /// first-occurrence order.
  void collectVars(std::vector<std::string> &Out) const;

private:
  friend class TypeArena;
  Type() = default;

  TypeKind Kind = TypeKind::Prim;
  std::string Name;
  std::vector<const Type *> Args;
  bool MutRef = false;
  bool Concrete = true;
  int VarIdx = -1;
  std::string Rendered;
  std::string Key; ///< Kind-disambiguated structural intern key.
};

/// Tag selecting TypeArena's overlay constructor (and CrateInstance's
/// copy-on-write constructor, which is built on it).
struct OverlayTag {
  explicit OverlayTag() = default;
};
inline constexpr OverlayTag Overlay{};

/// Owns and interns Type instances. All types compared with each other must
/// come from the same arena - or from the same base/overlay chain: an
/// overlay arena resolves every intern against its (frozen) base first, so
/// types present in the base keep their pointer identity in the overlay.
class TypeArena {
public:
  TypeArena();

  /// Builds an overlay over \p Base: interning consults the base pool
  /// (read-only) before the local one, so base types resolve to the same
  /// pointers and only genuinely new types are owned locally. The shared
  /// per-crate analysis uses this to give every campaign worker a private
  /// copy-on-write arena over one immutable instantiation. \p Base must
  /// outlive the overlay and must not grow while overlays exist (the
  /// overlay continues the base's variable-index sequence and skips the
  /// base pool's synchronization entirely).
  TypeArena(const TypeArena &Base, OverlayTag);

  TypeArena(const TypeArena &) = delete;
  TypeArena &operator=(const TypeArena &) = delete;

  /// Interns a primitive type. \p Name must be one of the recognized
  /// primitive spellings (see isPrimName) or "()".
  const Type *prim(const std::string &Name);

  /// Interns a nominal type with generic arguments (empty for plain names).
  const Type *named(const std::string &Name,
                    std::vector<const Type *> Args = {});

  /// Interns &T (Mutable=false) or &mut T (Mutable=true).
  const Type *ref(const Type *Pointee, bool Mutable);

  /// Interns a tuple type; requires at least two elements (unit is prim,
  /// one-element tuples do not exist in this fragment).
  const Type *tuple(std::vector<const Type *> Elems);

  /// Interns a type variable.
  const Type *typeVar(const std::string &Name);

  /// The unit type "()".
  const Type *unit();

  /// True if \p Name spells a Rust primitive scalar type.
  static bool isPrimName(const std::string &Name);

  /// Number of distinct interned types, including the base chain's.
  size_t size() const {
    return Pool.size() + (Base ? Base->size() : 0);
  }

  /// Types owned by this arena alone (excludes the base chain).
  size_t localSize() const { return Pool.size(); }

private:
  const Type *intern(Type Proto);
  const Type *findKey(const std::string &Key) const;
  static std::string render(const Type &T);

  std::unordered_map<std::string, std::unique_ptr<Type>> Pool;
  const Type *Unit = nullptr;
  const TypeArena *Base = nullptr;
  /// Next Type::varIndex() to hand out; overlays resume the base's count.
  int NextVarIdx = 0;
};

} // namespace syrust::types

#endif // SYRUST_TYPES_TYPE_H
