//===--- TypeParser.h - Parse Rust type syntax -----------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual type syntax used by crate specifications and tests:
///
///   Type   := '&' 'mut'? Type | Name ('<' Type (',' Type)* '>')?
///           | '(' ')' | '(' Type (',' Type)+ ')'
///
/// Identifiers listed in the parser's type-variable set parse as type
/// variables; recognized primitive spellings parse as primitives; everything
/// else parses as a nominal type.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_TYPES_TYPEPARSER_H
#define SYRUST_TYPES_TYPEPARSER_H

#include "types/Type.h"

#include <set>
#include <string>
#include <string_view>

namespace syrust::types {

/// Recursive-descent parser for the type fragment.
class TypeParser {
public:
  /// \p Vars names the identifiers that should parse as type variables.
  TypeParser(TypeArena &Arena, std::set<std::string> Vars = {})
      : Arena(Arena), Vars(std::move(Vars)) {}

  /// Parses \p Text; returns nullptr (and records an error message) on
  /// malformed input or trailing garbage.
  const Type *parse(std::string_view Text);

  /// Human-readable description of the last parse failure.
  const std::string &error() const { return Error; }

private:
  const Type *parseType();
  std::string parseIdent();
  void skipSpace();
  bool consume(char C);
  bool peekIs(char C);
  void fail(const std::string &Message);

  TypeArena &Arena;
  std::set<std::string> Vars;
  std::string_view Input;
  size_t Pos = 0;
  std::string Error;
  bool Failed = false;
};

} // namespace syrust::types

#endif // SYRUST_TYPES_TYPEPARSER_H
