//===--- Type.cpp - Interned Rust type representation ---------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/Type.h"

#include <algorithm>
#include <cassert>

using namespace syrust::types;

void Type::collectVars(std::vector<std::string> &Out) const {
  if (Kind == TypeKind::Var) {
    if (std::find(Out.begin(), Out.end(), Name) == Out.end())
      Out.push_back(Name);
    return;
  }
  for (const Type *Arg : Args)
    Arg->collectVars(Out);
}

TypeArena::TypeArena() { Unit = prim("()"); }

TypeArena::TypeArena(const TypeArena &BaseArena, OverlayTag)
    : Base(&BaseArena), NextVarIdx(BaseArena.NextVarIdx) {
  Unit = prim("()"); // Resolves to the base arena's unit.
}

const Type *TypeArena::findKey(const std::string &Key) const {
  auto It = Pool.find(Key);
  if (It != Pool.end())
    return It->second.get();
  return Base ? Base->findKey(Key) : nullptr;
}

bool TypeArena::isPrimName(const std::string &Name) {
  static const char *Prims[] = {"i8",   "i16",  "i32",  "i64",  "i128",
                                "u8",   "u16",  "u32",  "u64",  "u128",
                                "usize", "isize", "f32", "f64",  "bool",
                                "char", "()"};
  for (const char *P : Prims)
    if (Name == P)
      return true;
  return false;
}

std::string TypeArena::render(const Type &T) {
  switch (T.kind()) {
  case TypeKind::Prim:
  case TypeKind::Var:
    return T.name();
  case TypeKind::Named: {
    if (T.args().empty())
      return T.name();
    std::string Out = T.name() + "<";
    for (size_t I = 0; I < T.args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += T.args()[I]->str();
    }
    Out += ">";
    return Out;
  }
  case TypeKind::Ref:
    return (T.isMutRef() ? "&mut " : "&") + T.pointee()->str();
  case TypeKind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I < T.args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += T.args()[I]->str();
    }
    Out += ")";
    return Out;
  }
  }
  return "<invalid>";
}

const Type *TypeArena::intern(Type Proto) {
  // The rendering alone is ambiguous (a Var "T" and a nominal "T" render
  // identically), so the intern key tags every node with its kind. Children
  // are already interned and carry their own keys.
  Proto.Rendered = render(Proto);
  Proto.Key =
      std::string(1, static_cast<char>('0' + static_cast<int>(Proto.Kind)));
  Proto.Key += Proto.Name;
  Proto.Key += Proto.MutRef ? 'm' : 's';
  Proto.Key += '(';
  for (const Type *Arg : Proto.Args) {
    Proto.Key += Arg->Key;
    Proto.Key += ',';
  }
  Proto.Key += ')';
  if (const Type *Existing = findKey(Proto.Key))
    return Existing;
  if (Proto.Kind == TypeKind::Var)
    Proto.VarIdx = NextVarIdx++;
  std::string Key = Proto.Key;
  auto Owned = std::make_unique<Type>(std::move(Proto));
  const Type *Raw = Owned.get();
  Pool.emplace(std::move(Key), std::move(Owned));
  return Raw;
}

const Type *TypeArena::prim(const std::string &Name) {
  assert(isPrimName(Name) && "unknown primitive type name");
  Type Proto;
  Proto.Kind = TypeKind::Prim;
  Proto.Name = Name;
  Proto.Concrete = true;
  return intern(std::move(Proto));
}

const Type *TypeArena::named(const std::string &Name,
                             std::vector<const Type *> Args) {
  assert(!isPrimName(Name) && "primitive spelled as a named type");
  Type Proto;
  Proto.Kind = TypeKind::Named;
  Proto.Name = Name;
  Proto.Concrete = true;
  for (const Type *Arg : Args)
    Proto.Concrete = Proto.Concrete && Arg->isConcrete();
  Proto.Args = std::move(Args);
  return intern(std::move(Proto));
}

const Type *TypeArena::ref(const Type *Pointee, bool Mutable) {
  assert(Pointee && "reference requires a pointee");
  Type Proto;
  Proto.Kind = TypeKind::Ref;
  Proto.MutRef = Mutable;
  Proto.Args = {Pointee};
  Proto.Concrete = Pointee->isConcrete();
  return intern(std::move(Proto));
}

const Type *TypeArena::tuple(std::vector<const Type *> Elems) {
  assert(Elems.size() >= 2 && "unit is prim; 1-tuples do not exist");
  Type Proto;
  Proto.Kind = TypeKind::Tuple;
  Proto.Concrete = true;
  for (const Type *E : Elems)
    Proto.Concrete = Proto.Concrete && E->isConcrete();
  Proto.Args = std::move(Elems);
  return intern(std::move(Proto));
}

const Type *TypeArena::typeVar(const std::string &Name) {
  Type Proto;
  Proto.Kind = TypeKind::Var;
  Proto.Name = Name;
  Proto.Concrete = false;
  return intern(std::move(Proto));
}

const Type *TypeArena::unit() { return Unit; }
