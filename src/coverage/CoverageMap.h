//===--- CoverageMap.h - Line and branch coverage tracking -----*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for grcov/lcov (Section 7.3): library models declare a line and
/// branch layout, interpreter semantics mark hits, and timed snapshots feed
/// the Figure 11 coverage table and its saturation analysis.
///
/// Layout convention: lines [0, ComponentLines) and branches
/// [0, ComponentBranches) belong to the component under test; the library
/// totals include them plus the rest of the crate (which synthesized tests
/// can only partially reach, mirroring the component-vs-library gap in the
/// paper).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_COVERAGE_COVERAGEMAP_H
#define SYRUST_COVERAGE_COVERAGEMAP_H

#include <cstddef>
#include <vector>

namespace syrust::coverage {

/// Coverage percentages for one scope.
struct CoverageNumbers {
  double ComponentLine = 0;
  double ComponentBranch = 0;
  double LibraryLine = 0;
  double LibraryBranch = 0;
};

/// A timed coverage snapshot (taken every 900 sim-seconds in the paper).
struct CoverageSnapshot {
  double AtSeconds = 0;
  CoverageNumbers Numbers;
};

/// Tracks line and branch hits over a declared layout.
class CoverageMap {
public:
  CoverageMap(int ComponentLines, int LibraryLines, int ComponentBranches,
              int LibraryBranches);

  /// Marks lines [Begin, End) covered.
  void coverLines(int Begin, int End);

  /// Marks one arm of a branch covered (each branch has two arms).
  void coverBranch(int Branch, bool Taken);

  CoverageNumbers numbers() const;

  /// Records a snapshot at simulated time \p AtSeconds.
  void snapshot(double AtSeconds);
  const std::vector<CoverageSnapshot> &snapshots() const { return Snaps; }

  /// Simulated time at which component line coverage stopped improving
  /// (the last snapshot that increased it); -1 with no snapshots.
  double saturationTime() const;

  int componentLines() const { return ComponentLineCount; }
  int libraryLines() const { return static_cast<int>(LineHit.size()); }

private:
  int ComponentLineCount;
  int ComponentBranchCount;
  std::vector<bool> LineHit;
  std::vector<bool> BranchArmHit; ///< 2 slots per branch.
  std::vector<CoverageSnapshot> Snaps;
};

} // namespace syrust::coverage

#endif // SYRUST_COVERAGE_COVERAGEMAP_H
