//===--- ApiPairCoverage.h - API-pair (dependency-edge) coverage -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The API analogue of a fuzzer's edge coverage: bitsets over the nodes
/// and edges of a crate's api::DependencyGraph, marked as the
/// synthesizer emits programs. A node is covered when an emitted
/// statement calls the API; an edge (A, B, j) is covered when some
/// emitted statement feeds the output of an earlier call to A into input
/// slot j of a call to B. Refined APIs (ApiSig::RefinedFrom) canonicalize
/// to their polymorphic originals, so run-time database growth never
/// escapes the frozen graph.
///
/// The data document is campaign-mergeable: totals plus bitsets OR
/// together commutatively, so the aggregate is byte-identical for any
/// worker count - the same contract as every other campaign aggregate.
/// Timed snapshots reuse the CoverageSnapshot cadence of the simulated
/// clock and stay per-run (they are scheduling-dependent across runs
/// only in the sense that each run owns its own clock; they are dropped
/// on merge).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_COVERAGE_APIPAIRCOVERAGE_H
#define SYRUST_COVERAGE_APIPAIRCOVERAGE_H

#include "api/DependencyGraph.h"
#include "program/Program.h"
#include "support/Json.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace syrust::coverage {

/// A timed saturation sample: how many graph nodes and edges were
/// covered at simulated time \c AtSeconds.
struct ApiCoverageSnapshot {
  double AtSeconds = 0;
  uint64_t NodesCovered = 0;
  uint64_t EdgesCovered = 0;
};

/// The serializable per-crate coverage state. Bitsets are LSB-first
/// bytes (bit i of byte i/8 is graph index i), sized from the totals.
struct ApiCoverageData {
  uint64_t NodesTotal = 0;
  uint64_t EdgesTotal = 0;
  std::vector<uint8_t> NodeBits;
  std::vector<uint8_t> EdgeBits;
  /// Realized edges that were not in the frozen graph (diagnostic; the
  /// subset property says this stays 0).
  uint64_t UnmatchedEdges = 0;
  /// Per-run only; dropped on merge.
  std::vector<ApiCoverageSnapshot> Snaps;
  /// Simulated time at which edge coverage stopped improving (same
  /// semantics as CoverageMap::saturationTime); -1 with no snapshots.
  double SaturationSeconds = -1;

  uint64_t nodesCovered() const;
  uint64_t edgesCovered() const;
  bool empty() const { return NodesTotal == 0 && EdgesTotal == 0; }

  /// ORs \p Other into this. A no-op when \p Other is empty; adopts
  /// \p Other's totals when this is empty. Totals of two non-empty
  /// documents for the same crate agree by construction (the graph is
  /// frozen); on a mismatch the larger document wins wholesale rather
  /// than corrupting bit offsets - that discards the smaller side's
  /// covered bits, so the conflict is warned to stderr and reported by
  /// returning true (callers surface it as the
  /// coverage.api.merge_conflicts counter). Returns false for every
  /// clean merge. Snapshots and saturation are dropped - only
  /// commutative state survives, keeping campaign aggregates
  /// byte-identical for any --jobs.
  bool mergeFrom(const ApiCoverageData &Other);
};

/// Marks the bitsets as programs are emitted. Construct per run from the
/// crate's frozen graph.
class ApiPairCoverage {
public:
  explicit ApiPairCoverage(const api::DependencyGraph &Graph);

  /// What one markProgram call newly covered.
  struct MarkDelta {
    uint64_t NewNodes = 0;
    uint64_t NewEdges = 0;
    uint64_t Unmatched = 0;
  };

  /// Walks \p P's dataflow: marks the (canonicalized) API of every
  /// statement as a covered node and every producer->consumer argument
  /// wiring as a covered edge. \p Db is the run's database (it may hold
  /// refined APIs beyond the graph; RefinedFrom chains resolve them).
  MarkDelta markProgram(const program::Program &P, const api::ApiDatabase &Db);

  /// Records a saturation sample at simulated time \p AtSeconds.
  void snapshot(double AtSeconds);

  /// The accumulated document, saturation computed from the snapshots.
  ApiCoverageData data() const;

private:
  const api::DependencyGraph &Graph;
  ApiCoverageData D;
};

/// Serializes \p D as the `api_coverage` JSON object (bitsets as
/// lowercase hex of the LSB-first bytes).
json::Value apiCoverageToJson(const ApiCoverageData &D);

/// Parses an `api_coverage` object produced by apiCoverageToJson.
/// Returns false and sets \p Err on malformed input.
bool apiCoverageFromJson(const json::Value &V, ApiCoverageData &Out,
                         std::string &Err);

/// The standalone coverage document (kind "coverage"): one entry per
/// crate, in the given order.
json::Value coverageDocumentToJson(
    const std::vector<std::pair<std::string, ApiCoverageData>> &Crates);

} // namespace syrust::coverage

#endif // SYRUST_COVERAGE_APIPAIRCOVERAGE_H
