//===--- ApiPairCoverage.cpp - API-pair (dependency-edge) coverage --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "coverage/ApiPairCoverage.h"

#include <bit>
#include <cstdio>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::coverage;
using namespace syrust::json;
using namespace syrust::program;

namespace {

uint64_t popcount(const std::vector<uint8_t> &Bits) {
  uint64_t N = 0;
  for (uint8_t B : Bits)
    N += static_cast<uint64_t>(std::popcount(B));
  return N;
}

/// Sets bit \p I; returns true when it was previously clear.
bool setBit(std::vector<uint8_t> &Bits, uint64_t I) {
  uint8_t &Byte = Bits[I / 8];
  const uint8_t Mask = static_cast<uint8_t>(1u << (I % 8));
  if (Byte & Mask)
    return false;
  Byte |= Mask;
  return true;
}

/// Follows the RefinedFrom chain to the polymorphic original - the node
/// id in the frozen graph. Refined APIs always point (transitively) at a
/// base-database id.
ApiId canonicalApi(const ApiDatabase &Db, ApiId Id) {
  while (Id != ApiIdInvalid && Db.get(Id).RefinedFrom != ApiIdInvalid)
    Id = Db.get(Id).RefinedFrom;
  return Id;
}

std::string bitsToHex(const std::vector<uint8_t> &Bits) {
  static const char *Digits = "0123456789abcdef";
  std::string Hex;
  Hex.reserve(Bits.size() * 2);
  for (uint8_t B : Bits) {
    Hex.push_back(Digits[B >> 4]);
    Hex.push_back(Digits[B & 0xf]);
  }
  return Hex;
}

bool hexToBits(const std::string &Hex, size_t WantBytes,
               std::vector<uint8_t> &Out) {
  if (Hex.size() != WantBytes * 2)
    return false;
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    return -1;
  };
  Out.assign(WantBytes, 0);
  for (size_t I = 0; I < WantBytes; ++I) {
    int Hi = Nibble(Hex[2 * I]), Lo = Nibble(Hex[2 * I + 1]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out[I] = static_cast<uint8_t>((Hi << 4) | Lo);
  }
  return true;
}

} // namespace

uint64_t ApiCoverageData::nodesCovered() const { return popcount(NodeBits); }
uint64_t ApiCoverageData::edgesCovered() const { return popcount(EdgeBits); }

bool ApiCoverageData::mergeFrom(const ApiCoverageData &Other) {
  if (Other.empty())
    return false;
  if (empty() || NodesTotal != Other.NodesTotal ||
      EdgesTotal != Other.EdgesTotal) {
    // Adopt wholesale: either this side is empty, or the documents come
    // from different graphs and ORing byte-by-byte would scramble bit
    // offsets. Keep whichever covers the larger graph. Two non-empty
    // documents disagreeing is a genuine conflict - the smaller side's
    // covered bits are discarded, which must not happen silently.
    const bool Conflict = !empty();
    if (Conflict)
      std::fprintf(stderr,
                   "warning: api_coverage merge conflict: totals "
                   "%llu/%llu vs %llu/%llu nodes/edges; keeping the "
                   "larger graph, dropping the other document's bits\n",
                   static_cast<unsigned long long>(NodesTotal),
                   static_cast<unsigned long long>(EdgesTotal),
                   static_cast<unsigned long long>(Other.NodesTotal),
                   static_cast<unsigned long long>(Other.EdgesTotal));
    if (empty() || Other.EdgesTotal > EdgesTotal) {
      const uint64_t Unmatched = UnmatchedEdges;
      *this = Other;
      UnmatchedEdges += Unmatched;
      Snaps.clear();
      SaturationSeconds = -1;
    } else {
      UnmatchedEdges += Other.UnmatchedEdges;
      Snaps.clear();
      SaturationSeconds = -1;
    }
    return Conflict;
  }
  for (size_t I = 0; I < NodeBits.size(); ++I)
    NodeBits[I] |= Other.NodeBits[I];
  for (size_t I = 0; I < EdgeBits.size(); ++I)
    EdgeBits[I] |= Other.EdgeBits[I];
  UnmatchedEdges += Other.UnmatchedEdges;
  Snaps.clear();
  SaturationSeconds = -1;
  return false;
}

ApiPairCoverage::ApiPairCoverage(const DependencyGraph &Graph) : Graph(Graph) {
  D.NodesTotal = Graph.numNodes();
  D.EdgesTotal = Graph.numEdges();
  D.NodeBits.assign((D.NodesTotal + 7) / 8, 0);
  D.EdgeBits.assign((D.EdgesTotal + 7) / 8, 0);
}

ApiPairCoverage::MarkDelta
ApiPairCoverage::markProgram(const Program &P, const ApiDatabase &Db) {
  MarkDelta Delta;
  const int NumInputs = static_cast<int>(P.Inputs.size());
  for (size_t S = 0; S < P.Stmts.size(); ++S) {
    const Stmt &St = P.Stmts[S];
    const ApiId Consumer = canonicalApi(Db, St.Api);
    if (Consumer < 0 || static_cast<uint64_t>(Consumer) >= D.NodesTotal) {
      ++Delta.Unmatched;
      continue;
    }
    if (setBit(D.NodeBits, static_cast<uint64_t>(Consumer)))
      ++Delta.NewNodes;
    for (size_t J = 0; J < St.Args.size(); ++J) {
      const VarId Arg = St.Args[J];
      if (Arg < NumInputs)
        continue; // Template input, not a producer/consumer edge.
      const Stmt &ProducerStmt = P.Stmts[static_cast<size_t>(Arg - NumInputs)];
      const ApiId Producer = canonicalApi(Db, ProducerStmt.Api);
      const int Idx =
          Producer < 0
              ? -1
              : Graph.edgeIndex(Producer, Consumer, static_cast<int>(J));
      if (Idx < 0) {
        ++Delta.Unmatched;
        continue;
      }
      if (setBit(D.EdgeBits, static_cast<uint64_t>(Idx)))
        ++Delta.NewEdges;
    }
  }
  D.UnmatchedEdges += Delta.Unmatched;
  return Delta;
}

void ApiPairCoverage::snapshot(double AtSeconds) {
  ApiCoverageSnapshot S;
  S.AtSeconds = AtSeconds;
  S.NodesCovered = D.nodesCovered();
  S.EdgesCovered = D.edgesCovered();
  D.Snaps.push_back(S);
}

ApiCoverageData ApiPairCoverage::data() const {
  ApiCoverageData Out = D;
  // Same semantics as CoverageMap::saturationTime, over edge counts.
  if (Out.Snaps.empty()) {
    Out.SaturationSeconds = -1;
    return Out;
  }
  // Start from the "never improved" sentinel, not the first snapshot's
  // timestamp: a run that covered zero edges must report -1, not the
  // time of its first (empty) sample - downstream merges and reports
  // treat any non-negative value as a real saturation instant.
  double Saturation = -1;
  uint64_t Best = 0;
  for (const ApiCoverageSnapshot &S : Out.Snaps) {
    if (S.EdgesCovered > Best) {
      Best = S.EdgesCovered;
      Saturation = S.AtSeconds;
    }
  }
  Out.SaturationSeconds = Saturation;
  return Out;
}

Value syrust::coverage::apiCoverageToJson(const ApiCoverageData &D) {
  Value V = Value::object();
  V.set("nodes_total", Value::integer(static_cast<int64_t>(D.NodesTotal)));
  V.set("nodes_covered",
        Value::integer(static_cast<int64_t>(D.nodesCovered())));
  V.set("edges_total", Value::integer(static_cast<int64_t>(D.EdgesTotal)));
  V.set("edges_covered",
        Value::integer(static_cast<int64_t>(D.edgesCovered())));
  V.set("node_bits", Value::string(bitsToHex(D.NodeBits)));
  V.set("edge_bits", Value::string(bitsToHex(D.EdgeBits)));
  V.set("unmatched_edges",
        Value::integer(static_cast<int64_t>(D.UnmatchedEdges)));
  V.set("saturation_seconds", Value::number(D.SaturationSeconds));
  Value Snaps = Value::array();
  for (const ApiCoverageSnapshot &S : D.Snaps) {
    Value E = Value::object();
    E.set("t", Value::number(S.AtSeconds));
    E.set("nodes", Value::integer(static_cast<int64_t>(S.NodesCovered)));
    E.set("edges", Value::integer(static_cast<int64_t>(S.EdgesCovered)));
    Snaps.push(std::move(E));
  }
  V.set("snapshots", std::move(Snaps));
  return V;
}

bool syrust::coverage::apiCoverageFromJson(const Value &V,
                                           ApiCoverageData &Out,
                                           std::string &Err) {
  if (V.kind() != Value::Kind::Object) {
    Err = "api_coverage is not an object";
    return false;
  }
  for (const char *Key : {"nodes_total", "edges_total", "node_bits",
                          "edge_bits", "unmatched_edges"})
    if (!V.has(Key)) {
      Err = std::string("api_coverage missing '") + Key + "'";
      return false;
    }
  Out = ApiCoverageData();
  Out.NodesTotal = static_cast<uint64_t>(V.get("nodes_total").asInt());
  Out.EdgesTotal = static_cast<uint64_t>(V.get("edges_total").asInt());
  Out.UnmatchedEdges = static_cast<uint64_t>(V.get("unmatched_edges").asInt());
  if (V.has("saturation_seconds"))
    Out.SaturationSeconds = V.get("saturation_seconds").asDouble();
  if (!hexToBits(V.get("node_bits").asString(), (Out.NodesTotal + 7) / 8,
                 Out.NodeBits)) {
    Err = "api_coverage node_bits does not match nodes_total";
    return false;
  }
  if (!hexToBits(V.get("edge_bits").asString(), (Out.EdgesTotal + 7) / 8,
                 Out.EdgeBits)) {
    Err = "api_coverage edge_bits does not match edges_total";
    return false;
  }
  const Value &Snaps = V.get("snapshots");
  for (size_t I = 0; I < Snaps.size(); ++I) {
    const Value &E = Snaps.at(I);
    ApiCoverageSnapshot S;
    S.AtSeconds = E.get("t").asDouble();
    S.NodesCovered = static_cast<uint64_t>(E.get("nodes").asInt());
    S.EdgesCovered = static_cast<uint64_t>(E.get("edges").asInt());
    Out.Snaps.push_back(S);
  }
  return true;
}

Value syrust::coverage::coverageDocumentToJson(
    const std::vector<std::pair<std::string, ApiCoverageData>> &Crates) {
  Value Doc = Value::object();
  // Version history: 2 run, 3 campaign, 4 audit; 5 adds api_coverage
  // everywhere and introduces this standalone kind.
  Doc.set("schema_version", Value::integer(5));
  Doc.set("kind", Value::string("coverage"));
  Value Arr = Value::array();
  for (const auto &[Crate, Data] : Crates) {
    Value E = Value::object();
    E.set("crate", Value::string(Crate));
    E.set("api_coverage", apiCoverageToJson(Data));
    Arr.push(std::move(E));
  }
  Doc.set("crates", std::move(Arr));
  return Doc;
}
