//===--- CoverageMap.cpp - Line and branch coverage tracking --------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "coverage/CoverageMap.h"

#include <algorithm>
#include <cassert>

using namespace syrust::coverage;

CoverageMap::CoverageMap(int ComponentLines, int LibraryLines,
                         int ComponentBranches, int LibraryBranches)
    : ComponentLineCount(ComponentLines),
      ComponentBranchCount(ComponentBranches) {
  assert(ComponentLines <= LibraryLines &&
         "component is a subset of the library");
  assert(ComponentBranches <= LibraryBranches &&
         "component is a subset of the library");
  LineHit.assign(static_cast<size_t>(LibraryLines), false);
  BranchArmHit.assign(static_cast<size_t>(LibraryBranches) * 2, false);
}

void CoverageMap::coverLines(int Begin, int End) {
  Begin = std::max(Begin, 0);
  End = std::min(End, static_cast<int>(LineHit.size()));
  for (int L = Begin; L < End; ++L)
    LineHit[static_cast<size_t>(L)] = true;
}

void CoverageMap::coverBranch(int Branch, bool Taken) {
  size_t Arm = static_cast<size_t>(Branch) * 2 + (Taken ? 1 : 0);
  if (Arm < BranchArmHit.size())
    BranchArmHit[Arm] = true;
}

CoverageNumbers CoverageMap::numbers() const {
  auto Ratio = [](size_t Hits, size_t Total) {
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(Hits) /
                            static_cast<double>(Total);
  };
  size_t CompLineHits = 0, LibLineHits = 0;
  for (size_t L = 0; L < LineHit.size(); ++L) {
    if (!LineHit[L])
      continue;
    ++LibLineHits;
    if (L < static_cast<size_t>(ComponentLineCount))
      ++CompLineHits;
  }
  size_t CompArmHits = 0, LibArmHits = 0;
  for (size_t A = 0; A < BranchArmHit.size(); ++A) {
    if (!BranchArmHit[A])
      continue;
    ++LibArmHits;
    if (A < static_cast<size_t>(ComponentBranchCount) * 2)
      ++CompArmHits;
  }
  CoverageNumbers N;
  N.ComponentLine =
      Ratio(CompLineHits, static_cast<size_t>(ComponentLineCount));
  N.LibraryLine = Ratio(LibLineHits, LineHit.size());
  N.ComponentBranch =
      Ratio(CompArmHits, static_cast<size_t>(ComponentBranchCount) * 2);
  N.LibraryBranch = Ratio(LibArmHits, BranchArmHit.size());
  return N;
}

void CoverageMap::snapshot(double AtSeconds) {
  Snaps.push_back(CoverageSnapshot{AtSeconds, numbers()});
}

double CoverageMap::saturationTime() const {
  if (Snaps.empty())
    return -1;
  double Saturation = Snaps.front().AtSeconds;
  double Best = Snaps.front().Numbers.ComponentLine;
  for (const CoverageSnapshot &S : Snaps) {
    if (S.Numbers.ComponentLine > Best + 1e-9) {
      Best = S.Numbers.ComponentLine;
      Saturation = S.AtSeconds;
    }
  }
  return Saturation;
}
