//===--- ResultDatabase.h - Algorithm 1's program/result store -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 line 12: "DB <- DB u R" - every synthesized program and its
/// executor verdict is recorded. The driver keeps aggregate counters
/// regardless; this store optionally retains the per-test records (up to a
/// cap) for inspection, regression diffing, and the CLI's `--log-tests`.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CORE_RESULTDATABASE_H
#define SYRUST_CORE_RESULTDATABASE_H

#include "miri/Heap.h"
#include "rustsim/Diagnostic.h"

#include <cstdint>
#include <string>
#include <vector>

namespace syrust::core {

/// Verdict of one test case.
enum class TestVerdict : uint8_t {
  Rejected, ///< Compiler error.
  Passed,   ///< Compiled and ran without UB.
  Ub,       ///< Compiled and Miri flagged undefined behavior.
};

/// One Algorithm 1 DB record.
struct TestRecord {
  uint64_t Hash = 0;           ///< Program::hash().
  int Lines = 0;
  double AtSeconds = 0;        ///< Simulated time of the verdict.
  TestVerdict Verdict = TestVerdict::Passed;
  rustsim::ErrorDetail Detail = rustsim::ErrorDetail::None; ///< Rejected.
  miri::UbKind Ub = miri::UbKind::None;                     ///< Ub.
  std::string Source;          ///< Rendered program.
  std::string Message;         ///< Diagnostic / UB message.
};

/// Bounded store of per-test records plus lookup helpers.
class ResultDatabase {
public:
  /// \p Cap bounds retained records (0 disables retention; counters still
  /// advance).
  explicit ResultDatabase(size_t Cap = 0) : Cap(Cap) {}

  void record(TestRecord R) {
    ++Totals[static_cast<size_t>(R.Verdict)];
    if (Records.size() < Cap)
      Records.push_back(std::move(R));
  }

  const std::vector<TestRecord> &records() const { return Records; }

  /// True while the cap has room; callers can skip rendering sources for
  /// records that would be dropped anyway.
  bool wantsMore() const { return Records.size() < Cap; }

  uint64_t count(TestVerdict V) const {
    return Totals[static_cast<size_t>(V)];
  }
  uint64_t total() const {
    return Totals[0] + Totals[1] + Totals[2];
  }

  /// First retained record with the given verdict; nullptr if none.
  const TestRecord *firstWith(TestVerdict V) const {
    for (const TestRecord &R : Records)
      if (R.Verdict == V)
        return &R;
    return nullptr;
  }

  /// True when a retained record has this program hash (deduplication
  /// check used by tests).
  bool contains(uint64_t Hash) const {
    for (const TestRecord &R : Records)
      if (R.Hash == Hash)
        return true;
    return false;
  }

private:
  size_t Cap;
  std::vector<TestRecord> Records;
  uint64_t Totals[3] = {0, 0, 0};
};

} // namespace syrust::core

#endif // SYRUST_CORE_RESULTDATABASE_H
