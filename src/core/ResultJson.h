//===--- ResultJson.h - RunResult JSON export ------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a RunResult to JSON for downstream tooling (plotting the
/// Figure 9/10 curves, archiving bug reports, regression-diffing runs).
/// Used by the CLI's `--json` flag.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CORE_RESULTJSON_H
#define SYRUST_CORE_RESULTJSON_H

#include "core/SyRustDriver.h"
#include "support/Json.h"

namespace syrust::core {

/// Full structured dump: counters, per-category/per-detail breakdowns,
/// the error-rate curve, coverage snapshots, and the bug report.
json::Value resultToJson(const RunResult &R);

} // namespace syrust::core

#endif // SYRUST_CORE_RESULTJSON_H
