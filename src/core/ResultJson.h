//===--- ResultJson.h - RunResult JSON export ------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a RunResult to JSON for downstream tooling (plotting the
/// Figure 9/10 curves, archiving bug reports, regression-diffing runs).
/// Used by the CLI's `--json` flag.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CORE_RESULTJSON_H
#define SYRUST_CORE_RESULTJSON_H

#include "core/SyRustDriver.h"
#include "support/Json.h"

namespace syrust::core {

/// Controls which fields resultToJson emits.
struct ResultJsonOptions {
  /// Emit the host wall-time measurements (build_wall_seconds,
  /// solve_wall_seconds). They depend on machine load and scheduling, so
  /// campaign aggregates exclude them to stay byte-identical for any
  /// pool width; the single-run document keeps them as diagnostics.
  bool HostWallTime = true;
};

/// Full structured dump: counters, per-category/per-detail breakdowns,
/// the error-rate curve, coverage snapshots, and the bug report.
json::Value resultToJson(const RunResult &R,
                         const ResultJsonOptions &Opts = ResultJsonOptions());

/// The inverse of resultToJson: rebuilds a RunResult from its document.
/// Round-trip faithful for every serialized field — re-serializing the
/// parsed result (with the same options) reproduces the document byte
/// for byte, which is what lets campaign checkpoints store finished
/// cells as documents and resumed aggregates stay byte-identical to
/// uninterrupted ones (campaign/Checkpoint.h). Fields the document does
/// not carry (the per-test record database) stay default. Returns false
/// and sets \p Err with the offending field on malformed input.
bool resultFromJson(const json::Value &V, RunResult &Out,
                    std::string &Err);

/// Canonical full-field serialization of a RunConfig, used to fingerprint
/// campaign/serve request specs (checkpoint compatibility, request
/// dedup). Every field participates, so two configs hash equal iff every
/// knob matches; key order is the writer's sorted-map order, so the
/// rendering is canonical.
json::Value runConfigToJson(const RunConfig &C);

} // namespace syrust::core

#endif // SYRUST_CORE_RESULTJSON_H
