//===--- BugMinimizer.h - Shrink bug-inducing test cases -------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7 reports the *minimum* number of lines needed to induce each
/// bug; the synthesizer often finds a longer program first. This
/// delta-debugging-style minimizer greedily removes statements while the
/// program still compiles and still reproduces the same undefined
/// behavior, giving the per-bug "min lines" column mechanically.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CORE_BUGMINIMIZER_H
#define SYRUST_CORE_BUGMINIMIZER_H

#include "crates/CrateSpec.h"
#include "program/Program.h"

namespace syrust::core {

/// Result of a minimization pass.
struct MinimizedBug {
  program::Program Program;
  int Lines = 0;
  miri::UbKind Kind = miri::UbKind::None;
};

/// Greedily removes statements from \p P (a program known to exhibit
/// \p Kind under \p Inst's model) while the rustsim checker still accepts
/// the program and the interpreter still reports the same UB kind.
/// Deterministic; runs to a fixpoint.
MinimizedBug minimizeBugProgram(crates::CrateInstance &Inst,
                                const program::Program &P,
                                miri::UbKind Kind, uint64_t Seed = 1);

} // namespace syrust::core

#endif // SYRUST_CORE_BUGMINIMIZER_H
