//===--- CrateAnalysis.h - Shared per-crate analysis -----------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One immutable instantiation of a library model, computed once per
/// crate and shared read-only across every run and campaign worker that
/// targets it. A campaign matrix typically multiplies one crate by many
/// (seed, variant) jobs, and before this existed each job re-ran
/// CrateSpec::instantiate() and re-answered the encoder's entire
/// pairwise-compatibility workload from scratch - the dominant redundant
/// work at campaign scale.
///
/// The analysis owns:
///   * the base CrateInstance (arena, trait rules, API database,
///     semantics), frozen after construction;
///   * the renamed per-API signatures the encoder will request
///     (renameVars with the same "a<ApiId>" suffix Encoding::sync uses),
///     interned into the base arena so every worker's renames resolve to
///     identical pointers;
///   * a precomputed CompatCache holding the slot-pairwise compatibility
///     matrix over the initial signatures - both the per-slot
///     "can this value feed this input" probes and the joint two-slot
///     probes of Definition 2(3).
///
/// Workers call makeWorkerInstance() for a private copy-on-write overlay
/// (chained arena, copied database/traits/semantics) and chain a private
/// CompatCache onto baseCache(): probes over base types hit the shared
/// matrix; probes involving refinement-added instances are computed and
/// stored per worker. Determinism: the base is immutable at run time and
/// each worker's probe sequence depends only on its own (crate, seed,
/// variant) job, so per-job cache counters - and therefore the summed
/// campaign aggregates - are byte-identical for any --jobs count.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CORE_CRATEANALYSIS_H
#define SYRUST_CORE_CRATEANALYSIS_H

#include "api/DependencyGraph.h"
#include "crates/CrateSpec.h"
#include "types/CompatCache.h"

#include <memory>

namespace syrust::core {

/// Immutable shared analysis for one crate. See file comment.
class CrateAnalysis {
public:
  /// Instantiates \p Spec once and precomputes the compatibility matrix.
  /// The spec must outlive the analysis (it holds no reference, but the
  /// semantics lambdas may).
  explicit CrateAnalysis(const crates::CrateSpec &Spec);

  CrateAnalysis(const CrateAnalysis &) = delete;
  CrateAnalysis &operator=(const CrateAnalysis &) = delete;

  /// The frozen base instance. Never hand this to a driver directly -
  /// runs mutate their instance (API bans, refinement); use
  /// makeWorkerInstance().
  const crates::CrateInstance &base() const { return *Base; }

  /// The precomputed compatibility matrix. Chain a per-run CompatCache
  /// onto this; never write to it.
  const types::CompatCache &baseCache() const { return BaseCache; }

  /// A private copy-on-write overlay instance for one run: chained
  /// arena, copied API database / trait rules / semantics. Cheap next to
  /// instantiate() - no model rebuild, no re-interning.
  std::unique_ptr<crates::CrateInstance> makeWorkerInstance() const;

  /// Entries in the precomputed matrix (observability and tests).
  size_t matrixEntries() const { return BaseCache.size(); }

  /// The frozen producer/consumer graph over the base database, derived
  /// from the per-slot matrix (the probes are pure cache hits - zero
  /// extra unification work). Shared read-only by every worker's
  /// coverage::ApiPairCoverage.
  const api::DependencyGraph &graph() const { return Graph; }

private:
  std::unique_ptr<crates::CrateInstance> Base;
  types::CompatCache BaseCache;
  api::DependencyGraph Graph;
};

} // namespace syrust::core

#endif // SYRUST_CORE_CRATEANALYSIS_H
