//===--- BugMinimizer.cpp - Shrink bug-inducing test cases ----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BugMinimizer.h"

#include "miri/Interpreter.h"
#include "rustsim/Checker.h"

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::program;

MinimizedBug syrust::core::minimizeBugProgram(CrateInstance &Inst,
                                              const Program &P,
                                              UbKind Kind,
                                              uint64_t Seed) {
  rustsim::Checker Check(Inst.Arena, Inst.Traits);
  auto Reproduces = [&](const Program &Candidate) {
    if (!Check.check(Candidate, Inst.Db).Success)
      return false;
    Interpreter Interp(Inst.Db, Inst.Traits, Inst.Registry, Inst.Init,
                       /*Cov=*/nullptr, Seed);
    ExecResult R = Interp.run(Candidate);
    return R.UbFound && R.Report.Kind == Kind;
  };

  MinimizedBug Result;
  Result.Program = P;
  Result.Kind = Kind;

  bool Progress = true;
  while (Progress) {
    Progress = false;
    // Try dropping statements from the back (later statements are least
    // likely to feed the bug's data flow).
    for (size_t I = Result.Program.Stmts.size(); I-- > 0;) {
      Program Candidate;
      if (!removeStatement(Result.Program, I, Candidate))
        continue;
      if (!Reproduces(Candidate))
        continue;
      Result.Program = std::move(Candidate);
      Progress = true;
      break; // Restart: indices shifted.
    }
  }
  Result.Lines = static_cast<int>(Result.Program.Stmts.size());
  return Result;
}
