//===--- Session.h - Driver-layer facade -----------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point to the driver layer. A Session owns the shared
/// immutable state every run consumes — today the crate registry, forced
/// to initialize eagerly so worker threads never race its lazy
/// construction — and exposes one `runOne()` used by the CLI, every
/// evaluation bench, and the campaign engine's workers alike. Having a
/// single entry point means single-run and campaign paths cannot drift:
/// both validate the RunConfig the same way and drive the same
/// SyRustDriver.
///
/// Sessions are cheap (the registry is process-global and const) and
/// safe to share across threads: every method is const and all mutable
/// run state lives inside the per-call SyRustDriver.
///
/// The Session additionally owns the lazily-built shared per-crate
/// analyses (one immutable instantiation + precomputed compatibility
/// matrix per crate, see CrateAnalysis.h): the first run against a crate
/// builds its analysis under a lock, every later run - including all
/// campaign workers, which share one Session - reuses it read-only
/// through a copy-on-write overlay instance.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CORE_SESSION_H
#define SYRUST_CORE_SESSION_H

#include "core/SyRustDriver.h"
#include "crates/CrateRegistry.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace syrust::core {

/// Facade over the crate registry + driver. See file comment.
class Session {
public:
  /// Snapshots the registry (completing its thread-safe lazy init on
  /// this thread, before any worker can touch it).
  Session();

  /// All library models, in Figure 12 order.
  const std::vector<crates::CrateSpec> &crates() const { return *Crates; }

  /// Finds a model by crate name; nullptr when unknown.
  const crates::CrateSpec *find(const std::string &Name) const;

  /// Names of every model that supports synthesis (the `--crates all`
  /// expansion), in Figure 12 order.
  std::vector<std::string> supportedCrates() const;

  /// Validates \p Config and runs the full pipeline for \p Spec,
  /// threading the optional flight recorder through every layer. An
  /// invalid configuration is reported on stderr and yields an
  /// unsupported RunResult instead of a silently misbehaving run; call
  /// RunConfig::validate() first to handle errors yourself.
  RunResult runOne(const crates::CrateSpec &Spec, RunConfig Config,
                   obs::Recorder *Obs = nullptr) const;

  /// Name-keyed convenience overload; an unknown crate is reported on
  /// stderr and yields an unsupported RunResult.
  RunResult runOne(const std::string &CrateName, RunConfig Config,
                   obs::Recorder *Obs = nullptr) const;

  /// The shared analysis for \p Spec, built on first request (thread
  /// safe; later requests reuse it). runOne() calls this for every
  /// cache-enabled run; exposed so tests and benches can inspect the
  /// shared state directly.
  std::shared_ptr<const CrateAnalysis>
  analysisFor(const crates::CrateSpec &Spec) const;

  /// Warm-analysis accounting: how many analysisFor() calls paid the
  /// one-off instantiation + matrix precompute (Builds) versus reused a
  /// live one (Hits). The serve daemon's whole value proposition is
  /// driving Hits/(Hits+Builds) toward 1 across requests; it exports
  /// these as the serve.warm.* gauges (docs/OBSERVABILITY.md).
  struct AnalysisStats {
    uint64_t Builds = 0;
    uint64_t Hits = 0;
  };
  AnalysisStats analysisStats() const;

private:
  const std::vector<crates::CrateSpec> *Crates;
  /// Lazily-built per-crate analyses, keyed by spec identity (the
  /// registry is process-global and immutable, so spec pointers are
  /// stable). Guarded by AnalysesMu; the analyses themselves are
  /// immutable once constructed and shared read-only.
  mutable std::mutex AnalysesMu;
  mutable std::map<const crates::CrateSpec *,
                   std::shared_ptr<const CrateAnalysis>>
      Analyses;
  /// Guarded by AnalysesMu (analysisFor holds it anyway).
  mutable AnalysisStats Stats;
};

} // namespace syrust::core

#endif // SYRUST_CORE_SESSION_H
