//===--- Session.cpp - Driver-layer facade --------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"

#include <cstdio>
#include <utility>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;

Session::Session() : Crates(&allCrates()) {}

const CrateSpec *Session::find(const std::string &Name) const {
  for (const CrateSpec &Spec : *Crates)
    if (Spec.Info.Name == Name)
      return &Spec;
  return nullptr;
}

std::vector<std::string> Session::supportedCrates() const {
  std::vector<std::string> Names;
  for (const CrateSpec &Spec : *Crates)
    if (Spec.Info.SupportsSynthesis)
      Names.push_back(Spec.Info.Name);
  return Names;
}

std::shared_ptr<const CrateAnalysis>
Session::analysisFor(const CrateSpec &Spec) const {
  // Built under the lock: the first toucher pays the instantiation +
  // matrix precompute once, concurrent workers for the same crate wait
  // and then share the result instead of duplicating the work.
  std::lock_guard<std::mutex> Lock(AnalysesMu);
  std::shared_ptr<const CrateAnalysis> &Slot = Analyses[&Spec];
  if (!Slot) {
    Slot = std::make_shared<const CrateAnalysis>(Spec);
    ++Stats.Builds;
  } else {
    ++Stats.Hits;
  }
  return Slot;
}

Session::AnalysisStats Session::analysisStats() const {
  std::lock_guard<std::mutex> Lock(AnalysesMu);
  return Stats;
}

RunResult Session::runOne(const CrateSpec &Spec, RunConfig Config,
                          obs::Recorder *Obs) const {
  std::vector<std::string> Errors = Config.validate();
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "syrust: invalid configuration: %s\n",
                   E.c_str());
    RunResult R;
    R.Crate = Spec.Info.Name;
    R.Supported = false;
    return R;
  }
  std::shared_ptr<const CrateAnalysis> Analysis;
  if (Config.UseCompatCache && Spec.Info.SupportsSynthesis)
    Analysis = analysisFor(Spec);
  return SyRustDriver(Spec, std::move(Config), Obs, std::move(Analysis))
      .run();
}

RunResult Session::runOne(const std::string &CrateName, RunConfig Config,
                          obs::Recorder *Obs) const {
  const CrateSpec *Spec = find(CrateName);
  if (!Spec) {
    std::fprintf(stderr, "syrust: unknown crate '%s'\n",
                 CrateName.c_str());
    RunResult R;
    R.Crate = CrateName;
    R.Supported = false;
    return R;
  }
  return runOne(*Spec, std::move(Config), Obs);
}
