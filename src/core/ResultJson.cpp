//===--- ResultJson.cpp - RunResult JSON export ----------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/ResultJson.h"

#include "miri/Heap.h"
#include "support/StringUtils.h"

using namespace syrust;
using namespace syrust::core;
using namespace syrust::json;
using namespace syrust::rustsim;

namespace {

/// Every ErrorCategory, in enum order, for name -> value lookup.
const ErrorCategory AllCategories[] = {
    ErrorCategory::Type,
    ErrorCategory::LifetimeOwnership,
    ErrorCategory::Misc,
};

/// Every ErrorDetail, in enum order, for name -> value lookup.
const ErrorDetail AllDetails[] = {
    ErrorDetail::None,          ErrorDetail::TraitBound,
    ErrorDetail::Polymorphism,  ErrorDetail::DefaultTypeParam,
    ErrorDetail::TypeMismatch,  ErrorDetail::Ownership,
    ErrorDetail::Borrowing,     ErrorDetail::AnonLifetime,
    ErrorDetail::Arity,         ErrorDetail::MethodNotFound,
};

/// Every UbKind, in enum order, for name -> value lookup.
const miri::UbKind AllUbKinds[] = {
    miri::UbKind::None,          miri::UbKind::MemoryLeak,
    miri::UbKind::DanglingPointer, miri::UbKind::UseAfterFree,
    miri::UbKind::OutOfBoundsPointer, miri::UbKind::DoubleFree,
    miri::UbKind::InvalidBorrow,
};

} // namespace

json::Value syrust::core::resultToJson(const RunResult &R,
                                       const ResultJsonOptions &Opts) {
  Value Root = Value::object();
  // Bumped whenever a key is renamed/removed so downstream plotting tools
  // can detect format changes. 2: build_seconds/solve_seconds became
  // build_wall_seconds/solve_wall_seconds (they measure host wall time,
  // not simulated time - see DESIGN.md "Wall time vs simulated time").
  // 3 and 4 introduced the campaign and audit document kinds; 5 adds the
  // api_coverage section to every document kind (the version space is
  // shared across kinds, so all bumped together).
  Root.set("schema_version", Value::integer(5));
  Root.set("crate", Value::string(R.Crate));
  Root.set("supported", Value::boolean(R.Supported));
  Root.set("synthesized", Value::integer(static_cast<int64_t>(R.Synthesized)));
  Root.set("rejected", Value::integer(static_cast<int64_t>(R.Rejected)));
  Root.set("executed", Value::integer(static_cast<int64_t>(R.Executed)));
  Root.set("rejected_percent", Value::number(R.rejectedPercent()));
  Root.set("max_len_reached", Value::integer(R.MaxLenReached));
  Root.set("space_exhausted", Value::boolean(R.SpaceExhausted));
  Root.set("elapsed_sim_seconds", Value::number(R.ElapsedSeconds));

  Value ByCategory = Value::object();
  for (const auto &[Cat, N] : R.ByCategory)
    ByCategory.set(categoryName(Cat),
                   Value::integer(static_cast<int64_t>(N)));
  Root.set("by_category", std::move(ByCategory));

  Value ByDetail = Value::object();
  for (const auto &[Det, N] : R.ByDetail)
    ByDetail.set(detailName(Det), Value::integer(static_cast<int64_t>(N)));
  Root.set("by_detail", std::move(ByDetail));

  Value Curve = Value::array();
  for (const CurvePoint &P : R.Curve) {
    Value Pt = Value::object();
    Pt.set("t", Value::number(P.AtSeconds));
    Pt.set("synthesized", Value::integer(static_cast<int64_t>(P.Synthesized)));
    Pt.set("rejected", Value::integer(static_cast<int64_t>(P.Rejected)));
    Pt.set("type", Value::integer(static_cast<int64_t>(P.TypeErrors)));
    Pt.set("lifetime",
           Value::integer(static_cast<int64_t>(P.LifetimeErrors)));
    Pt.set("misc", Value::integer(static_cast<int64_t>(P.MiscErrors)));
    Curve.push(std::move(Pt));
  }
  Root.set("curve", std::move(Curve));

  Value Cov = Value::object();
  Cov.set("component_line", Value::number(R.Coverage.ComponentLine));
  Cov.set("component_branch", Value::number(R.Coverage.ComponentBranch));
  Cov.set("library_line", Value::number(R.Coverage.LibraryLine));
  Cov.set("library_branch", Value::number(R.Coverage.LibraryBranch));
  Cov.set("saturation_seconds", Value::number(R.CoverageSaturation));
  Value Snaps = Value::array();
  for (const auto &S : R.CoverageSnaps) {
    Value Pt = Value::object();
    Pt.set("t", Value::number(S.AtSeconds));
    Pt.set("component_line", Value::number(S.Numbers.ComponentLine));
    Pt.set("component_branch", Value::number(S.Numbers.ComponentBranch));
    Pt.set("library_line", Value::number(S.Numbers.LibraryLine));
    Pt.set("library_branch", Value::number(S.Numbers.LibraryBranch));
    Snaps.push(std::move(Pt));
  }
  Cov.set("snapshots", std::move(Snaps));
  Root.set("coverage", std::move(Cov));
  Root.set("api_coverage", coverage::apiCoverageToJson(R.ApiCoverage));

  Value Bug = Value::object();
  Bug.set("found", Value::boolean(R.BugFound));
  if (R.BugFound) {
    Bug.set("kind", Value::string(miri::ubKindName(R.FirstBug.Kind)));
    Bug.set("message", Value::string(R.FirstBug.Message));
    Bug.set("time_to_bug", Value::number(R.TimeToBug));
    Bug.set("lines", Value::integer(R.BugLines));
    Bug.set("program", Value::string(R.BugProgram));
    if (R.MinimizedLines > 0) {
      Bug.set("minimized_lines", Value::integer(R.MinimizedLines));
      Bug.set("minimized_program", Value::string(R.MinimizedProgram));
    }
    Bug.set("ub_count", Value::integer(static_cast<int64_t>(R.UbCount)));
  }
  Root.set("bug", std::move(Bug));

  Value Synth = Value::object();
  Synth.set("emitted", Value::integer(static_cast<int64_t>(R.Synth.Emitted)));
  Synth.set("path_filtered",
            Value::integer(static_cast<int64_t>(R.Synth.PathFiltered)));
  Synth.set("duplicates_skipped",
            Value::integer(static_cast<int64_t>(R.Synth.DuplicatesSkipped)));
  Synth.set("hash_collisions",
            Value::integer(static_cast<int64_t>(R.Synth.HashCollisions)));
  Synth.set("rebuilds",
            Value::integer(static_cast<int64_t>(R.Synth.Rebuilds)));
  Synth.set("incremental_extends",
            Value::integer(
                static_cast<int64_t>(R.Synth.IncrementalExtends)));
  Synth.set("models_reblocked",
            Value::integer(static_cast<int64_t>(R.Synth.ModelsReblocked)));
  Synth.set("dead_length_revivals",
            Value::integer(
                static_cast<int64_t>(R.Synth.DeadLengthRevivals)));
  Synth.set("solve_calls",
            Value::integer(static_cast<int64_t>(R.Synth.SolveCalls)));
  Synth.set("solver_conflicts",
            Value::integer(static_cast<int64_t>(R.Synth.SolverConflicts)));
  Synth.set("solver_propagations",
            Value::integer(
                static_cast<int64_t>(R.Synth.SolverPropagations)));
  Synth.set("compat_cache_hits",
            Value::integer(static_cast<int64_t>(R.Synth.CompatHits)));
  Synth.set("compat_cache_base_hits",
            Value::integer(
                static_cast<int64_t>(R.Synth.CompatBaseHits)));
  Synth.set("compat_cache_misses",
            Value::integer(static_cast<int64_t>(R.Synth.CompatMisses)));
  Synth.set("portfolio_races",
            Value::integer(static_cast<int64_t>(R.Synth.PortfolioRaces)));
  Synth.set("portfolio_unsat_wins",
            Value::integer(
                static_cast<int64_t>(R.Synth.PortfolioUnsatWins)));
  Synth.set("portfolio_cancels",
            Value::integer(
                static_cast<int64_t>(R.Synth.PortfolioCancels)));
  Synth.set("prune_graph_probes",
            Value::integer(
                static_cast<int64_t>(R.Synth.PruneGraphProbes)));
  Synth.set("prune_fallback_probes",
            Value::integer(
                static_cast<int64_t>(R.Synth.PruneFallbackProbes)));
  Synth.set("prune_dead_sites",
            Value::integer(static_cast<int64_t>(R.Synth.PruneDeadSites)));
  Synth.set("prune_vars_avoided",
            Value::integer(
                static_cast<int64_t>(R.Synth.PruneVarsAvoided)));
  Synth.set("prune_clauses_avoided",
            Value::integer(
                static_cast<int64_t>(R.Synth.PruneClausesAvoided)));
  Synth.set("bias_picks",
            Value::integer(static_cast<int64_t>(R.Synth.BiasPicks)));
  Synth.set("bias_new_edges",
            Value::integer(static_cast<int64_t>(R.Synth.BiasNewEdges)));
  Synth.set("bias_decays",
            Value::integer(static_cast<int64_t>(R.Synth.BiasDecays)));
  if (Opts.HostWallTime) {
    Synth.set("build_wall_seconds", Value::number(R.Synth.BuildSeconds));
    Synth.set("solve_wall_seconds", Value::number(R.Synth.SolveSeconds));
  }
  Root.set("synthesis", std::move(Synth));

  Value Refine = Value::object();
  Refine.set("eager_concretizations",
             Value::integer(
                 static_cast<int64_t>(R.Refine.EagerConcretizations)));
  Refine.set("trait_removals",
             Value::integer(static_cast<int64_t>(R.Refine.TraitRemovals)));
  Refine.set("combo_blocks",
             Value::integer(static_cast<int64_t>(R.Refine.ComboBlocks)));
  Refine.set("output_duplications",
             Value::integer(
                 static_cast<int64_t>(R.Refine.OutputDuplications)));
  Refine.set("direct_fixes",
             Value::integer(static_cast<int64_t>(R.Refine.DirectFixes)));
  Refine.set("bans", Value::integer(static_cast<int64_t>(R.Refine.Bans)));
  Root.set("refinement", std::move(Refine));
  return Root;
}

namespace {

/// Field-cursor over one JSON object: typed getters that record the
/// first missing/mistyped key instead of silently defaulting, so a
/// checkpoint written by a different schema fails loudly with the field
/// name rather than resuming with zeroed counters.
class Fields {
public:
  Fields(const Value &V, std::string &Err) : V(V), Err(Err) {}

  bool ok() const { return Err.empty(); }

  uint64_t u64(const char *Key) {
    const Value *F = want(Key, Value::Kind::Number);
    return F ? static_cast<uint64_t>(F->asInt()) : 0;
  }
  int64_t i64(const char *Key) {
    const Value *F = want(Key, Value::Kind::Number);
    return F ? F->asInt() : 0;
  }
  double num(const char *Key) {
    const Value *F = want(Key, Value::Kind::Number);
    return F ? F->asDouble() : 0;
  }
  bool boolean(const char *Key) {
    const Value *F = want(Key, Value::Kind::Bool);
    return F && F->asBool();
  }
  std::string str(const char *Key) {
    const Value *F = want(Key, Value::Kind::String);
    return F ? F->asString() : std::string();
  }
  const Value *object(const char *Key) {
    return want(Key, Value::Kind::Object);
  }
  const Value *array(const char *Key) {
    return want(Key, Value::Kind::Array);
  }

private:
  const Value *want(const char *Key, Value::Kind K) {
    if (!V.has(Key)) {
      fail(format("missing field '%s'", Key));
      return nullptr;
    }
    const Value &F = V.get(Key);
    if (F.kind() != K) {
      fail(format("field '%s' has the wrong type", Key));
      return nullptr;
    }
    return &F;
  }
  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }

  const Value &V;
  std::string &Err;
};

bool categoryFromName(const std::string &Name, ErrorCategory &Out) {
  for (ErrorCategory C : AllCategories)
    if (Name == categoryName(C)) {
      Out = C;
      return true;
    }
  return false;
}

bool detailFromName(const std::string &Name, ErrorDetail &Out) {
  for (ErrorDetail D : AllDetails)
    if (Name == detailName(D)) {
      Out = D;
      return true;
    }
  return false;
}

bool ubKindFromName(const std::string &Name, miri::UbKind &Out) {
  for (miri::UbKind K : AllUbKinds)
    if (Name == miri::ubKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

} // namespace

bool syrust::core::resultFromJson(const Value &V, RunResult &Out,
                                  std::string &Err) {
  Err.clear();
  Out = RunResult();
  if (V.kind() != Value::Kind::Object) {
    Err = "result document is not an object";
    return false;
  }
  Fields F(V, Err);
  if (F.i64("schema_version") != 5 && F.ok()) {
    Err = format("unsupported schema_version %lld (want 5)",
                 static_cast<long long>(V.get("schema_version").asInt()));
    return false;
  }
  Out.Crate = F.str("crate");
  Out.Supported = F.boolean("supported");
  Out.Synthesized = F.u64("synthesized");
  Out.Rejected = F.u64("rejected");
  Out.Executed = F.u64("executed");
  Out.MaxLenReached = static_cast<int>(F.i64("max_len_reached"));
  Out.SpaceExhausted = F.boolean("space_exhausted");
  Out.ElapsedSeconds = F.num("elapsed_sim_seconds");
  // rejected_percent is derived from synthesized/rejected; recomputed on
  // re-serialization, so it is deliberately not parsed.

  if (const Value *ByCat = F.object("by_category"))
    for (const auto &[Name, N] : ByCat->members()) {
      ErrorCategory C;
      if (!categoryFromName(Name, C)) {
        Err = "unknown error category '" + Name + "'";
        return false;
      }
      Out.ByCategory[C] = static_cast<uint64_t>(N.asInt());
    }
  if (const Value *ByDet = F.object("by_detail"))
    for (const auto &[Name, N] : ByDet->members()) {
      ErrorDetail D;
      if (!detailFromName(Name, D)) {
        Err = "unknown error detail '" + Name + "'";
        return false;
      }
      Out.ByDetail[D] = static_cast<uint64_t>(N.asInt());
    }

  if (const Value *Curve = F.array("curve"))
    for (size_t I = 0; I < Curve->size() && F.ok(); ++I) {
      Fields P(Curve->at(I), Err);
      CurvePoint Pt;
      Pt.AtSeconds = P.num("t");
      Pt.Synthesized = P.u64("synthesized");
      Pt.Rejected = P.u64("rejected");
      Pt.TypeErrors = P.u64("type");
      Pt.LifetimeErrors = P.u64("lifetime");
      Pt.MiscErrors = P.u64("misc");
      Out.Curve.push_back(Pt);
    }

  if (const Value *Cov = F.object("coverage")) {
    Fields C(*Cov, Err);
    Out.Coverage.ComponentLine = C.num("component_line");
    Out.Coverage.ComponentBranch = C.num("component_branch");
    Out.Coverage.LibraryLine = C.num("library_line");
    Out.Coverage.LibraryBranch = C.num("library_branch");
    Out.CoverageSaturation = C.num("saturation_seconds");
    if (const Value *Snaps = C.array("snapshots"))
      for (size_t I = 0; I < Snaps->size() && C.ok(); ++I) {
        Fields P(Snaps->at(I), Err);
        coverage::CoverageSnapshot S;
        S.AtSeconds = P.num("t");
        S.Numbers.ComponentLine = P.num("component_line");
        S.Numbers.ComponentBranch = P.num("component_branch");
        S.Numbers.LibraryLine = P.num("library_line");
        S.Numbers.LibraryBranch = P.num("library_branch");
        Out.CoverageSnaps.push_back(S);
      }
  }

  if (F.ok() && V.has("api_coverage") &&
      !coverage::apiCoverageFromJson(V.get("api_coverage"),
                                     Out.ApiCoverage, Err))
    return false;

  if (const Value *Bug = F.object("bug")) {
    Fields B(*Bug, Err);
    Out.BugFound = B.boolean("found");
    if (Out.BugFound) {
      if (!ubKindFromName(B.str("kind"), Out.FirstBug.Kind)) {
        if (Err.empty())
          Err = "unknown UB kind '" + Bug->get("kind").asString() + "'";
        return false;
      }
      Out.FirstBug.Message = B.str("message");
      Out.TimeToBug = B.num("time_to_bug");
      Out.BugLines = static_cast<int>(B.i64("lines"));
      Out.BugProgram = B.str("program");
      if (Bug->has("minimized_lines")) {
        Out.MinimizedLines =
            static_cast<int>(Bug->get("minimized_lines").asInt());
        Out.MinimizedProgram = Bug->get("minimized_program").asString();
      }
      Out.UbCount = B.u64("ub_count");
    }
  }

  if (const Value *Synth = F.object("synthesis")) {
    Fields S(*Synth, Err);
    Out.Synth.Emitted = S.u64("emitted");
    Out.Synth.PathFiltered = S.u64("path_filtered");
    Out.Synth.DuplicatesSkipped = S.u64("duplicates_skipped");
    Out.Synth.HashCollisions = S.u64("hash_collisions");
    Out.Synth.Rebuilds = S.u64("rebuilds");
    Out.Synth.IncrementalExtends = S.u64("incremental_extends");
    Out.Synth.ModelsReblocked = S.u64("models_reblocked");
    Out.Synth.DeadLengthRevivals = S.u64("dead_length_revivals");
    Out.Synth.SolveCalls = S.u64("solve_calls");
    Out.Synth.SolverConflicts = S.u64("solver_conflicts");
    Out.Synth.SolverPropagations = S.u64("solver_propagations");
    Out.Synth.CompatHits = S.u64("compat_cache_hits");
    Out.Synth.CompatBaseHits = S.u64("compat_cache_base_hits");
    Out.Synth.CompatMisses = S.u64("compat_cache_misses");
    Out.Synth.PortfolioRaces = S.u64("portfolio_races");
    Out.Synth.PortfolioUnsatWins = S.u64("portfolio_unsat_wins");
    Out.Synth.PortfolioCancels = S.u64("portfolio_cancels");
    Out.Synth.PruneGraphProbes = S.u64("prune_graph_probes");
    Out.Synth.PruneFallbackProbes = S.u64("prune_fallback_probes");
    Out.Synth.PruneDeadSites = S.u64("prune_dead_sites");
    Out.Synth.PruneVarsAvoided = S.u64("prune_vars_avoided");
    Out.Synth.PruneClausesAvoided = S.u64("prune_clauses_avoided");
    Out.Synth.BiasPicks = S.u64("bias_picks");
    Out.Synth.BiasNewEdges = S.u64("bias_new_edges");
    Out.Synth.BiasDecays = S.u64("bias_decays");
    // Wall-time diagnostics are optional (campaign aggregates strip
    // them); absent means zero.
    if (Synth->has("build_wall_seconds"))
      Out.Synth.BuildSeconds = Synth->get("build_wall_seconds").asDouble();
    if (Synth->has("solve_wall_seconds"))
      Out.Synth.SolveSeconds = Synth->get("solve_wall_seconds").asDouble();
  }

  if (const Value *Refine = F.object("refinement")) {
    Fields R(*Refine, Err);
    Out.Refine.EagerConcretizations = R.u64("eager_concretizations");
    Out.Refine.TraitRemovals = R.u64("trait_removals");
    Out.Refine.ComboBlocks = R.u64("combo_blocks");
    Out.Refine.OutputDuplications = R.u64("output_duplications");
    Out.Refine.DirectFixes = R.u64("direct_fixes");
    Out.Refine.Bans = R.u64("bans");
  }
  return F.ok();
}

json::Value syrust::core::runConfigToJson(const RunConfig &C) {
  Value V = Value::object();
  V.set("budget_seconds", Value::number(C.BudgetSeconds));
  V.set("num_apis", Value::integer(C.NumApis));
  V.set("semantic_aware", Value::boolean(C.SemanticAware));
  V.set("interleave_lengths", Value::boolean(C.InterleaveLengths));
  V.set("mutate_inputs", Value::boolean(C.MutateInputs));
  V.set("incremental_refinement",
        Value::boolean(C.IncrementalRefinement));
  const char *Mode = C.Mode == refine::RefinementMode::PurelyEager
                         ? "eager"
                         : C.Mode == refine::RefinementMode::PurelyLazy
                               ? "lazy"
                               : "hybrid";
  V.set("mode", Value::string(Mode));
  V.set("portfolio", Value::boolean(C.Portfolio));
  V.set("strategy", Value::string(C.Strategy));
  V.set("solve_conflict_budget",
        Value::integer(static_cast<int64_t>(C.SolveConflictBudget)));
  V.set("eager_cap", Value::integer(static_cast<int64_t>(C.EagerCap)));
  V.set("seed", Value::integer(static_cast<int64_t>(C.Seed)));
  V.set("solve_cost", Value::number(C.SolveCost));
  V.set("compile_cost", Value::number(C.CompileCost));
  V.set("exec_cost", Value::number(C.ExecCost));
  V.set("snapshot_interval", Value::number(C.SnapshotInterval));
  V.set("curve_samples", Value::integer(C.CurveSamples));
  V.set("max_tests", Value::integer(static_cast<int64_t>(C.MaxTests)));
  V.set("stop_on_first_bug", Value::boolean(C.StopOnFirstBug));
  V.set("minimize_bugs", Value::boolean(C.MinimizeBugs));
  V.set("use_compat_cache", Value::boolean(C.UseCompatCache));
  V.set("track_api_coverage", Value::boolean(C.TrackApiCoverage));
  V.set("graph_prune", Value::boolean(C.GraphPrune));
  V.set("bias_coverage", Value::boolean(C.BiasCoverage));
  V.set("json_error_channel", Value::boolean(C.JsonErrorChannel));
  V.set("record_tests",
        Value::integer(static_cast<int64_t>(C.RecordTests)));
  return V;
}
