//===--- ResultJson.cpp - RunResult JSON export ----------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/ResultJson.h"

#include "miri/Heap.h"

using namespace syrust;
using namespace syrust::core;
using namespace syrust::json;
using namespace syrust::rustsim;

json::Value syrust::core::resultToJson(const RunResult &R,
                                       const ResultJsonOptions &Opts) {
  Value Root = Value::object();
  // Bumped whenever a key is renamed/removed so downstream plotting tools
  // can detect format changes. 2: build_seconds/solve_seconds became
  // build_wall_seconds/solve_wall_seconds (they measure host wall time,
  // not simulated time - see DESIGN.md "Wall time vs simulated time").
  // 3 and 4 introduced the campaign and audit document kinds; 5 adds the
  // api_coverage section to every document kind (the version space is
  // shared across kinds, so all bumped together).
  Root.set("schema_version", Value::integer(5));
  Root.set("crate", Value::string(R.Crate));
  Root.set("supported", Value::boolean(R.Supported));
  Root.set("synthesized", Value::integer(static_cast<int64_t>(R.Synthesized)));
  Root.set("rejected", Value::integer(static_cast<int64_t>(R.Rejected)));
  Root.set("executed", Value::integer(static_cast<int64_t>(R.Executed)));
  Root.set("rejected_percent", Value::number(R.rejectedPercent()));
  Root.set("max_len_reached", Value::integer(R.MaxLenReached));
  Root.set("space_exhausted", Value::boolean(R.SpaceExhausted));
  Root.set("elapsed_sim_seconds", Value::number(R.ElapsedSeconds));

  Value ByCategory = Value::object();
  for (const auto &[Cat, N] : R.ByCategory)
    ByCategory.set(categoryName(Cat),
                   Value::integer(static_cast<int64_t>(N)));
  Root.set("by_category", std::move(ByCategory));

  Value ByDetail = Value::object();
  for (const auto &[Det, N] : R.ByDetail)
    ByDetail.set(detailName(Det), Value::integer(static_cast<int64_t>(N)));
  Root.set("by_detail", std::move(ByDetail));

  Value Curve = Value::array();
  for (const CurvePoint &P : R.Curve) {
    Value Pt = Value::object();
    Pt.set("t", Value::number(P.AtSeconds));
    Pt.set("synthesized", Value::integer(static_cast<int64_t>(P.Synthesized)));
    Pt.set("rejected", Value::integer(static_cast<int64_t>(P.Rejected)));
    Pt.set("type", Value::integer(static_cast<int64_t>(P.TypeErrors)));
    Pt.set("lifetime",
           Value::integer(static_cast<int64_t>(P.LifetimeErrors)));
    Pt.set("misc", Value::integer(static_cast<int64_t>(P.MiscErrors)));
    Curve.push(std::move(Pt));
  }
  Root.set("curve", std::move(Curve));

  Value Cov = Value::object();
  Cov.set("component_line", Value::number(R.Coverage.ComponentLine));
  Cov.set("component_branch", Value::number(R.Coverage.ComponentBranch));
  Cov.set("library_line", Value::number(R.Coverage.LibraryLine));
  Cov.set("library_branch", Value::number(R.Coverage.LibraryBranch));
  Cov.set("saturation_seconds", Value::number(R.CoverageSaturation));
  Value Snaps = Value::array();
  for (const auto &S : R.CoverageSnaps) {
    Value Pt = Value::object();
    Pt.set("t", Value::number(S.AtSeconds));
    Pt.set("component_line", Value::number(S.Numbers.ComponentLine));
    Pt.set("component_branch", Value::number(S.Numbers.ComponentBranch));
    Pt.set("library_line", Value::number(S.Numbers.LibraryLine));
    Pt.set("library_branch", Value::number(S.Numbers.LibraryBranch));
    Snaps.push(std::move(Pt));
  }
  Cov.set("snapshots", std::move(Snaps));
  Root.set("coverage", std::move(Cov));
  Root.set("api_coverage", coverage::apiCoverageToJson(R.ApiCoverage));

  Value Bug = Value::object();
  Bug.set("found", Value::boolean(R.BugFound));
  if (R.BugFound) {
    Bug.set("kind", Value::string(miri::ubKindName(R.FirstBug.Kind)));
    Bug.set("message", Value::string(R.FirstBug.Message));
    Bug.set("time_to_bug", Value::number(R.TimeToBug));
    Bug.set("lines", Value::integer(R.BugLines));
    Bug.set("program", Value::string(R.BugProgram));
    if (R.MinimizedLines > 0) {
      Bug.set("minimized_lines", Value::integer(R.MinimizedLines));
      Bug.set("minimized_program", Value::string(R.MinimizedProgram));
    }
    Bug.set("ub_count", Value::integer(static_cast<int64_t>(R.UbCount)));
  }
  Root.set("bug", std::move(Bug));

  Value Synth = Value::object();
  Synth.set("emitted", Value::integer(static_cast<int64_t>(R.Synth.Emitted)));
  Synth.set("path_filtered",
            Value::integer(static_cast<int64_t>(R.Synth.PathFiltered)));
  Synth.set("duplicates_skipped",
            Value::integer(static_cast<int64_t>(R.Synth.DuplicatesSkipped)));
  Synth.set("hash_collisions",
            Value::integer(static_cast<int64_t>(R.Synth.HashCollisions)));
  Synth.set("rebuilds",
            Value::integer(static_cast<int64_t>(R.Synth.Rebuilds)));
  Synth.set("incremental_extends",
            Value::integer(
                static_cast<int64_t>(R.Synth.IncrementalExtends)));
  Synth.set("models_reblocked",
            Value::integer(static_cast<int64_t>(R.Synth.ModelsReblocked)));
  Synth.set("dead_length_revivals",
            Value::integer(
                static_cast<int64_t>(R.Synth.DeadLengthRevivals)));
  Synth.set("solve_calls",
            Value::integer(static_cast<int64_t>(R.Synth.SolveCalls)));
  Synth.set("solver_conflicts",
            Value::integer(static_cast<int64_t>(R.Synth.SolverConflicts)));
  Synth.set("solver_propagations",
            Value::integer(
                static_cast<int64_t>(R.Synth.SolverPropagations)));
  Synth.set("compat_cache_hits",
            Value::integer(static_cast<int64_t>(R.Synth.CompatHits)));
  Synth.set("compat_cache_base_hits",
            Value::integer(
                static_cast<int64_t>(R.Synth.CompatBaseHits)));
  Synth.set("compat_cache_misses",
            Value::integer(static_cast<int64_t>(R.Synth.CompatMisses)));
  Synth.set("portfolio_races",
            Value::integer(static_cast<int64_t>(R.Synth.PortfolioRaces)));
  Synth.set("portfolio_unsat_wins",
            Value::integer(
                static_cast<int64_t>(R.Synth.PortfolioUnsatWins)));
  Synth.set("portfolio_cancels",
            Value::integer(
                static_cast<int64_t>(R.Synth.PortfolioCancels)));
  if (Opts.HostWallTime) {
    Synth.set("build_wall_seconds", Value::number(R.Synth.BuildSeconds));
    Synth.set("solve_wall_seconds", Value::number(R.Synth.SolveSeconds));
  }
  Root.set("synthesis", std::move(Synth));

  Value Refine = Value::object();
  Refine.set("eager_concretizations",
             Value::integer(
                 static_cast<int64_t>(R.Refine.EagerConcretizations)));
  Refine.set("trait_removals",
             Value::integer(static_cast<int64_t>(R.Refine.TraitRemovals)));
  Refine.set("combo_blocks",
             Value::integer(static_cast<int64_t>(R.Refine.ComboBlocks)));
  Refine.set("output_duplications",
             Value::integer(
                 static_cast<int64_t>(R.Refine.OutputDuplications)));
  Refine.set("direct_fixes",
             Value::integer(static_cast<int64_t>(R.Refine.DirectFixes)));
  Refine.set("bans", Value::integer(static_cast<int64_t>(R.Refine.Bans)));
  Root.set("refinement", std::move(Refine));
  return Root;
}
