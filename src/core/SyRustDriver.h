//===--- SyRustDriver.h - Algorithm 1 end-to-end driver --------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete SyRust pipeline of Figure 3 for one library: API selection
/// (Section 6.2's 15-API weighted sample with pinned picks and the three
/// builtins), the semantic-aware synthesis loop of Algorithm 1, the test
/// executor (rustsim compile + miri execute on the simulated clock), and
/// hybrid refinement feedback. Produces the RunResult all evaluation
/// benches consume.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CORE_SYRUSTDRIVER_H
#define SYRUST_CORE_SYRUSTDRIVER_H

#include "core/CrateAnalysis.h"
#include "core/ResultDatabase.h"
#include "coverage/ApiPairCoverage.h"
#include "coverage/CoverageMap.h"
#include "crates/CrateRegistry.h"
#include "obs/Recorder.h"
#include "refine/RefinementEngine.h"
#include "rustsim/Diagnostic.h"
#include "support/SimClock.h"
#include "synth/Synthesizer.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace syrust::core {

/// One run's configuration: evaluation budgets, feature toggles (RQ2/RQ3
/// variants), and simulated-cost calibration.
struct RunConfig {
  /// Simulated wall-clock budget. The paper ran 10 hours per library on a
  /// 64-container cluster; the default reproduces the same *shape* at
  /// laptop scale. Scale up via the SYRUST_BUDGET environment variable in
  /// the benches.
  double BudgetSeconds = 600.0;

  /// APIs selected per library (Section 6.2).
  int NumApis = 15;

  /// Section 4.4 semantic awareness; off = the RQ2 variant.
  bool SemanticAware = true;

  /// Section 7.4.3 scheduling extension: round-robin program lengths
  /// instead of exhausting each length before the next. Off reproduces
  /// Algorithm 1 exactly.
  bool InterleaveLengths = false;

  /// Section 7.4.2 extension: perturb the template input values between
  /// executions ("we do not mutate inputs ... likely to trigger more
  /// bugs"). Off reproduces the paper's fixed-input setup.
  bool MutateInputs = false;

  /// Additive database refinements extend the live SAT encodings in
  /// place and blocked models persist across rebuilds, so the solver
  /// never re-walks already-emitted programs. Off = the historical
  /// rebuild-the-world refinement path (kept for A/B comparison).
  bool IncrementalRefinement = true;

  /// Polymorphism strategy; PurelyEager = the RQ3 variant.
  refine::RefinementMode Mode = refine::RefinementMode::Hybrid;

  /// Race the solver-strategy portfolio (sat/SolverStrategy.h) on hard
  /// solve episodes. Emitted programs are byte-identical on or off; the
  /// helpers only turn budget-stop Unknowns into real Unsat proofs, which
  /// spares the synthesizer futile re-solves of exhausted lengths.
  bool Portfolio = false;

  /// Run one named solver configuration instead of the baseline. Must be
  /// a name sat::findStrategy() knows; validate() rejects anything else.
  /// Unlike Portfolio this changes the program stream (explicit opt-in).
  /// Ignored when Portfolio is set. Empty = baseline.
  std::string Strategy;

  /// Per-solve conflict budget handed to the encoder; 0 keeps the
  /// SynthOptions default. The portfolio micro benchmark lowers this so
  /// budget exhaustion actually occurs at bench scale.
  uint64_t SolveConflictBudget = 0;

  /// Cap on eager instantiations per API.
  size_t EagerCap = 48;

  uint64_t Seed = 2021;

  /// Simulated costs (seconds). Execution is multiplied by the crate's
  /// MiriCostFactor (dashmap et al.).
  double SolveCost = 0.004;
  double CompileCost = 0.03;
  double ExecCost = 0.11;

  /// Coverage snapshot cadence (the paper used 900 s over 10 h).
  double SnapshotInterval = 60.0;

  /// Error-rate curve sampling points.
  int CurveSamples = 120;

  /// Optional hard cap on synthesized test cases (0 = none).
  uint64_t MaxTests = 0;

  /// Stop as soon as the first UB is found (bug-hunt benches).
  bool StopOnFirstBug = false;

  /// Delta-debug the first bug-inducing program down to its minimal form
  /// (fills RunResult::MinimizedLines / MinimizedProgram).
  bool MinimizeBugs = false;

  /// Memoized compatibility kernel + shared per-crate analysis. On, the
  /// encoder answers repeated unifiability probes from a memo table and
  /// Session-routed runs share one immutable instantiation per crate
  /// (with private copy-on-write overlays); off - the --no-compat-cache
  /// escape hatch - every run re-instantiates and recomputes every
  /// probe. Emitted programs and all results are byte-identical either
  /// way; only throughput (and the compat.cache.* counters) change.
  bool UseCompatCache = true;

  /// Track API-pair coverage: mark the crate's dependency graph
  /// (api::DependencyGraph) as programs are emitted and export the
  /// api_coverage document plus coverage.api.* counters. Cheap (a hash
  /// lookup per argument wiring) and deterministic; the off switch
  /// exists for overhead A/B benches.
  bool TrackApiCoverage = true;

  /// Graph-guided encoding pruning: the encoder answers candidate
  /// probes from the frozen dependency graph's bitset rows (an O(1) bit
  /// test instead of a CompatCache lookup). The graph's edge set is
  /// exactly the probe-success set, so program streams and all result
  /// documents are byte-identical on/off - only throughput and the
  /// prune.* probe-split counters change (--no-graph-prune is the
  /// escape hatch for A/B runs). Dead-site elimination in the encoder
  /// is structural and unaffected by this switch.
  bool GraphPrune = true;

  /// Coverage-guided enumeration bias (--bias-coverage, off by
  /// default): API selection weights candidates by their never-covered
  /// dependency-graph edges, and in interleaved mode the synthesizer
  /// replaces the round-robin length rotation with a weighted draw
  /// steered by live coverage feedback (Synthesizer::noteCoverage).
  /// Unlike GraphPrune this deliberately *changes* the emitted stream -
  /// that is the point: steer enumeration toward unvisited graph paths
  /// the way a coverage-guided fuzzer steers mutation. A fixed (crate,
  /// seed, variant) cell stays byte-identical for any --jobs because
  /// all re-weighting draws from the run's own Rng and decays on the
  /// SimClock. Requires TrackApiCoverage (validate() enforces it).
  bool BiasCoverage = false;

  /// Route compiler diagnostics through the cargo-style JSON channel
  /// (serialize, then parse back) before handing them to refinement -
  /// reproducing the paper's `--message-format=json` executor/synthesizer
  /// split (Section 6.1). Results must be identical either way.
  bool JsonErrorChannel = false;

  /// Retain up to this many per-test records in RunResult::Db (Algorithm
  /// 1's "DB <- DB u R"); 0 keeps counters only.
  size_t RecordTests = 0;

  /// Checks every field against its domain. Returns one specific message
  /// per invalid field ("RunConfig.CurveSamples must be at least 2, got
  /// 1"), empty when the configuration is runnable. The CLI and
  /// Session::runOne() both call this, so a bad configuration fails
  /// loudly instead of silently misbehaving (a zero SnapshotInterval,
  /// for example, would loop forever in the snapshot cadence).
  std::vector<std::string> validate() const;
};

/// A point of the cumulative error-rate curves (Figures 9/10 top rows).
struct CurvePoint {
  double AtSeconds = 0;
  uint64_t Synthesized = 0;
  uint64_t Rejected = 0;
  uint64_t TypeErrors = 0;
  uint64_t LifetimeErrors = 0;
  uint64_t MiscErrors = 0;
};

/// Everything one run produces.
struct RunResult {
  std::string Crate;
  bool Supported = true;

  uint64_t Synthesized = 0;
  uint64_t Rejected = 0;
  uint64_t Executed = 0;
  int MaxLenReached = 0;
  bool SpaceExhausted = false;

  /// Rejections by category and by fine-grained detail.
  std::map<rustsim::ErrorCategory, uint64_t> ByCategory;
  std::map<rustsim::ErrorDetail, uint64_t> ByDetail;

  std::vector<CurvePoint> Curve;

  /// First undefined behavior found.
  bool BugFound = false;
  miri::UbReport FirstBug;
  double TimeToBug = -1;
  int BugLines = 0;
  std::string BugProgram;
  /// Filled when RunConfig::MinimizeBugs is set.
  int MinimizedLines = 0;
  std::string MinimizedProgram;
  uint64_t UbCount = 0;

  /// Coverage outcome.
  coverage::CoverageNumbers Coverage;
  std::vector<coverage::CoverageSnapshot> CoverageSnaps;
  double CoverageSaturation = -1;

  /// API-pair coverage over the crate's dependency graph (empty when
  /// RunConfig::TrackApiCoverage is off or the crate is unsupported).
  coverage::ApiCoverageData ApiCoverage;

  synth::SynthStats Synth;
  refine::RefinementStats Refine;
  double ElapsedSeconds = 0;

  /// Algorithm 1's database of programs and results (populated when
  /// RunConfig::RecordTests > 0; counters always advance).
  ResultDatabase Db;

  double rejectedPercent() const {
    return Synthesized == 0
               ? 0.0
               : 100.0 * static_cast<double>(Rejected) /
                     static_cast<double>(Synthesized);
  }
  double categoryPercent(rustsim::ErrorCategory C) const {
    auto It = ByCategory.find(C);
    uint64_t N = It == ByCategory.end() ? 0 : It->second;
    return Rejected == 0 ? 0.0
                         : 100.0 * static_cast<double>(N) /
                               static_cast<double>(Rejected);
  }
};

/// Options for selectApiSubset. An options struct rather than positional
/// arguments so call sites read as what they configure and new knobs can
/// be added without breaking every caller.
struct ApiSelectionOptions {
  /// APIs always included (the paper allows two manual picks per
  /// library, Section 6.2). Deduplicated, restricted to real library
  /// APIs, clamped to NumApis.
  std::vector<api::ApiId> Pinned;
  /// Selection budget (Section 6.2 uses 15 per library).
  int NumApis = 15;
  /// Coverage-bias leg (RunConfig::BiasCoverage): when set, each
  /// candidate's weight is additionally multiplied by 1 plus its count
  /// of never-covered incident dependency-graph edges, so well-connected
  /// APIs whose edges are still unvisited dominate the sample. Null
  /// keeps the paper's unsafe-only weighting (the bias-off stream is
  /// untouched by construction).
  const api::DependencyGraph *Graph = nullptr;
  /// Live coverage consulted for the never-covered test; null treats
  /// every edge of Graph as never covered (the start-of-run state).
  /// Ignored unless Graph is set.
  const coverage::ApiCoverageData *Coverage = nullptr;
};

/// Section 6.2's API-subset selection: pinned picks first (deduplicated,
/// restricted to synthesizable APIs, clamped to the budget), then a
/// weighted random fill where unsafe-containing APIs get 50% more weight
/// (and, with ApiSelectionOptions::Graph set, a 1 + never-covered-degree
/// multiplier - the --bias-coverage leg; weights stay integer-or-half
/// valued doubles, so the draw is exact on every platform).
/// Never returns more than Opts.NumApis entries or a duplicate. Exposed
/// as a free function so tests can drive it directly.
std::vector<api::ApiId> selectApiSubset(const api::ApiDatabase &Db,
                                        const ApiSelectionOptions &Opts,
                                        Rng &R);

/// Runs the full pipeline for one library model.
///
/// Movable and self-contained: the driver references the (immutable)
/// CrateSpec, owns its configuration, and holds the optional flight
/// recorder as an explicit constructor argument rather than a field
/// smuggled through RunConfig — so a worker thread can own driver and
/// recorder together and nothing aliases across threads.
///
/// Prefer Session::runOne() (Session.h) as the entry point; constructing
/// a driver directly is kept for tests that need the raw object.
class SyRustDriver {
public:
  /// \p Analysis, when set, is the crate's shared immutable analysis
  /// (Session::runOne supplies it): the run works on a copy-on-write
  /// overlay instance instead of a fresh instantiation, and its
  /// compatibility cache chains onto the precomputed matrix. Null falls
  /// back to a private instantiate() - results are identical.
  SyRustDriver(const crates::CrateSpec &Spec, RunConfig Config,
               obs::Recorder *Obs = nullptr,
               std::shared_ptr<const CrateAnalysis> Analysis = nullptr)
      : Spec(&Spec), Config(std::move(Config)), Obs(Obs),
        Analysis(std::move(Analysis)) {}

  SyRustDriver(SyRustDriver &&) = default;
  SyRustDriver &operator=(SyRustDriver &&) = default;

  /// Precondition: Config.validate() is empty (Session enforces this).
  RunResult run();

private:
  void selectApis(crates::CrateInstance &Inst,
                  const api::DependencyGraph *Graph, Rng &R) const;

  const crates::CrateSpec *Spec;
  RunConfig Config;
  /// When set, bound to the run's SimClock and threaded through every
  /// pipeline layer (solver, synthesizer, refinement, checker,
  /// interpreter); a span per candidate ties the lifecycle together and
  /// the metrics registry snapshots on the SnapshotInterval cadence.
  obs::Recorder *Obs = nullptr;
  /// Shared per-crate analysis; see the constructor comment.
  std::shared_ptr<const CrateAnalysis> Analysis;
};

} // namespace syrust::core

#endif // SYRUST_CORE_SYRUSTDRIVER_H
