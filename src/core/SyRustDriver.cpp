//===--- SyRustDriver.cpp - Algorithm 1 end-to-end driver -----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SyRustDriver.h"

#include "core/BugMinimizer.h"
#include "miri/Interpreter.h"
#include "rustsim/Checker.h"
#include "rustsim/DiagnosticJson.h"
#include "sat/SolverStrategy.h"

#include <cassert>
#include <cstdio>

#include <algorithm>
#include <string>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::program;
using namespace syrust::refine;
using namespace syrust::rustsim;
using namespace syrust::synth;

namespace {

std::string numField(const char *Field, double Got, const char *Rule) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "RunConfig.%s must be %s, got %g",
                Field, Rule, Got);
  return Buf;
}

} // namespace

std::vector<std::string> RunConfig::validate() const {
  std::vector<std::string> Errors;
  if (BudgetSeconds < 0)
    Errors.push_back(
        numField("BudgetSeconds", BudgetSeconds, "non-negative"));
  if (NumApis < 1)
    Errors.push_back(numField("NumApis", NumApis, "at least 1"));
  if (EagerCap == 0)
    Errors.push_back("RunConfig.EagerCap must be nonzero (a zero cap "
                     "would forbid every eager instantiation)");
  if (SolveCost < 0)
    Errors.push_back(numField("SolveCost", SolveCost, "non-negative"));
  if (CompileCost < 0)
    Errors.push_back(
        numField("CompileCost", CompileCost, "non-negative"));
  if (ExecCost < 0)
    Errors.push_back(numField("ExecCost", ExecCost, "non-negative"));
  if (SnapshotInterval <= 0)
    Errors.push_back(numField("SnapshotInterval", SnapshotInterval,
                              "positive (zero would loop forever in the "
                              "snapshot cadence)"));
  if (CurveSamples < 2)
    Errors.push_back(numField("CurveSamples", CurveSamples,
                              "at least 2 (a curve needs a start and an "
                              "end point)"));
  if (!Strategy.empty() && !sat::findStrategy(Strategy))
    Errors.push_back("RunConfig.Strategy '" + Strategy +
                     "' is not a known solver strategy (known: " +
                     sat::knownStrategyNames() + ")");
  if (BiasCoverage && !TrackApiCoverage)
    Errors.push_back(
        "RunConfig.BiasCoverage requires TrackApiCoverage: bias reads "
        "never-covered edges live from the coverage bitsets "
        "(drop --no-api-coverage or --bias-coverage)");
  return Errors;
}

std::vector<ApiId> syrust::core::selectApiSubset(
    const ApiDatabase &Db, const ApiSelectionOptions &Opts, Rng &R) {
  const std::vector<ApiId> &Pinned = Opts.Pinned;
  const int NumApis = Opts.NumApis;
  // Section 6.2: 15 APIs per library - pinned picks first, the rest by
  // weighted random selection where unsafe-containing APIs get 50% more
  // weight.
  std::vector<ApiId> Candidates;
  for (size_t I = 0; I < Db.size(); ++I) {
    ApiId Id = static_cast<ApiId>(I);
    if (Db.get(Id).Builtin == BuiltinKind::None)
      Candidates.push_back(Id);
  }
  std::vector<ApiId> Selected;
  auto IsSelected = [&Selected](ApiId Id) {
    return std::find(Selected.begin(), Selected.end(), Id) !=
           Selected.end();
  };
  // Pinned picks: deduplicated, restricted to real library APIs, and
  // clamped so an oversized pinned list cannot exceed the protocol's
  // selection budget.
  for (ApiId Id : Pinned) {
    if (static_cast<int>(Selected.size()) >= NumApis)
      break;
    if (IsSelected(Id) ||
        std::find(Candidates.begin(), Candidates.end(), Id) ==
            Candidates.end())
      continue;
    Selected.push_back(Id);
  }
  // --bias-coverage leg: a never-covered edge is only coverable when
  // BOTH endpoints make the cut, so each draw multiplies the paper's
  // base weight by 1 + the candidate's never-covered edges into the
  // set selected so far (self-edges included). Recomputing per pick
  // grows a connected subset around realizable gaps instead of a bag
  // of isolated hubs. Integer-valued counts (times the exact 1.5
  // unsafe boost) keep the weighted draw bit-exact across platforms -
  // no libm, no rounding divergence.
  const std::vector<api::DependencyEdge> *BiasEdges = nullptr;
  std::vector<char> InSelected;
  if (Opts.Graph) {
    BiasEdges = &Opts.Graph->edges();
    InSelected.assign(Db.size(), 0);
    for (ApiId Id : Selected)
      InSelected[static_cast<size_t>(Id)] = 1;
  }
  auto EdgeCovered = [&](size_t EdgeIdx) {
    if (!Opts.Coverage)
      return false;
    const std::vector<uint8_t> &Bits = Opts.Coverage->EdgeBits;
    return EdgeIdx / 8 < Bits.size() &&
           ((Bits[EdgeIdx / 8] >> (EdgeIdx % 8)) & 1) != 0;
  };
  auto BiasBoost = [&](ApiId Id) {
    // 1 + never-covered edges joining Id to Selected or to itself
    // (capped). On the first draw (nothing selected yet) only
    // self-edges count, so ties fall back to the paper's base
    // weighting. The cap matters: an unbounded boost makes the draw
    // near-deterministic, excluding the same weakly-connected APIs on
    // every seed - and when the candidate pool barely exceeds
    // NumApis, systematically starving any API loses its edges
    // outright while a random exclusion spreads the cost. Capped at
    // 4:1 the bias nudges the draw without erasing per-seed
    // diversity.
    uint64_t Connect = 0;
    for (size_t I = 0; I < BiasEdges->size(); ++I) {
      const api::DependencyEdge &E = (*BiasEdges)[I];
      const bool TouchesId = E.Producer == Id || E.Consumer == Id;
      if (!TouchesId || EdgeCovered(I))
        continue;
      const ApiId Other = E.Producer == Id ? E.Consumer : E.Producer;
      if (Other == Id || InSelected[static_cast<size_t>(Other)])
        ++Connect;
    }
    if (Connect > 3)
      Connect = 3;
    return 1.0 + static_cast<double>(Connect);
  };
  std::vector<ApiId> Pool;
  for (ApiId Id : Candidates)
    if (!IsSelected(Id))
      Pool.push_back(Id);
  while (static_cast<int>(Selected.size()) < NumApis && !Pool.empty()) {
    std::vector<double> Weights;
    Weights.reserve(Pool.size());
    for (ApiId Id : Pool) {
      double W = Db.get(Id).HasUnsafe ? 1.5 : 1.0;
      if (BiasEdges)
        W *= BiasBoost(Id);
      Weights.push_back(W);
    }
    size_t Pick = R.pickWeighted(Weights);
    if (BiasEdges)
      InSelected[static_cast<size_t>(Pool[Pick])] = 1;
    Selected.push_back(Pool[Pick]);
    Pool.erase(Pool.begin() + static_cast<long>(Pick));
  }
  assert(static_cast<int>(Selected.size()) <= NumApis &&
         "API selection exceeds the configured budget");
  return Selected;
}

void SyRustDriver::selectApis(CrateInstance &Inst,
                              const api::DependencyGraph *Graph,
                              Rng &R) const {
  ApiSelectionOptions Opts;
  Opts.Pinned = Inst.Pinned;
  Opts.NumApis = Config.NumApis;
  // --bias-coverage: weight the draw by never-covered incident degree.
  // At run start the coverage document is all-zero, so a null Coverage
  // (every edge never covered) is exact; campaign workers inherit no
  // cross-run bits by design - each cell stays a pure function of
  // (crate, seed, variant).
  Opts.Graph = Graph;
  Opts.Coverage = nullptr;
  std::vector<ApiId> Selected = selectApiSubset(Inst.Db, Opts, R);
  // Unselected APIs are disabled for this run (builtins always stay).
  for (size_t I = 0; I < Inst.Db.size(); ++I) {
    ApiId Id = static_cast<ApiId>(I);
    if (Inst.Db.get(Id).Builtin != BuiltinKind::None)
      continue;
    if (std::find(Selected.begin(), Selected.end(), Id) == Selected.end())
      Inst.Db.ban(Id);
  }
}

RunResult SyRustDriver::run() {
  assert(Config.validate().empty() &&
         "invalid RunConfig; Session::runOne() rejects these");
  RunResult Result;
  Result.Crate = Spec->Info.Name;
  Result.Db = ResultDatabase(Config.RecordTests);
  if (!Spec->Info.SupportsSynthesis) {
    Result.Supported = false;
    return Result;
  }

  // With a shared analysis, work on a copy-on-write overlay of the
  // frozen base instance instead of re-instantiating the whole model;
  // either way the run owns its instance outright. The compatibility
  // cache is per-run (per campaign job) and chains onto the shared
  // precomputed matrix when one exists, so probe counts depend only on
  // this run's own work - never on scheduling.
  std::unique_ptr<CrateInstance> Inst =
      Analysis ? Analysis->makeWorkerInstance() : Spec->instantiate();
  std::unique_ptr<types::CompatCache> Compat;
  if (Config.UseCompatCache)
    Compat = std::make_unique<types::CompatCache>(
        Analysis ? &Analysis->baseCache() : nullptr);
  Rng R(Config.Seed ^ std::hash<std::string>{}(Spec->Info.Name));

  // The crate's frozen dependency graph serves three consumers: API-pair
  // coverage marking, the encoder's graph-guided pruning, and (bias mode
  // only) coverage-weighted API selection. With a shared analysis the
  // graph is precomputed; otherwise build it here against a scratch
  // cache - never the run's Compat, whose compat.cache.* counters must
  // reflect only synthesis probes. Bias mode needs the graph before
  // selectApis; everyone else acquires it afterwards, exactly where the
  // bias-off pipeline always built it (buildDependencyGraph ignores
  // bans, so both orders see identical edges, but arena type-interning
  // order stays untouched on the bias-off path).
  api::DependencyGraph LocalGraph;
  const api::DependencyGraph *Graph = nullptr;
  std::unique_ptr<coverage::ApiPairCoverage> ApiCov;
  auto AcquireGraph = [&]() {
    if (Graph)
      return;
    if (Analysis) {
      Graph = &Analysis->graph();
    } else {
      types::CompatCache Scratch;
      LocalGraph = api::buildDependencyGraph(Inst->Db, Inst->Arena, Scratch);
      Graph = &LocalGraph;
    }
  };
  if (Config.BiasCoverage)
    AcquireGraph();
  selectApis(*Inst, Config.BiasCoverage ? Graph : nullptr, R);

  if (Config.TrackApiCoverage || Config.GraphPrune) {
    AcquireGraph();
    if (Config.TrackApiCoverage)
      ApiCov = std::make_unique<coverage::ApiPairCoverage>(*Graph);
  }

  SimClock Clock;
  if (Obs) {
    Obs->bindClock(&Clock);
    Obs->begin("run", "driver",
               obs::ArgList()
                   .add("crate", Spec->Info.Name)
                   .add("seed", Config.Seed)
                   .add("budget_seconds", Config.BudgetSeconds));
  }

  RefinementEngine Refine(Inst->Arena, Inst->Db, Config.Mode);
  Refine.setEagerCap(Config.EagerCap);
  Refine.setRecorder(Obs);
  Refine.initialize(Inst->Inputs);

  SynthOptions Opts;
  Opts.SemanticAware = Config.SemanticAware;
  Opts.InterleaveLengths = Config.InterleaveLengths;
  Opts.IncrementalRefinement = Config.IncrementalRefinement;
  Opts.Portfolio = Config.Portfolio;
  Opts.Strategy = Config.Strategy;
  if (Config.SolveConflictBudget != 0)
    Opts.SolveConflictBudget = Config.SolveConflictBudget;
  Opts.SolverSeed = Config.Seed;
  Opts.Obs = Obs;
  Opts.Compat = Compat.get();
  Opts.Graph = Graph;
  Opts.GraphPrune = Config.GraphPrune;
  Opts.BiasCoverage = Config.BiasCoverage;
  Opts.BiasSeed = Config.Seed;
  Synthesizer Synth(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs,
                    Inst->MaxLen, Opts);
  Checker Check(Inst->Arena, Inst->Traits);
  coverage::CoverageMap Cov(Inst->ComponentLines, Inst->LibraryLines,
                            Inst->ComponentBranches,
                            Inst->LibraryBranches);
  TemplateInit Init = Inst->Init;
  if (Config.MutateInputs) {
    // Input-mutation extension: jitter scalar payloads and lengths so
    // data-dependent branches flip across executions.
    TemplateInit Base = Inst->Init;
    Init = [Base](AbstractHeap &Heap, Rng &R) {
      std::vector<Value> Values = Base(Heap, R);
      for (Value &V : Values) {
        V.Int += static_cast<int64_t>(R.below(7)) - 3;
        if (V.Int < 0)
          V.Int = 0;
        if (V.Len > 0) {
          V.Len += static_cast<int64_t>(R.below(5)) - 2;
          if (V.Len < 0)
            V.Len = 0;
          if (V.Cap < V.Len)
            V.Cap = V.Len;
        }
      }
      return Values;
    };
  }
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Init, &Cov,
                     Config.Seed + 7);

  Check.setRecorder(Obs);
  Interp.setRecorder(Obs);

  if (Obs) {
    // Totals once up front, covered pre-created at zero: every metrics
    // snapshot row carries the full coverage.api.* set from t=0. The
    // matrix gauge is observability for the shared analysis; gauges are
    // not campaign-merged, so per-run it is simply the frozen size.
    if (ApiCov) {
      const coverage::ApiCoverageData D0 = ApiCov->data();
      Obs->count("coverage.api.nodes_total", D0.NodesTotal);
      Obs->count("coverage.api.edges_total", D0.EdgesTotal);
      Obs->count("coverage.api.nodes_covered", 0);
      Obs->count("coverage.api.edges_covered", 0);
    }
    if (Analysis)
      Obs->gaugeSet("compat.matrix.entries",
                    static_cast<double>(Analysis->matrixEntries()));
  }

  double NextSnapshot = Config.SnapshotInterval;
  double CurveStep =
      Config.BudgetSeconds / std::max(Config.CurveSamples, 1);
  int CurveIdx = 0;

  auto SampleCurve = [&]() {
    // The curve is strictly monotone in AtSeconds: when several sample
    // boundaries fall into one loop iteration (or the budget runs out
    // exactly on a boundary) only one point is recorded for that time.
    if (!Result.Curve.empty() &&
        Result.Curve.back().AtSeconds >= Clock.now())
      return;
    CurvePoint P;
    P.AtSeconds = Clock.now();
    P.Synthesized = Result.Synthesized;
    P.Rejected = Result.Rejected;
    P.TypeErrors = Result.ByCategory[ErrorCategory::Type];
    P.LifetimeErrors = Result.ByCategory[ErrorCategory::LifetimeOwnership];
    P.MiscErrors = Result.ByCategory[ErrorCategory::Misc];
    Result.Curve.push_back(P);
  };

  while (!Clock.exhausted(Config.BudgetSeconds)) {
    if (Config.MaxTests != 0 && Result.Synthesized >= Config.MaxTests)
      break;
    double CandStart = Clock.now();
    uint64_t CandId = Result.Synthesized;
    std::optional<Program> P = Synth.next();
    Clock.charge(Config.SolveCost);
    if (Obs)
      Obs->complete("stage.synthesize", "driver", CandStart,
                    Config.SolveCost,
                    obs::ArgList()
                        .add("candidate", CandId)
                        .add("produced", P.has_value()));
    if (!P.has_value()) {
      // A budget-stop run ends on Unknown, not on an exhaustion proof -
      // claiming SpaceExhausted would launder "gave up" into "proved
      // UNSAT" in every downstream report.
      Result.SpaceExhausted = !Synth.sawBudgetStop();
      break;
    }
    Result.MaxLenReached =
        std::max(Result.MaxLenReached, static_cast<int>(P->Stmts.size()));
    ++Result.Synthesized;
    if (Obs)
      Obs->count("driver.synthesized");
    if (ApiCov) {
      const coverage::ApiPairCoverage::MarkDelta Delta =
          ApiCov->markProgram(*P, Inst->Db);
      if (Config.BiasCoverage)
        Synth.noteCoverage(static_cast<int>(P->Stmts.size()),
                           Delta.NewEdges, Clock.now());
      if (Obs) {
        if (Delta.NewNodes)
          Obs->count("coverage.api.nodes_covered", Delta.NewNodes);
        if (Delta.NewEdges)
          Obs->count("coverage.api.edges_covered", Delta.NewEdges);
        if (Delta.Unmatched)
          Obs->count("coverage.api.unmatched_edges", Delta.Unmatched);
      }
    }

    // Test executor stage 1: compile.
    double CompileStart = Clock.now();
    CompileResult Compiled = Check.check(*P, Inst->Db);
    Clock.charge(Config.CompileCost);
    if (Obs)
      Obs->complete("stage.compile", "driver", CompileStart,
                    Config.CompileCost,
                    obs::ArgList()
                        .add("candidate", CandId)
                        .add("ok", Compiled.Success));
    const char *CandVerdict = "rejected";
    bool StopNow = false;
    bool DbChanged = false;
    auto Record = [&](TestVerdict Verdict, ErrorDetail Detail,
                      miri::UbKind Ub, const std::string &Message) {
      TestRecord Rec;
      Rec.Hash = P->hash();
      Rec.Lines = static_cast<int>(P->Stmts.size());
      Rec.AtSeconds = Clock.now();
      Rec.Verdict = Verdict;
      Rec.Detail = Detail;
      Rec.Ub = Ub;
      Rec.Message = Message;
      if (Result.Db.wantsMore())
        Rec.Source = P->render(Inst->Db);
      Result.Db.record(std::move(Rec));
    };
    if (!Compiled.Success) {
      ++Result.Rejected;
      if (Obs)
        Obs->count("driver.rejected");
      ++Result.ByCategory[Compiled.Diag.Category];
      ++Result.ByDetail[Compiled.Diag.Detail];
      if (Config.JsonErrorChannel) {
        // Paper pipeline: the executor emits a cargo-style JSON message,
        // the synthesizer side parses it back (Section 6.1).
        std::string Wire = diagnosticToJson(Compiled.Diag);
        Diagnostic Parsed;
        std::string Err;
        if (diagnosticFromJson(Wire, Inst->Arena, Parsed, Err)) {
          DbChanged = Refine.onDiagnostic(Parsed);
        } else {
          std::fprintf(stderr, "json channel error: %s\n", Err.c_str());
          DbChanged = Refine.onDiagnostic(Compiled.Diag);
        }
      } else {
        DbChanged = Refine.onDiagnostic(Compiled.Diag);
      }
      Record(TestVerdict::Rejected, Compiled.Diag.Detail,
             miri::UbKind::None, Compiled.Diag.Message);
    } else {
      DbChanged = Refine.onSuccess(*P);
      // Test executor stage 2: run under the miri substitute.
      double ExecStart = Clock.now();
      ExecResult Exec = Interp.run(*P);
      Clock.charge(Config.ExecCost * Inst->MiriCostFactor);
      ++Result.Executed;
      if (Obs) {
        Obs->complete("stage.execute", "driver", ExecStart,
                      Config.ExecCost * Inst->MiriCostFactor,
                      obs::ArgList()
                          .add("candidate", CandId)
                          .add("ub", Exec.UbFound));
        Obs->count("driver.executed");
      }
      CandVerdict = Exec.UbFound ? "ub" : "passed";
      Record(Exec.UbFound ? TestVerdict::Ub : TestVerdict::Passed,
             ErrorDetail::None, Exec.Report.Kind, Exec.Report.Message);
      if (Exec.UbFound) {
        ++Result.UbCount;
        if (Obs)
          Obs->count("driver.ub");
        if (!Result.BugFound) {
          Result.BugFound = true;
          Result.FirstBug = Exec.Report;
          Result.TimeToBug = Clock.now();
          Result.BugLines = static_cast<int>(P->Stmts.size());
          Result.BugProgram = P->render(Inst->Db);
          if (Config.MinimizeBugs) {
            MinimizedBug Min = minimizeBugProgram(*Inst, *P,
                                                  Exec.Report.Kind);
            Result.MinimizedLines = Min.Lines;
            Result.MinimizedProgram = Min.Program.render(Inst->Db);
          }
        }
        if (Config.StopOnFirstBug)
          StopNow = true;
      }
    }
    if (DbChanged)
      Synth.notifyDatabaseChanged();
    if (Obs)
      Obs->complete("candidate", "driver", CandStart,
                    Clock.now() - CandStart,
                    obs::ArgList()
                        .add("candidate", CandId)
                        .add("verdict", CandVerdict)
                        .add("lines", static_cast<int>(P->Stmts.size()))
                        .add("refined", DbChanged));
    if (StopNow)
      break;

    // Index-based boundaries: accumulating NextCurve += CurveStep drifts
    // in floating point and could drop the final in-budget sample.
    while (CurveIdx < Config.CurveSamples &&
           Clock.now() >= CurveStep * (CurveIdx + 1)) {
      SampleCurve();
      ++CurveIdx;
    }
    while (Clock.now() >= NextSnapshot &&
           NextSnapshot <= Config.BudgetSeconds) {
      Cov.snapshot(NextSnapshot);
      if (ApiCov)
        ApiCov->snapshot(NextSnapshot);
      if (Obs)
        Obs->snapshotMetrics(NextSnapshot);
      NextSnapshot += Config.SnapshotInterval;
    }
  }
  SampleCurve(); // Terminal point (skipped if this instant was sampled).
  Cov.snapshot(Clock.now());
  if (ApiCov)
    ApiCov->snapshot(Clock.now());

  Result.Coverage = Cov.numbers();
  Result.CoverageSnaps = Cov.snapshots();
  Result.CoverageSaturation = Cov.saturationTime();
  Result.Synth = Synth.stats();
  if (Compat) {
    const types::CompatCache::Stats &CS = Compat->stats();
    Result.Synth.CompatHits = CS.Hits;
    Result.Synth.CompatBaseHits = CS.BaseHits;
    Result.Synth.CompatMisses = CS.Misses;
    if (Obs) {
      Obs->count("compat.cache.hits", CS.Hits);
      Obs->count("compat.cache.base_hits", CS.BaseHits);
      Obs->count("compat.cache.misses", CS.Misses);
    }
  }
  if (Obs) {
    Obs->count("synth.prune.graph_probes", Result.Synth.PruneGraphProbes);
    Obs->count("synth.prune.fallback_probes",
               Result.Synth.PruneFallbackProbes);
    Obs->count("synth.prune.dead_sites", Result.Synth.PruneDeadSites);
    Obs->count("synth.prune.vars_avoided", Result.Synth.PruneVarsAvoided);
    Obs->count("synth.prune.clauses_avoided",
               Result.Synth.PruneClausesAvoided);
    // Only bias runs emit synth.bias.* rows: a bias-off aggregate must
    // stay byte-identical to the pre-bias pipeline, zero rows included.
    if (Config.BiasCoverage) {
      Obs->count("synth.bias.picks", Result.Synth.BiasPicks);
      Obs->count("synth.bias.new_edges", Result.Synth.BiasNewEdges);
      Obs->count("synth.bias.decays", Result.Synth.BiasDecays);
    }
  }
  if (ApiCov)
    Result.ApiCoverage = ApiCov->data();
  Result.Refine = Refine.stats();
  Result.ElapsedSeconds = Clock.now();
  if (Obs) {
    Obs->snapshotMetrics(Clock.now()); // Terminal metrics snapshot.
    Obs->end("run", "driver",
             obs::ArgList()
                 .add("synthesized", Result.Synthesized)
                 .add("rejected", Result.Rejected)
                 .add("executed", Result.Executed)
                 .add("ub", Result.UbCount));
    // The SimClock dies with this frame; detach so late events (there
    // should be none) cannot read freed memory.
    Obs->bindClock(nullptr);
  }
  return Result;
}
