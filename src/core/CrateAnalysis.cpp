//===--- CrateAnalysis.cpp - Shared per-crate analysis --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CrateAnalysis.h"

#include "support/StringUtils.h"
#include "types/Subtyping.h"

#include <set>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::types;

namespace {

/// Precompute guard: a pathological model (huge API count x huge type
/// universe) should not stall Session construction. Beyond this many
/// joint entries the remaining pairs are left to the workers' lazy
/// per-run caches; correctness is unaffected.
constexpr size_t MaxJointEntries = 2'000'000;

} // namespace

CrateAnalysis::CrateAnalysis(const CrateSpec &Spec)
    : Base(Spec.instantiate()) {
  TypeArena &Arena = Base->Arena;
  const ApiDatabase &Db = Base->Db;

  // Rename every API's signature exactly as Encoding::sync will
  // (suffix "a<ApiId>"), interning into the base arena: workers' overlay
  // arenas resolve the same renames to these pointers, so their probes
  // hit the matrix computed below. All APIs are covered, not just one
  // run's 15-API selection - the matrix is selection-independent.
  std::vector<std::vector<const Type *>> RenIn(Db.size());
  std::vector<const Type *> RenOut(Db.size());
  for (size_t K = 0; K < Db.size(); ++K) {
    const ApiSig &Sig = Db.get(static_cast<ApiId>(K));
    std::string Suffix = format("a%d", static_cast<ApiId>(K));
    for (const Type *In : Sig.Inputs)
      RenIn[K].push_back(renameVars(Arena, In, Suffix));
    RenOut[K] = renameVars(Arena, Sig.Output, Suffix);
  }

  // The encoder-level cell-type universe: template input types, renamed
  // API outputs, and the builtin-derived types (&T and &mut T of every
  // non-reference cell type; let-mut copies the type itself). This is
  // the closure of Encoding::buildTypeUniverse over any line count -
  // builtins act on non-refs only, so one derivation round suffices.
  std::vector<const Type *> Cells;
  std::set<const Type *> Seen;
  auto AddCell = [&](const Type *Ty) {
    if (Seen.insert(Ty).second)
      Cells.push_back(Ty);
  };
  for (const auto &In : Base->Inputs)
    AddCell(In.Ty);
  for (size_t K = 0; K < Db.size(); ++K)
    if (Db.get(static_cast<ApiId>(K)).Builtin == BuiltinKind::None)
      AddCell(RenOut[K]);
  for (size_t I = Cells.size(); I-- > 0;) {
    const Type *Ty = Cells[I];
    if (Ty->isRef())
      continue;
    AddCell(Arena.ref(Ty, /*Mutable=*/false));
    AddCell(Arena.ref(Ty, /*Mutable=*/true));
  }

  // Per-slot matrix: every (cell type, renamed input pattern) pair the
  // call-site builder can probe.
  for (size_t K = 0; K < Db.size(); ++K)
    for (const Type *Pattern : RenIn[K])
      for (const Type *Ty : Cells)
        BaseCache.unifiable2(Ty, Pattern);

  // Producer/consumer graph over the same renamed signatures. Every
  // probe it makes is (RenOut, Pattern) - a subset of the per-slot loop
  // above, so this is pure cache hits: zero extra unification work.
  // Built before the joint loop so its MaxJointEntries early return
  // cannot leave the graph empty.
  Graph = api::buildDependencyGraph(Db, Arena, BaseCache);

  // Joint slot-pairwise matrix (Definition 2(3)): for every API with at
  // least two inputs, every slot pair under every cell-type pair. The
  // builtins all take one input, so they never reach this loop.
  for (size_t K = 0; K < Db.size(); ++K) {
    const std::vector<const Type *> &In = RenIn[K];
    for (size_t J1 = 0; J1 < In.size(); ++J1) {
      for (size_t J2 = J1 + 1; J2 < In.size(); ++J2) {
        for (const Type *T1 : Cells) {
          for (const Type *T2 : Cells) {
            if (BaseCache.size() >= MaxJointEntries)
              return;
            BaseCache.unifiableJoint(T1, In[J1], T2, In[J2]);
          }
        }
      }
    }
  }
}

std::unique_ptr<CrateInstance> CrateAnalysis::makeWorkerInstance() const {
  return std::make_unique<CrateInstance>(*Base, types::Overlay);
}
