//===--- RequestSpec.h - Unified request API -------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One validated request type behind every way of asking the framework
/// to do something: the `syrust` CLI verbs and the `syrust serve` wire
/// protocol both construct a RequestSpec, through the same option table
/// (one entry per knob: flag spelling, JSON key = the flag minus `--`,
/// verb mask, value kind, setter). A flag and its protocol field
/// therefore cannot drift — they are the same table row — and both
/// surfaces get the same one-specific-message-per-bad-field validation.
///
/// The spec is a sum type in the tagged-struct rendition: `V` selects
/// which payload is active (run/campaign/audit/coverage/report/serve),
/// and validate() checks exactly the active payload. Output routing
/// (`--out`, `--trace-out`, `--metrics-out`, `--coverage-out`, `--json`)
/// is one shared Outputs struct instead of the three per-verb copies the
/// old CLI grew.
///
/// Exit codes are uniform across every verb (and documented in
/// docs/SERVE.md):
///   0  success, nothing found
///   1  finding: a run/campaign found undefined behavior, or an audit
///      found an unexpected encoder/checker disagreement
///   2  usage or configuration error (bad flag, bad field, bad spec)
///   3  environment failure (unreadable input, unwritable output,
///      socket errors)
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CLI_REQUESTSPEC_H
#define SYRUST_CLI_REQUESTSPEC_H

#include "campaign/Campaign.h"
#include "oracle/AuditRunner.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace syrust::cli {

/// Uniform exit codes; see the file comment.
enum ExitCode {
  ExitOk = 0,
  ExitFinding = 1,
  ExitUsage = 2,
  ExitRuntime = 3,
};

/// Which request this is (the sum-type tag).
enum class Verb {
  List,
  Run,
  Campaign,
  Audit,
  Coverage,
  Report,
  Serve,
};

/// Verb by wire/CLI name ("run", "campaign", ...); false for unknown.
bool verbFromName(const std::string &Name, Verb &Out);
const char *verbName(Verb V);

/// Where results go — the one output-routing struct shared by every
/// verb (replacing three near-duplicate per-verb plumbings).
struct Outputs {
  /// `--out DIR`: campaign writes aggregate.json + per-job documents +
  /// trace.json here; audit writes audit.json.
  std::string OutDir;
  /// `--trace-out FILE` (run): Chrome trace-event JSON.
  std::string TraceOut;
  /// `--trace` (campaign): merge per-worker traces into OutDir/trace.json.
  bool MergeTrace = false;
  /// `--metrics-out FILE` (run): JSONL metrics snapshots.
  std::string MetricsOut;
  /// `--coverage-out FILE` (run/campaign/audit): the API-pair coverage
  /// document.
  std::string CoverageOut;
  /// `--json` (run/audit): print the result document to stdout instead
  /// of the human summary.
  bool Json = false;
};

/// `syrust run <crate>`.
struct RunRequest {
  std::string Crate;
  core::RunConfig Config;
  /// `--trace-wall`: wall-clock timestamps on trace events.
  bool TraceWall = false;
};

/// `syrust campaign`.
struct CampaignRequest {
  campaign::CampaignSpec Spec;
  /// Empty Spec.Crates means "all supported" until finalize() expands it.
  /// `--checkpoint FILE`: JSONL checkpoint (campaign/Checkpoint.h).
  /// An existing file resumes (its finished cells are not re-run); a
  /// fresh file records cells as they finish.
  std::string CheckpointPath;
};

/// `syrust audit`.
struct AuditRequest {
  oracle::AuditSpec Spec; ///< Empty Crates = "all supported", as above.
};

/// `syrust coverage <file>`.
struct CoverageRequest {
  std::string File;
  int Top = 10; ///< `--top N` never-covered edges per crate.
};

/// `syrust report <trace.json>`.
struct ReportRequest {
  std::string File;
};

/// `syrust serve`.
struct ServeRequest {
  /// `--socket PATH`: the AF_UNIX listening address (required).
  std::string SocketPath;
  /// `--max-inflight N`: per-client cap on queued+running requests;
  /// excess submissions are rejected with an error response.
  int MaxInflight = 4;
  /// `--checkpoint-dir DIR`: campaign requests checkpoint to
  /// DIR/<fingerprint>.jsonl, so a killed daemon resumes them when the
  /// same spec is resubmitted.
  std::string CheckpointDir;
};

/// The unified request. `V` is the tag; exactly one payload is active.
struct RequestSpec {
  Verb V = Verb::List;

  RunRequest Run;
  CampaignRequest Campaign;
  AuditRequest Audit;
  CoverageRequest Coverage;
  ReportRequest Report;
  ServeRequest Serve;

  Outputs Out;

  /// `--connect SOCKET` (run/campaign/audit/coverage): submit this
  /// request to a `syrust serve` daemon instead of executing in-process;
  /// responses (stdout text, output files, exit code) are identical by
  /// construction because the daemon runs the same execute().
  std::string Connect;
};

/// Parses one verb's arguments (\p Argv excludes the program name and
/// the verb word). Malformed flags, missing values, and malformed
/// numbers each produce one specific message in \p Errors; returns
/// false when any were found. Defaults that need a Session (the "all
/// crates" expansions) stay unexpanded until finalize().
bool parseArgv(Verb V, int Argc, const char *const *Argv,
               RequestSpec &Out, std::vector<std::string> &Errors);

/// Decodes a serve-protocol request object through the same option
/// table as parseArgv: `verb` names the verb, every other member must
/// be a table key valid for that verb (numbers for Num knobs, strings
/// for Str knobs, booleans for Flag knobs; `true` applies the flag,
/// `false` is ignored). Positionals travel as "crate" (run) and "file"
/// (coverage). One specific message per bad member.
bool fromRequestJson(const json::Value &V, RequestSpec &Out,
                     std::vector<std::string> &Errors);

/// Renders parsed argv as the equivalent protocol request object (what
/// `--connect` submits). Walks the same option table, so the wire form
/// of every flag matches what fromRequestJson expects by construction.
bool argvToRequestJson(Verb V, int Argc, const char *const *Argv,
                       json::Value &Out, std::vector<std::string> &Errors);

/// Expands Session-dependent defaults (empty campaign/audit crate lists
/// become every synthesis-supporting crate) and validates the active
/// payload: cross-field rules (`--trace-wall` needs `--trace-out`,
/// `--trace` needs `--out`, checkpointing does not compose with trace
/// merging), then the payload's own domain checks.
/// Returns one specific message per problem; empty = executable.
std::vector<std::string> finalize(const core::Session &S,
                                  RequestSpec &Spec);

/// One usage string for every verb (the `syrust` top-level help).
std::string usageText();

} // namespace syrust::cli

#endif // SYRUST_CLI_REQUESTSPEC_H
