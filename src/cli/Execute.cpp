//===--- Execute.cpp - Shared request execution ---------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cli/Execute.h"

#include "campaign/CampaignRunner.h"
#include "campaign/Checkpoint.h"
#include "core/ResultJson.h"
#include "report/CoverageReport.h"
#include "report/Table.h"
#include "report/TraceReport.h"
#include "support/StringUtils.h"
#include "types/CompatCache.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <memory>

using namespace syrust;
using namespace syrust::cli;
using namespace syrust::core;
using namespace syrust::report;
using namespace syrust::rustsim;

namespace {

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

bool readFileTo(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  return Ok;
}

std::string joinDir(const std::string &Dir, const std::string &Name) {
  if (Dir.empty() || Dir.back() == '/')
    return Dir + Name;
  return Dir + "/" + Name;
}

Response usageError(std::string Msg) {
  Response R;
  R.ExitCode = ExitUsage;
  R.Error = std::move(Msg);
  return R;
}

Response runtimeError(std::string Msg) {
  Response R;
  R.ExitCode = ExitRuntime;
  R.Error = std::move(Msg);
  return R;
}

Response executeList(const Session &S) {
  Response Resp;
  Table T({"Library", "Cat.", "Downloads", "Poly", "Subcomponent",
           "Bug", "Synthesizable"});
  for (const crates::CrateSpec &Spec : S.crates()) {
    T.addRow({Spec.Info.Name, Spec.Info.Category,
              fmtCount(Spec.Info.Downloads),
              Spec.Info.Polymorphic ? "yes" : "no",
              Spec.Info.Subcomponent,
              Spec.Bug ? Spec.Bug->BugType : "-",
              Spec.Info.SupportsSynthesis ? "yes" : "no (closures)"});
  }
  Resp.Output = T.render();
  return Resp;
}

/// The run verb's human summary, byte-for-byte what the old CLI printed.
std::string renderRunSummary(const crates::CrateSpec &Spec,
                             const RunResult &R) {
  std::string O;
  O += format("crate            %s (%s)\n", Spec.Info.Name.c_str(),
              Spec.Info.Subcomponent.c_str());
  O += format("synthesized      %llu (max length %d%s)\n",
              static_cast<unsigned long long>(R.Synthesized),
              R.MaxLenReached,
              R.SpaceExhausted ? ", space exhausted" : "");
  O += format("rejected         %llu (%s)\n",
              static_cast<unsigned long long>(R.Rejected),
              fmtPercent(R.rejectedPercent()).c_str());
  O += format("  type           %s\n",
              fmtShare(R.categoryPercent(ErrorCategory::Type)).c_str());
  O += format(
      "  lifetime/own   %s\n",
      fmtShare(R.categoryPercent(ErrorCategory::LifetimeOwnership))
          .c_str());
  O += format("  misc           %s\n",
              fmtShare(R.categoryPercent(ErrorCategory::Misc)).c_str());
  O += format("executed         %llu\n",
              static_cast<unsigned long long>(R.Executed));
  O += format("synthesis        %llu rebuilds, %llu incremental "
              "extends, %llu models re-blocked\n",
              static_cast<unsigned long long>(R.Synth.Rebuilds),
              static_cast<unsigned long long>(R.Synth.IncrementalExtends),
              static_cast<unsigned long long>(R.Synth.ModelsReblocked));
  O += format("                 %llu duplicates skipped, %llu "
              "dead-length revivals\n",
              static_cast<unsigned long long>(R.Synth.DuplicatesSkipped),
              static_cast<unsigned long long>(R.Synth.DeadLengthRevivals));
  O += format("solver           %llu solve calls, %llu conflicts, "
              "%llu propagations\n",
              static_cast<unsigned long long>(R.Synth.SolveCalls),
              static_cast<unsigned long long>(R.Synth.SolverConflicts),
              static_cast<unsigned long long>(R.Synth.SolverPropagations));
  O += format("                 %.3fs building encodings, %.3fs solving "
              "(wall)\n",
              R.Synth.BuildSeconds, R.Synth.SolveSeconds);
  O += format("coverage         component %.2f%% line / %.2f%% branch; "
              "library %.2f%% / %.2f%%\n",
              R.Coverage.ComponentLine, R.Coverage.ComponentBranch,
              R.Coverage.LibraryLine, R.Coverage.LibraryBranch);
  if (R.BugFound) {
    O += format("\nBUG after %.2f sim-s (%d lines): %s\n", R.TimeToBug,
                R.BugLines, R.FirstBug.Message.c_str());
    O += R.BugProgram;
    if (R.MinimizedLines > 0 && !R.MinimizedProgram.empty()) {
      O += format("\nminimized to %d lines:\n%s", R.MinimizedLines,
                  R.MinimizedProgram.c_str());
    }
  } else {
    O += "\nno undefined behavior found within budget\n";
  }
  if (!R.Db.records().empty()) {
    O += format("\nfirst %zu test records (Algorithm 1's DB):\n",
                R.Db.records().size());
    for (const TestRecord &Rec : R.Db.records()) {
      const char *Verdict = Rec.Verdict == TestVerdict::Rejected
                                ? "REJECTED"
                                : Rec.Verdict == TestVerdict::Ub
                                      ? "UB"
                                      : "passed";
      O += format("[t=%.2f %s] %s\n%s", Rec.AtSeconds, Verdict,
                  Rec.Message.c_str(), Rec.Source.c_str());
    }
  }
  return O;
}

Response executeRun(const Session &S, const RequestSpec &Spec) {
  const crates::CrateSpec *Crate = S.find(Spec.Run.Crate);
  if (!Crate)
    return usageError("unknown crate '" + Spec.Run.Crate +
                      "'; try `syrust list`");

  obs::Recorder::Options ObsOpts;
  ObsOpts.Trace = !Spec.Out.TraceOut.empty();
  ObsOpts.Metrics = !Spec.Out.MetricsOut.empty();
  ObsOpts.WallClock = Spec.Run.TraceWall;
  obs::Recorder Recorder(ObsOpts);
  obs::Recorder *Obs =
      (ObsOpts.Trace || ObsOpts.Metrics) ? &Recorder : nullptr;

  RunResult R = S.runOne(*Crate, Spec.Run.Config, Obs);

  Response Resp;
  if (!Spec.Out.TraceOut.empty())
    Resp.Files.emplace_back(Spec.Out.TraceOut,
                            Recorder.tracer().chromeJson());
  if (!Spec.Out.MetricsOut.empty())
    Resp.Files.emplace_back(Spec.Out.MetricsOut,
                            Recorder.metrics().jsonl());
  if (!Spec.Out.CoverageOut.empty())
    Resp.Files.emplace_back(
        Spec.Out.CoverageOut,
        coverage::coverageDocumentToJson(
            {{Crate->Info.Name, R.ApiCoverage}})
                .dump() +
            "\n");

  if (Spec.Out.Json) {
    Resp.Output = resultToJson(R).dump() + "\n";
  } else if (!R.Supported) {
    Resp.Output =
        format("%s uses closure-based APIs; excluded from synthesis "
               "(Section 7.1)\n",
               Crate->Info.Name.c_str());
    return Resp;
  } else {
    Resp.Output = renderRunSummary(*Crate, R);
  }
  if (R.BugFound)
    Resp.ExitCode = ExitFinding;
  return Resp;
}

Response executeCampaign(const Session &S, const RequestSpec &Req,
                         const ProgressFn &Progress) {
  const campaign::CampaignSpec &Spec = Req.Campaign.Spec;
  campaign::CampaignRunner Runner(S, Spec);

  // Checkpoint/resume: an existing file's finished cells preload (after
  // a fingerprint check — resuming someone else's matrix would corrupt
  // both), and every live cell appends one flushed line.
  campaign::CheckpointWriter CkptWriter;
  const std::string &CkptPath = Req.Campaign.CheckpointPath;
  if (!CkptPath.empty()) {
    if (fileExists(CkptPath)) {
      campaign::CheckpointData Data;
      std::string Err;
      if (!campaign::loadCheckpoint(CkptPath, Data, Err))
        return runtimeError(Err);
      const std::string Want = campaign::specFingerprint(Spec);
      if (Data.Fingerprint != Want)
        return usageError(
            "checkpoint '" + CkptPath + "' belongs to a different "
            "campaign (fingerprint " + Data.Fingerprint + ", this spec " +
            Want + "); point --checkpoint elsewhere");
      if (Progress)
        Progress(format("resuming: %zu finished cell(s) preloaded from "
                        "checkpoint",
                        Data.Cells.size()));
      Runner.preload(std::move(Data.Cells));
    }
    std::string Err;
    if (!CkptWriter.open(CkptPath, Spec, Err))
      return runtimeError(Err);
    Runner.onJobCheckpoint(
        [&](const campaign::CampaignJobResult &JR,
            const std::map<std::string, uint64_t> &Deltas) {
          CkptWriter.append(JR, Deltas);
        });
  }

  size_t Total = campaign::expandMatrix(Spec).size();
  size_t Done = 0;
  if (Progress)
    Runner.onJobDone([&](const campaign::CampaignJobResult &JR) {
      ++Done;
      Progress(format("[%zu/%zu] %s seed=%llu %s: %llu synthesized",
                      Done, Total, JR.Job.Crate.c_str(),
                      static_cast<unsigned long long>(JR.Job.Seed),
                      JR.Job.Variant.c_str(),
                      static_cast<unsigned long long>(
                          JR.Result.Synthesized)));
    });

  campaign::CampaignResult R = Runner.run();
  CkptWriter.close();
  std::string Aggregate = campaign::campaignToJson(Spec, R).dump();

  Response Resp;
  if (R.Totals.BugsFound > 0)
    Resp.ExitCode = ExitFinding;
  if (!Req.Out.CoverageOut.empty())
    Resp.Files.emplace_back(
        Req.Out.CoverageOut,
        coverage::coverageDocumentToJson(R.ApiCoverage).dump() + "\n");

  if (Req.Out.OutDir.empty()) {
    Resp.Output = Aggregate + "\n";
    return Resp;
  }

  const std::string &Dir = Req.Out.OutDir;
  Resp.Files.emplace_back(joinDir(Dir, "aggregate.json"),
                          Aggregate + "\n");
  for (const campaign::CampaignJobResult &JR : R.Jobs) {
    std::string Name =
        format("job-%03zu-%s-s%llu-%s.json", JR.Job.Index,
               JR.Job.Crate.c_str(),
               static_cast<unsigned long long>(JR.Job.Seed),
               JR.Job.Variant.c_str());
    Resp.Files.emplace_back(joinDir(Dir, Name),
                            resultToJson(JR.Result).dump() + "\n");
  }
  if (Spec.Trace)
    Resp.Files.emplace_back(joinDir(Dir, "trace.json"),
                            R.MergedTraceJson);

  Table T({"Crate", "Seed", "Variant", "# Synthesized", "# Rejected (%)",
           "# Executed", "Bug"});
  for (const campaign::CampaignJobResult &JR : R.Jobs) {
    const RunResult &Res = JR.Result;
    T.addRow({JR.Job.Crate, std::to_string(JR.Job.Seed), JR.Job.Variant,
              fmtCount(Res.Synthesized),
              fmtCount(Res.Rejected) + " (" +
                  fmtPercent(Res.rejectedPercent()) + ")",
              fmtCount(Res.Executed), Res.BugFound ? "yes" : "-"});
  }
  Resp.Output = T.render();
  Resp.Output +=
      format("\ntotals: %llu synthesized, %llu rejected, %llu executed, "
             "%llu UB events, %llu jobs with a bug\n",
             static_cast<unsigned long long>(R.Totals.Synthesized),
             static_cast<unsigned long long>(R.Totals.Rejected),
             static_cast<unsigned long long>(R.Totals.Executed),
             static_cast<unsigned long long>(R.Totals.UbCount),
             static_cast<unsigned long long>(R.Totals.BugsFound));
  Resp.Output += format("wrote %s and %zu per-job documents\n",
                        joinDir(Dir, "aggregate.json").c_str(),
                        R.Jobs.size());
  return Resp;
}

Response executeAudit(const Session &S, const RequestSpec &Req,
                      const ProgressFn &Progress) {
  const oracle::AuditSpec &Spec = Req.Audit.Spec;
  size_t Total = oracle::expandAuditMatrix(Spec).size();
  size_t Done = 0;
  oracle::AuditRunResult R = runAudit(
      S, Spec,
      [&](const oracle::AuditJobResult &JR) {
        if (!Progress)
          return;
        ++Done;
        Progress(format(
            "[%zu/%zu] %s seed=%llu: %llu replayed, %llu unexpected",
            Done, Total, JR.Job.Crate.c_str(),
            static_cast<unsigned long long>(JR.Job.Seed),
            static_cast<unsigned long long>(JR.Result.ModelsReplayed),
            static_cast<unsigned long long>(
                JR.Result.UnexpectedTotal)));
      });
  std::string Doc = auditToJson(Spec, R).dump();

  Response Resp;
  Resp.ExitCode = R.clean() ? ExitOk : ExitFinding;
  if (!Req.Out.CoverageOut.empty())
    Resp.Files.emplace_back(
        Req.Out.CoverageOut,
        coverage::coverageDocumentToJson(R.ApiCoverage).dump() + "\n");
  if (!Req.Out.OutDir.empty())
    Resp.Files.emplace_back(joinDir(Req.Out.OutDir, "audit.json"),
                            Doc + "\n");
  if (Req.Out.Json) {
    Resp.Output = Doc + "\n";
    return Resp;
  }

  Table T({"Crate", "Seed", "Replayed", "Pass", "Agree-Reject",
           "Expected", "UNEXPECTED", "Filtered-OK"});
  for (const oracle::AuditJobResult &JR : R.Jobs) {
    const oracle::AuditResult &Res = JR.Result;
    T.addRow({JR.Job.Crate, std::to_string(JR.Job.Seed),
              fmtCount(Res.ModelsReplayed), fmtCount(Res.AgreePass),
              fmtCount(Res.AgreeReject), fmtCount(Res.ExpectedTotal),
              fmtCount(Res.UnexpectedTotal),
              fmtCount(Res.FilteredCompilable)});
  }
  Resp.Output = T.render();
  Resp.Output += format(
      "\ntotals: %llu replayed, %llu agree-pass, %llu agree-reject, "
      "%llu expected, %llu UNEXPECTED, %llu filtered-compilable\n",
      static_cast<unsigned long long>(R.Totals.ModelsReplayed),
      static_cast<unsigned long long>(R.Totals.AgreePass),
      static_cast<unsigned long long>(R.Totals.AgreeReject),
      static_cast<unsigned long long>(R.Totals.ExpectedTotal),
      static_cast<unsigned long long>(R.Totals.UnexpectedTotal),
      static_cast<unsigned long long>(R.Totals.FilteredCompilable));
  for (const oracle::AuditJobResult &JR : R.Jobs)
    for (const oracle::Disagreement &D : JR.Result.Unexpected)
      Resp.Output += format(
          "\nUNEXPECTED %s (%s seed=%llu): %s\noriginal "
          "(%d lines):\n%sminimized (%d lines, %llu steps):\n%s",
          detailName(D.Detail), JR.Job.Crate.c_str(),
          static_cast<unsigned long long>(JR.Job.Seed),
          D.Message.c_str(), D.Lines, D.Source.c_str(),
          D.MinimizedLines,
          static_cast<unsigned long long>(D.MinimizerSteps),
          D.MinimizedSource.c_str());
  if (Resp.ExitCode != ExitOk)
    Resp.Output += format(
        "\naudit FAILED: %llu unexpected disagreement(s) - the encoder "
        "and checker disagree about Rust\n",
        static_cast<unsigned long long>(R.Totals.UnexpectedTotal));
  return Resp;
}

Response executeReport(const RequestSpec &Req) {
  std::string Data;
  if (!readFileTo(Req.Report.File, Data))
    return runtimeError("cannot read '" + Req.Report.File + "'");
  TraceSummary Summary;
  std::string Err;
  if (!summarizeTrace(Data, Summary, Err)) {
    // A common slip is pointing `report` at one of our other JSON
    // documents; those all carry a `kind` field, so dispatch on it and
    // point at the right verb instead of dumping a parse error.
    json::ParseResult P = json::parse(Data);
    if (P.Ok && P.Val.kind() == json::Value::Kind::Object &&
        P.Val.has("kind")) {
      const std::string Kind = P.Val.get("kind").asString();
      if (Kind == "campaign" || Kind == "coverage" || Kind == "audit")
        return usageError(
            "'" + Req.Report.File + "' is a " + Kind +
            " document, not a trace; try `syrust coverage " +
            Req.Report.File + "`" +
            (Kind == "audit" ? " for its api_coverage section" : ""));
    }
    return usageError(Req.Report.File + ": " + Err);
  }
  Response Resp;
  Resp.Output = renderTraceSummary(Summary);
  return Resp;
}

Response executeCoverage(const Session &S, const RequestSpec &Req) {
  std::string Data;
  if (!readFileTo(Req.Coverage.File, Data))
    return runtimeError("cannot read '" + Req.Coverage.File + "'");
  json::ParseResult P = json::parse(Data);
  if (!P.Ok)
    return usageError(Req.Coverage.File + ": " + P.Error);
  std::vector<ApiCoverageEntry> Entries;
  std::string Err;
  if (!collectApiCoverage(P.Val, Entries, Err))
    return usageError(Req.Coverage.File + ": " + Err);

  // The never-covered listings need each crate's database and frozen
  // dependency graph. Rebuild them from the bundled registry on demand
  // (a fresh instance + a scratch compat cache per crate - cheap: only
  // the pairwise probes the graph needs, never the joint matrix) and
  // keep them alive for the duration of the render.
  struct CrateModel {
    std::unique_ptr<crates::CrateInstance> Inst;
    api::DependencyGraph Graph;
  };
  std::map<std::string, CrateModel> Models;
  CrateApiResolver Resolver =
      [&](const std::string &Name) -> CrateApiView {
    auto It = Models.find(Name);
    if (It == Models.end()) {
      CrateModel M;
      if (const crates::CrateSpec *Spec = S.find(Name)) {
        M.Inst = Spec->instantiate();
        types::CompatCache Scratch;
        M.Graph = api::buildDependencyGraph(M.Inst->Db, M.Inst->Arena,
                                            Scratch);
      }
      It = Models.emplace(Name, std::move(M)).first;
    }
    if (!It->second.Inst)
      return {};
    return {&It->second.Inst->Db, &It->second.Graph};
  };

  CoverageReportOptions Opts;
  Opts.TopNeverCovered = Req.Coverage.Top;
  Response Resp;
  Resp.Output = renderApiCoverage(Entries, Resolver, Opts);
  return Resp;
}

} // namespace

Response syrust::cli::execute(const Session &S, const RequestSpec &Spec,
                              const ProgressFn &Progress) {
  switch (Spec.V) {
  case Verb::List:
    return executeList(S);
  case Verb::Run:
    return executeRun(S, Spec);
  case Verb::Campaign:
    return executeCampaign(S, Spec, Progress);
  case Verb::Audit:
    return executeAudit(S, Spec, Progress);
  case Verb::Report:
    return executeReport(Spec);
  case Verb::Coverage:
    return executeCoverage(S, Spec);
  case Verb::Serve:
    break;
  }
  return usageError("serve is a process-level loop; it cannot be "
                    "executed as a request");
}

bool syrust::cli::writeResponseFiles(const Response &R,
                                     std::string &Err) {
  for (const auto &[Path, Content] : R.Files) {
    // Create the file's directory when the path has one (the campaign
    // --out layout); nested trees are the caller's job, matching the
    // old per-verb mkdir behavior.
    size_t Slash = Path.rfind('/');
    if (Slash != std::string::npos && Slash > 0) {
      std::string Dir = Path.substr(0, Slash);
      if (::mkdir(Dir.c_str(), 0777) != 0 && errno != EEXIST &&
          errno != EISDIR) {
        Err = "cannot create '" + Dir + "'";
        return false;
      }
    }
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    if (!F) {
      Err = "cannot write '" + Path + "'";
      return false;
    }
    bool Ok =
        std::fwrite(Content.data(), 1, Content.size(), F) ==
        Content.size();
    Ok = (std::fclose(F) == 0) && Ok;
    if (!Ok) {
      Err = "cannot write '" + Path + "'";
      return false;
    }
  }
  return true;
}
