//===--- Execute.h - Shared request execution ------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a finalized RequestSpec and renders everything it produces into
/// one Response: the exit code, the stdout text, and every output file
/// as (path, content) — no file is written and nothing is printed here.
/// The offline CLI and the serve daemon execute through this one
/// function, which is what makes a campaign submitted over the socket
/// byte-identical to the offline verb: same Session, same runner, same
/// rendering, and the response carries raw bytes end to end.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CLI_EXECUTE_H
#define SYRUST_CLI_EXECUTE_H

#include "cli/RequestSpec.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace syrust::cli {

/// Everything one request produces.
struct Response {
  /// Uniform exit code (ExitCode values; see RequestSpec.h).
  int ExitCode = ExitOk;
  /// What the offline CLI prints to stdout, byte for byte.
  std::string Output;
  /// Diagnostics for stderr; non-empty explains a nonzero ExitCode.
  std::string Error;
  /// Output files as (path, content) in write order. The *caller* (the
  /// offline CLI, or the --connect client after the daemon responds)
  /// writes these, so daemon-side execution never touches request
  /// output paths.
  std::vector<std::pair<std::string, std::string>> Files;
};

/// Progress sink for long verbs (campaign/audit job completions). The
/// offline CLI prints lines to stderr; the daemon drops them.
using ProgressFn = std::function<void(const std::string &)>;

/// Executes one finalized request (precondition: finalize() returned no
/// errors) against the shared warm \p S. List/run/campaign/audit/
/// coverage/report execute here; serve is a process-level loop and is
/// rejected with ExitUsage.
///
/// Campaign checkpointing is the one side effect that cannot ride in the
/// Response: a non-empty CheckpointPath is read (resume) and appended to
/// (one flushed line per finished cell) during execution.
Response execute(const core::Session &S, const RequestSpec &Spec,
                 const ProgressFn &Progress = nullptr);

/// Writes Response::Files, creating each file's directory if missing.
/// Returns false with \p Err naming the first unwritable path.
bool writeResponseFiles(const Response &R, std::string &Err);

} // namespace syrust::cli

#endif // SYRUST_CLI_EXECUTE_H
