//===--- RequestSpec.cpp - Unified request API ----------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cli/RequestSpec.h"

#include "support/StringUtils.h"

#include <cstdlib>
#include <cstring>

using namespace syrust;
using namespace syrust::cli;
using namespace syrust::json;

namespace {

// Verb bits for OptionDef masks.
enum : unsigned {
  VRun = 1u << 0,
  VCampaign = 1u << 1,
  VAudit = 1u << 2,
  VCoverage = 1u << 3,
  VServe = 1u << 4,
  VReport = 1u << 5,
};

unsigned verbBit(Verb V) {
  switch (V) {
  case Verb::Run:
    return VRun;
  case Verb::Campaign:
    return VCampaign;
  case Verb::Audit:
    return VAudit;
  case Verb::Coverage:
    return VCoverage;
  case Verb::Serve:
    return VServe;
  case Verb::Report:
    return VReport;
  case Verb::List:
    return 0;
  }
  return 0;
}

/// The RunConfig a shared knob lands in for this verb, if any: run's own
/// config or the campaign's base.
core::RunConfig *runConfigOf(RequestSpec &S) {
  if (S.V == Verb::Run)
    return &S.Run.Config;
  if (S.V == Verb::Campaign)
    return &S.Campaign.Spec.Base;
  return nullptr;
}

/// Parses `N` or `N..M` into an inclusive seed range.
bool parseSeedRange(const std::string &Text, uint64_t &Begin,
                    uint64_t &End) {
  const char *C = Text.c_str();
  const char *Dots = std::strstr(C, "..");
  char *EndPtr = nullptr;
  Begin = std::strtoull(C, &EndPtr, 10);
  if (EndPtr == C)
    return false;
  if (!Dots) {
    End = Begin;
    return *EndPtr == '\0';
  }
  if (EndPtr != Dots)
    return false;
  const char *Second = Dots + 2;
  End = std::strtoull(Second, &EndPtr, 10);
  return EndPtr != Second && *EndPtr == '\0' && Begin <= End;
}

/// One knob, on both surfaces at once: `Flag` is the CLI spelling, the
/// protocol key is the same spelling minus the leading `--`, `Verbs`
/// masks where it applies, `K` fixes the value kind on both surfaces,
/// and `Set` is the single shared semantic action. Adding a knob means
/// adding exactly one row; CLI and wire cannot diverge.
struct OptionDef {
  const char *Flag;
  unsigned Verbs;
  enum Kind { Num, Str, Flag_ } K;
  /// Applies the knob. \p Text carries Str values, \p Val Num values.
  /// Returns a message for domain errors the kind check can't catch
  /// (malformed seed ranges); empty = applied.
  std::string (*Set)(RequestSpec &S, const std::string &Text, double Val);
};

const OptionDef Options[] = {
    // Shared synthesis knobs.
    {"--budget", VRun | VCampaign, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       runConfigOf(S)->BudgetSeconds = Val;
       return std::string();
     }},
    {"--seed", VRun, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       S.Run.Config.Seed = static_cast<uint64_t>(Val);
       return std::string();
     }},
    {"--apis", VRun | VCampaign | VAudit, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       if (S.V == Verb::Audit)
         S.Audit.Spec.Base.NumApis = static_cast<int>(Val);
       else
         runConfigOf(S)->NumApis = static_cast<int>(Val);
       return std::string();
     }},
    {"--max-tests", VRun | VCampaign, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       runConfigOf(S)->MaxTests = static_cast<uint64_t>(Val);
       return std::string();
     }},
    {"--log-tests", VRun, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       S.Run.Config.RecordTests = static_cast<size_t>(Val);
       return std::string();
     }},
    {"--solve-budget", VRun | VCampaign, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       runConfigOf(S)->SolveConflictBudget = static_cast<uint64_t>(Val);
       return std::string();
     }},
    {"--strategy", VRun | VCampaign | VAudit, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       if (S.V == Verb::Audit)
         S.Audit.Spec.Base.Strategy = Text;
       else
         runConfigOf(S)->Strategy = Text;
       return std::string();
     }},
    {"--portfolio", VRun | VCampaign | VAudit, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       if (S.V == Verb::Audit)
         S.Audit.Spec.Base.Portfolio = true;
       else
         runConfigOf(S)->Portfolio = true;
       return std::string();
     }},
    {"--no-compat-cache", VRun | VCampaign | VAudit, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       if (S.V == Verb::Audit)
         S.Audit.Spec.Base.UseCompatCache = false;
       else
         runConfigOf(S)->UseCompatCache = false;
       return std::string();
     }},
    {"--no-graph-prune", VRun | VCampaign | VAudit, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       if (S.V == Verb::Audit)
         S.Audit.Spec.Base.GraphPrune = false;
       else
         runConfigOf(S)->GraphPrune = false;
       return std::string();
     }},
    {"--no-api-coverage", VRun | VCampaign, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       runConfigOf(S)->TrackApiCoverage = false;
       return std::string();
     }},
    {"--bias-coverage", VRun | VCampaign, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       // Forces interleaved mode: the biased episode leg replaces the
       // round-robin length rotation, which only exists interleaved.
       core::RunConfig *C = runConfigOf(S);
       C->BiasCoverage = true;
       C->InterleaveLengths = true;
       return std::string();
     }},

    // Run-only variants and toggles.
    {"--no-semantic", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.SemanticAware = false;
       return std::string();
     }},
    {"--eager", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.Mode = refine::RefinementMode::PurelyEager;
       return std::string();
     }},
    {"--lazy", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.Mode = refine::RefinementMode::PurelyLazy;
       return std::string();
     }},
    {"--interleave", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.InterleaveLengths = true;
       return std::string();
     }},
    {"--mutate-inputs", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.MutateInputs = true;
       return std::string();
     }},
    {"--no-incremental", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.IncrementalRefinement = false;
       return std::string();
     }},
    {"--stop-on-bug", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.StopOnFirstBug = true;
       return std::string();
     }},
    {"--minimize", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.MinimizeBugs = true;
       return std::string();
     }},
    {"--json-errors", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.Config.JsonErrorChannel = true;
       return std::string();
     }},
    {"--trace-wall", VRun, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Run.TraceWall = true;
       return std::string();
     }},

    // Matrix shape (campaign/audit).
    {"--crates", VCampaign | VAudit, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       std::vector<std::string> &Crates = S.V == Verb::Audit
                                              ? S.Audit.Spec.Crates
                                              : S.Campaign.Spec.Crates;
       // "all" stays the empty sentinel; finalize() expands it to every
       // synthesis-supporting crate.
       Crates = Text == "all" ? std::vector<std::string>()
                              : split(Text, ',');
       return std::string();
     }},
    {"--seeds", VCampaign | VAudit, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       uint64_t Begin = 0, End = 0;
       if (!parseSeedRange(Text, Begin, End))
         return "malformed seed range '" + Text +
                "' for --seeds (want N or N..M with N <= M)";
       if (S.V == Verb::Audit) {
         S.Audit.Spec.SeedBegin = Begin;
         S.Audit.Spec.SeedEnd = End;
       } else {
         S.Campaign.Spec.SeedBegin = Begin;
         S.Campaign.Spec.SeedEnd = End;
       }
       return std::string();
     }},
    {"--variants", VCampaign, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Campaign.Spec.Variants = split(Text, ',');
       return std::string();
     }},
    {"--jobs", VCampaign | VAudit, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       if (S.V == Verb::Audit)
         S.Audit.Spec.Jobs = static_cast<int>(Val);
       else
         S.Campaign.Spec.Jobs = static_cast<int>(Val);
       return std::string();
     }},

    // Audit-only knobs.
    {"--max-lines", VAudit, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       S.Audit.Spec.Base.MaxLines = static_cast<int>(Val);
       return std::string();
     }},
    {"--max-models", VAudit, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       S.Audit.Spec.Base.MaxModels = static_cast<uint64_t>(Val);
       return std::string();
     }},
    {"--weaken-kills", VAudit, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Audit.Spec.Base.WeakenConsumptionKills = true;
       return std::string();
     }},

    // Output routing — the one shared Outputs struct.
    {"--out", VCampaign | VAudit, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Out.OutDir = Text;
       return std::string();
     }},
    {"--trace", VCampaign, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Out.MergeTrace = true;
       return std::string();
     }},
    {"--trace-out", VRun, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Out.TraceOut = Text;
       return std::string();
     }},
    {"--metrics-out", VRun, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Out.MetricsOut = Text;
       return std::string();
     }},
    {"--coverage-out", VRun | VCampaign | VAudit, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Out.CoverageOut = Text;
       return std::string();
     }},
    {"--json", VRun | VAudit, OptionDef::Flag_,
     [](RequestSpec &S, const std::string &, double) {
       S.Out.Json = true;
       return std::string();
     }},

    // Checkpoint/resume and daemon routing.
    {"--checkpoint", VCampaign, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Campaign.CheckpointPath = Text;
       return std::string();
     }},
    {"--connect", VRun | VCampaign | VAudit | VCoverage, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Connect = Text;
       return std::string();
     }},

    // Coverage rendering.
    {"--top", VCoverage, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       S.Coverage.Top = static_cast<int>(Val);
       return std::string();
     }},

    // Serve.
    {"--socket", VServe, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Serve.SocketPath = Text;
       return std::string();
     }},
    {"--max-inflight", VServe, OptionDef::Num,
     [](RequestSpec &S, const std::string &, double Val) {
       S.Serve.MaxInflight = static_cast<int>(Val);
       return std::string();
     }},
    {"--checkpoint-dir", VServe, OptionDef::Str,
     [](RequestSpec &S, const std::string &Text, double) {
       S.Serve.CheckpointDir = Text;
       return std::string();
     }},
};

const OptionDef *findOption(const std::string &Flag) {
  for (const OptionDef &O : Options)
    if (Flag == O.Flag)
      return &O;
  return nullptr;
}

const OptionDef *findOptionByKey(const std::string &Key) {
  for (const OptionDef &O : Options)
    if (Key == O.Flag + 2)
      return &O;
  return nullptr;
}

/// The positional a verb takes ("crate" for run, "file" for
/// coverage/report), also its protocol key; nullptr for none.
const char *positionalKey(Verb V) {
  if (V == Verb::Run)
    return "crate";
  if (V == Verb::Coverage || V == Verb::Report)
    return "file";
  return nullptr;
}

void setPositional(RequestSpec &S, const std::string &Text) {
  if (S.V == Verb::Run)
    S.Run.Crate = Text;
  else if (S.V == Verb::Coverage)
    S.Coverage.File = Text;
  else if (S.V == Verb::Report)
    S.Report.File = Text;
}

/// The shared argv scan: positional and flag recognition, strict value
/// parsing (a missing value or non-number fails loudly instead of
/// running with a silently wrong configuration), one message per
/// problem. parseArgv and argvToRequestJson both drive this, so the CLI
/// surface has exactly one grammar.
template <typename OnPositional, typename OnOption>
void scanArgv(Verb V, int Argc, const char *const *Argv,
              std::vector<std::string> &Errors, OnPositional Positional,
              OnOption Option) {
  const unsigned Bit = verbBit(V);
  bool SawPositional = false;
  for (int I = 0; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.size() < 2 || Arg[0] != '-' || Arg[1] != '-') {
      if (positionalKey(V) && !SawPositional) {
        SawPositional = true;
        Positional(Arg);
      } else {
        Errors.push_back("unexpected argument '" + Arg + "'");
      }
      continue;
    }
    const OptionDef *O = findOption(Arg);
    if (!O) {
      Errors.push_back("unknown flag '" + Arg + "'");
      continue;
    }
    if (!(O->Verbs & Bit)) {
      Errors.push_back("flag " + Arg + " does not apply to 'syrust " +
                       verbName(V) + "'");
      // Still swallow its value so one misplaced flag yields one
      // message, not a cascade.
      if (O->K != OptionDef::Flag_ && I + 1 < Argc)
        ++I;
      continue;
    }
    std::string Text;
    double Val = 0;
    if (O->K != OptionDef::Flag_) {
      if (I + 1 >= Argc) {
        Errors.push_back("missing value for " + Arg);
        continue;
      }
      Text = Argv[++I];
      if (O->K == OptionDef::Num) {
        char *End = nullptr;
        Val = std::strtod(Text.c_str(), &End);
        if (End == Text.c_str() || *End != '\0') {
          Errors.push_back("malformed number '" + Text + "' for " +
                           Arg);
          continue;
        }
        if (Val < 0) {
          Errors.push_back(Arg + std::string(" must be non-negative, got '") +
                           Text + "'");
          continue;
        }
      }
    }
    Option(*O, Text, Val);
  }
  if (positionalKey(V) && !SawPositional)
    Errors.push_back(std::string("missing <") + positionalKey(V) +
                     "> argument");
}

} // namespace

bool syrust::cli::verbFromName(const std::string &Name, Verb &Out) {
  if (Name == "list")
    Out = Verb::List;
  else if (Name == "run")
    Out = Verb::Run;
  else if (Name == "campaign")
    Out = Verb::Campaign;
  else if (Name == "audit")
    Out = Verb::Audit;
  else if (Name == "coverage")
    Out = Verb::Coverage;
  else if (Name == "report")
    Out = Verb::Report;
  else if (Name == "serve")
    Out = Verb::Serve;
  else
    return false;
  return true;
}

const char *syrust::cli::verbName(Verb V) {
  switch (V) {
  case Verb::List:
    return "list";
  case Verb::Run:
    return "run";
  case Verb::Campaign:
    return "campaign";
  case Verb::Audit:
    return "audit";
  case Verb::Coverage:
    return "coverage";
  case Verb::Report:
    return "report";
  case Verb::Serve:
    return "serve";
  }
  return "?";
}

bool syrust::cli::parseArgv(Verb V, int Argc, const char *const *Argv,
                            RequestSpec &Out,
                            std::vector<std::string> &Errors) {
  Out = RequestSpec();
  Out.V = V;
  scanArgv(
      V, Argc, Argv, Errors,
      [&](const std::string &Text) { setPositional(Out, Text); },
      [&](const OptionDef &O, const std::string &Text, double Val) {
        std::string Err = O.Set(Out, Text, Val);
        if (!Err.empty())
          Errors.push_back(Err);
      });
  return Errors.empty();
}

bool syrust::cli::argvToRequestJson(Verb V, int Argc,
                                    const char *const *Argv,
                                    json::Value &Out,
                                    std::vector<std::string> &Errors) {
  Out = Value::object();
  Out.set("verb", Value::string(verbName(V)));
  scanArgv(
      V, Argc, Argv, Errors,
      [&](const std::string &Text) {
        Out.set(positionalKey(V), Value::string(Text));
      },
      [&](const OptionDef &O, const std::string &Text, double Val) {
        // --connect routes the request; it is not part of it.
        if (!std::strcmp(O.Flag, "--connect"))
          return;
        const std::string Key = O.Flag + 2;
        if (O.K == OptionDef::Num)
          Out.set(Key, Value::number(Val));
        else if (O.K == OptionDef::Str)
          Out.set(Key, Value::string(Text));
        else
          Out.set(Key, Value::boolean(true));
      });
  return Errors.empty();
}

bool syrust::cli::fromRequestJson(const json::Value &V, RequestSpec &Out,
                                  std::vector<std::string> &Errors) {
  if (V.kind() != Value::Kind::Object) {
    Errors.push_back("request must be a JSON object");
    return false;
  }
  const std::string VerbStr = V.get("verb").asString();
  Verb Vb;
  if (!V.has("verb") || !verbFromName(VerbStr, Vb)) {
    Errors.push_back("request has no valid 'verb' (got '" + VerbStr +
                     "')");
    return false;
  }
  // The wire accepts the work verbs only; serve cannot recursively
  // serve, and list/report are CLI conveniences.
  if (Vb != Verb::Run && Vb != Verb::Campaign && Vb != Verb::Audit &&
      Vb != Verb::Coverage) {
    Errors.push_back("verb '" + VerbStr +
                     "' cannot be requested over the serve protocol");
    return false;
  }
  Out = RequestSpec();
  Out.V = Vb;
  const unsigned Bit = verbBit(Vb);
  for (const auto &[Key, Member] : V.members()) {
    if (Key == "verb" || Key == "id")
      continue; // "id" is the client's correlation tag, echoed back.
    if (positionalKey(Vb) && Key == positionalKey(Vb)) {
      if (Member.kind() != Value::Kind::String) {
        Errors.push_back("field '" + Key + "' must be a string");
        continue;
      }
      setPositional(Out, Member.asString());
      continue;
    }
    const OptionDef *O = findOptionByKey(Key);
    if (!O) {
      Errors.push_back("unknown request field '" + Key + "'");
      continue;
    }
    if (!(O->Verbs & Bit)) {
      Errors.push_back("field '" + Key + "' does not apply to verb '" +
                       VerbStr + "'");
      continue;
    }
    if (!std::strcmp(O->Flag, "--connect")) {
      Errors.push_back("field 'connect' is client-side only");
      continue;
    }
    std::string Text;
    double Val = 0;
    switch (O->K) {
    case OptionDef::Num:
      if (Member.kind() != Value::Kind::Number) {
        Errors.push_back("field '" + Key + "' must be a number");
        continue;
      }
      Val = Member.asDouble();
      if (Val < 0) {
        Errors.push_back("field '" + Key + "' must be non-negative");
        continue;
      }
      break;
    case OptionDef::Str:
      if (Member.kind() != Value::Kind::String) {
        Errors.push_back("field '" + Key + "' must be a string");
        continue;
      }
      Text = Member.asString();
      break;
    case OptionDef::Flag_:
      if (Member.kind() != Value::Kind::Bool) {
        Errors.push_back("field '" + Key + "' must be a boolean");
        continue;
      }
      if (!Member.asBool())
        continue; // false = leave the default, same as omitting.
      break;
    }
    std::string Err = O->Set(Out, Text, Val);
    if (!Err.empty())
      Errors.push_back(Err);
  }
  return Errors.empty();
}

std::vector<std::string> syrust::cli::finalize(const core::Session &S,
                                               RequestSpec &Spec) {
  std::vector<std::string> Errors;
  switch (Spec.V) {
  case Verb::List:
    break;
  case Verb::Run: {
    if (!S.find(Spec.Run.Crate))
      Errors.push_back("unknown crate '" + Spec.Run.Crate +
                       "'; try `syrust list`");
    if (Spec.Run.TraceWall && Spec.Out.TraceOut.empty())
      Errors.push_back("--trace-wall requires --trace-out");
    std::vector<std::string> E = Spec.Run.Config.validate();
    Errors.insert(Errors.end(), E.begin(), E.end());
    break;
  }
  case Verb::Campaign: {
    if (Spec.Campaign.Spec.Crates.empty())
      Spec.Campaign.Spec.Crates = S.supportedCrates();
    // The spec's own Trace knob is driven by the shared Outputs struct.
    Spec.Campaign.Spec.Trace = Spec.Out.MergeTrace;
    if (Spec.Out.MergeTrace && Spec.Out.OutDir.empty())
      Errors.push_back("--trace requires --out");
    if (Spec.Out.MergeTrace && !Spec.Campaign.CheckpointPath.empty())
      Errors.push_back(
          "--checkpoint does not compose with --trace: resumed cells "
          "have no trace events to merge");
    std::vector<std::string> E = Spec.Campaign.Spec.validate(S);
    Errors.insert(Errors.end(), E.begin(), E.end());
    break;
  }
  case Verb::Audit: {
    if (Spec.Audit.Spec.Crates.empty())
      Spec.Audit.Spec.Crates = S.supportedCrates();
    std::vector<std::string> E = Spec.Audit.Spec.validate(S);
    Errors.insert(Errors.end(), E.begin(), E.end());
    break;
  }
  case Verb::Coverage:
    if (Spec.Coverage.File.empty())
      Errors.push_back("coverage needs a <file> argument");
    break;
  case Verb::Report:
    if (Spec.Report.File.empty())
      Errors.push_back("report needs a <trace.json> argument");
    break;
  case Verb::Serve:
    if (Spec.Serve.SocketPath.empty())
      Errors.push_back("serve requires --socket PATH");
    if (Spec.Serve.MaxInflight < 1)
      Errors.push_back("--max-inflight must be at least 1, got " +
                       std::to_string(Spec.Serve.MaxInflight));
    break;
  }
  return Errors;
}

std::string syrust::cli::usageText() {
  return "usage: syrust list\n"
         "       syrust run <crate> [--budget N] [--seed N] [--apis N]\n"
         "                  [--no-semantic] [--eager] [--lazy]\n"
         "                  [--interleave] [--mutate-inputs] "
         "[--no-incremental]\n"
         "                  [--no-compat-cache] [--no-graph-prune] "
         "[--portfolio]\n"
         "                  [--strategy NAME]\n"
         "                  [--solve-budget N] [--stop-on-bug] "
         "[--minimize] [--max-tests N]\n"
         "                  [--log-tests N] [--json-errors] [--json]\n"
         "                  [--trace-out FILE] [--metrics-out FILE] "
         "[--trace-wall]\n"
         "                  [--coverage-out FILE] [--no-api-coverage] "
         "[--bias-coverage]\n"
         "                  [--connect SOCKET]\n"
         "       syrust campaign [--crates all|a,b,c] [--seeds N[..M]]\n"
         "                  [--variants v1,v2] [--jobs N] [--budget N]\n"
         "                  [--apis N] [--max-tests N] "
         "[--no-compat-cache]\n"
         "                  [--no-graph-prune]\n"
         "                  [--portfolio] [--strategy NAME] "
         "[--solve-budget N]\n"
         "                  [--out DIR] [--trace] [--coverage-out FILE] "
         "[--no-api-coverage]\n"
         "                  [--bias-coverage] [--checkpoint FILE] "
         "[--connect SOCKET]\n"
         "       syrust audit [--crates all|a,b,c] [--seeds N[..M]]\n"
         "                  [--apis N] [--max-lines N] [--max-models N]\n"
         "                  [--jobs N] [--no-compat-cache] "
         "[--no-graph-prune]\n"
         "                  [--weaken-kills]\n"
         "                  [--portfolio] [--strategy NAME]\n"
         "                  [--out DIR] [--json] [--coverage-out FILE]\n"
         "                  [--connect SOCKET]\n"
         "       syrust report <trace.json>\n"
         "       syrust coverage <file> [--top N] [--connect SOCKET]\n"
         "       syrust serve --socket PATH [--max-inflight N]\n"
         "                  [--checkpoint-dir DIR]\n"
         "exit codes: 0 ok; 1 finding (UB found, or unexpected audit\n"
         "disagreement); 2 usage/configuration error; 3 environment "
         "failure\n";
}
