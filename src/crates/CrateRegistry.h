//===--- CrateRegistry.h - All evaluated library models --------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of the 30 library models of Figure 12, in the paper's order.
/// Each entry is built by a maker function in src/crates/libs/.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CRATES_CRATEREGISTRY_H
#define SYRUST_CRATES_CRATEREGISTRY_H

#include "crates/CrateSpec.h"

#include <vector>

namespace syrust::crates {

/// All library models, in Figure 12 order (data structures first, then
/// encodings, by download count).
const std::vector<CrateSpec> &allCrates();

/// Finds a model by crate name; nullptr when unknown.
const CrateSpec *findCrate(const std::string &Name);

/// The four bug-carrying models, in Figure 7 order.
std::vector<const CrateSpec *> buggyCrates();

} // namespace syrust::crates

#endif // SYRUST_CRATES_CRATEREGISTRY_H
