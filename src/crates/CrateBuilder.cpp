//===--- CrateBuilder.cpp - Convenience builder for library models --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::types;

Value syrust::crates::defaultValue(const Type *Ty, InterpCtx &Ctx) {
  Value V;
  V.Ty = Ty;
  if (!Ty)
    return V;
  if (Ty->kind() == TypeKind::Named && Ty->name() == "Option") {
    // Models return Some only when semantics say so; default is None.
    V.IsNone = true;
  }
  (void)Ctx;
  return V;
}

CrateBuilder::CrateBuilder(CrateInstance &Inst,
                           std::set<std::string> TypeVars)
    : Inst(Inst), Parser(Inst.Arena, std::move(TypeVars)) {
  Inst.Traits.addDefaultPrimImpls();
}

const Type *CrateBuilder::ty(const std::string &Spec) {
  const Type *T = Parser.parse(Spec);
  if (!T) {
    std::fprintf(stderr, "crate model type parse error in '%s': %s\n",
                 Spec.c_str(), Parser.error().c_str());
    std::abort();
  }
  return T;
}

void CrateBuilder::impl(
    const std::string &Trait, const std::string &Pattern,
    std::vector<std::pair<std::string, std::string>> Where) {
  Inst.Traits.addImpl(Trait, ty(Pattern), std::move(Where));
}

void CrateBuilder::scalarInput(const std::string &Name,
                               const std::string &Ty, int64_t Val) {
  Inst.Inputs.push_back({Name, ty(Ty)});
  InputFactories.push_back([Val](AbstractHeap &, Rng &) {
    Value V;
    V.Int = Val;
    return V;
  });
}

void CrateBuilder::stringInput(const std::string &Name,
                               const std::string &Ty,
                               const std::string &Val) {
  Inst.Inputs.push_back({Name, ty(Ty)});
  InputFactories.push_back([Val, Name](AbstractHeap &Heap, Rng &) {
    Value V;
    V.Str = Val;
    V.Len = static_cast<int64_t>(Val.size());
    V.Alloc = Heap.allocate(Val.size() + 1, Name + " buffer");
    return V;
  });
}

void CrateBuilder::containerInput(const std::string &Name,
                                  const std::string &Ty, int64_t Len,
                                  int64_t Cap) {
  Inst.Inputs.push_back({Name, ty(Ty)});
  InputFactories.push_back([Len, Cap, Name](AbstractHeap &Heap, Rng &) {
    Value V;
    V.Len = Len;
    V.Cap = Cap;
    V.Alloc = Heap.allocate(static_cast<size_t>(Cap) * 8 + 8,
                            Name + " buffer");
    return V;
  });
}

void CrateBuilder::customInput(
    const std::string &Name, const std::string &Ty,
    std::function<Value(AbstractHeap &, Rng &)> Factory) {
  Inst.Inputs.push_back({Name, ty(Ty)});
  InputFactories.push_back(std::move(Factory));
}

miri::ApiSemantics CrateBuilder::wrapSemantics(SemKind Kind, CovRange R,
                                               ApiSemantics Custom) {
  return [Kind, R, Custom](InterpCtx &Ctx) -> Value {
    // Straight-line body coverage: most of the range on any call.
    int Body = R.NumLines > 2 ? R.NumLines - 2 : R.NumLines;
    Ctx.coverLines(R.Line0, R.Line0 + Body);
    auto Branch = [&](int Idx, bool Taken) {
      if (Idx < R.NumBranches)
        Ctx.coverBranch(R.Branch0 + Idx, Taken);
      // Branch arms hide the tail lines of the range.
      if (Taken)
        Ctx.coverLines(R.Line0 + Body, R.Line0 + R.NumLines);
    };

    switch (Kind) {
    case SemKind::Custom:
      return Custom(Ctx);
    case SemKind::Inert:
      return defaultValue(Ctx.outType(), Ctx);
    case SemKind::MakeScalar: {
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = false;
      int64_t Acc = 1;
      for (size_t I = 0; I < Ctx.numArgs(); ++I)
        Acc += Ctx.deref(I).Int + Ctx.deref(I).Len;
      Branch(0, Acc > 1);
      Out.Int = Acc;
      return Out;
    }
    case SemKind::AllocContainer: {
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = false;
      int64_t Cap = 8;
      for (size_t I = 0; I < Ctx.numArgs(); ++I) {
        if (Ctx.deref(I).Int > 0) {
          Cap = Ctx.deref(I).Int;
          break;
        }
      }
      Branch(0, Cap == 0);
      Out.Cap = Cap;
      Out.Len = 0;
      Out.Alloc = Ctx.heap().allocate(static_cast<size_t>(Cap) * 8 + 8,
                                      "container buffer");
      return Out;
    }
    case SemKind::ContainerPush: {
      Value &C = Ctx.deref(0);
      bool Grow = C.Len >= C.Cap;
      Branch(0, Grow);
      if (Grow) {
        // Reallocate the backing buffer (doubling growth).
        if (C.Alloc >= 0)
          Ctx.heap().free(C.Alloc, Ctx.line());
        C.Cap = C.Cap > 0 ? C.Cap * 2 : 4;
        C.Alloc = Ctx.heap().allocate(static_cast<size_t>(C.Cap) * 8 + 8,
                                      "container buffer (grown)");
        C.Int += 1; // Reallocation count.
      }
      C.Len += 1;
      return defaultValue(Ctx.outType(), Ctx);
    }
    case SemKind::ContainerPop: {
      Value &C = Ctx.deref(0);
      Value Out = defaultValue(Ctx.outType(), Ctx);
      bool Empty = C.Len == 0;
      Branch(0, Empty);
      if (!Empty) {
        C.Len -= 1;
        Out.IsNone = false;
        Out.Elems.push_back(Value{});
      } else {
        Out.IsNone = true;
      }
      return Out;
    }
    case SemKind::ContainerLen: {
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = false;
      Out.Int = Ctx.deref(0).Len;
      Branch(0, Out.Int == 0);
      return Out;
    }
    case SemKind::ContainerClear: {
      Value &C = Ctx.deref(0);
      Branch(0, C.Len == 0);
      C.Len = 0;
      return defaultValue(Ctx.outType(), Ctx);
    }
    case SemKind::ConsumeFree: {
      Value &C = Ctx.arg(0);
      Branch(0, C.Alloc >= 0);
      if (C.Alloc >= 0) {
        Ctx.heap().free(C.Alloc, Ctx.line());
        C.Alloc = -1;
      }
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = false;
      Out.Int = C.Len;
      return Out;
    }
    case SemKind::ViewRef: {
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = false;
      Out.RefVar = Ctx.argVar(0);
      Out.RefMut = Ctx.outType() && Ctx.outType()->isMutRef();
      Branch(0, Ctx.deref(0).Len > 0);
      return Out;
    }
    case SemKind::Transform: {
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = false;
      int64_t Seed = 0;
      for (size_t I = 0; I < Ctx.numArgs(); ++I)
        Seed += Ctx.deref(I).Int + Ctx.deref(I).Len;
      Branch(0, (Seed & 1) != 0);
      Out.Int = Seed * 2 + 3;
      Out.Len = Seed % 7;
      const Type *OutTy = Ctx.outType();
      if (OutTy && OutTy->kind() == TypeKind::Named && !OutTy->isRef()) {
        // Owned encoder outputs are heap-backed.
        Out.Alloc = Ctx.heap().allocate(
            static_cast<size_t>(Out.Len) * 2 + 4, "transform output");
        Out.Cap = Out.Len;
      }
      return Out;
    }
    }
    return defaultValue(Ctx.outType(), Ctx);
  };
}

ApiId CrateBuilder::api(ApiDecl Decl) {
  ApiSig Sig;
  Sig.Name = Decl.Name;
  for (const std::string &In : Decl.Ins)
    Sig.Inputs.push_back(ty(In));
  Sig.Output = ty(Decl.Out);
  Sig.Bounds = std::move(Decl.Bounds);
  Sig.HasUnsafe = Decl.Unsafe;
  Sig.Quirks = Decl.Quirks;
  Sig.PropagatesFrom = Decl.PropagatesFrom;
  Sig.SemanticsKey = Decl.Name;

  CovRange R{NextLine, Decl.CovLines, NextBranch, Decl.CovBranches};
  NextLine += Decl.CovLines;
  NextBranch += Decl.CovBranches;
  Inst.Registry.registerApi(Decl.Name,
                            wrapSemantics(Decl.Kind, R, Decl.Custom));

  ApiId Id = Inst.Db.add(std::move(Sig));
  if (Decl.Pinned)
    Inst.Pinned.push_back(Id);
  return Id;
}

void CrateBuilder::dropGlue(const std::string &TypeHead,
                            DropSemantics Fn) {
  Inst.Registry.registerDrop(TypeHead, std::move(Fn));
}

void CrateBuilder::finish(int ComponentPadLines, int ComponentPadBranches,
                          int LibraryExtraLines, int LibraryExtraBranches,
                          int MaxLen, double MiriCost) {
  Inst.Builtins = addBuiltinApis(Inst.Db, Inst.Arena);
  auto Factories = InputFactories;
  Inst.Init = [Factories](AbstractHeap &Heap, Rng &R) {
    std::vector<Value> Values;
    Values.reserve(Factories.size());
    for (const auto &F : Factories)
      Values.push_back(F(Heap, R));
    return Values;
  };
  Inst.ComponentLines = NextLine + ComponentPadLines;
  Inst.ComponentBranches = NextBranch + ComponentPadBranches;
  Inst.LibraryLines = Inst.ComponentLines + LibraryExtraLines;
  Inst.LibraryBranches = Inst.ComponentBranches + LibraryExtraBranches;
  Inst.MaxLen = MaxLen;
  Inst.MiriCostFactor = MiriCost;
}
