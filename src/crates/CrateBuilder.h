//===--- CrateBuilder.h - Convenience builder for library models -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the 30 library models: type parsing with a
/// per-crate type-variable set, template-input factories, an API builder
/// that wires signature + quirks + coverage range + executable semantics
/// in one declaration, and a small vocabulary of reusable semantic kinds
/// (containers, encoders, views) so each crate file focuses on what is
/// genuinely library-specific.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CRATES_CRATEBUILDER_H
#define SYRUST_CRATES_CRATEBUILDER_H

#include "crates/CrateSpec.h"
#include "types/TypeParser.h"

#include <set>
#include <string>
#include <vector>

namespace syrust::crates {

/// Reusable executable behaviors for modeled APIs.
enum class SemKind {
  Inert,         ///< Covers its range, returns a default of the out type.
  MakeScalar,    ///< Scalar derived from scalar args; one branch.
  AllocContainer,///< Allocates a buffer; capacity from first scalar arg.
  ContainerPush, ///< len++ with a grow-and-reallocate branch.
  ContainerPop,  ///< Some/None branch on emptiness.
  ContainerLen,  ///< Scalar length read.
  ContainerClear,///< len = 0.
  ConsumeFree,   ///< Consumes an owned value, freeing its buffer.
  ViewRef,       ///< Returns a reference into the first propagated arg.
  Transform,     ///< Encoder-style value transform; allocates owned outs.
  Custom,        ///< Crate-provided callback (bug injections live here).
};

/// One API declaration.
struct ApiDecl {
  std::string Name;
  std::vector<std::string> Ins;
  std::string Out;
  SemKind Kind = SemKind::Inert;
  std::vector<std::pair<std::string, std::string>> Bounds;
  bool Unsafe = false;
  api::ApiQuirks Quirks;
  std::vector<int> PropagatesFrom;
  bool Pinned = false;
  int CovLines = 8;
  int CovBranches = 1;
  miri::ApiSemantics Custom;
};

/// Builds one CrateInstance.
class CrateBuilder {
public:
  CrateBuilder(CrateInstance &Inst, std::set<std::string> TypeVars);

  /// Parses a type in this crate's variable scope; aborts on bad syntax.
  const types::Type *ty(const std::string &Spec);

  /// Registers a trait impl (pattern may use the crate's type variables).
  void impl(const std::string &Trait, const std::string &Pattern,
            std::vector<std::pair<std::string, std::string>> Where = {});

  /// Template inputs.
  void scalarInput(const std::string &Name, const std::string &Ty,
                   int64_t Value);
  void stringInput(const std::string &Name, const std::string &Ty,
                   const std::string &Value);
  /// A heap-backed container input with the given length and capacity.
  void containerInput(const std::string &Name, const std::string &Ty,
                      int64_t Len, int64_t Cap);
  /// Fully custom input value.
  void customInput(const std::string &Name, const std::string &Ty,
                   std::function<miri::Value(miri::AbstractHeap &,
                                             syrust::Rng &)>
                       Factory);

  /// Declares one API: signature, semantics, quirks, coverage.
  api::ApiId api(ApiDecl Decl);

  /// Registers custom drop glue for a nominal type head.
  void dropGlue(const std::string &TypeHead, miri::DropSemantics Fn);

  /// Finalizes the model: adds builtins, composes the template init, and
  /// sets the coverage layout. \p ComponentPadLines / \p PadBranches model
  /// component code the selected APIs cannot reach; the library totals add
  /// the rest of the crate.
  void finish(int ComponentPadLines, int ComponentPadBranches,
              int LibraryExtraLines, int LibraryExtraBranches, int MaxLen,
              double MiriCost = 1.0);

  CrateInstance &instance() { return Inst; }

private:
  struct CovRange {
    int Line0 = 0, NumLines = 0, Branch0 = 0, NumBranches = 0;
  };
  miri::ApiSemantics wrapSemantics(SemKind Kind, CovRange Range,
                                   miri::ApiSemantics Custom);

  CrateInstance &Inst;
  types::TypeParser Parser;
  std::vector<std::function<miri::Value(miri::AbstractHeap &,
                                        syrust::Rng &)>>
      InputFactories;
  int NextLine = 0;
  int NextBranch = 0;
};

/// Default value of \p Ty (None for Options, zero scalars, etc.). Exposed
/// for custom semantics.
miri::Value defaultValue(const types::Type *Ty, miri::InterpCtx &Ctx);

/// Terse ApiDecl construction for crate model files; tweak the returned
/// value for bounds/quirks/etc. before passing it to CrateBuilder::api.
inline ApiDecl decl(std::string Name, std::vector<std::string> Ins,
                    std::string Out, SemKind Kind = SemKind::Inert) {
  ApiDecl D;
  D.Name = std::move(Name);
  D.Ins = std::move(Ins);
  D.Out = std::move(Out);
  D.Kind = Kind;
  return D;
}

} // namespace syrust::crates

#endif // SYRUST_CRATES_CRATEBUILDER_H
