//===--- CrateRegistry.cpp - All evaluated library models -----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateRegistry.h"

#include "crates/libs/AllCrates.h"

using namespace syrust::crates;

const std::vector<CrateSpec> &syrust::crates::allCrates() {
  static const std::vector<CrateSpec> Crates = [] {
    std::vector<CrateSpec> C;
    // Figure 12 order: data structures by downloads...
    C.push_back(makeSmallvec());
    C.push_back(makeCrossbeamUtils());
    C.push_back(makeBytes());
    C.push_back(makeSlab());
    C.push_back(makeCrossbeamDeque());
    C.push_back(makeGenericArray());
    C.push_back(makeCrossbeamQueue());
    C.push_back(makeNumRational());
    C.push_back(makeHashbrown());
    C.push_back(makeCrossbeam());
    C.push_back(makePetgraph());
    C.push_back(makeImRc());
    C.push_back(makeBitvec());
    C.push_back(makeNdarray());
    C.push_back(makeDashmap());
    // ...then encodings by downloads.
    C.push_back(makeEncodingRs());
    C.push_back(makeBstr());
    C.push_back(makeCsvCore());
    C.push_back(makeDataEncoding());
    C.push_back(makeEncodeUnicode());
    C.push_back(makeUrlencoding());
    C.push_back(makeRmpSerde());
    C.push_back(makeBytemuck());
    C.push_back(makeSval());
    C.push_back(makeCookieFactory());
    C.push_back(makeBase16());
    C.push_back(makeCborCodec());
    C.push_back(makeJsonrpcClientCore());
    C.push_back(makeHcid());
    C.push_back(makeUtf8Width());
    return C;
  }();
  return Crates;
}

const CrateSpec *syrust::crates::findCrate(const std::string &Name) {
  for (const CrateSpec &Spec : allCrates())
    if (Spec.Info.Name == Name)
      return &Spec;
  return nullptr;
}

std::vector<const CrateSpec *> syrust::crates::buggyCrates() {
  std::vector<const CrateSpec *> Bugs(4, nullptr);
  for (const CrateSpec &Spec : allCrates()) {
    if (!Spec.Bug)
      continue;
    if (Spec.Bug->Label == "*1")
      Bugs[0] = &Spec;
    else if (Spec.Bug->Label == "*2")
      Bugs[1] = &Spec;
    else if (Spec.Bug->Label == "*3")
      Bugs[2] = &Spec;
    else if (Spec.Bug->Label == "*4")
      Bugs[3] = &Spec;
  }
  return Bugs;
}
