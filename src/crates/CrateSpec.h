//===--- CrateSpec.h - Library model descriptors ---------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One CrateSpec per evaluated library, mirroring the Figure 12 inventory:
/// crates.io metadata, the tested subcomponent, and a builder that
/// instantiates the library *model* - API type signatures (with trait
/// bounds, unsafe weighting, and collection quirks), a code template,
/// executable semantics over the miri heap, and a coverage layout. Four
/// models carry the paper's injected bugs (Figure 7).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CRATES_CRATESPEC_H
#define SYRUST_CRATES_CRATESPEC_H

#include "api/ApiDatabase.h"
#include "miri/Interpreter.h"
#include "program/Program.h"
#include "types/TraitEnv.h"
#include "types/Type.h"

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>

namespace syrust::crates {

/// Figure 12 row: crates.io metadata for one library.
struct CrateInfo {
  std::string Name;
  std::string Category; ///< "DS" (data structures) or "EN" (encodings).
  uint64_t Downloads = 0;
  bool Polymorphic = false;
  std::string Subcomponent;
  std::string RevHash;
  /// False for closure-based libraries SyRust cannot drive (Section 7.1:
  /// cookie-factory, jsonrpc-client-core).
  bool SupportsSynthesis = true;
};

/// Figure 7 row: an injected bug a model is expected to expose.
struct BugInfo {
  std::string Label;   ///< "*1" .. "*4".
  std::string BugType; ///< "Memory Leak", "Hanging Pointer", ...
  int MinLines = 0;
  miri::UbKind Kind = miri::UbKind::None;
};

/// A fully instantiated library model, ready for one SyRust run. Owns its
/// type arena; everything inside references it.
struct CrateInstance {
  CrateInstance() : Traits(Arena) {}
  CrateInstance(const CrateInstance &) = delete;
  CrateInstance &operator=(const CrateInstance &) = delete;

  /// Copy-on-write overlay over a shared immutable \p Base instance
  /// (core::CrateAnalysis hands these to campaign workers). The arena
  /// chains to the base arena, so base types keep their pointer identity
  /// while refinement-added types intern privately; everything a run
  /// mutates (the API database via bans/refinement, the trait rules) or
  /// calls through (semantics, template init - both capture by value) is
  /// copied. \p Base must outlive this overlay and stay immutable while
  /// it exists.
  CrateInstance(const CrateInstance &Base, types::OverlayTag)
      : Arena(Base.Arena, types::Overlay), Traits(Base.Traits, Arena),
        Db(Base.Db), Builtins(Base.Builtins), Pinned(Base.Pinned),
        Inputs(Base.Inputs), Registry(Base.Registry), Init(Base.Init),
        ComponentLines(Base.ComponentLines),
        LibraryLines(Base.LibraryLines),
        ComponentBranches(Base.ComponentBranches),
        LibraryBranches(Base.LibraryBranches), MaxLen(Base.MaxLen),
        MiriCostFactor(Base.MiriCostFactor) {}

  types::TypeArena Arena;
  types::TraitEnv Traits;
  api::ApiDatabase Db;
  /// Builtin ids in {LetMut, Borrow, BorrowMut} order.
  std::vector<api::ApiId> Builtins;
  /// APIs always included in the 15-API selection (the paper allows two
  /// manual picks per library, Section 6.2).
  std::vector<api::ApiId> Pinned;
  std::vector<program::TemplateInput> Inputs;
  miri::SemanticsRegistry Registry;
  miri::TemplateInit Init;

  /// Coverage layout (component region is a prefix of the library).
  int ComponentLines = 0;
  int LibraryLines = 0;
  int ComponentBranches = 0;
  int LibraryBranches = 0;

  /// Maximum test-case length for this library (Figure 6 column 2).
  int MaxLen = 6;
  /// Relative Miri interpretation cost (dashmap: "extremely slow to be
  /// interpreted by Miri", Section 7.1).
  double MiriCostFactor = 1.0;
};

/// Descriptor + builder for one library.
struct CrateSpec {
  CrateInfo Info;
  std::optional<BugInfo> Bug;
  std::function<void(CrateInstance &)> Build;

  /// Instantiates a fresh model.
  std::unique_ptr<CrateInstance> instantiate() const {
    auto Inst = std::make_unique<CrateInstance>();
    if (Build)
      Build(*Inst);
    return Inst;
  }
};

} // namespace syrust::crates

#endif // SYRUST_CRATES_CRATESPEC_H
