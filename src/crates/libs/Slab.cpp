//===--- Slab.cpp - Model of the slab crate -------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// slab::Slab: pre-allocated storage with stable keys. Figure 6 shows a
/// substantial Lifetime&Ownership share (36%): the accessor APIs return
/// references whose anonymous parameterized lifetimes the encoder cannot
/// express.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Clone", "String");
  B.impl("Clone", "Slab<T>", {{"T", "Clone"}});

  B.containerInput("slab", "Slab<String>", 2, 8);
  B.stringInput("val", "String", "entry");
  B.scalarInput("key", "usize", 1);

  {
    ApiDecl D = decl("Slab::new", {}, "Slab<T>", SemKind::AllocContainer);
    D.CovLines = 7;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::with_capacity", {"usize"}, "Slab<T>",
                     SemKind::AllocContainer);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::insert", {"&mut Slab<T>", "T"}, "usize",
                     SemKind::ContainerPush);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::remove", {"&mut Slab<String>", "usize"},
                     "String", SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 11;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &S = Ctx.deref(0);
      Ctx.coverBranch(0, S.Len > 0);
      if (S.Len > 0)
        S.Len -= 1;
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Str = "removed";
      Out.Alloc = Ctx.heap().allocate(16, "removed entry");
      return Out;
    };
    B.api(D);
  }
  {
    // Anonymous parameterized lifetime on the accessor (the L&O share).
    ApiDecl D = decl("Slab::get", {"&Slab<String>", "usize"},
                     "Option<&String>", SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 8;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::get_mut", {"&mut Slab<String>", "usize"},
                     "Option<&mut String>", SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::contains", {"&Slab<String>", "usize"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::len", {"&Slab<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::capacity", {"&Slab<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::is_empty", {"&Slab<T>"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::clear", {"&mut Slab<T>"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 6;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::reserve", {"&mut Slab<T>", "usize"}, "()",
                     SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::vacant_key", {"&Slab<T>"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::shrink_to_fit", {"&mut Slab<T>"}, "()",
                     SemKind::Inert);
    D.Unsafe = true;
    D.CovLines = 7;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("Slab::key_of_hint", {"&Slab<String>", "&String"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    // Clone-bounded generic (the type-error share of Figure 6's slab
    // row): harvested non-Clone instantiations die with trait errors.
    ApiDecl D = decl("Slab::clone_entry", {"&T"}, "T",
                     SemKind::Transform);
    D.Bounds = {{"T", "Clone"}};
    D.CovLines = 6;
    D.CovBranches = 1;
    B.api(D);
  }

  B.finish(24, 8, 52, 10, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeSlab() {
  CrateSpec Spec;
  Spec.Info = {"slab", "DS", 15575908, true, "slab::Slab", "e6b8676",
               true};
  Spec.Build = build;
  return Spec;
}
