//===--- Bytemuck.cpp - Model of bytemuck ---------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// bytemuck: Pod casting. Figure 6's worst rejection rate (17.47%): the
/// cast functions need Pod layout facts the collected signatures cannot
/// express (modeled as unfixable inference quirks), plus a
/// Lifetime&Ownership share from cast_ref-style reborrows.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"A", "B"});

  B.impl("Pod", "u8");
  B.impl("Pod", "u32");
  B.impl("Pod", "u64");

  B.scalarInput("word", "u32", 0xDEADBEEF);
  B.containerInput("bytes", "PodBytes", 8, 8);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    // Layout-dependent casts: unfixable inference failures (type errors
    // that keep recurring; no refinement exists).
    ApiDecl D = decl("bytemuck::cast_u32_pair", {"u32"}, "u64",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::cast_slice_len", {"&PodBytes"}, "usize",
                     SemKind::ContainerLen);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    // Reborrowing casts with anonymous lifetimes (the L&O share).
    ApiDecl D = decl("bytemuck::cast_ref_view", {"&PodBytes"}, "&PodBytes",
                     SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.Unsafe = true;
    D.CovLines = 8;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::bytes_of_len", {"u32"}, "usize",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::zeroed_u32", {}, "u32",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::fill_zeroes", {"&mut PodBytes"}, "()",
                     SemKind::ContainerClear);
    D.Unsafe = true;
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("PodBytes::from_len", {"usize"}, "PodBytes",
                     SemKind::AllocContainer);
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("PodBytes::len", {"&PodBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::pod_align_hint", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::checked_cast_len", {"usize", "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::offset_of_hint", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    // Pod-layout inference lost in collection (bytemuck is Figure 6's
    // worst row: these casts keep type-erroring and nothing can fix them).
    ApiDecl D = decl("PodBytes::first_word", {"&PodBytes"}, "u32",
                     SemKind::MakeScalar);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("PodBytes::word_count", {"&PodBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("bytemuck::try_cast_ok", {"u32", "usize"}, "bool",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(16, 6, 30, 8, /*MaxLen=*/5);
}

} // namespace

CrateSpec syrust::crates::makeBytemuck() {
  CrateSpec Spec;
  Spec.Info = {"bytemuck", "EN", 727756, false, "bytemuck", "68ed5fe",
               true};
  Spec.Build = build;
  return Spec;
}
