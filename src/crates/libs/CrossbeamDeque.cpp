//===--- CrossbeamDeque.cpp - Model of crossbeam-deque --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Send", "usize");
  B.impl("Send", "String");

  B.scalarInput("task", "usize", 9);
  B.stringInput("name", "String", "job");

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("Injector::new", {}, "Injector<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Send"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 10;
    Api(D);
  }
  {
    ApiDecl D = decl("Injector::push", {"&Injector<T>", "T"}, "()",
                     SemKind::ContainerPush);
    D.Bounds = {{"T", "Send"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Injector::steal", {"&Injector<T>"}, "Steal<T>",
                     SemKind::ContainerPop);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Injector::len", {"&Injector<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Injector::is_empty", {"&Injector<T>"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Worker::new_fifo", {}, "Worker<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("Worker::new_lifo", {}, "Worker<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("Worker::push", {"&Worker<T>", "T"}, "()",
                     SemKind::ContainerPush);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 11;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Worker::pop", {"&Worker<T>"}, "Option<T>",
                     SemKind::ContainerPop);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 11;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Worker::len", {"&Worker<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Worker::stealer", {"&Worker<T>"}, "Stealer<T>",
                     SemKind::MakeScalar);
    D.Bounds = {{"T", "Send"}};
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("Stealer::steal", {"&Stealer<T>"}, "Steal<T>",
                     SemKind::ContainerPop);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Steal::is_success", {"&Steal<usize>"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Steal::is_empty", {"&Steal<usize>"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("deque::batch_hint", {"usize", "usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(24, 8, 80, 16, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeCrossbeamDeque() {
  CrateSpec Spec;
  Spec.Info = {"crossbeam-deque", "DS", 15140300, true,
               "crossbeam_deque::Injector", "5a68889", true};
  Spec.Build = build;
  return Spec;
}
