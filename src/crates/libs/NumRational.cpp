//===--- NumRational.cpp - Model of num-rational --------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Integer", "i64");
  B.impl("Integer", "i32");
  B.impl("Clone", "Ratio<T>", {{"T", "Clone"}});

  B.scalarInput("num", "i64", 6);
  B.scalarInput("den", "i64", 4);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("Ratio::new", {"i64", "i64"}, "Ratio<i64>",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.CovLines = 10;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::new_raw", {"T", "T"}, "Ratio<T>",
                     SemKind::MakeScalar);
    D.Bounds = {{"T", "Integer"}};
    D.Unsafe = true;
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::from_integer", {"i64"}, "Ratio<i64>",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::numer", {"&Ratio<i64>"}, "i64",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::denom", {"&Ratio<i64>"}, "i64",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::is_integer", {"&Ratio<i64>"}, "bool",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.CovLines = 5;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::reduced", {"&Ratio<i64>"}, "Ratio<i64>",
                     SemKind::Transform);
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::recip", {"&Ratio<i64>"}, "Ratio<i64>",
                     SemKind::Transform);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::floor", {"&Ratio<i64>"}, "Ratio<i64>",
                     SemKind::Transform);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::ceil", {"&Ratio<i64>"}, "Ratio<i64>",
                     SemKind::Transform);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::to_integer", {"&Ratio<i64>"}, "i64",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::checked_add",
                     {"&Ratio<i64>", "&Ratio<i64>"}, "Option<Ratio<i64>>",
                     SemKind::ContainerPop);
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Ratio::checked_mul",
                     {"&Ratio<i64>", "&Ratio<i64>"}, "Option<Ratio<i64>>",
                     SemKind::ContainerPop);
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("rational::gcd", {"i64", "i64"}, "i64",
                     SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("rational::lcm", {"i64", "i64"}, "i64",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(20, 6, 60, 14, /*MaxLen=*/4);
}

} // namespace

CrateSpec syrust::crates::makeNumRational() {
  CrateSpec Spec;
  Spec.Info = {"num-rational", "DS", 7250507, false,
               "num_rational::Ratio", "bb4c920", true};
  Spec.Build = build;
  return Spec;
}
