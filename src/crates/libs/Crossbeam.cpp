//===--- Crossbeam.cpp - Model of the crossbeam facade crate (bug *2) -----===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Models crossbeam::epoch::Collector (the component the paper tested for
/// the facade crate; disjoint from the crossbeam-queue/-deque/-utils
/// components, Section 7.1). Bug *2: during handle registration the
/// epoch machinery constructs a pointer into a retired (already freed)
/// garbage bag without going through MaybeUninit - creating a hanging
/// pointer, which Miri flags even without a dereference.
///
/// Minimal trigger (3 lines, matching Figure 7):
///   let v1 : Collector = Collector::new();
///   let v2 = &v1;
///   let v3 : LocalHandle = Collector::register(v2);
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust;
using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Send", "usize");
  B.impl("Send", "String");

  B.scalarInput("n", "usize", 4);
  B.stringInput("s", "String", "payload");

  {
    // Collector::new allocates the global epoch state plus an initial
    // garbage bag that is immediately retired (freed).
    ApiDecl D = decl("Collector::new", {}, "Collector", SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Alloc = Ctx.heap().allocate(128, "Collector global state");
      int Bag = Ctx.heap().allocate(64, "epoch bag 0");
      Ctx.heap().free(Bag, Ctx.line()); // Retired during construction.
      Out.Int = Bag;                    // Retired-bag id kept inside.
      Ctx.coverBranch(0, true);
      return Out;
    };
    B.api(D);
  }
  {
    // BUG *2: registration rebuilds a bag-list pointer from the retired
    // bag's address - a hanging pointer the moment it is formed.
    ApiDecl D = decl("Collector::register", {"&Collector"}, "LocalHandle",
                     SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 16;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &C = Ctx.deref(0);
      int RetiredBag = static_cast<int>(C.Int);
      if (RetiredBag >= 0)
        Ctx.heap().recordRawPointer(RetiredBag, 0, Ctx.line(),
                                    "epoch bag-list link");
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Alloc = Ctx.heap().allocate(32, "LocalHandle");
      Ctx.coverBranch(0, RetiredBag >= 0);
      return Out;
    };
    B.api(D);
  }

  // The rest of the selected component surface: scoped-thread and channel
  // helpers the facade re-exports, modeled concretely.
  {
    ApiDecl D = decl("Backoff::new", {}, "Backoff",
                     SemKind::AllocContainer);
    D.CovLines = 6;
    B.api(D);
  }
  {
    ApiDecl D = decl("Backoff::spin", {"&Backoff"}, "()",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("Backoff::is_completed", {"&Backoff"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("channel::bounded_capacity_hint", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("channel::chunk_len", {"usize", "usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("epoch::bag_capacity", {}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("LocalHandle::is_pinned", {"&LocalHandle"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("utils::cache_padded_len", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("String::hash_seed", {"&String"}, "usize",
                     SemKind::Transform);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    // epoch::Owned<T>: Send-bounded; its eager instantiations over
    // non-Send types are the facade's small type-error source - and the
    // reason the purely eager RQ3 variant drowns (Figure 10): the epoch
    // module is generic everywhere.
    ApiDecl D = decl("Owned::new", {"T"}, "Owned<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 7;
    B.api(D);
  }
  {
    ApiDecl D = decl("Owned::into_usize", {"Owned<T>"}, "usize",
                     SemKind::ConsumeFree);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 6;
    B.api(D);
  }
  {
    ApiDecl D = decl("Atomic::null", {}, "Atomic<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 6;
    B.api(D);
  }
  {
    ApiDecl D = decl("Atomic::from_owned", {"Owned<T>"}, "Atomic<T>",
                     SemKind::Custom);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 8;
    D.Custom = [](InterpCtx &Ctx) {
      Value &O = Ctx.arg(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Alloc = O.Alloc;
      Out.Len = O.Len;
      O.Alloc = -1;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("Atomic::is_null", {"&Atomic<T>"}, "bool",
                     SemKind::ContainerLen);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 5;
    B.api(D);
  }

  // The facade is far larger than the tested component (Figure 11's low
  // whole-library coverage for crossbeam).
  B.finish(/*ComponentPadLines=*/8, /*ComponentPadBranches=*/0,
           /*LibraryExtraLines=*/188, /*LibraryExtraBranches=*/86,
           /*MaxLen=*/4);
}

} // namespace

CrateSpec syrust::crates::makeCrossbeam() {
  CrateSpec Spec;
  Spec.Info = {"crossbeam", "DS", 5645952, false,
               "crossbeam::epoch::Collector", "5a68889", true};
  Spec.Bug = BugInfo{"*2", "Hanging Pointer", 3, UbKind::DanglingPointer};
  Spec.Build = build;
  return Spec;
}
