//===--- GenericArray.cpp - Model of generic-array ------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// generic_array::GenericArray: length-in-the-type arrays driven by
/// typenum trait machinery. Figure 6: Misc-dominated (98.71%) - the
/// collector cannot resolve methods that come in through ArrayLength
/// impls, yielding sustained "method not found" rejections.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T", "N"});

  B.impl("ArrayLength", "U4");
  B.impl("ArrayLength", "U8");
  B.impl("Clone", "GenericArray<T, N>", {{"T", "Clone"}});
  B.impl("Clone", "u8");

  B.containerInput("arr", "GenericArray<u8, U4>", 4, 4);
  B.scalarInput("x", "u8", 3);
  B.scalarInput("n", "usize", 2);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    // Collected at a concrete instantiation (the generic Default impl is
    // what the Misc-quirked methods below resolve through).
    ApiDecl D = decl("GenericArray::default4", {}, "GenericArray<u8, U4>",
                     SemKind::AllocContainer);
    D.Pinned = true;
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::len", {"&GenericArray<u8, U4>"},
                     "usize", SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    // typenum-resolved methods the collector mis-saw (the Misc flood).
    ApiDecl D = decl("GenericArray::from_slice", {"&GenericArray<u8, U4>"},
                     "GenericArray<u8, U4>", SemKind::Transform);
    D.Quirks.MethodNotFound = true;
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::as_slice_len",
                     {"&GenericArray<u8, U4>"}, "usize",
                     SemKind::ContainerLen);
    D.Quirks.MethodNotFound = true;
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::concat_len",
                     {"&GenericArray<u8, U4>", "&GenericArray<u8, U4>"},
                     "usize", SemKind::MakeScalar);
    D.Quirks.MethodNotFound = true;
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::first", {"&GenericArray<u8, U4>"},
                     "Option<u8>", SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::fill", {"&mut GenericArray<u8, U4>",
                                            "u8"},
                     "()", SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("arr::generic_length_of", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::swap", {"&mut GenericArray<u8, U4>",
                                            "usize", "usize"},
                     "()", SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::reverse", {"&mut GenericArray<u8, U4>"},
                     "()", SemKind::Inert);
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::contains_byte",
                     {"&GenericArray<u8, U4>", "u8"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::clone_array",
                     {"&GenericArray<u8, U4>"}, "GenericArray<u8, U4>",
                     SemKind::Transform);
    D.CovLines = 7;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("sequence::split_hint", {"usize", "usize"}, "usize",
                     SemKind::MakeScalar);
    D.Quirks.MethodNotFound = true;
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::sum_bytes", {"&GenericArray<u8, U4>"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("GenericArray::map_len", {"GenericArray<u8, U4>"},
                     "usize", SemKind::ConsumeFree);
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(24, 8, 60, 12, /*MaxLen=*/10);
}

} // namespace

CrateSpec syrust::crates::makeGenericArray() {
  CrateSpec Spec;
  Spec.Info = {"generic-array", "DS", 12145172, true,
               "generic_array::GenericArray", "04fe34c", true};
  Spec.Build = build;
  return Spec;
}
