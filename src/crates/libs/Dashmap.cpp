//===--- Dashmap.cpp - Model of dashmap -----------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// dashmap::DashMap. Section 7.1 singles dashmap out as "extremely slow to
/// be interpreted by Miri" (sharded locks amplify Stacked Borrows
/// bookkeeping) - only about half as many test cases execute within the
/// budget, modeled by MiriCostFactor.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"K", "V"});

  B.impl("Hash", "String");
  B.impl("Eq", "String");
  B.impl("Clone", "String");

  B.containerInput("map", "DashMap<String, usize>", 2, 32);
  B.stringInput("key", "String", "route");
  B.scalarInput("val", "usize", 17);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("DashMap::new", {}, "DashMap<K, V>",
                     SemKind::AllocContainer);
    D.Bounds = {{"K", "Hash"}, {"K", "Eq"}};
    D.Unsafe = true;
    D.CovLines = 10;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::with_capacity", {"usize"}, "DashMap<K, V>",
                     SemKind::AllocContainer);
    D.Bounds = {{"K", "Hash"}, {"K", "Eq"}};
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::insert",
                     {"&DashMap<String, usize>", "String", "usize"},
                     "Option<usize>", SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    D.Custom = [](InterpCtx &Ctx) {
      Value &M = Ctx.deref(0);
      M.Len += 1;
      Ctx.coverBranch(0, M.Len > 8);
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = true;
      return Out;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::remove",
                     {"&DashMap<String, usize>", "&String"},
                     "Option<usize>", SemKind::ContainerPop);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::contains_key",
                     {"&DashMap<String, usize>", "&String"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::len", {"&DashMap<String, usize>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::is_empty", {"&DashMap<String, usize>"},
                     "bool", SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::clear", {"&DashMap<String, usize>"}, "()",
                     SemKind::ContainerClear);
    D.Unsafe = true;
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::shard_count", {"&DashMap<String, usize>"},
                     "usize", SemKind::MakeScalar);
    D.Quirks.MethodNotFound = true;
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::capacity_hint", {"&DashMap<String, usize>"},
                     "usize", SemKind::ContainerLen);
    D.Quirks.MethodNotFound = true;
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::alter_count",
                     {"&DashMap<String, usize>", "&String"}, "usize",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("mapref::entry_hint", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::hasher_seed", {"&DashMap<String, usize>"},
                     "u64", SemKind::MakeScalar);
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("DashMap::reserve_hint",
                     {"&DashMap<String, usize>", "usize"}, "()",
                     SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(24, 8, 140, 30, /*MaxLen=*/7, /*MiriCost=*/2.1);
}

} // namespace

CrateSpec syrust::crates::makeDashmap() {
  CrateSpec Spec;
  Spec.Info = {"dashmap", "DS", 465022, true, "dashmap::DashMap",
               "b2951f8", true};
  Spec.Build = build;
  return Spec;
}
