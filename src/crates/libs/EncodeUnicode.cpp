//===--- EncodeUnicode.cpp - Model of encode_unicode ----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("CharExt", "char");

  B.scalarInput("c", "char", 0x61);
  B.scalarInput("cp", "u32", 0x1F600);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("Utf8Char::from_char", {"char"}, "Utf8Char",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf8Char::len", {"&Utf8Char"}, "usize",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.CovLines = 5;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf8Char::is_ascii", {"&Utf8Char"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf8Char::to_char", {"&Utf8Char"}, "char",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf16Char::from_char", {"char"}, "Utf16Char",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf16Char::len", {"&Utf16Char"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf8Char::from_codepoint_checked", {"u32"},
                     "Option<Utf8Char>", SemKind::ContainerPop);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf16Char::from_codepoint_checked", {"u32"},
                     "Option<Utf16Char>", SemKind::ContainerPop);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("char::width_utf8", {"char"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("char::width_utf16", {"char"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    // Mis-collected signature (Misc sliver).
    ApiDecl D = decl("Utf8Char::to_slice_len", {"&Utf8Char"}, "usize",
                     SemKind::MakeScalar);
    D.Quirks.SkewedArity = true;
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf8Char::eq_char", {"&Utf8Char", "char"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("iterator::byte_count_hint", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    // Extension-trait generic (the type-error source): only `char`
    // implements CharExt.
    ApiDecl D = decl("CharExt::to_utf8_len", {"T"}, "usize",
                     SemKind::MakeScalar);
    D.Bounds = {{"T", "CharExt"}};
    D.CovLines = 5;
    Api(D);
  }

  {
    ApiDecl D = decl("Utf16Char::to_char", {"&Utf16Char"}, "char",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("Utf8Char::as_u32", {"&Utf8Char"}, "u32",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }

  B.finish(18, 6, 50, 12, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeEncodeUnicode() {
  CrateSpec Spec;
  Spec.Info = {"encode_unicode", "EN", 1985895, false,
               "encode_unicode::Utf8Char", "47f8483", true};
  Spec.Build = build;
  return Spec;
}
