//===--- Sval.cpp - Model of sval -----------------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// sval::stream::OwnedStream: a streaming value API whose visitor surface
/// borrows aggressively - Figure 6 reports a Lifetime&Ownership-majority
/// error mix (55.61%) over a modest test-case count.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("SvalValue", "u64");
  B.impl("SvalValue", "String");

  B.stringInput("label", "String", "record");
  B.scalarInput("num", "u64", 12);
  B.containerInput("stream", "OwnedStream", 1, 8);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("OwnedStream::new", {}, "OwnedStream",
                     SemKind::AllocContainer);
    D.Pinned = true;
    D.CovLines = 8;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::u64_value", {"&mut OwnedStream", "u64"},
                     "()", SemKind::ContainerPush);
    D.Pinned = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::str_value",
                     {"&mut OwnedStream", "&String"}, "()",
                     SemKind::ContainerPush);
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::map_begin", {"&mut OwnedStream"}, "()",
                     SemKind::ContainerPush);
    D.CovLines = 8;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::map_end", {"&mut OwnedStream"}, "()",
                     SemKind::ContainerPop);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::depth", {"&OwnedStream"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    // Borrow-heavy visitor views: anonymous lifetimes (the L&O majority).
    ApiDecl D = decl("OwnedStream::current_view", {"&OwnedStream"},
                     "&String", SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::last_key_view", {"&OwnedStream"},
                     "&String", SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("stream::tag_of", {"u64"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::is_streaming", {"&OwnedStream"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("OwnedStream::into_inner_len", {"OwnedStream"},
                     "usize", SemKind::ConsumeFree);
    D.CovLines = 7;
    D.CovBranches = 1;
    Api(D);
  }
  {
    // Short consumer for the borrowed views, so the anonymous-lifetime
    // chains appear at small program lengths.
    ApiDecl D = decl("stream::str_len", {"&String"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    // Value-trait generic: the type-error share of the sval row.
    ApiDecl D = decl("sval::stream_any", {"&mut OwnedStream", "&T"}, "()",
                     SemKind::ContainerPush);
    D.Bounds = {{"T", "SvalValue"}};
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(16, 6, 90, 18, /*MaxLen=*/10);
}

} // namespace

CrateSpec syrust::crates::makeSval() {
  CrateSpec Spec;
  Spec.Info = {"sval", "EN", 414356, false, "sval::stream::OwnedStream",
               "c432b60", true};
  Spec.Build = build;
  return Spec;
}
