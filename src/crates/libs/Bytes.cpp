//===--- Bytes.cpp - Model of the bytes crate -----------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// bytes::BytesMut: a reference-counted byte buffer. Mostly concrete APIs;
/// the small type-error count comes from one generic helper, the Misc
/// sliver from a mis-collected signature.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Buf", "BytesMut");
  B.impl("Buf", "Bytes");

  B.containerInput("buf", "BytesMut", 5, 16);
  B.scalarInput("byte", "u8", 0x41);
  B.scalarInput("n", "usize", 4);

  {
    ApiDecl D = decl("BytesMut::with_capacity", {"usize"}, "BytesMut",
                     SemKind::AllocContainer);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::new", {}, "BytesMut",
                     SemKind::AllocContainer);
    D.CovLines = 6;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::put_u8", {"&mut BytesMut", "u8"}, "()",
                     SemKind::ContainerPush);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 11;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::len", {"&BytesMut"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::capacity", {"&BytesMut"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::is_empty", {"&BytesMut"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::clear", {"&mut BytesMut"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 5;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::truncate", {"&mut BytesMut", "usize"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 7;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::reserve", {"&mut BytesMut", "usize"}, "()",
                     SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::split_to", {"&mut BytesMut", "usize"},
                     "BytesMut", SemKind::Custom);
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &Buf = Ctx.deref(0);
      int64_t At = Ctx.deref(1).Int;
      if (At > Buf.Len)
        At = Buf.Len;
      Ctx.coverBranch(0, At > 0);
      Buf.Len -= At;
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Len = At;
      Out.Cap = At;
      // Shares the refcounted allocation: model as a fresh buffer.
      Out.Alloc = Ctx.heap().allocate(static_cast<size_t>(At) + 8,
                                      "BytesMut split");
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::freeze", {"BytesMut"}, "Bytes",
                     SemKind::Custom);
    D.Pinned = false;
    D.Unsafe = true;
    D.CovLines = 9;
    D.Custom = [](InterpCtx &Ctx) {
      Value &Buf = Ctx.arg(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Len = Buf.Len;
      Out.Alloc = Buf.Alloc;
      Buf.Alloc = -1;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("Bytes::len", {"&Bytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("Bytes::slice_len", {"&Bytes", "usize", "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    // Generic helper over Buf: the small type-error source.
    ApiDecl D = decl("buf::remaining", {"&T"}, "usize",
                     SemKind::ContainerLen);
    D.Bounds = {{"T", "Buf"}};
    D.CovLines = 5;
    B.api(D);
  }
  {
    // Mis-collected signature.
    ApiDecl D = decl("BytesMut::extend_from_slice",
                     {"&mut BytesMut", "usize"}, "()", SemKind::Inert);
    D.Quirks.SkewedArity = true;
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::remaining_mut", {"&BytesMut"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    B.api(D);
  }

  {
    ApiDecl D = decl("Bytes::first_byte", {"&Bytes"}, "Option<u8>",
                     SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("BytesMut::put_u32", {"&mut BytesMut", "u32"}, "()",
                     SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    B.api(D);
  }

  B.finish(26, 8, 90, 18, /*MaxLen=*/7);
}

} // namespace

CrateSpec syrust::crates::makeBytes() {
  CrateSpec Spec;
  Spec.Info = {"bytes", "DS", 16302396, false, "bytes::BytesMut",
               "b7f7582", true};
  Spec.Build = build;
  return Spec;
}
