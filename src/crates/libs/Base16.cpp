//===--- Base16.cpp - Model of base16 -------------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("AsRefBytes", "HexBytes");
  B.impl("AsRefBytes", "String");

  B.containerInput("raw", "HexBytes", 6, 6);
  B.stringInput("hex", "String", "6a6b6c");

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("base16::encode_lower", {"&HexBytes"}, "String",
                     SemKind::Transform);
    D.Pinned = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::encode_upper", {"&HexBytes"}, "String",
                     SemKind::Transform);
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::decode", {"&String"}, "HexBytes",
                     SemKind::Transform);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::encoded_len", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::decoded_len_checked", {"usize"},
                     "Option<usize>", SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("HexBytes::len", {"&HexBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("HexBytes::from_len", {"usize"}, "HexBytes",
                     SemKind::AllocContainer);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::is_valid_hex", {"&String"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::hex_digit_value", {"u8"}, "Option<u8>",
                     SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("String::hex_len", {"&String"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    // AsRef<[u8]>-style generic: the row's small type-error source.
    ApiDecl D = decl("base16::encode_config_len", {"&T"}, "usize",
                     SemKind::ContainerLen);
    D.Bounds = {{"T", "AsRefBytes"}};
    D.CovLines = 5;
    Api(D);
  }

  {
    ApiDecl D = decl("base16::encode_byte_lower", {"u8"}, "u8",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::encode_byte_upper", {"u8"}, "u8",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("HexBytes::push_byte", {"&mut HexBytes", "u8"}, "()",
                     SemKind::ContainerPush);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("base16::decode_in_place_len", {"&mut HexBytes"},
                     "usize", SemKind::ContainerLen);
    D.Unsafe = true;
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(12, 4, 18, 4, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeBase16() {
  CrateSpec Spec;
  Spec.Info = {"base16", "EN", 133173, false, "base16", "a532182", true};
  Spec.Build = build;
  return Spec;
}
