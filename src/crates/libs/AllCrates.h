//===--- AllCrates.h - Maker declarations for every library model -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: one maker per Figure 12 library, implemented in the
/// sibling .cpp files and collected by CrateRegistry.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_CRATES_LIBS_ALLCRATES_H
#define SYRUST_CRATES_LIBS_ALLCRATES_H

#include "crates/CrateSpec.h"

namespace syrust::crates {

// Data structures (Figure 12 top half).
CrateSpec makeSmallvec();
CrateSpec makeCrossbeamUtils();
CrateSpec makeBytes();
CrateSpec makeSlab();
CrateSpec makeCrossbeamDeque();
CrateSpec makeGenericArray();
CrateSpec makeCrossbeamQueue(); // Bug *1: memory leak.
CrateSpec makeNumRational();
CrateSpec makeHashbrown();
CrateSpec makeCrossbeam(); // Bug *2: hanging pointer.
CrateSpec makePetgraph();
CrateSpec makeImRc();
CrateSpec makeBitvec(); // Bug *3: use-after-free.
CrateSpec makeNdarray();
CrateSpec makeDashmap();

// Encodings (Figure 12 bottom half).
CrateSpec makeEncodingRs(); // Bug *4: OOB pointer.
CrateSpec makeBstr();
CrateSpec makeCsvCore();
CrateSpec makeDataEncoding();
CrateSpec makeEncodeUnicode();
CrateSpec makeUrlencoding();
CrateSpec makeRmpSerde();
CrateSpec makeBytemuck();
CrateSpec makeSval();
CrateSpec makeCookieFactory(); // Excluded: closure-based API.
CrateSpec makeBase16();
CrateSpec makeCborCodec();
CrateSpec makeJsonrpcClientCore(); // Excluded: closure-based API.
CrateSpec makeHcid();
CrateSpec makeUtf8Width();

} // namespace syrust::crates

#endif // SYRUST_CRATES_LIBS_ALLCRATES_H
