//===--- Hcid.cpp - Model of hcid -----------------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("AsKey", "KeyBytes");

  B.containerInput("keybytes", "KeyBytes", 32, 32);
  B.stringInput("id", "String", "HcKciDdu");

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("HcidEncoding::with_kind", {"&String"},
                     "HcidEncoding", SemKind::AllocContainer);
    D.Pinned = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("HcidEncoding::encode", {"&HcidEncoding", "&KeyBytes"},
                     "String", SemKind::Transform);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 13;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("HcidEncoding::decode", {"&HcidEncoding", "&String"},
                     "KeyBytes", SemKind::Transform);
    D.Unsafe = true;
    D.CovLines = 13;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("HcidEncoding::is_corrupt", {"&HcidEncoding",
                                                  "&String"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("KeyBytes::len", {"&KeyBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("KeyBytes::from_len", {"usize"}, "KeyBytes",
                     SemKind::AllocContainer);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("hcid::parity_len", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("hcid::char_value", {"char"}, "Option<u8>",
                     SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("String::hcid_prefix_ok", {"&String"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("hcid::key_len_of", {"&T"}, "usize",
                     SemKind::ContainerLen);
    D.Bounds = {{"T", "AsKey"}};
    D.CovLines = 5;
    Api(D);
  }

  {
    ApiDecl D = decl("HcidEncoding::encode_len", {"&HcidEncoding",
                                                  "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("HcidEncoding::decode_len", {"&HcidEncoding",
                                                  "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("KeyBytes::push_byte", {"&mut KeyBytes", "u8"}, "()",
                     SemKind::ContainerPush);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("hcid::cap_segment_count", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(12, 4, 20, 4, /*MaxLen=*/5);
}

} // namespace

CrateSpec syrust::crates::makeHcid() {
  CrateSpec Spec;
  Spec.Info = {"hcid", "EN", 75423, false, "hcid::HcidEncoding",
               "2caee15", true};
  Spec.Build = build;
  return Spec;
}
