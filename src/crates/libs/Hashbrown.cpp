//===--- Hashbrown.cpp - Model of hashbrown -------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// hashbrown::HashSet. Figure 6: a comparatively high rejection count
/// dominated by Misc - raw-entry and hasher-parameterized methods the
/// collector resolved against the wrong inherent impl.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Hash", "String");
  B.impl("Eq", "String");
  B.impl("Clone", "String");
  B.impl("Clone", "HashSet<T>", {{"T", "Clone"}});

  B.containerInput("set", "HashSet<String>", 2, 16);
  B.stringInput("key", "String", "alpha");
  B.scalarInput("n", "usize", 8);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("HashSet::new", {}, "HashSet<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Hash"}, {"T", "Eq"}};
    D.CovLines = 8;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::with_capacity", {"usize"}, "HashSet<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Hash"}, {"T", "Eq"}};
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::insert", {"&mut HashSet<T>", "T"}, "bool",
                     SemKind::ContainerPush);
    D.Bounds = {{"T", "Hash"}, {"T", "Eq"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::contains", {"&HashSet<String>", "&String"},
                     "bool", SemKind::MakeScalar);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::remove", {"&mut HashSet<String>", "&String"},
                     "bool", SemKind::Custom);
    D.Unsafe = true;
    D.CovLines = 11;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &S = Ctx.deref(0);
      Ctx.coverBranch(0, S.Len > 0);
      if (S.Len > 0)
        S.Len -= 1;
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = S.Len > 0 ? 1 : 0;
      return Out;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::len", {"&HashSet<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::capacity", {"&HashSet<T>"}, "usize",
                     SemKind::ContainerLen);
    D.Quirks.MethodNotFound = true;
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::is_empty", {"&HashSet<T>"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::clear", {"&mut HashSet<T>"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 6;
    Api(D);
  }
  {
    // Hasher-parameterized constructors: wrong inherent impl (Misc).
    ApiDecl D = decl("HashSet::with_hasher_capacity", {"usize"},
                     "HashSet<String>", SemKind::AllocContainer);
    D.Quirks.MethodNotFound = true;
    D.Unsafe = true;
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::raw_reserve_hint",
                     {"&mut HashSet<String>", "usize"}, "()",
                     SemKind::ContainerPush);
    D.Quirks.MethodNotFound = true;
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::get", {"&HashSet<String>", "&String"},
                     "Option<&String>", SemKind::ViewRef);
    D.PropagatesFrom = {0};
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::shrink_to_fit", {"&mut HashSet<T>"}, "()",
                     SemKind::Inert);
    D.Unsafe = true;
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("set::load_factor_hint", {"usize", "usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("HashSet::reserve", {"&mut HashSet<T>", "usize"}, "()",
                     SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(26, 8, 120, 24, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeHashbrown() {
  CrateSpec Spec;
  Spec.Info = {"hashbrown", "DS", 6577360, true, "hashbrown::HashSet",
               "34c1189", true};
  Spec.Build = build;
  return Spec;
}
