//===--- EncodingRs.cpp - Model of encoding_rs (bug *4) -------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Models encoding_rs::Decoder. Bug *4: the UTF-8 to UTF-16 conversion
/// scans the source for the next alignment boundary and forms a pointer
/// past the end of the buffer when the length is not a multiple of the
/// SIMD stride - an out-of-bounds pointer, which Miri flags at creation.
///
/// Minimal trigger (4 lines, matching Figure 7):
///   let v1 = &src;
///   let mut v2 = d;
///   let v3 = &mut v2;
///   let v4 : usize = Decoder::decode_to_utf16(v3, v1);
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust;
using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

constexpr int64_t SimdStride = 8;

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("AsBytes", "Utf8Bytes");

  // Template: a UTF-8 decoder plus a source buffer whose length is NOT a
  // multiple of the SIMD stride (13 bytes).
  B.customInput("d", "Decoder", [](AbstractHeap &Heap, syrust::Rng &) {
    Value V;
    V.Alloc = Heap.allocate(96, "Decoder state");
    return V;
  });
  B.customInput("src", "Utf8Bytes", [](AbstractHeap &Heap, syrust::Rng &) {
    Value V;
    V.Len = 13;
    V.Cap = 13;
    V.Alloc = Heap.allocate(13, "source bytes");
    return V;
  });

  {
    // BUG *4: alignment scan overshoots a misaligned source.
    ApiDecl D = decl("Decoder::decode_to_utf16",
                     {"&mut Decoder", "&Utf8Bytes"}, "usize",
                     SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 18;
    D.CovBranches = 4;
    D.Custom = [](InterpCtx &Ctx) {
      Value &Src = Ctx.deref(1);
      bool Misaligned = Src.Len % SimdStride != 0;
      Ctx.coverBranch(0, Misaligned);
      if (Misaligned && Src.Alloc >= 0) {
        int64_t Overshoot =
            ((Src.Len / SimdStride) + 1) * SimdStride; // Past the end.
        Ctx.heap().recordRawPointer(Src.Alloc, Overshoot, Ctx.line(),
                                    "alignment scan");
      }
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = Src.Len * 2;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("Decoder::max_utf16_buffer_length",
                     {"&Decoder", "usize"}, "usize", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("Decoder::encoding_name", {"&Decoder"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("Encoding::utf8_decoder", {}, "Decoder",
                     SemKind::Custom);
    D.Pinned = true;
    D.CovLines = 8;
    D.Custom = [](InterpCtx &Ctx) {
      Value V;
      V.Ty = Ctx.outType();
      V.Alloc = Ctx.heap().allocate(96, "Decoder state");
      return V;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("Encoding::windows1252_decoder", {}, "Decoder",
                     SemKind::Custom);
    D.CovLines = 8;
    D.Custom = [](InterpCtx &Ctx) {
      Value V;
      V.Ty = Ctx.outType();
      V.Alloc = Ctx.heap().allocate(96, "Decoder state");
      return V;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("Utf8Bytes::from_len", {"usize"}, "Utf8Bytes",
                     SemKind::Custom);
    D.CovLines = 7;
    D.CovBranches = 1;
    D.Custom = [](InterpCtx &Ctx) {
      Value V;
      V.Ty = Ctx.outType();
      // Sources built in-test are stride-aligned, so only the template's
      // odd-length buffer exposes the bug.
      V.Len = (Ctx.deref(0).Int / SimdStride + 1) * SimdStride;
      V.Cap = V.Len;
      V.Alloc = Ctx.heap().allocate(static_cast<size_t>(V.Len),
                                    "aligned source bytes");
      Ctx.coverBranch(0, Ctx.deref(0).Int > 0);
      return V;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("Utf8Bytes::len", {"&Utf8Bytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("Utf8Bytes::is_ascii", {"&Utf8Bytes"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("Decoder::latin1_byte_compatible_up_to",
                     {"&Decoder", "&Utf8Bytes"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 8;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("mem::is_utf8_latin1", {"&Utf8Bytes"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("mem::utf8_valid_up_to", {"&Utf8Bytes"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("mem::convert_latin1_to_utf8_len", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("Decoder::has_pending_state", {"&Decoder"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    // Generic byte-source helper: the small type-error source.
    ApiDecl D = decl("mem::source_len", {"&T"}, "usize",
                     SemKind::ContainerLen);
    D.Bounds = {{"T", "AsBytes"}};
    D.CovLines = 5;
    B.api(D);
  }

  B.finish(/*ComponentPadLines=*/26, /*ComponentPadBranches=*/8,
           /*LibraryExtraLines=*/120, /*LibraryExtraBranches=*/30,
           /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeEncodingRs() {
  CrateSpec Spec;
  Spec.Info = {"encoding_rs", "EN", 7344939, false, "Decoder", "8e3eee5",
               true};
  Spec.Bug =
      BugInfo{"*4", "OOB Pointer", 4, UbKind::OutOfBoundsPointer};
  Spec.Build = build;
  return Spec;
}
