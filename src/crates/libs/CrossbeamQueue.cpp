//===--- CrossbeamQueue.cpp - Model of crossbeam-queue (bug *1) -----------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Models crossbeam_queue::ArrayQueue. Bug *1 (Figure 7, RUSTSEC-2020-0052
/// in the paper's citation [6]): the destructor reconstructs the internal
/// buffer as a Vec sized by the element count, so a queue dropped with
/// fewer elements than its capacity releases the wrong amount of memory -
/// observable as a leak on the very first one-line test case:
///
///   let v1 : ArrayQueue<usize> = ArrayQueue::new(n);   // n > 0
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust;
using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Send", "usize");
  B.impl("Send", "String");
  B.impl("Clone", "String");

  B.scalarInput("n", "usize", 3);
  B.stringInput("s", "String", "item");

  {
    // The buggy constructor: capacity-sized buffer.
    ApiDecl D = decl("ArrayQueue::new", {"usize"}, "ArrayQueue<T>",
                     SemKind::Custom);
    D.Bounds = {{"T", "Send"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value Out;
      Out.Ty = Ctx.outType();
      int64_t Cap = Ctx.deref(0).Int;
      Ctx.coverBranch(0, Cap == 0);
      Out.Cap = Cap;
      Out.Len = 0;
      if (Cap > 0)
        Out.Alloc = Ctx.heap().allocate(static_cast<size_t>(Cap) * 16,
                                        "ArrayQueue slots");
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("ArrayQueue::push", {"&ArrayQueue<T>", "T"},
                     "Result<i32>", SemKind::Custom);
    D.Bounds = {{"T", "Send"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    D.Custom = [](InterpCtx &Ctx) {
      Value &Q = Ctx.deref(0);
      Value Out;
      Out.Ty = Ctx.outType();
      bool Full = Q.Len >= Q.Cap;
      Ctx.coverBranch(0, Full);
      if (!Full)
        Q.Len += 1;
      Out.Int = Full ? 1 : 0;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("ArrayQueue::pop", {"&ArrayQueue<T>"}, "Option<T>",
                     SemKind::ContainerPop);
    D.Bounds = {{"T", "Send"}};
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("ArrayQueue::len", {"&ArrayQueue<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 6;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("ArrayQueue::capacity", {"&ArrayQueue<T>"}, "usize",
                     SemKind::Custom);
    D.CovLines = 4;
    D.Custom = [](InterpCtx &Ctx) {
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = Ctx.deref(0).Cap;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("ArrayQueue::is_empty", {"&ArrayQueue<T>"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("ArrayQueue::is_full", {"&ArrayQueue<T>"}, "bool",
                     SemKind::Custom);
    D.CovLines = 4;
    D.CovBranches = 1;
    D.Custom = [](InterpCtx &Ctx) {
      Value &Q = Ctx.deref(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = Q.Len >= Q.Cap ? 1 : 0;
      Ctx.coverBranch(0, Out.Int != 0);
      return Out;
    };
    B.api(D);
  }

  // SegQueue: the crate's other queue, kept concrete and leak-free.
  {
    ApiDecl D = decl("SegQueue::new", {}, "SegQueue<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Send"}};
    D.CovLines = 8;
    B.api(D);
  }
  {
    ApiDecl D = decl("SegQueue::push", {"&SegQueue<T>", "T"}, "()",
                     SemKind::ContainerPush);
    D.Bounds = {{"T", "Send"}};
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SegQueue::pop", {"&SegQueue<T>"}, "Option<T>",
                     SemKind::ContainerPop);
    D.Bounds = {{"T", "Send"}};
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SegQueue::len", {"&SegQueue<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 5;
    B.api(D);
  }
  {
    ApiDecl D = decl("queue::usable_capacity", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("queue::recommended_capacity", {"usize", "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("String::from_queue_item", {"&String"}, "String",
                     SemKind::Transform);
    D.CovLines = 6;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("String::item_len", {"&String"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }

  // BUG *1: drop releases only the occupied prefix; a partially filled
  // queue leaks its buffer (modeled as: the buffer is freed only when the
  // queue was exactly full).
  B.dropGlue("ArrayQueue", [](InterpCtx &Ctx, Value &V) {
    if (V.Alloc < 0)
      return;
    if (V.Len == V.Cap) {
      Ctx.heap().free(V.Alloc, Ctx.line());
      return;
    }
    // Deallocation through Vec::from_raw_parts with len != cap: the slot
    // buffer is never fully released (leak; cited advisory).
  });

  B.finish(/*ComponentPadLines=*/30, /*ComponentPadBranches=*/8,
           /*LibraryExtraLines=*/60, /*LibraryExtraBranches=*/10,
           /*MaxLen=*/5);
}

} // namespace

CrateSpec syrust::crates::makeCrossbeamQueue() {
  CrateSpec Spec;
  Spec.Info = {"crossbeam-queue", "DS", 10081038, true,
               "crossbeam_queue::ArrayQueue", "5a68889", true};
  Spec.Bug = BugInfo{"*1", "Memory Leak", 1, UbKind::MemoryLeak};
  Spec.Build = build;
  return Spec;
}
