//===--- CrossbeamUtils.cpp - Model of crossbeam-utils --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// crossbeam_utils::atomic::AtomicCell. Figure 6 profile: a mix of type
/// errors, a notable Misc share (trait-machinery methods the collector
/// mis-resolved), and a small Lifetime&Ownership residue from a view API
/// with an anonymous parameterized lifetime.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Copy", "CachePadded<usize>");
  B.impl("Send", "usize");
  B.impl("Send", "u64");
  B.impl("Send", "bool");

  B.scalarInput("x", "usize", 11);
  B.scalarInput("flag", "bool", 1);

  {
    ApiDecl D = decl("AtomicCell::new", {"T"}, "AtomicCell<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Send"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 10;
    B.api(D);
  }
  {
    ApiDecl D = decl("AtomicCell::load", {"&AtomicCell<usize>"}, "usize",
                     SemKind::ContainerLen);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("AtomicCell::store", {"&AtomicCell<usize>", "usize"},
                     "()", SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("AtomicCell::swap", {"&AtomicCell<usize>", "usize"},
                     "usize", SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("AtomicCell::take", {"&AtomicCell<usize>"}, "usize",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 7;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("AtomicCell::into_inner", {"AtomicCell<usize>"},
                     "usize", SemKind::ConsumeFree);
    D.Unsafe = true;
    D.CovLines = 7;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    // "method not found": resolves through an is-lock-free trait impl the
    // collector could not see (the Misc share).
    ApiDecl D = decl("AtomicCell::fetch_add",
                     {"&AtomicCell<usize>", "usize"}, "usize",
                     SemKind::MakeScalar);
    D.Quirks.MethodNotFound = true;
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("AtomicCell::is_lock_free", {"&AtomicCell<usize>"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    // Anonymous parameterized lifetime: chaining this view breaks.
    ApiDecl D = decl("AtomicCell::as_ptr_view", {"&AtomicCell<usize>"},
                     "&usize", SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.Unsafe = true;
    D.CovLines = 6;
    B.api(D);
  }
  {
    ApiDecl D = decl("CachePadded::new", {"usize"}, "CachePadded<usize>",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    B.api(D);
  }
  {
    ApiDecl D = decl("CachePadded::into_inner", {"CachePadded<usize>"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 5;
    B.api(D);
  }
  {
    ApiDecl D = decl("Backoff::new", {}, "Backoff",
                     SemKind::AllocContainer);
    D.CovLines = 5;
    B.api(D);
  }
  {
    ApiDecl D = decl("Backoff::snooze_count", {"&Backoff"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("thread::scope_depth", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("AtomicCell::compare_exchange_hint",
                     {"&AtomicCell<usize>", "usize", "usize"}, "bool",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 3;
    B.api(D);
  }

  B.finish(24, 8, 110, 26, /*MaxLen=*/5);
}

} // namespace

CrateSpec syrust::crates::makeCrossbeamUtils() {
  CrateSpec Spec;
  Spec.Info = {"crossbeam-utils", "DS", 19491917, true,
               "crossbeam_utils::atomic::AtomicCell", "5a68889", true};
  Spec.Build = build;
  return Spec;
}
