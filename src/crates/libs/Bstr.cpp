//===--- Bstr.cpp - Model of bstr -----------------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Clone", "BString");
  B.impl("ByteSlice", "BString");

  B.containerInput("bs", "BString", 9, 16);
  B.scalarInput("byte", "u8", 0x62);
  B.scalarInput("n", "usize", 3);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("BString::new_filled", {"usize", "u8"}, "BString",
                     SemKind::AllocContainer);
    D.Pinned = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::push_byte", {"&mut BString", "u8"}, "()",
                     SemKind::ContainerPush);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::pop_byte", {"&mut BString"}, "Option<u8>",
                     SemKind::ContainerPop);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::len", {"&BString"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::is_empty", {"&BString"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::find_byte", {"&BString", "u8"},
                     "Option<usize>", SemKind::ContainerPop);
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::to_uppercase", {"&BString"}, "BString",
                     SemKind::Transform);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::is_ascii", {"&BString"}, "bool",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::clear", {"&mut BString"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 5;
    Api(D);
  }
  {
    // Generic over byte-source: the small type-error share.
    ApiDecl D = decl("bstr::byte_count", {"&T"}, "usize",
                     SemKind::ContainerLen);
    D.Bounds = {{"T", "ByteSlice"}};
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::fields_first", {"&BString"},
                     "Option<&BString>", SemKind::ViewRef);
    D.PropagatesFrom = {0};
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    // Mis-collected signature (Misc sliver).
    ApiDecl D = decl("BString::splitn_count", {"&BString", "usize"},
                     "usize", SemKind::MakeScalar);
    D.Quirks.SkewedArity = true;
    D.CovLines = 7;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::into_vec", {"BString"}, "Vec<u8>",
                     SemKind::Custom);
    D.CovLines = 6;
    D.Custom = [](InterpCtx &Ctx) {
      Value &S = Ctx.arg(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Len = S.Len;
      Out.Cap = S.Cap;
      Out.Alloc = S.Alloc;
      S.Alloc = -1;
      return Out;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("BString::contains_byte", {"&BString", "u8"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("bstr::trim_hint", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }

  {
    ApiDecl D = decl("BString::last_byte", {"&BString"}, "Option<u8>",
                     SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("BString::starts_with_byte", {"&BString", "u8"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(22, 8, 110, 22, /*MaxLen=*/9);
}

} // namespace

CrateSpec syrust::crates::makeBstr() {
  CrateSpec Spec;
  Spec.Info = {"bstr", "EN", 5789836, false, "bstr::BString", "7f0ad15",
               true};
  Spec.Build = build;
  return Spec;
}
