//===--- Excluded.cpp - Closure-based crates SyRust cannot drive ----------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// cookie-factory and jsonrpc-client-core build their APIs around
/// first-class closures, which the straight-line synthesis syntax cannot
/// express (Section 7.1 / 7.4.1); the paper excluded both from the
/// results. They remain in the registry so the Figure 12 inventory is
/// complete, with SupportsSynthesis = false.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::crates;

namespace {

void buildEmpty(CrateInstance &I) {
  CrateBuilder B(I, {});
  B.scalarInput("n", "usize", 1);
  B.finish(0, 0, 120, 30, /*MaxLen=*/1);
}

} // namespace

CrateSpec syrust::crates::makeCookieFactory() {
  CrateSpec Spec;
  Spec.Info = {"cookie-factory", "EN", 292900, false, "cookie_factory",
               "a935a81", /*SupportsSynthesis=*/false};
  Spec.Build = buildEmpty;
  return Spec;
}

CrateSpec syrust::crates::makeJsonrpcClientCore() {
  CrateSpec Spec;
  Spec.Info = {"jsonrpc-client-core", "EN", 78992, false,
               "example::ExampleRpcClient", "4fde208",
               /*SupportsSynthesis=*/false};
  Spec.Build = buildEmpty;
  return Spec;
}
