//===--- CborCodec.cpp - Model of cbor-codec ------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// cbor::decoder::Decoder. Figure 6: L&O-majority (63.41%) rejections over
/// a small synthesized count - reader-handle APIs with anonymous
/// parameterized lifetimes dominate the surface.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {});

  B.containerInput("cbor", "CborBytes", 12, 12);
  B.customInput("dec", "Decoder", [](AbstractHeap &Heap, syrust::Rng &) {
    Value V;
    V.Alloc = Heap.allocate(64, "Decoder state");
    return V;
  });

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("Decoder::new", {"&CborBytes"}, "Decoder",
                     SemKind::AllocContainer);
    D.Pinned = true;
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("Decoder::u64_value", {"&mut Decoder"}, "u64",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 11;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Decoder::bool_value", {"&mut Decoder"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    // Reader views with anonymous lifetimes: the L&O majority.
    ApiDecl D = decl("Decoder::text_view", {"&mut Decoder"}, "&CborBytes",
                     SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("Decoder::bytes_view", {"&mut Decoder"}, "&CborBytes",
                     SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("Decoder::array_len", {"&mut Decoder"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Decoder::skip_value", {"&mut Decoder"}, "()",
                     SemKind::ContainerPush);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Decoder::position", {"&Decoder"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("CborBytes::len", {"&CborBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("types::major_type_of", {"u8"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 2;
    Api(D);
  }
  {
    // Short consumer for the borrowed views (keeps the anonymous-
    // lifetime chains inside reachable lengths).
    ApiDecl D = decl("CborBytes::first_byte", {"&CborBytes"}, "u8",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(14, 4, 60, 14, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeCborCodec() {
  CrateSpec Spec;
  Spec.Info = {"cbor-codec", "EN", 108378, false, "decoder::Decoder",
               "ea76c0c", true};
  Spec.Build = build;
  return Spec;
}
