//===--- Smallvec.cpp - Model of the smallvec crate -----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// smallvec::SmallVec: an inline-capacity vector. Heavily polymorphic and
/// unsafe-rich; Figure 6 reports a near-zero rejection rate dominated by
/// type errors (trait-invalid eager concretizations) with a sliver of
/// Misc from one mis-collected signature.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("Array", "u8");
  B.impl("Array", "usize");
  B.impl("Clone", "String");
  B.impl("Clone", "SmallVec<T>", {{"T", "Clone"}});

  B.containerInput("sv", "SmallVec<u8>", 3, 4);
  B.scalarInput("x", "u8", 7);
  B.scalarInput("n", "usize", 5);

  {
    ApiDecl D = decl("SmallVec::new", {}, "SmallVec<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Array"}};
    D.Unsafe = true;
    D.CovLines = 9;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::with_capacity", {"usize"}, "SmallVec<T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"T", "Array"}};
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::push", {"&mut SmallVec<T>", "T"}, "()",
                     SemKind::ContainerPush);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::pop", {"&mut SmallVec<T>"}, "Option<T>",
                     SemKind::ContainerPop);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::len", {"&SmallVec<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::capacity", {"&SmallVec<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::is_empty", {"&SmallVec<T>"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::spilled", {"&SmallVec<T>"}, "bool",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::clear", {"&mut SmallVec<T>"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 5;
    D.CovBranches = 1;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::truncate", {"&mut SmallVec<T>", "usize"},
                     "()", SemKind::ContainerClear);
    D.CovLines = 7;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::reserve", {"&mut SmallVec<T>", "usize"},
                     "()", SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::into_vec", {"SmallVec<u8>"}, "Vec<u8>",
                     SemKind::ConsumeFree);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    // Mis-collected signature (the Misc sliver in Figure 6).
    ApiDecl D = decl("SmallVec::insert_many", {"&mut SmallVec<T>", "usize"},
                     "()", SemKind::Inert);
    D.Quirks.SkewedArity = true;
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::grow", {"&mut SmallVec<T>", "usize"}, "()",
                     SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 11;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::as_slice_len", {"&SmallVec<T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("SmallVec::swap_remove", {"&mut SmallVec<u8>", "usize"},
                     "u8", SemKind::ContainerPop);
    D.Unsafe = true;
    D.CovLines = 8;
    D.CovBranches = 2;
    B.api(D);
  }

  B.finish(26, 8, 70, 12, /*MaxLen=*/9);
}

} // namespace

CrateSpec syrust::crates::makeSmallvec() {
  CrateSpec Spec;
  Spec.Info = {"smallvec", "DS", 21780282, true, "smallvec::SmallVec",
               "9ae7076", true};
  Spec.Build = build;
  return Spec;
}
