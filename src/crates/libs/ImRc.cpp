//===--- ImRc.cpp - Model of im-rc ----------------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// im::ordset::OrdSet - persistent ordered sets. Ord-bounded polymorphism
/// everywhere drives im-rc's elevated (2%) type-error rate: eager
/// concretizations over non-Ord types fail their bounds.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"A"});

  B.impl("Ord", "String");
  B.impl("Clone", "String");
  B.impl("Clone", "OrdSet<A>", {{"A", "Clone"}});

  B.containerInput("set", "OrdSet<String>", 3, 12);
  B.stringInput("item", "String", "kiwi");
  B.scalarInput("n", "usize", 2);
  B.scalarInput("f", "f64", 1);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("OrdSet::new", {}, "OrdSet<A>",
                     SemKind::AllocContainer);
    D.Bounds = {{"A", "Ord"}};
    D.CovLines = 8;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::unit", {"A"}, "OrdSet<A>",
                     SemKind::AllocContainer);
    D.Bounds = {{"A", "Ord"}};
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::insert", {"&mut OrdSet<A>", "A"},
                     "Option<A>", SemKind::Custom);
    D.Bounds = {{"A", "Ord"}, {"A", "Clone"}};
    D.Pinned = true;
    D.CovLines = 13;
    D.CovBranches = 3;
    D.Custom = [](InterpCtx &Ctx) {
      Value &S = Ctx.deref(0);
      S.Len += 1;
      Ctx.coverBranch(0, S.Len > 4);
      Value Out = defaultValue(Ctx.outType(), Ctx);
      Out.IsNone = true; // Fresh key: no previous value.
      return Out;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::remove", {"&mut OrdSet<String>", "&String"},
                     "Option<String>", SemKind::ContainerPop);
    D.Pinned = true;
    D.CovLines = 11;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::contains", {"&OrdSet<String>", "&String"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::len", {"&OrdSet<A>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::is_empty", {"&OrdSet<A>"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::get_min", {"&OrdSet<String>"},
                     "Option<&String>", SemKind::ViewRef);
    D.PropagatesFrom = {0};
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::get_max", {"&OrdSet<String>"},
                     "Option<&String>", SemKind::ViewRef);
    D.PropagatesFrom = {0};
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::union", {"OrdSet<String>", "OrdSet<String>"},
                     "OrdSet<String>", SemKind::Custom);
    D.CovLines = 12;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &L = Ctx.arg(0);
      Value &R = Ctx.arg(1);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Len = L.Len + R.Len;
      Out.Alloc = Ctx.heap().allocate(
          static_cast<size_t>(Out.Len) * 8 + 16, "OrdSet union");
      // Persistent structure: consumed inputs release their roots.
      if (L.Alloc >= 0)
        Ctx.heap().free(L.Alloc, Ctx.line());
      if (R.Alloc >= 0)
        Ctx.heap().free(R.Alloc, Ctx.line());
      L.Alloc = R.Alloc = -1;
      Ctx.coverBranch(0, Out.Len > 0);
      return Out;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::clear", {"&mut OrdSet<A>"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::is_subset", {"&OrdSet<String>",
                                           "&OrdSet<String>"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("ordset::balance_hint", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("OrdSet::clone_set", {"&OrdSet<String>"},
                     "OrdSet<String>", SemKind::Transform);
    D.CovLines = 7;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(24, 8, 150, 30, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeImRc() {
  CrateSpec Spec;
  Spec.Info = {"im-rc", "DS", 916529, true, "im::ordset::OrdSet",
               "b586a96", true};
  Spec.Build = build;
  return Spec;
}
