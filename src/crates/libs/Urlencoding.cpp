//===--- Urlencoding.cpp - Model of urlencoding ---------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("IntoUrl", "String");

  B.stringInput("url", "String", "a b&c=d");
  B.scalarInput("n", "usize", 2);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("urlencoding::encode", {"&String"}, "String",
                     SemKind::Transform);
    D.Pinned = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("urlencoding::decode", {"&String"}, "String",
                     SemKind::Transform);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("urlencoding::encode_binary_len", {"&String"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("String::url_len", {"&String"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("String::is_url_safe", {"&String"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("String::concat_query", {"&String", "&String"},
                     "String", SemKind::Transform);
    D.CovLines = 7;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("String::repeat_path", {"&String", "usize"}, "String",
                     SemKind::Transform);
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("urlencoding::hex_digit_of", {"usize"}, "char",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("urlencoding::is_reserved_byte", {"u8"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("String::first_byte", {"&String"}, "Option<u8>",
                     SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("urlencoding::encode_any_len", {"&T"}, "usize",
                     SemKind::ContainerLen);
    D.Bounds = {{"T", "IntoUrl"}};
    D.CovLines = 5;
    Api(D);
  }

  {
    ApiDecl D = decl("urlencoding::decode_binary_len", {"&String"},
                     "usize", SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("String::strip_query", {"&String"}, "String",
                     SemKind::Transform);
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("String::count_escapes", {"&String"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(14, 4, 26, 6, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeUrlencoding() {
  CrateSpec Spec;
  Spec.Info = {"urlencoding", "EN", 1119712, false, "urlencoding::",
               "a86f1c4", true};
  Spec.Build = build;
  return Spec;
}
