//===--- RmpSerde.cpp - Model of rmp-serde --------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// rmp_serde (MessagePack). Serialize/Deserialize-bounded generics over a
/// narrow typing graph: few valid combinations (the paper synthesized only
/// ~11.5k cases) with an elevated type-error rate (8.34%) that keeps
/// recurring because the serde trait surface is enormous.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  // Only a couple of the harvested types are Serialize in the model,
  // so most eager concretizations die with trait errors.
  B.impl("Serialize", "String");
  B.impl("Serialize", "u64");
  B.impl("Deserialize", "String");

  B.stringInput("msg", "String", "payload");
  B.scalarInput("num", "u64", 99);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("rmp_serde::to_vec", {"&T"}, "MsgBytes",
                     SemKind::Transform);
    D.Bounds = {{"T", "Serialize"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("rmp_serde::from_slice_string", {"&MsgBytes"},
                     "String", SemKind::Transform);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Serializer::new", {}, "Serializer",
                     SemKind::AllocContainer);
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("Serializer::written", {"&Serializer"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Deserializer::from_bytes", {"&MsgBytes"},
                     "Deserializer", SemKind::AllocContainer);
    D.CovLines = 8;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Deserializer::position", {"&Deserializer"}, "u64",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("MsgBytes::len", {"&MsgBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("encode::marker_byte", {"u64"}, "u8",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("decode::marker_len", {"u8"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    // Deserialization entry point whose Deserialize machinery the
    // collector could not express; every use keeps type-erroring
    // (rmp-serde is one of Figure 6's elevated rows at 8.34%).
    ApiDecl D = decl("rmp_serde::from_slice_value", {"&MsgBytes"}, "u64",
                     SemKind::MakeScalar);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("rmp_serde::to_vec_named", {"&T"}, "MsgBytes",
                     SemKind::Transform);
    D.Bounds = {{"T", "Serialize"}};
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(18, 6, 70, 16, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeRmpSerde() {
  CrateSpec Spec;
  Spec.Info = {"rmp-serde", "EN", 816677, true, "rmp_serde::", "00eeadf",
               true};
  Spec.Build = build;
  return Spec;
}
