//===--- Petgraph.cpp - Model of petgraph ---------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// petgraph::graph::Graph<N, E, Ty, Ix>. The collected signatures dropped
/// the defaulted type parameters (Ty = Directed, Ix = u32), which the
/// paper calls out as the cause of petgraph's outlier 10.87% rejection
/// rate, 100% type errors (Section 7.1: "fixing [this] requires modifying
/// the rules ... we leave these improvements to future work"). Modeled by
/// the NeedsDefaultTypeParam quirk on the graph-building core, which no
/// refinement can repair.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"N", "E"});

  B.impl("Clone", "Graph<N, E>", {{"N", "Clone"}, {"E", "Clone"}});
  B.impl("Clone", "String");

  B.containerInput("g", "Graph<usize, usize>", 3, 8);
  B.scalarInput("w", "usize", 5);
  B.scalarInput("a", "NodeIndex", 0);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  // Constructors survived collection with usable signatures.
  {
    ApiDecl D = decl("Graph::new", {}, "Graph<N, E>",
                     SemKind::AllocContainer);
    D.CovLines = 9;
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::with_capacity", {"usize", "usize"},
                     "Graph<N, E>", SemKind::AllocContainer);
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  // The graph-building core lost its defaulted type parameters
  // (Ty = Directed, Ix = u32) during collection: every use is an
  // unfixable type error (Section 7.1), sustaining petgraph's outlier
  // rejection rate.
  {
    ApiDecl D = decl("Graph::add_node", {"&mut Graph<usize, usize>",
                                         "usize"},
                     "NodeIndex", SemKind::Custom);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.Pinned = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &G = Ctx.deref(0);
      G.Len += 1;
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = G.Len - 1;
      return Out;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::add_edge",
                     {"&mut Graph<usize, usize>", "NodeIndex", "NodeIndex",
                      "usize"},
                     "EdgeIndex", SemKind::MakeScalar);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    Api(D);
  }

  // Index-level helpers that did survive collection.
  {
    ApiDecl D = decl("Graph::node_count", {"&Graph<usize, usize>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::edge_count", {"&Graph<usize, usize>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::is_directed", {"&Graph<usize, usize>"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    // NodeIndex<Ix> defaults Ix = u32; the collected signature lost it,
    // so even index construction type-errors (reachable at length 1,
    // which keeps petgraph's error stream dense).
    ApiDecl D = decl("NodeIndex::new", {"usize"}, "NodeIndex",
                     SemKind::MakeScalar);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.Pinned = true;
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("NodeIndex::index", {"&NodeIndex"}, "usize",
                     SemKind::MakeScalar);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("EdgeIndex::index", {"&EdgeIndex"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    // Also lost its defaulted parameters during collection; reachable
    // with a single borrow, so the error stream starts at length 2.
    ApiDecl D = decl("Graph::contains_node",
                     {"&Graph<usize, usize>", "NodeIndex"}, "bool",
                     SemKind::MakeScalar);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::neighbors_count",
                     {"&Graph<usize, usize>", "NodeIndex"}, "usize",
                     SemKind::MakeScalar);
    D.Quirks.NeedsDefaultTypeParam = true;
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::clear", {"&mut Graph<usize, usize>"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::node_weight",
                     {"&Graph<usize, usize>", "NodeIndex"},
                     "Option<&usize>", SemKind::ViewRef);
    D.PropagatesFrom = {0};
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Graph::reserve_nodes",
                     {"&mut Graph<usize, usize>", "usize"}, "()",
                     SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("algo::connected_components_hint", {"usize", "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }

  B.finish(26, 8, 220, 60, /*MaxLen=*/4);
}

} // namespace

CrateSpec syrust::crates::makePetgraph() {
  CrateSpec Spec;
  Spec.Info = {"petgraph", "DS", 4538136, true, "petgraph::graph::Graph",
               "397b9fc", true};
  Spec.Build = build;
  return Spec;
}
