//===--- Bitvec.cpp - Model of the bitvec crate (bug *3) ------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Models bitvec::vec::BitVec, the paper's flagship bug target (Section
/// 7.1, Figure 8): a use-after-free when a BitVec that has reallocated its
/// backing buffer is converted into a BitBox and dropped. The model keeps
/// the paper's trait obstacle: BitVec<O, T> requires O: BitOrder and
/// T: BitStore, so BitVec<usize, Msb0> is a trait error while
/// BitVec<Msb0, usize> is the valid instantiation.
///
/// Minimal trigger (5 lines, matching Figure 7):
///   let v1 : BitVec<Msb0, usize> = BitVec::repeat(b, n);
///   let mut v2 = v1;
///   let v3 = &mut v2;
///   BitVec::push(v3, b);               // forces a reallocation
///   let v5 : BitBox<Msb0, usize> = BitVec::into_boxed_bitslice(v2);
///   // scope end: BitBox drop reads through the stale pre-push pointer.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust;
using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"O", "T"});

  // Order/store marker types and the crate's trait structure.
  B.impl("BitOrder", "Msb0");
  B.impl("BitOrder", "Lsb0");
  B.impl("BitStore", "usize");
  B.impl("BitStore", "u8");
  B.impl("Clone", "Msb0");
  B.impl("Clone", "Lsb0");
  B.impl("Clone", "BitVec<O, T>", {{"O", "Clone"}, {"T", "Clone"}});

  // Template (Figure 2 style): scalar raw material only - the bug requires
  // constructing the bitvector inside the synthesized code.
  B.scalarInput("b", "bool", 1);
  B.scalarInput("n", "usize", 6);

  // --- Constructors (no-input polymorphism handled eagerly, 5.1). -------
  {
    ApiDecl D = decl("BitVec::new", {}, "BitVec<O, T>",
                     SemKind::AllocContainer);
    D.Bounds = {{"O", "BitOrder"}, {"T", "BitStore"}};
    D.CovLines = 10;
    B.api(D);
  }
  {
    // repeat(bit, len): the Figure 8 entry point. Exact-capacity buffer so
    // any push reallocates.
    ApiDecl D = decl("BitVec::repeat", {"bool", "usize"},
                     "BitVec<Msb0, usize>", SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value Out;
      Out.Ty = Ctx.outType();
      int64_t Len = Ctx.deref(1).Int;
      Out.Len = Len;
      Out.Cap = Len; // Exact fit: the next push must grow.
      Out.Alloc = Ctx.heap().allocate(
          static_cast<size_t>(Len) * 8 + 8, "BitVec buffer");
      Ctx.coverBranch(1, Ctx.deref(0).Int != 0);
      return Out;
    };
    B.api(D);
  }

  // --- Mutators. ----------------------------------------------------------
  {
    ApiDecl D = decl("BitVec::push", {"&mut BitVec<O, T>", "bool"}, "()",
                     SemKind::ContainerPush);
    D.Bounds = {{"O", "BitOrder"}, {"T", "BitStore"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 12;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::pop", {"&mut BitVec<O, T>"}, "Option<bool>",
                     SemKind::ContainerPop);
    D.Bounds = {{"O", "BitOrder"}, {"T", "BitStore"}};
    D.CovLines = 10;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::set", {"&mut BitVec<O, T>", "usize", "bool"},
                     "()", SemKind::MakeScalar);
    D.Bounds = {{"O", "BitOrder"}, {"T", "BitStore"}};
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 3;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::clear", {"&mut BitVec<O, T>"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 6;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::truncate", {"&mut BitVec<O, T>", "usize"},
                     "()", SemKind::Custom);
    D.CovLines = 8;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &C = Ctx.deref(0);
      int64_t NewLen = Ctx.deref(1).Int;
      Ctx.coverBranch(0, NewLen < C.Len);
      if (NewLen < C.Len)
        C.Len = NewLen;
      return defaultValue(Ctx.outType(), Ctx);
    };
    B.api(D);
  }

  // --- Observers. ----------------------------------------------------------
  {
    ApiDecl D = decl("BitVec::len", {"&BitVec<O, T>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::is_empty", {"&BitVec<O, T>"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::capacity", {"&BitVec<O, T>"}, "usize",
                     SemKind::Custom);
    D.CovLines = 4;
    D.Custom = [](InterpCtx &Ctx) {
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = Ctx.deref(0).Cap;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::count_ones", {"&BitVec<O, T>"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::any", {"&BitVec<O, T>"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 2;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::as_bitslice", {"&BitVec<O, T>"},
                     "&BitSlice<O, T>", SemKind::ViewRef);
    D.PropagatesFrom = {0};
    D.CovLines = 4;
    B.api(D);
  }

  // --- Conversions (the buggy path). --------------------------------------
  {
    ApiDecl D = decl("BitVec::into_boxed_bitslice", {"BitVec<Msb0, usize>"},
                     "BitBox<Msb0, usize>", SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 16;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &V = Ctx.arg(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Len = V.Len;
      bool WasReallocated = V.Int > 0; // Growth count from push.
      Ctx.coverBranch(0, WasReallocated);
      if (WasReallocated) {
        // BUG *3: the shrink-to-fit path copies out of the OLD buffer but
        // keeps a pointer to it inside the box; drop reads through it.
        int Stale = V.Alloc;
        Out.Alloc = Ctx.heap().allocate(
            static_cast<size_t>(V.Len) * 8 + 8, "BitBox buffer");
        Ctx.heap().free(Stale, Ctx.line());
        Out.Elems.push_back(Value{});
        Out.Elems[0].Int = Stale; // Stashed stale pointer.
        Out.Elems[0].IsNone = false;
      } else {
        Out.Alloc = V.Alloc; // Clean handoff of the exact-fit buffer.
      }
      V.Alloc = -1;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::into_vec", {"BitVec<Msb0, usize>"},
                     "Vec<usize>", SemKind::Custom);
    D.CovLines = 8;
    D.Custom = [](InterpCtx &Ctx) {
      Value &V = Ctx.arg(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Len = V.Len;
      Out.Cap = V.Cap;
      Out.Alloc = V.Alloc; // Ownership handoff.
      V.Alloc = -1;
      return Out;
    };
    B.api(D);
  }
  {
    ApiDecl D = decl("BitBox::len", {"&BitBox<Msb0, usize>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    B.api(D);
  }
  {
    ApiDecl D = decl("BitVec::reserve", {"&mut BitVec<O, T>", "usize"},
                     "()", SemKind::Custom);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    D.Custom = [](InterpCtx &Ctx) {
      Value &C = Ctx.deref(0);
      int64_t Extra = Ctx.deref(1).Int;
      bool Grow = C.Len + Extra > C.Cap;
      Ctx.coverBranch(0, Grow);
      if (Grow) {
        if (C.Alloc >= 0)
          Ctx.heap().free(C.Alloc, Ctx.line());
        C.Cap = C.Len + Extra;
        C.Alloc = Ctx.heap().allocate(
            static_cast<size_t>(C.Cap) * 8 + 8, "BitVec buffer (grown)");
        C.Int += 1;
      }
      return defaultValue(Ctx.outType(), Ctx);
    };
    B.api(D);
  }

  // BitBox drop glue: reading through the stale pointer is the UAF.
  B.dropGlue("BitBox", [](InterpCtx &Ctx, Value &V) {
    if (!V.Elems.empty() && !V.Elems[0].IsNone && V.Elems[0].Int >= 0) {
      int Stale = static_cast<int>(V.Elems[0].Int);
      // The deallocation routine walks the slice through the stale
      // pointer before releasing memory.
      Ctx.heap().useBorrow(Stale, /*Tag=*/1, /*UniqueAccess=*/false,
                           Ctx.line());
    }
    if (V.Alloc >= 0)
      Ctx.heap().free(V.Alloc, Ctx.line());
  });

  B.finish(/*ComponentPadLines=*/15, /*ComponentPadBranches=*/1,
           /*LibraryExtraLines=*/35, /*LibraryExtraBranches=*/3,
           /*MaxLen=*/7);
}

} // namespace

CrateSpec syrust::crates::makeBitvec() {
  CrateSpec Spec;
  Spec.Info = {"bitvec", "DS", 799016, false, "bitvec::vec::BitVec",
               "293e670", true};
  Spec.Bug = BugInfo{"*3", "Use-After-Free", 5, UbKind::UseAfterFree};
  Spec.Build = build;
  return Spec;
}
