//===--- DataEncoding.cpp - Model of data-encoding ------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {});

  B.containerInput("data", "EncBytes", 10, 10);
  B.stringInput("text", "String", "SGVsbG8=");
  B.scalarInput("n", "usize", 5);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("Encoding::base64", {}, "Encoding",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("Encoding::base32", {}, "Encoding",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("Encoding::encode", {"&Encoding", "&EncBytes"},
                     "String", SemKind::Transform);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Encoding::decode", {"&Encoding", "&String"},
                     "EncBytes", SemKind::Transform);
    D.Unsafe = true;
    D.CovLines = 14;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("Encoding::encode_len", {"&Encoding", "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Encoding::decode_len", {"&Encoding", "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    // Anonymous lifetime on the zero-copy view (the L&O share).
    ApiDecl D = decl("Encoding::symbols_view", {"&Encoding"}, "&String",
                     SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 5;
    Api(D);
  }
  {
    // Mis-collected specification-builder signature (Misc share).
    ApiDecl D = decl("Specification::encoding_for", {"&String"},
                     "Encoding", SemKind::MakeScalar);
    D.Quirks.SkewedArity = true;
    D.CovLines = 8;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("EncBytes::len", {"&EncBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("EncBytes::from_len", {"usize"}, "EncBytes",
                     SemKind::AllocContainer);
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Encoding::is_canonical", {"&Encoding"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("String::enc_len", {"&String"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("encoding::bit_width", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(22, 8, 70, 14, /*MaxLen=*/10);
}

} // namespace

CrateSpec syrust::crates::makeDataEncoding() {
  CrateSpec Spec;
  Spec.Info = {"data-encoding", "EN", 2240282, false,
               "data_encoding::Encoding", "34d1f0e", true};
  Spec.Build = build;
  return Spec;
}
