//===--- Ndarray.cpp - Model of ndarray -----------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"A"});

  B.impl("Num", "f64");
  B.impl("Num", "i64");
  B.impl("Clone", "Array1<A>", {{"A", "Clone"}});

  B.containerInput("arr", "Array1<f64>", 6, 6);
  B.scalarInput("x", "f64", 2);
  B.scalarInput("n", "usize", 4);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("Array1::zeros", {"usize"}, "Array1<A>",
                     SemKind::AllocContainer);
    D.Bounds = {{"A", "Num"}};
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::from_elem", {"usize", "A"}, "Array1<A>",
                     SemKind::AllocContainer);
    D.Bounds = {{"A", "Num"}, {"A", "Clone"}};
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::len", {"&Array1<f64>"}, "usize",
                     SemKind::ContainerLen);
    D.Pinned = true;
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::sum", {"&Array1<f64>"}, "f64",
                     SemKind::MakeScalar);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::mean", {"&Array1<f64>"}, "Option<f64>",
                     SemKind::ContainerPop);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::mapv_scale", {"&Array1<f64>", "f64"},
                     "Array1<f64>", SemKind::Transform);
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::dot", {"&Array1<f64>", "&Array1<f64>"},
                     "f64", SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 9;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::fill", {"&mut Array1<f64>", "f64"}, "()",
                     SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::push_row_hint", {"&mut Array1<f64>", "f64"},
                     "()", SemKind::ContainerPush);
    D.Unsafe = true;
    D.CovLines = 10;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::view_len", {"&Array1<f64>"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 5;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::into_raw_vec", {"Array1<f64>"}, "Vec<f64>",
                     SemKind::Custom);
    D.Unsafe = true;
    D.CovLines = 8;
    D.Custom = [](InterpCtx &Ctx) {
      Value &A = Ctx.arg(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Len = A.Len;
      Out.Cap = A.Cap;
      Out.Alloc = A.Alloc;
      A.Alloc = -1;
      return Out;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::slice_len", {"&Array1<f64>", "usize",
                                           "usize"},
                     "usize", SemKind::MakeScalar);
    D.CovLines = 8;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("shape::stride_hint", {"usize", "usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::is_standard_layout", {"&Array1<f64>"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::swap_elems",
                     {"&mut Array1<f64>", "usize", "usize"}, "()",
                     SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }

  {
    ApiDecl D = decl("Array1::max_hint", {"&Array1<f64>"}, "Option<f64>",
                     SemKind::ContainerPop);
    D.CovLines = 7;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("Array1::scale_in_place", {"&mut Array1<f64>", "f64"},
                     "()", SemKind::MakeScalar);
    D.CovLines = 6;
    D.CovBranches = 1;
    Api(D);
  }

  B.finish(26, 8, 300, 70, /*MaxLen=*/9);
}

} // namespace

CrateSpec syrust::crates::makeNdarray() {
  CrateSpec Spec;
  Spec.Info = {"ndarray", "DS", 684962, true, "ndarray::ArrayBase",
               "9cba023", true};
  Spec.Build = build;
  return Spec;
}
