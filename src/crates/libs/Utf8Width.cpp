//===--- Utf8Width.cpp - Model of utf8-width ------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {"T"});

  B.impl("IntoByte", "u8");

  B.scalarInput("byte", "u8", 0xE2);
  B.scalarInput("n", "usize", 1);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("utf8_width::get_width", {"u8"}, "usize",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.CovLines = 8;
    D.CovBranches = 3;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::get_width_assume_valid", {"u8"}, "usize",
                     SemKind::MakeScalar);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::is_width_1", {"u8"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::is_width_2", {"u8"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::is_width_3", {"u8"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::is_width_4", {"u8"}, "bool",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::max_width_for_len", {"usize"}, "usize",
                     SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::continuation_count", {"u8"},
                     "Option<usize>", SemKind::ContainerPop);
    D.CovLines = 6;
    D.CovBranches = 2;
    Api(D);
  }
  {
    ApiDecl D = decl("utf8_width::width_of_any", {"T"}, "usize",
                     SemKind::MakeScalar);
    D.Bounds = {{"T", "IntoByte"}};
    D.CovLines = 5;
    Api(D);
  }

  B.finish(8, 2, 10, 2, /*MaxLen=*/4);
}

} // namespace

CrateSpec syrust::crates::makeUtf8Width() {
  CrateSpec Spec;
  Spec.Info = {"utf8-width", "EN", 64822, false, "utf8_width", "938c0b2",
               true};
  Spec.Build = build;
  return Spec;
}
