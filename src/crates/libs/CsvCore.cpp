//===--- CsvCore.cpp - Model of csv-core ----------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// csv_core::Reader. Figure 6's L&O-dominated outlier (93.72% of its
/// rejections): the push-parser's buffer-in/buffer-out API surface is
/// full of anonymous parameterized lifetimes the encoder cannot express,
/// and its narrow typing graph exhausts the synthesis space early (only
/// ~15k test cases in the paper).
///
//===----------------------------------------------------------------------===//

#include "crates/CrateBuilder.h"
#include "crates/libs/AllCrates.h"

using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void build(CrateInstance &I) {
  CrateBuilder B(I, {});

  B.customInput("rdr", "Reader", [](AbstractHeap &Heap, syrust::Rng &) {
    Value V;
    V.Alloc = Heap.allocate(256, "Reader state");
    return V;
  });
  B.containerInput("input", "CsvBytes", 24, 24);

  auto Api = [&](ApiDecl D) { return B.api(std::move(D)); };

  {
    ApiDecl D = decl("Reader::new", {}, "Reader", SemKind::Custom);
    D.Pinned = true;
    D.CovLines = 10;
    D.Custom = [](InterpCtx &Ctx) {
      Value V;
      V.Ty = Ctx.outType();
      V.Alloc = Ctx.heap().allocate(256, "Reader state");
      return V;
    };
    Api(D);
  }
  {
    ApiDecl D = decl("Reader::read_field", {"&mut Reader", "&CsvBytes"},
                     "ReadFieldResult", SemKind::MakeScalar);
    D.Pinned = true;
    D.Unsafe = true;
    D.CovLines = 16;
    D.CovBranches = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Reader::read_record", {"&mut Reader", "&CsvBytes"},
                     "ReadRecordResult", SemKind::MakeScalar);
    D.Unsafe = true;
    D.CovLines = 16;
    D.CovBranches = 4;
    Api(D);
  }
  {
    // The L&O flood: output buffers borrowed with anonymous lifetimes.
    ApiDecl D = decl("Reader::field_view", {"&Reader"}, "&CsvBytes",
                     SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("Reader::record_view", {"&Reader"}, "&CsvBytes",
                     SemKind::ViewRef);
    D.Quirks.AnonLifetime = true;
    D.PropagatesFrom = {0};
    D.CovLines = 7;
    Api(D);
  }
  {
    ApiDecl D = decl("CsvBytes::len", {"&CsvBytes"}, "usize",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Reader::is_done", {"&Reader"}, "bool",
                     SemKind::ContainerLen);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Reader::line", {"&Reader"}, "u64",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }
  {
    ApiDecl D = decl("Reader::reset", {"&mut Reader"}, "()",
                     SemKind::ContainerClear);
    D.CovLines = 6;
    Api(D);
  }
  {
    ApiDecl D = decl("ReadFieldResult::is_field", {"&ReadFieldResult"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("ReadRecordResult::is_record", {"&ReadRecordResult"},
                     "bool", SemKind::MakeScalar);
    D.CovLines = 5;
    D.CovBranches = 1;
    Api(D);
  }
  {
    ApiDecl D = decl("ReaderBuilder::delimiter_default", {}, "u8",
                     SemKind::MakeScalar);
    D.CovLines = 4;
    Api(D);
  }

  B.finish(22, 8, 60, 14, /*MaxLen=*/6);
}

} // namespace

CrateSpec syrust::crates::makeCsvCore() {
  CrateSpec Spec;
  Spec.Info = {"csv-core", "EN", 4144518, false, "csv_core::Reader::",
               "70c8600", true};
  Spec.Build = build;
  return Spec;
}
