//===--- Protocol.cpp - Length-prefixed serve wire protocol ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

using namespace syrust;
using namespace syrust::serve;
using namespace syrust::json;

std::string syrust::serve::encodeFrame(const std::string &Payload) {
  std::string Out;
  Out.reserve(4 + Payload.size());
  uint32_t N = static_cast<uint32_t>(Payload.size());
  Out.push_back(static_cast<char>((N >> 24) & 0xff));
  Out.push_back(static_cast<char>((N >> 16) & 0xff));
  Out.push_back(static_cast<char>((N >> 8) & 0xff));
  Out.push_back(static_cast<char>(N & 0xff));
  Out += Payload;
  return Out;
}

FrameDecoder::Status FrameDecoder::next(std::string &Payload) {
  if (Broken)
    return Status::Oversized;
  if (Buf.size() < 4)
    return Status::NeedMore;
  uint32_t N = (static_cast<uint32_t>(static_cast<unsigned char>(Buf[0]))
                << 24) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Buf[1]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Buf[2]))
                << 8) |
               static_cast<uint32_t>(static_cast<unsigned char>(Buf[3]));
  if (N > MaxFrameBytes) {
    Broken = true; // Past this point every byte offset is meaningless.
    return Status::Oversized;
  }
  if (Buf.size() < 4 + static_cast<size_t>(N))
    return Status::NeedMore;
  Payload.assign(Buf, 4, N);
  Buf.erase(0, 4 + static_cast<size_t>(N));
  return Status::Frame;
}

json::Value syrust::serve::responseToJson(const cli::Response &R,
                                          const json::Value &Id) {
  Value V = Value::object();
  V.set("ok", Value::boolean(true));
  V.set("exit_code", Value::integer(R.ExitCode));
  V.set("output", Value::string(R.Output));
  if (!R.Error.empty())
    V.set("error", Value::string(R.Error));
  Value Files = Value::array();
  for (const auto &[Path, Content] : R.Files) {
    Value F = Value::object();
    F.set("path", Value::string(Path));
    F.set("content", Value::string(Content));
    Files.push(std::move(F));
  }
  V.set("files", std::move(Files));
  if (!Id.isNull())
    V.set("id", Id);
  return V;
}

json::Value syrust::serve::errorResponseJson(const std::string &Message,
                                             const json::Value &Id) {
  Value V = Value::object();
  V.set("ok", Value::boolean(false));
  V.set("error", Value::string(Message));
  if (!Id.isNull())
    V.set("id", Id);
  return V;
}

bool syrust::serve::responseFromJson(const json::Value &V,
                                     cli::Response &Out,
                                     std::string &Err) {
  if (V.kind() != Value::Kind::Object) {
    Err = "response is not a JSON object";
    return false;
  }
  if (!V.get("ok").asBool()) {
    Err = V.has("error") ? V.get("error").asString()
                         : "request failed with no error message";
    return false;
  }
  if (!V.has("exit_code") || !V.has("output")) {
    Err = "response object lacks exit_code/output";
    return false;
  }
  Out = cli::Response();
  Out.ExitCode = static_cast<int>(V.get("exit_code").asInt());
  Out.Output = V.get("output").asString();
  if (V.has("error"))
    Out.Error = V.get("error").asString();
  const Value &Files = V.get("files");
  for (size_t I = 0; I < Files.size(); ++I) {
    const Value &F = Files.at(I);
    Out.Files.emplace_back(F.get("path").asString(),
                           F.get("content").asString());
  }
  return true;
}
