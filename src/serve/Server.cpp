//===--- Server.cpp - The syrust serve daemon -----------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "campaign/Checkpoint.h"
#include "cli/Execute.h"
#include "support/StringUtils.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

using namespace syrust;
using namespace syrust::serve;
using namespace syrust::json;

namespace {

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

obs::Recorder::Options metricsOnly() {
  obs::Recorder::Options O;
  O.Trace = false;
  O.Metrics = true;
  return O;
}

} // namespace

Server::Server(const core::Session &S, cli::ServeRequest Options)
    : S(S), Options(std::move(Options)), Metrics(metricsOnly()) {}

Server::~Server() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    ExecutorStop = true;
  }
  QueueCv.notify_all();
  if (Executor.joinable())
    Executor.join();
  for (ClientConn &C : Clients)
    if (C.Fd >= 0)
      ::close(C.Fd);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Options.SocketPath.c_str());
  }
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

bool Server::start(std::string &Err) {
  if (!Options.CheckpointDir.empty()) {
    if (::mkdir(Options.CheckpointDir.c_str(), 0777) != 0 &&
        errno != EEXIST) {
      Err = format("cannot create checkpoint dir '%s': %s",
                   Options.CheckpointDir.c_str(), std::strerror(errno));
      return false;
    }
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Options.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = format("socket path is %zu bytes; AF_UNIX allows %zu",
                 Options.SocketPath.size(), sizeof(Addr.sun_path) - 1);
    return false;
  }
  std::memcpy(Addr.sun_path, Options.SocketPath.c_str(),
              Options.SocketPath.size());

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = format("socket(): %s", std::strerror(errno));
    return false;
  }
  // A stale socket file from a killed daemon would make bind() fail;
  // replacing it is exactly the resume-after-SIGKILL path.
  ::unlink(Options.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    Err = format("bind('%s'): %s", Options.SocketPath.c_str(),
                 std::strerror(errno));
    return false;
  }
  if (::listen(ListenFd, 64) != 0) {
    Err = format("listen('%s'): %s", Options.SocketPath.c_str(),
                 std::strerror(errno));
    return false;
  }
  if (::pipe(WakePipe) != 0) {
    Err = format("pipe(): %s", std::strerror(errno));
    return false;
  }
  setNonBlocking(ListenFd);
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);

  Executor = std::thread([this] { executorLoop(); });
  return true;
}

void Server::requestStop() {
  Stopping.store(true);
  // Async-signal-safe wakeup; the IO loop notices the flag.
  char B = 's';
  (void)!::write(WakePipe[1], &B, 1);
}

json::Value Server::statsJson() {
  // Warm-analysis gauges read fresh: the ratio of hits to builds is the
  // daemon's reason to exist.
  core::Session::AnalysisStats A = S.analysisStats();
  Metrics.gaugeSet("serve.warm.builds", static_cast<double>(A.Builds));
  Metrics.gaugeSet("serve.warm.hits", static_cast<double>(A.Hits));
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    size_t Depth = 0;
    for (const auto &[Client, Q] : Queues)
      Depth += Q.size();
    Metrics.gaugeSet("serve.queue.depth", static_cast<double>(Depth));
    Metrics.gaugeSet("serve.clients.active",
                     static_cast<double>(Clients.size()));
  }
  return Metrics.metrics().snapshotValue(0);
}

bool Server::submit(Pending P) {
  std::lock_guard<std::mutex> Lock(QueueMu);
  int &Count = InFlight[P.Client];
  if (Count >= Options.MaxInflight)
    return false;
  ++Count;
  auto It = Queues.find(P.Client);
  if (It == Queues.end()) {
    Queues.emplace(P.Client, std::deque<Pending>());
    RoundRobin.push_back(P.Client);
    It = Queues.find(P.Client);
  }
  It->second.push_back(std::move(P));
  QueueCv.notify_one();
  return true;
}

bool Server::nextRequest(Pending &Out) {
  std::unique_lock<std::mutex> Lock(QueueMu);
  QueueCv.wait(Lock, [&] {
    if (ExecutorStop)
      return true;
    for (const auto &[Client, Q] : Queues)
      if (!Q.empty())
        return true;
    return false;
  });
  if (ExecutorStop)
    return false;
  // Round-robin across clients in arrival order: each pass serves the
  // next client (after the previously served one) that has work, so a
  // client streaming requests cannot starve a client with one.
  const size_t N = RoundRobin.size();
  for (size_t Step = 0; Step < N; ++Step) {
    size_t Slot = (RoundRobinCursor + Step) % N;
    auto It = Queues.find(RoundRobin[Slot]);
    if (It == Queues.end() || It->second.empty())
      continue;
    Out = std::move(It->second.front());
    It->second.pop_front();
    RoundRobinCursor = (Slot + 1) % N;
    return true;
  }
  return false; // Unreachable: the predicate saw work.
}

void Server::requestFinished(uint64_t Client) {
  std::lock_guard<std::mutex> Lock(QueueMu);
  auto It = InFlight.find(Client);
  if (It != InFlight.end() && It->second > 0)
    --It->second;
}

void Server::clientGone(uint64_t Client) {
  std::lock_guard<std::mutex> Lock(QueueMu);
  Queues.erase(Client);
  InFlight.erase(Client);
  for (size_t I = 0; I < RoundRobin.size(); ++I)
    if (RoundRobin[I] == Client) {
      RoundRobin.erase(RoundRobin.begin() + I);
      if (RoundRobinCursor > I)
        --RoundRobinCursor;
      if (!RoundRobin.empty())
        RoundRobinCursor %= RoundRobin.size();
      else
        RoundRobinCursor = 0;
      break;
    }
}

void Server::executorLoop() {
  for (;;) {
    Pending P;
    if (!nextRequest(P))
      return;

    // Serve-managed checkpointing: campaigns get a per-fingerprint
    // file so a killed daemon resumes them on resubmission. Skipped
    // when the request named its own path or merges traces (resumed
    // cells have no trace events).
    std::string ManagedCkpt;
    if (P.Spec.V == cli::Verb::Campaign &&
        !Options.CheckpointDir.empty() &&
        P.Spec.Campaign.CheckpointPath.empty() &&
        !P.Spec.Campaign.Spec.Trace) {
      ManagedCkpt =
          Options.CheckpointDir +
          (Options.CheckpointDir.back() == '/' ? "" : "/") +
          campaign::specFingerprint(P.Spec.Campaign.Spec) + ".jsonl";
      P.Spec.Campaign.CheckpointPath = ManagedCkpt;
    }

    cli::Response R = cli::execute(S, P.Spec);

    // A completed campaign (clean or with findings) no longer needs its
    // managed checkpoint; failures keep it for the retry to resume.
    if (!ManagedCkpt.empty() &&
        (R.ExitCode == cli::ExitOk || R.ExitCode == cli::ExitFinding))
      ::unlink(ManagedCkpt.c_str());

    {
      std::lock_guard<std::mutex> Lock(OutboxMu);
      Outbox.emplace_back(P.Client, responseToJson(R, P.Id));
    }
    requestFinished(P.Client);
    char B = 'r';
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void Server::queueResponse(uint64_t Client, const json::Value &Doc) {
  for (ClientConn &C : Clients)
    if (C.Id == Client) {
      C.WriteBuf += encodeFrame(Doc.dump());
      return;
    }
  Metrics.count("serve.responses.dropped"); // Client left before reply.
}

void Server::dropClient(size_t Index) {
  ClientConn &C = Clients[Index];
  clientGone(C.Id);
  ::close(C.Fd);
  Metrics.count("serve.clients.dropped");
  Clients.erase(Clients.begin() + Index);
}

void Server::handleFrame(ClientConn &C, const std::string &Payload) {
  Metrics.count("serve.frames.total");
  ParseResult P = parse(Payload);
  if (!P.Ok) {
    // Framing is intact, so the connection survives its own garbage.
    Metrics.count("serve.requests.invalid");
    queueResponse(C.Id, errorResponseJson(
                            "malformed request JSON: " + P.Error,
                            Value::null()));
    return;
  }
  const Value Id = P.Val.get("id");
  const std::string VerbStr = P.Val.get("verb").asString();

  if (VerbStr == "ping") {
    Value V = Value::object();
    V.set("ok", Value::boolean(true));
    V.set("pong", Value::boolean(true));
    if (!Id.isNull())
      V.set("id", Id);
    queueResponse(C.Id, V);
    return;
  }
  if (VerbStr == "stats") {
    Value V = Value::object();
    V.set("ok", Value::boolean(true));
    V.set("stats", statsJson());
    if (!Id.isNull())
      V.set("id", Id);
    queueResponse(C.Id, V);
    return;
  }
  if (VerbStr == "shutdown") {
    Value V = Value::object();
    V.set("ok", Value::boolean(true));
    V.set("shutting_down", Value::boolean(true));
    if (!Id.isNull())
      V.set("id", Id);
    queueResponse(C.Id, V);
    Stopping.store(true);
    return;
  }

  Pending Req;
  Req.Client = C.Id;
  Req.Id = Id;
  std::vector<std::string> Errors;
  if (!cli::fromRequestJson(P.Val, Req.Spec, Errors) ||
      !(Errors = cli::finalize(S, Req.Spec)).empty()) {
    Metrics.count("serve.requests.invalid");
    queueResponse(C.Id, errorResponseJson(join(Errors, "; "), Id));
    return;
  }
  Metrics.count("serve.requests.total");
  Metrics.count(std::string("serve.requests.") +
                cli::verbName(Req.Spec.V));
  if (!submit(std::move(Req))) {
    Metrics.count("serve.requests.rejected");
    queueResponse(
        C.Id,
        errorResponseJson(
            format("client has %d request(s) in flight (the per-client "
                   "cap); retry after a response",
                   Options.MaxInflight),
            Id));
  }
}

int Server::run() {
  for (;;) {
    // Once shutdown is requested, stay only as long as unflushed
    // responses remain (the shutdown ack itself, most prominently).
    bool PendingWrites = false;
    for (const ClientConn &C : Clients)
      if (!C.WriteBuf.empty())
        PendingWrites = true;
    {
      std::lock_guard<std::mutex> Lock(OutboxMu);
      if (!Outbox.empty())
        PendingWrites = true;
    }
    if (Stopping.load() && !PendingWrites)
      break;

    std::vector<pollfd> Fds;
    Fds.push_back({ListenFd, POLLIN, 0});
    Fds.push_back({WakePipe[0], POLLIN, 0});
    const size_t Polled = Clients.size();
    for (const ClientConn &C : Clients)
      Fds.push_back({C.Fd,
                     static_cast<short>(POLLIN | (C.WriteBuf.empty()
                                                      ? 0
                                                      : POLLOUT)),
                     0});

    int N = ::poll(Fds.data(), Fds.size(), Stopping.load() ? 50 : -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return cli::ExitRuntime;
    }
    if (N == 0 && Stopping.load())
      break; // Grace period for the ack expired.

    // Drain wakeups and the executor's outbox.
    if (Fds[1].revents & POLLIN) {
      char Buf[64];
      while (::read(WakePipe[0], Buf, sizeof(Buf)) > 0) {
      }
    }
    {
      std::vector<std::pair<uint64_t, Value>> Ready;
      {
        std::lock_guard<std::mutex> Lock(OutboxMu);
        Ready.swap(Outbox);
      }
      for (const auto &[Client, Doc] : Ready) {
        Metrics.count("serve.responses.total");
        queueResponse(Client, Doc);
      }
    }

    // New connections.
    if (Fds[0].revents & POLLIN) {
      for (;;) {
        int Fd = ::accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          break;
        setNonBlocking(Fd);
        ClientConn C;
        C.Fd = Fd;
        C.Id = NextClientId++;
        Clients.push_back(std::move(C));
        Metrics.count("serve.clients.accepted");
      }
    }

    // Client IO. Walk only the clients that were present when Fds was
    // built (accept() above may have appended more — they have no
    // pollfd yet and get their first turn next round), and backwards so
    // dropClient() keeps lower indices valid.
    for (size_t I = Polled; I-- > 0;) {
      pollfd &P = Fds[2 + I];
      ClientConn &C = Clients[I];
      if (P.revents & (POLLERR | POLLNVAL)) {
        dropClient(I);
        continue;
      }
      if (P.revents & POLLIN) {
        char Buf[65536];
        bool Dead = false, Broken = false;
        for (;;) {
          ssize_t R = ::read(C.Fd, Buf, sizeof(Buf));
          if (R > 0) {
            C.Decoder.feed(Buf, static_cast<size_t>(R));
            continue;
          }
          if (R == 0)
            Dead = true; // EOF: a mid-frame disconnect dies here too.
          break;
        }
        std::string Frame;
        for (;;) {
          FrameDecoder::Status St = C.Decoder.next(Frame);
          if (St == FrameDecoder::Status::Frame) {
            handleFrame(C, Frame);
            continue;
          }
          if (St == FrameDecoder::Status::Oversized) {
            // The stream position is unrecoverable; this client is
            // done. Everyone else keeps being served.
            Metrics.count("serve.frames.oversized");
            Broken = true;
          }
          break;
        }
        if (Broken || (Dead && C.WriteBuf.empty())) {
          dropClient(I);
          continue;
        }
        if (Dead && !C.WriteBuf.empty()) {
          // Flush below, drop on the next round.
        }
      }
      if ((P.revents & POLLHUP) && C.WriteBuf.empty()) {
        dropClient(I);
        continue;
      }
      if (!C.WriteBuf.empty()) {
        ssize_t W = ::write(C.Fd, C.WriteBuf.data(), C.WriteBuf.size());
        if (W > 0)
          C.WriteBuf.erase(0, static_cast<size_t>(W));
        else if (W < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR)
          dropClient(I);
      }
    }
  }
  return cli::ExitOk;
}
