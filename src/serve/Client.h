//===--- Client.h - Blocking serve-protocol client -------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the serve protocol: connect to a daemon's AF_UNIX
/// socket, send one request frame, block for the response frame. Used
/// by the CLI's `--connect` routing (tools/syrust.cpp) and the serve
/// tests. Deliberately blocking and single-request-at-a-time — the
/// daemon handles concurrency; callers that want pipelining open more
/// clients.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SERVE_CLIENT_H
#define SYRUST_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Json.h"

#include <string>

namespace syrust::serve {

/// One connection to a `syrust serve` daemon.
class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&O) noexcept
      : Fd(O.Fd), Decoder(std::move(O.Decoder)) {
    O.Fd = -1;
  }

  /// Connects to the daemon at \p SocketPath. False with \p Err when
  /// the daemon is not there.
  bool connect(const std::string &SocketPath, std::string &Err);

  /// Sends \p Request and blocks for the matching response document.
  /// False with \p Err on transport failure (daemon died, oversized
  /// response, malformed response JSON).
  bool call(const json::Value &Request, json::Value &Response,
            std::string &Err);

  /// Sends raw bytes as one frame and blocks for a response — the
  /// hostility tests use this to ship deliberately broken payloads.
  bool callRaw(const std::string &Payload, std::string &ResponseOut,
               std::string &Err);

  bool connected() const { return Fd >= 0; }
  void close();

private:
  int Fd = -1;
  FrameDecoder Decoder;
};

} // namespace syrust::serve

#endif // SYRUST_SERVE_CLIENT_H
