//===--- Server.h - The syrust serve daemon --------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running synthesis endpoint: one warm core::Session — every
/// CrateAnalysis built once, then shared copy-on-write by every request
/// — behind an AF_UNIX socket speaking the length-prefixed JSON
/// protocol (Protocol.h). This is the paper's amortization argument
/// (§6 spreads per-crate analysis across thousands of tests) turned
/// into a process boundary: startup cost is paid once per daemon, not
/// once per invocation.
///
/// Architecture: one IO thread (poll loop: accept, frame reassembly,
/// response write-back) and one executor thread that drains a fair
/// scheduler. Fairness is per client: requests land in per-client FIFO
/// queues, the executor services clients round-robin, and a client may
/// have at most MaxInflight requests queued-or-running — submissions
/// beyond the cap are rejected immediately with an error response, so
/// one greedy client can neither starve others nor grow the daemon's
/// memory unboundedly. Requests execute one at a time (each campaign
/// parallelizes internally across its own --jobs pool), which keeps the
/// headline contract trivial: responses are byte-identical to offline
/// execution because they ARE offline execution — same cli::execute,
/// same warm Session, carried back as raw bytes.
///
/// Hostile clients cannot take the daemon down: an oversized length
/// prefix or dead connection drops that client alone; garbage JSON or
/// an invalid request gets an error response on a live connection.
///
/// Checkpointing: with CheckpointDir set, every campaign request is
/// checkpointed to <dir>/<spec-fingerprint>.jsonl while it runs. A
/// SIGKILLed daemon therefore resumes a campaign when the same spec is
/// resubmitted — finished cells preload, only the remainder re-runs,
/// and the aggregate is byte-identical (campaign/Checkpoint.h). The
/// file is deleted after a completed response, so disk use is bounded
/// by in-flight work.
///
/// Observability: the serve.* metrics (docs/OBSERVABILITY.md) —
/// request/rejection/drop counters, queue-depth gauge, and the
/// warm-analysis hit/build gauges from Session::analysisStats() — are
/// returned by the "stats" control verb.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SERVE_SERVER_H
#define SYRUST_SERVE_SERVER_H

#include "cli/RequestSpec.h"
#include "obs/Recorder.h"
#include "serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace syrust::serve {

/// One `syrust serve` daemon. start() binds the socket, run() blocks
/// serving until shutdown (the "shutdown" verb, requestStop(), or a
/// signal wired to requestStop()).
class Server {
public:
  Server(const core::Session &S, cli::ServeRequest Options);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on the configured socket path (removing a stale
  /// socket file first) and starts the executor. Returns false with
  /// \p Err on socket failure.
  bool start(std::string &Err);

  /// Serves until shutdown. Returns the daemon's exit code (ExitOk for
  /// a requested shutdown, ExitRuntime for IO-loop failure).
  int run();

  /// Asks the IO loop to shut down (async-signal-safe: one write to the
  /// self-pipe).
  void requestStop();

  /// The bound socket path (Options echo, for logs/tests).
  const std::string &socketPath() const { return Options.SocketPath; }

private:
  struct ClientConn {
    int Fd = -1;
    uint64_t Id = 0;
    FrameDecoder Decoder;
    std::string WriteBuf;
  };

  /// One queued work request.
  struct Pending {
    uint64_t Client = 0;
    cli::RequestSpec Spec;
    json::Value Id; ///< Echoed in the response; Null = absent.
  };

  void handleFrame(ClientConn &C, const std::string &Payload);
  void queueResponse(uint64_t Client, const json::Value &Doc);
  void dropClient(size_t Index);
  void executorLoop();
  json::Value statsJson();

  /// Scheduler: round-robin over per-client FIFOs, cap enforced at
  /// submit. Guarded by QueueMu.
  bool submit(Pending P);
  bool nextRequest(Pending &Out);
  void requestFinished(uint64_t Client);
  void clientGone(uint64_t Client);

  const core::Session &S;
  cli::ServeRequest Options;

  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  std::vector<ClientConn> Clients;
  uint64_t NextClientId = 1;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::map<uint64_t, std::deque<Pending>> Queues; ///< Per-client FIFO.
  std::vector<uint64_t> RoundRobin; ///< Client service order (arrival).
  size_t RoundRobinCursor = 0;
  std::map<uint64_t, int> InFlight; ///< Queued + running, per client.
  bool ExecutorStop = false;

  /// Responses (and progress-side effects) ready for the IO thread.
  std::mutex OutboxMu;
  std::vector<std::pair<uint64_t, json::Value>> Outbox;

  std::thread Executor;
  std::atomic<bool> Stopping{false};

  obs::Recorder Metrics;
};

} // namespace syrust::serve

#endif // SYRUST_SERVE_SERVER_H
