//===--- Protocol.h - Length-prefixed serve wire protocol ------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `syrust serve` wire format: every message, both directions, is
/// one frame — a 4-byte big-endian payload length followed by that many
/// bytes of UTF-8 JSON. Length prefixes make message boundaries explicit
/// (no sniffing for balanced braces), so the daemon can tell a hostile
/// or broken client apart from a slow one:
///
///   - a length prefix above MaxFrameBytes is unrecoverable (the stream
///     position is lost) — the decoder reports Oversized and the server
///     drops that client, nobody else;
///   - a frame whose payload is not valid JSON, or not a valid request,
///     is recoverable — the framing is still in sync, so the server
///     answers with an error response and keeps the connection;
///   - a connection that dies mid-frame simply never completes the
///     frame; its partial bytes die with the client.
///
/// Requests are JSON objects: `{"verb": "run" | "campaign" | "audit" |
/// "coverage", ...}` where every other member is the verb's CLI flag
/// spelled without `--` (the cli option table decodes both surfaces, so
/// they cannot drift; see cli/RequestSpec.h), plus an optional "id"
/// echoed verbatim in the response for correlation. Control verbs
/// "ping", "stats", and "shutdown" are handled by the server directly.
///
/// Responses: `{"ok": true, "exit_code": N, "output": "...", "error":
/// "...", "files": [{"path": ..., "content": ...}, ...]}` — the exact
/// Response the offline CLI would have produced, carried as raw bytes,
/// or `{"ok": false, "error": "..."}` for requests that never executed.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SERVE_PROTOCOL_H
#define SYRUST_SERVE_PROTOCOL_H

#include "cli/Execute.h"
#include "support/Json.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace syrust::serve {

/// Hard cap on one frame's payload. Large enough for any aggregate
/// document we produce; small enough that a hostile 4 GiB length prefix
/// is refused instead of honored.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Wraps \p Payload in a length prefix.
std::string encodeFrame(const std::string &Payload);

/// Incremental frame reassembly over a byte stream.
class FrameDecoder {
public:
  enum class Status {
    NeedMore,  ///< No complete frame buffered yet.
    Frame,     ///< One frame extracted into the out-parameter.
    Oversized, ///< Length prefix beyond MaxFrameBytes; stream is lost.
  };

  /// Appends raw bytes from the socket.
  void feed(const char *Data, size_t N) { Buf.append(Data, N); }

  /// Extracts the next complete frame's payload. Call until NeedMore.
  /// Oversized is sticky: the stream position is unrecoverable.
  Status next(std::string &Payload);

private:
  std::string Buf;
  bool Broken = false;
};

/// Renders an executed request's Response as the wire document, echoing
/// \p Id (any JSON value; Null = absent).
json::Value responseToJson(const cli::Response &R, const json::Value &Id);

/// Renders a never-executed request's error ("ok": false).
json::Value errorResponseJson(const std::string &Message,
                              const json::Value &Id);

/// Parses a response document back into a Response (the --connect
/// client side). Returns false with \p Err on a malformed document or
/// an "ok": false response (whose error message lands in \p Err).
bool responseFromJson(const json::Value &V, cli::Response &Out,
                      std::string &Err);

} // namespace syrust::serve

#endif // SYRUST_SERVE_PROTOCOL_H
