//===--- Client.cpp - Blocking serve-protocol client ----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/StringUtils.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace syrust;
using namespace syrust::serve;
using namespace syrust::json;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string &Err) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = format("socket path is %zu bytes; AF_UNIX allows %zu",
                 SocketPath.size(), sizeof(Addr.sun_path) - 1);
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = format("socket(): %s", std::strerror(errno));
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Err = format("cannot connect to '%s': %s", SocketPath.c_str(),
                 std::strerror(errno));
    close();
    return false;
  }
  return true;
}

bool Client::callRaw(const std::string &Payload, std::string &ResponseOut,
                     std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::string Frame = encodeFrame(Payload);
  size_t Off = 0;
  while (Off < Frame.size()) {
    ssize_t W = ::write(Fd, Frame.data() + Off, Frame.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Err = format("write: %s", std::strerror(errno));
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  for (;;) {
    FrameDecoder::Status St = Decoder.next(ResponseOut);
    if (St == FrameDecoder::Status::Frame)
      return true;
    if (St == FrameDecoder::Status::Oversized) {
      Err = "daemon sent an oversized frame";
      return false;
    }
    char Buf[65536];
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = format("read: %s", std::strerror(errno));
      return false;
    }
    if (R == 0) {
      Err = "daemon closed the connection before responding";
      return false;
    }
    Decoder.feed(Buf, static_cast<size_t>(R));
  }
}

bool Client::call(const json::Value &Request, json::Value &Response,
                  std::string &Err) {
  std::string Payload;
  if (!callRaw(Request.dump(), Payload, Err))
    return false;
  ParseResult P = parse(Payload);
  if (!P.Ok) {
    Err = "malformed response JSON: " + P.Error;
    return false;
  }
  Response = std::move(P.Val);
  return true;
}
