//===--- SatTypes.h - Core SAT literal/value types -------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable, literal, and truth-value types shared by the CDCL solver and
/// the synthesis encoder. Follows the MiniSat convention: a literal packs a
/// variable index and a sign into one integer, so literals index arrays
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SAT_SATTYPES_H
#define SYRUST_SAT_SATTYPES_H

#include <cassert>
#include <cstdint>
#include <functional>

namespace syrust::sat {

/// A propositional variable, numbered from 0.
using Var = int32_t;

constexpr Var VarUndef = -1;

/// A literal: variable plus sign. Encoded as 2*var+sign where sign==1 means
/// the negated literal.
struct Lit {
  int32_t Code = -2;

  constexpr Lit() = default;
  constexpr explicit Lit(int32_t Code) : Code(Code) {}

  constexpr bool operator==(const Lit &O) const { return Code == O.Code; }
  constexpr bool operator!=(const Lit &O) const { return Code != O.Code; }
  constexpr bool operator<(const Lit &O) const { return Code < O.Code; }
};

/// Builds a literal over \p V, negated when \p Negated.
constexpr Lit mkLit(Var V, bool Negated = false) {
  return Lit((V << 1) | static_cast<int32_t>(Negated));
}

/// Negation of \p L.
constexpr Lit operator~(Lit L) { return Lit(L.Code ^ 1); }

/// The variable underlying \p L.
constexpr Var var(Lit L) { return L.Code >> 1; }

/// True for the negated polarity.
constexpr bool sign(Lit L) { return (L.Code & 1) != 0; }

/// Sentinel "no literal" value.
constexpr Lit LitUndef = Lit(-2);

/// Three-valued assignment state.
enum class Value : uint8_t { False = 0, True = 1, Undef = 2 };

/// Negates a three-valued truth value; Undef stays Undef.
constexpr Value operator!(Value V) {
  if (V == Value::Undef)
    return Value::Undef;
  return V == Value::True ? Value::False : Value::True;
}

/// Result of a solver query. Unknown means the search stopped without a
/// verdict (conflict budget exhausted, or interrupted by a portfolio
/// cancellation) - it is never a proof, and callers must not retire any
/// part of the search space on it.
enum class SolveResult : uint8_t { Sat, Unsat, Unknown };

/// Restart schedule selector for the CDCL search (see SolverStrategy.h).
enum class RestartPolicy : uint8_t { Luby, Geometric };

} // namespace syrust::sat

namespace std {
template <> struct hash<syrust::sat::Lit> {
  size_t operator()(const syrust::sat::Lit &L) const {
    return static_cast<size_t>(L.Code);
  }
};
} // namespace std

#endif // SYRUST_SAT_SATTYPES_H
