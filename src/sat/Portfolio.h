//===--- Portfolio.h - Deterministic solver-strategy racing ----*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Races a fixed set of solver configurations (SolverStrategy) per solve
/// episode while keeping the emitted model stream byte-identical to a
/// plain single-solver run. The determinism argument:
///
///   * Member 0 is the incremental baseline solver with the historical
///     defaults. Every model the portfolio reports is member 0's model,
///     and member 0 is never interrupted, so its state evolves exactly
///     as it would with the portfolio off.
///   * Helper members are stateless racers: each episode they rebuild
///     from the recorded clause log under their own strategy, so an
///     interrupted helper leaves no state behind that could bleed into
///     a later episode.
///   * Helpers launch from a conflict-count progress hook on member 0
///     (a deterministic property of the search, not of timing), and
///     only their Unsat proofs are consumed - and only for episodes
///     member 0 answers Unknown (budget). Sat and Unsat are mutually
///     exclusive across members, and a relaxation Unsat (the CEGAR
///     member) implies a full-formula Unsat, so upgrading Unknown to
///     Unsat never contradicts the baseline; it only converts "gave up"
///     into a real proof. Ties break to the lowest strategy index:
///     helpers are joined in index order and a lower index is never
///     cancelled on behalf of a higher one.
///
/// The caller-visible effect of the portfolio is therefore exactly one
/// thing: some episodes that would report Unknown report Unsat instead.
/// No program stream can change, but the synthesis layer stops reviving
/// and re-solving genuinely exhausted lengths.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SAT_PORTFOLIO_H
#define SYRUST_SAT_PORTFOLIO_H

#include "sat/Solver.h"
#include "sat/SolverStrategy.h"

#include <atomic>
#include <string>
#include <vector>

namespace syrust::sat {

/// Deterministic portfolio counters (pure functions of the solve-episode
/// sequence, never of thread timing, so they are safe to serialize).
struct PortfolioStats {
  /// Episodes in which helper racers were launched.
  uint64_t Races = 0;
  /// Races where a helper's Unsat proof upgraded member 0's Unknown.
  uint64_t UnsatWins = 0;
  /// Cancellation signals sent to racers that lost.
  uint64_t Cancels = 0;
  /// Race wins per strategy index (parallel to portfolioStrategies()).
  std::vector<uint64_t> Wins;
};

/// Drop-in replacement for the encoder's Solver member: forwards the
/// incremental-solving interface to a baseline solver and, when enabled,
/// races helper strategies per episode. Clauses added between
/// beginLazy()/endLazy() are tagged for CEGAR deferral.
class Portfolio {
public:
  Portfolio();

  /// Selects the mode. Call once, before any variable or clause exists.
  /// \p PortfolioOn races portfolioStrategies() (member 0 stays the
  /// baseline); \p StrategyName, when non-empty, runs that single named
  /// configuration instead (must be a known name - validate upstream).
  /// The two are mutually exclusive; portfolio wins if both are set.
  void configure(bool PortfolioOn, const std::string &StrategyName);

  // -- the Solver interface the encoder consumes --------------------------
  Var newVar() { return Base.newVar(); }
  int numVars() const { return Base.numVars(); }
  bool addClause(std::vector<Lit> Lits);
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }
  bool addAtMost(std::vector<Lit> Lits, int K);
  void simplify() { Base.simplify(); }
  SolveResult solve() { return solve(std::vector<Lit>{}); }
  SolveResult solve(const std::vector<Lit> &Assumptions);
  Value modelValue(Var V) const { return Base.modelValue(V); }
  Value modelValue(Lit L) const { return Base.modelValue(L); }
  bool okay() const { return Base.okay(); }
  void setConflictBudget(uint64_t Conflicts) { Budget = Conflicts; }
  /// True when the last solve ended Unknown on budget. A race upgraded
  /// to Unsat reports false: the episode produced a real proof.
  bool budgetExhausted() const { return BudgetFlag; }
  const SolverStats &stats() const { return Base.stats(); }
  void setRandomSeed(uint64_t Seed);
  void setRecorder(obs::Recorder *R);

  // -- CEGAR tagging -------------------------------------------------------
  /// Marks subsequently added constraints as lazily materializable: the
  /// CEGAR strategy solves without them and re-adds only the ones a
  /// candidate model violates. Nestable.
  void beginLazy() { ++LazyDepth; }
  void endLazy() { --LazyDepth; }

  const PortfolioStats &portfolioStats() const { return PStats; }

private:
  /// One recorded constraint, replayable into a fresh helper solver.
  struct Op {
    enum KindTy : uint8_t { ClauseKind, AtMostKind } Kind = ClauseKind;
    std::vector<Lit> Lits;
    int Bound = 0;
    bool Lazy = false;
    /// CEGAR-as-primary only: already materialized into Base.
    bool Materialized = false;
  };

  SolveResult solveSingle(const std::vector<Lit> &Assumptions);
  SolveResult solveRace(const std::vector<Lit> &Assumptions);
  SolveResult runHelper(const SolverStrategy &S,
                        const std::vector<Lit> &Assumptions,
                        const std::atomic<bool> &Cancel) const;
  /// Replays Ops into \p Dst (skipping lazy ops when \p DeferLazy).
  /// Returns false when the replay is root-inconsistent (a real Unsat).
  bool replayInto(Solver &Dst, bool DeferLazy) const;
  /// True when \p O is violated by Dst's current model.
  static bool violatedUnderModel(const Solver &Dst, const Op &O);

  Solver Base;
  bool Enabled = false;
  const SolverStrategy *Single = nullptr;
  bool RecordOps = false;
  std::vector<Op> Ops;
  int LazyDepth = 0;
  uint64_t BaseSeed = 1;
  uint64_t Budget = 0;
  bool BudgetFlag = false;
  obs::Recorder *Obs = nullptr;
  PortfolioStats PStats;
};

} // namespace syrust::sat

#endif // SYRUST_SAT_PORTFOLIO_H
