//===--- Solver.h - CDCL SAT solver with cardinality constraints -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver with *native* Boolean
/// cardinality constraints (AtMost-k / AtLeast-k via counting propagation),
/// standing in for Sat4J in the original system. The synthesis encoder of
/// Section 4 / Appendix C emits both CNF clauses and the pseudo-Boolean
/// inequalities of Figure 14 directly to this interface.
///
/// Features: two-watched-literal propagation, first-UIP clause learning with
/// reason-based minimization, EVSIDS variable activities, phase saving, Luby
/// restarts, learned-clause reduction, assumption-based incremental solving,
/// and incremental clause addition between solve() calls (used by
/// Algorithm 1's model-blocking loop).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SAT_SOLVER_H
#define SYRUST_SAT_SOLVER_H

#include "sat/SatTypes.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace syrust::obs {
class Recorder;
} // namespace syrust::obs

namespace syrust::sat {

struct SolverStrategy;

/// Aggregate search statistics, exposed for the micro benchmarks.
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearnedClauses = 0;
  uint64_t DeletedClauses = 0;
  uint64_t CardPropagations = 0;
};

/// CDCL solver. Not thread-safe; create one per synthesis task.
class Solver {
public:
  Solver();
  ~Solver();

  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;

  /// Creates a fresh variable and returns its index.
  Var newVar();

  /// Number of variables created so far.
  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause (disjunction of \p Lits). Returns false if the solver
  /// became inconsistent at the root level (the clause, together with prior
  /// constraints, is unsatisfiable without search).
  bool addClause(std::vector<Lit> Lits);

  /// Convenience overloads.
  bool addClause(Lit A);
  bool addClause(Lit A, Lit B);
  bool addClause(Lit A, Lit B, Lit C);

  /// Adds the constraint "at most \p K of \p Lits are true".
  bool addAtMost(std::vector<Lit> Lits, int K);

  /// Adds the constraint "at least \p K of \p Lits are true".
  bool addAtLeast(std::vector<Lit> Lits, int K);

  /// Adds the constraint "exactly \p K of \p Lits are true".
  bool addExactly(const std::vector<Lit> &Lits, int K);

  /// Detaches clauses satisfied at the root level (problem and learned)
  /// from the watch lists. Incremental clients that retire whole clause
  /// groups behind a selector literal (a unit clause satisfies every
  /// guarded clause at once) call this so the dead clauses stop taxing
  /// propagation.
  void simplify();

  /// Solves the current formula. Returns Sat and populates the model, or
  /// Unsat.
  SolveResult solve();

  /// Solves under the given assumptions (they act as temporary unit
  /// clauses).
  SolveResult solve(const std::vector<Lit> &Assumptions);

  /// Value of \p V in the most recent satisfying model. Only valid after a
  /// Sat result.
  Value modelValue(Var V) const;

  /// Value of \p L in the most recent satisfying model.
  Value modelValue(Lit L) const;

  /// False once the formula has been proven unsatisfiable at the root.
  bool okay() const { return Ok; }

  /// Sets a per-solve conflict limit; 0 disables the limit. A solve that
  /// runs out of budget returns Unknown and sets budgetExhausted(); an
  /// Unknown is never an Unsat proof.
  void setConflictBudget(uint64_t Conflicts) { ConflictBudget = Conflicts; }

  /// True if the previous solve() stopped because of the conflict budget.
  /// The result of such a solve is Unknown, never Unsat.
  bool budgetExhausted() const { return BudgetHit; }

  const SolverStats &stats() const { return Stats; }

  /// Seeds the random tie-breaking used for a small fraction of decisions.
  void setRandomSeed(uint64_t Seed);

  /// Applies a search configuration (restart schedule, phase
  /// initialization, random-decision frequency). Call before adding
  /// variables: the phase default only affects variables created after.
  void applyStrategy(const SolverStrategy &S);

  /// Cooperative cancellation: while \p Flag (owned by the caller) reads
  /// true, any in-flight search() returns Unknown at the next decision
  /// boundary. Null (the default) disables the check. Used by the
  /// portfolio runner to cancel losing configurations.
  void setInterrupt(const std::atomic<bool> *Flag) { Interrupt = Flag; }

  /// Registers a one-shot callback fired from inside the next solve()
  /// once its episode accumulates \p ConflictThreshold conflicts. The
  /// trigger point is a deterministic property of the search (conflict
  /// counts do not depend on timing), so hook-launched work - the
  /// portfolio uses this to start helper racers only on hard episodes -
  /// starts at the same logical point on every run. Null clears it.
  void setProgressHook(uint64_t ConflictThreshold,
                       std::function<void()> Callback) {
    HookThreshold = ConflictThreshold;
    Hook = std::move(Callback);
  }

  /// Attaches the flight recorder; every solve() then emits a `sat.solve`
  /// trace event with its conflict/propagation/restart deltas and bumps
  /// the `sat.*` counters. Null (the default) disables instrumentation.
  void setRecorder(obs::Recorder *R) { Obs = R; }

private:
  // Clause storage: clauses live in a flat arena; a ClauseRef is an offset.
  using ClauseRef = uint32_t;
  static constexpr ClauseRef RefUndef = 0xffffffffu;

  struct ClauseHeader {
    uint32_t Size;
    uint32_t Learned : 1;
    uint32_t Mark : 1;
    float Activity;
  };

  struct Watcher {
    ClauseRef Ref;
    Lit Blocker;
  };

  /// Native cardinality constraint: at most K of Lits may be true.
  struct CardConstraint {
    std::vector<Lit> Lits;
    int K = 0;
    int TrueCount = 0; ///< Literals currently assigned true.
  };

  /// Why a variable was assigned.
  struct Reason {
    enum KindTy : uint8_t { None, ClauseKind, CardKind } Kind = None;
    uint32_t Index = 0;
  };

  struct VarData {
    Reason Why;
    int Level = 0;
    int TrailPos = 0;
  };

  // --- clause arena -------------------------------------------------------
  ClauseRef allocClause(const std::vector<Lit> &Lits, bool Learned);
  ClauseHeader &header(ClauseRef Ref);
  const ClauseHeader &header(ClauseRef Ref) const;
  Lit *lits(ClauseRef Ref);
  const Lit *lits(ClauseRef Ref) const;

  // --- assignment / propagation -------------------------------------------
  Value value(Var V) const { return Assigns[V]; }
  Value value(Lit L) const {
    Value V = Assigns[var(L)];
    return sign(L) ? !V : V;
  }
  int level(Var V) const { return VarInfo[V].Level; }
  int trailPos(Var V) const { return VarInfo[V].TrailPos; }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  void enqueue(Lit P, Reason Why);
  /// Runs unit propagation; returns a conflicting constraint reason or a
  /// Reason with Kind==None when no conflict occurred.
  Reason propagate();
  bool propagateCard(uint32_t CardIdx, Lit P, Reason &ConflictOut);
  void cancelUntil(int Level);

  // --- conflict analysis ---------------------------------------------------
  void analyze(Reason Conflict, std::vector<Lit> &Learned, int &BtLevel);
  bool litRedundant(Lit P, uint32_t AbstractLevels);
  void collectReasonLits(Reason Why, Lit Implied, std::vector<Lit> &Out);

  // --- decisions ------------------------------------------------------------
  void varBumpActivity(Var V);
  void varDecayActivity();
  void claBumpActivity(ClauseRef Ref);
  void claDecayActivity();
  Lit pickBranchLit();

  // heap operations for the order heap keyed by activity
  void heapInsert(Var V);
  void heapUpdate(Var V);
  Var heapPop();
  bool heapEmpty() const { return Heap.empty(); }
  void heapPercolateUp(int Pos);
  void heapPercolateDown(int Pos);

  // --- top-level search ------------------------------------------------------
  SolveResult solveInner(const std::vector<Lit> &Assumps);
  SolveResult search();
  void reduceDB();
  void attachClause(ClauseRef Ref);
  bool addClausePreprocessed(std::vector<Lit> &Lits);
  static uint64_t luby(uint64_t I);

  // --- data -------------------------------------------------------------------
  bool Ok = true;
  std::vector<uint32_t> Arena; ///< Clause storage (headers + literals).
  std::vector<ClauseRef> LearnedRefs;
  std::vector<std::vector<Watcher>> Watches;   ///< Indexed by literal code.
  std::vector<CardConstraint> Cards;
  std::vector<std::vector<uint32_t>> CardOccs; ///< Literal code -> card ids.

  std::vector<Value> Assigns;
  std::vector<VarData> VarInfo;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QHead = 0;

  std::vector<double> Activity;
  std::vector<char> Polarity; ///< Saved phases (1 = last assigned false).
  std::vector<int> HeapPos;   ///< Var -> position in Heap, or -1.
  std::vector<Var> Heap;

  std::vector<char> Seen;

  std::vector<Lit> Assumptions;
  std::vector<Value> Model;

  double VarInc = 1.0;
  double ClaInc = 1.0;
  uint64_t ConflictBudget = 0;
  bool BudgetHit = false;
  double MaxLearned = 0;
  uint64_t RandomState = 0x9e3779b97f4a7c15ULL;
  obs::Recorder *Obs = nullptr;

  // Strategy knobs (defaults reproduce the historical fixed constants).
  RestartPolicy RestartMode = RestartPolicy::Luby;
  uint64_t RestartUnit = 100;
  double RestartGrowth = 1.5; ///< Geometric schedule only.
  double RandomFreq = 0.02;
  char DefaultPhase = 1; ///< Initial saved phase of new vars (1 = false).

  const std::atomic<bool> *Interrupt = nullptr;
  uint64_t HookThreshold = 0;
  std::function<void()> Hook;
  bool HookFired = false;

  SolverStats Stats;
};

} // namespace syrust::sat

#endif // SYRUST_SAT_SOLVER_H
