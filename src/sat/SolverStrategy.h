//===--- SolverStrategy.h - Pluggable CDCL search configurations -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SolverStrategy bundles the search knobs a CDCL configuration is made
/// of - restart schedule, phase initialization, random-decision frequency,
/// seed perturbation, conflict budget scaling - plus the CEGAR flag that
/// makes a configuration solve a relaxation with the lazily-tagged
/// (ownership/borrow) clauses deferred, materializing only the ones a
/// model violates. The portfolio runner (Portfolio.h) races a fixed set
/// of these per solve episode.
///
/// Strategy 0 of the portfolio is always "baseline": exactly the
/// solver's historical defaults, so a portfolio run's emitted models are
/// byte-identical to a plain single-solver run.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SAT_SOLVERSTRATEGY_H
#define SYRUST_SAT_SOLVERSTRATEGY_H

#include "sat/SatTypes.h"

#include <string>
#include <vector>

namespace syrust::sat {

/// One named solver configuration.
struct SolverStrategy {
  /// Stable name, used by `--strategy` and the `sat.strategy.*` counters.
  const char *Name = "baseline";

  RestartPolicy Restart = RestartPolicy::Luby;
  /// Luby unit, or the geometric schedule's initial limit.
  uint64_t RestartUnit = 100;
  /// Growth factor of the geometric schedule (ignored under Luby).
  double RestartGrowth = 1.5;
  /// Initialize saved phases to true instead of the MiniSat false.
  bool PositivePhase = false;
  /// Fraction of decisions made at random (diversification).
  double RandomFreq = 0.02;
  /// XORed into the base random seed so racers diverge.
  uint64_t SeedXor = 0;
  /// The configuration's conflict budget is the baseline budget times
  /// this factor (helpers may search longer than the baseline because
  /// their Unsat proofs rescue episodes the baseline gave up on).
  uint64_t BudgetFactor = 1;
  /// CEGAR: start from the relaxation without the lazily-tagged clauses
  /// and materialize violated ones from counterexample models. An Unsat
  /// of the relaxation is an Unsat of the full formula.
  bool Cegar = false;
};

/// The fixed racing set. Index 0 is the baseline (identical to a plain
/// Solver's defaults); the others are the helper configurations.
const std::vector<SolverStrategy> &portfolioStrategies();

/// Looks a strategy up by name; null when unknown.
const SolverStrategy *findStrategy(const std::string &Name);

/// Comma-separated list of the known strategy names, for strict flag
/// validation messages.
std::string knownStrategyNames();

} // namespace syrust::sat

#endif // SYRUST_SAT_SOLVERSTRATEGY_H
