//===--- Portfolio.cpp - Deterministic solver-strategy racing -------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sat/Portfolio.h"

#include "obs/Recorder.h"

#include <algorithm>
#include <thread>

using namespace syrust;
using namespace syrust::sat;

Portfolio::Portfolio() = default;

void Portfolio::configure(bool PortfolioOn, const std::string &StrategyName) {
  Enabled = PortfolioOn;
  Single = nullptr;
  if (!Enabled && !StrategyName.empty()) {
    Single = findStrategy(StrategyName);
    if (Single)
      Base.applyStrategy(*Single);
  }
  // The op log feeds helper replays (portfolio) or lazy materialization
  // (CEGAR as the primary); any other mode skips recording entirely.
  RecordOps = Enabled || (Single && Single->Cegar);
  setRandomSeed(BaseSeed);
}

void Portfolio::setRandomSeed(uint64_t Seed) {
  BaseSeed = Seed;
  Base.setRandomSeed(Single ? Seed ^ Single->SeedXor : Seed);
}

void Portfolio::setRecorder(obs::Recorder *R) {
  Obs = R;
  Base.setRecorder(R);
}

bool Portfolio::addClause(std::vector<Lit> Lits) {
  if (RecordOps) {
    Op O;
    O.Kind = Op::ClauseKind;
    O.Lits = Lits;
    O.Lazy = LazyDepth > 0;
    if (Single && Single->Cegar && O.Lazy) {
      // CEGAR as the primary: keep the clause out of the solver until a
      // candidate model violates it.
      Ops.push_back(std::move(O));
      return true;
    }
    O.Materialized = true;
    Ops.push_back(std::move(O));
  }
  return Base.addClause(std::move(Lits));
}

bool Portfolio::addAtMost(std::vector<Lit> Lits, int K) {
  if (RecordOps) {
    Op O;
    O.Kind = Op::AtMostKind;
    O.Lits = Lits;
    O.Bound = K;
    O.Lazy = LazyDepth > 0;
    if (Single && Single->Cegar && O.Lazy) {
      Ops.push_back(std::move(O));
      return true;
    }
    O.Materialized = true;
    Ops.push_back(std::move(O));
  }
  return Base.addAtMost(std::move(Lits), K);
}

bool Portfolio::violatedUnderModel(const Solver &Dst, const Op &O) {
  // Undef (out-of-model) literals count as not-true: a constraint may be
  // materialized although a completion could satisfy it, which costs a
  // clause but never masks a violation.
  int TrueCount = 0;
  for (Lit L : O.Lits)
    if (Dst.modelValue(L) == Value::True)
      ++TrueCount;
  if (O.Kind == Op::ClauseKind)
    return TrueCount == 0;
  return TrueCount > O.Bound;
}

bool Portfolio::replayInto(Solver &Dst, bool DeferLazy) const {
  for (int I = 0, E = Base.numVars(); I < E; ++I)
    Dst.newVar();
  for (const Op &O : Ops) {
    if (DeferLazy && O.Lazy)
      continue;
    bool Consistent = O.Kind == Op::ClauseKind
                          ? Dst.addClause(O.Lits)
                          : Dst.addAtMost(O.Lits, O.Bound);
    if (!Consistent)
      return false;
  }
  return true;
}

SolveResult Portfolio::runHelper(const SolverStrategy &S,
                                 const std::vector<Lit> &Assumptions,
                                 const std::atomic<bool> &Cancel) const {
  Solver H;
  H.applyStrategy(S); // Before newVar: the phase default must apply.
  H.setRandomSeed(BaseSeed ^ S.SeedXor);
  H.setInterrupt(&Cancel);
  if (!replayInto(H, S.Cegar))
    return SolveResult::Unsat; // Root-inconsistent replay: a real proof.

  uint64_t HelperBudget = Budget * S.BudgetFactor;
  if (!S.Cegar) {
    H.setConflictBudget(HelperBudget);
    return H.solve(Assumptions);
  }

  // CEGAR refinement: solve the relaxation, then treat each candidate
  // model as a counterexample query against the deferred (lazy) clauses -
  // the encoder-level counterpart of the rustsim checker oracle - and
  // materialize exactly the violated ones. An Unsat of any iteration is
  // an Unsat of the full formula (the relaxation only removes
  // constraints). One cumulative conflict budget spans all iterations.
  std::vector<char> Added(Ops.size(), 0);
  uint64_t Remaining = HelperBudget;
  while (true) {
    if (Remaining == 0)
      return SolveResult::Unknown;
    H.setConflictBudget(Remaining);
    uint64_t Before = H.stats().Conflicts;
    SolveResult R = H.solve(Assumptions);
    uint64_t Used = H.stats().Conflicts - Before;
    Remaining = Used < Remaining ? Remaining - Used : 0;
    if (R != SolveResult::Sat)
      return R;
    bool AnyViolated = false;
    for (size_t I = 0, E = Ops.size(); I < E; ++I) {
      const Op &O = Ops[I];
      if (!O.Lazy || Added[I] || !violatedUnderModel(H, O))
        continue;
      Added[I] = 1;
      AnyViolated = true;
      bool Consistent = O.Kind == Op::ClauseKind
                            ? H.addClause(O.Lits)
                            : H.addAtMost(O.Lits, O.Bound);
      if (!Consistent)
        return SolveResult::Unsat;
    }
    if (!AnyViolated)
      return SolveResult::Sat; // Genuine full-formula model; discarded.
  }
}

SolveResult Portfolio::solveSingle(const std::vector<Lit> &Assumptions) {
  Base.setConflictBudget(Budget * (Single ? Single->BudgetFactor : 1));
  if (!Single || !Single->Cegar) {
    SolveResult R = Base.solve(Assumptions);
    BudgetFlag = Base.budgetExhausted();
    return R;
  }
  // CEGAR as the primary solver: like the helper loop, but materialized
  // clauses go into the incremental solver permanently, so refinement
  // progress carries across episodes.
  while (true) {
    SolveResult R = Base.solve(Assumptions);
    BudgetFlag = Base.budgetExhausted();
    if (R != SolveResult::Sat)
      return R;
    bool AnyViolated = false;
    for (Op &O : Ops) {
      if (!O.Lazy || O.Materialized || !violatedUnderModel(Base, O))
        continue;
      O.Materialized = true;
      AnyViolated = true;
      bool Consistent = O.Kind == Op::ClauseKind
                            ? Base.addClause(O.Lits)
                            : Base.addAtMost(O.Lits, O.Bound);
      if (!Consistent) {
        BudgetFlag = false;
        return SolveResult::Unsat;
      }
    }
    if (!AnyViolated)
      return R;
  }
}

SolveResult Portfolio::solveRace(const std::vector<Lit> &Assumptions) {
  const std::vector<SolverStrategy> &Set = portfolioStrategies();
  size_t NumHelpers = Set.size() - 1;
  if (PStats.Wins.size() != Set.size())
    PStats.Wins.resize(Set.size(), 0);

  Base.setConflictBudget(Budget);
  if (Budget == 0 || NumHelpers == 0) {
    // Without a budget member 0 can never answer Unknown, so helper
    // proofs could never be consumed; skip the race entirely.
    SolveResult R = Base.solve(Assumptions);
    BudgetFlag = Base.budgetExhausted();
    return R;
  }

  std::atomic<bool> Cancel{false};
  std::vector<std::thread> Threads;
  std::vector<SolveResult> Results(NumHelpers, SolveResult::Unknown);
  bool Launched = false;

  // Racers launch only when the budget actually runs out - the hook
  // fires at a conflict count, a deterministic property of the search,
  // not of timing, and does so just before the budget check turns the
  // episode into an Unknown. Launching any earlier would pay three
  // formula replays on episodes member 0 still answers by itself, which
  // real workloads are dominated by.
  Base.setProgressHook(Budget, [&] {
    Launched = true;
    Threads.reserve(NumHelpers);
    for (size_t I = 0; I < NumHelpers; ++I)
      Threads.emplace_back([this, I, &Set, &Assumptions, &Cancel, &Results] {
        Results[I] = runHelper(Set[I + 1], Assumptions, Cancel);
      });
  });

  SolveResult R0 = Base.solve(Assumptions);
  Base.setProgressHook(0, nullptr);

  if (!Launched) {
    BudgetFlag = Base.budgetExhausted();
    return R0; // Easy episode: the race never started.
  }

  ++PStats.Races;
  SolveResult Final = R0;
  int Winner = 0; // Strategy index credited with the episode.
  uint64_t CancelsSent = 0;

  if (R0 != SolveResult::Unknown) {
    // Member 0 answered on its own; every racer loses.
    Cancel.store(true, std::memory_order_relaxed);
    CancelsSent = NumHelpers;
    for (std::thread &T : Threads)
      T.join();
  } else {
    // Member 0 gave up. Adopt the lowest-index helper Unsat proof:
    // joining in index order and cancelling only higher indices makes
    // the choice independent of finish order.
    Winner = -1;
    for (size_t I = 0; I < NumHelpers; ++I) {
      Threads[I].join();
      if (Winner < 0 && Results[I] == SolveResult::Unsat) {
        Winner = static_cast<int>(I) + 1;
        Cancel.store(true, std::memory_order_relaxed);
        CancelsSent = NumHelpers - I - 1;
      }
    }
  }

  if (Winner > 0) {
    Final = SolveResult::Unsat;
    ++PStats.UnsatWins;
  }
  if (Winner >= 0)
    ++PStats.Wins[static_cast<size_t>(Winner)];
  PStats.Cancels += CancelsSent;
  BudgetFlag = Final == SolveResult::Unknown;

  if (Obs) {
    const char *WinnerName = Winner >= 0 ? Set[Winner].Name : "none";
    Obs->count("sat.strategy.races");
    if (CancelsSent)
      Obs->count("sat.strategy.cancels", CancelsSent);
    if (Winner > 0)
      Obs->count("sat.strategy.unsat_wins");
    if (Winner >= 0)
      Obs->count(std::string("sat.strategy.win.") + WinnerName);
    obs::ArgList Args;
    Args.add("winner", WinnerName);
    Args.add("result", Final == SolveResult::Sat     ? "sat"
                       : Final == SolveResult::Unsat ? "unsat"
                                                     : "unknown");
    Args.add("cancels", CancelsSent);
    Obs->instant("sat.strategy.race", "sat", std::move(Args));
  }
  return Final;
}

SolveResult Portfolio::solve(const std::vector<Lit> &Assumptions) {
  if (!Enabled)
    return solveSingle(Assumptions);
  return solveRace(Assumptions);
}
