//===--- SolverStrategy.cpp - Pluggable CDCL search configurations --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sat/SolverStrategy.h"

using namespace syrust::sat;

const std::vector<SolverStrategy> &syrust::sat::portfolioStrategies() {
  // Index 0 MUST stay the exact historical defaults: the portfolio's
  // emitted models always come from member 0, which is what keeps
  // portfolio-on program streams byte-identical to portfolio-off.
  static const std::vector<SolverStrategy> Set = [] {
    std::vector<SolverStrategy> S;
    S.push_back(SolverStrategy{}); // "baseline"

    SolverStrategy Agile;
    Agile.Name = "agile";
    Agile.RestartUnit = 16; // Rapid Luby restarts.
    Agile.RandomFreq = 0.05;
    Agile.SeedXor = 0x5851f42d4c957f2dULL;
    // Helpers only ever launch on episodes that exhausted member 0's
    // budget, so they are rare enough to afford a far larger one - their
    // whole purpose is finishing proofs the baseline gave up on.
    Agile.BudgetFactor = 64;
    S.push_back(Agile);

    SolverStrategy Geometric;
    Geometric.Name = "geometric";
    Geometric.Restart = RestartPolicy::Geometric;
    Geometric.RestartUnit = 100;
    Geometric.RestartGrowth = 1.5;
    Geometric.PositivePhase = true;
    Geometric.SeedXor = 0x9e3779b97f4a7c15ULL;
    Geometric.BudgetFactor = 64;
    S.push_back(Geometric);

    SolverStrategy Cegar;
    Cegar.Name = "cegar";
    Cegar.Cegar = true;
    Cegar.RestartUnit = 32;
    Cegar.SeedXor = 0xda942042e4dd58b5ULL;
    Cegar.BudgetFactor = 64;
    S.push_back(Cegar);
    return S;
  }();
  return Set;
}

const SolverStrategy *syrust::sat::findStrategy(const std::string &Name) {
  for (const SolverStrategy &S : portfolioStrategies())
    if (Name == S.Name)
      return &S;
  return nullptr;
}

std::string syrust::sat::knownStrategyNames() {
  std::string Out;
  for (const SolverStrategy &S : portfolioStrategies()) {
    if (!Out.empty())
      Out += ", ";
    Out += S.Name;
  }
  return Out;
}
