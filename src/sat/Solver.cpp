//===--- Solver.cpp - CDCL SAT solver with cardinality constraints --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "obs/Recorder.h"
#include "sat/SolverStrategy.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace syrust::sat;

namespace {
// EVSIDS / clause-activity tuning constants (MiniSat defaults). The
// restart schedule and random-decision frequency are per-solver knobs
// (SolverStrategy); their defaults match the historical constants here.
constexpr double VarDecay = 0.95;
constexpr double ClaDecay = 0.999;
constexpr double RescaleLimit = 1e100;
} // namespace

Solver::Solver() = default;
Solver::~Solver() = default;

//===----------------------------------------------------------------------===//
// Variable and constraint creation
//===----------------------------------------------------------------------===//

Var Solver::newVar() {
  Var V = numVars();
  Assigns.push_back(Value::Undef);
  VarInfo.push_back(VarData{});
  Activity.push_back(0.0);
  Polarity.push_back(DefaultPhase); // 1 = false (the MiniSat default).
  HeapPos.push_back(-1);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  CardOccs.emplace_back();
  CardOccs.emplace_back();
  heapInsert(V);
  return V;
}

Solver::ClauseRef Solver::allocClause(const std::vector<Lit> &Lits,
                                      bool Learned) {
  assert(Lits.size() >= 2 && "allocClause requires a non-unit clause");
  static_assert(sizeof(ClauseHeader) == 3 * sizeof(uint32_t),
                "arena layout assumes a 3-word header");
  ClauseRef Ref = static_cast<ClauseRef>(Arena.size());
  Arena.resize(Arena.size() + 3 + Lits.size());
  ClauseHeader &H = header(Ref);
  H.Size = static_cast<uint32_t>(Lits.size());
  H.Learned = Learned;
  H.Mark = 0;
  H.Activity = 0;
  std::memcpy(lits(Ref), Lits.data(), Lits.size() * sizeof(Lit));
  return Ref;
}

Solver::ClauseHeader &Solver::header(ClauseRef Ref) {
  return *reinterpret_cast<ClauseHeader *>(&Arena[Ref]);
}

const Solver::ClauseHeader &Solver::header(ClauseRef Ref) const {
  return *reinterpret_cast<const ClauseHeader *>(&Arena[Ref]);
}

Lit *Solver::lits(ClauseRef Ref) {
  return reinterpret_cast<Lit *>(&Arena[Ref + 3]);
}

const Lit *Solver::lits(ClauseRef Ref) const {
  return reinterpret_cast<const Lit *>(&Arena[Ref + 3]);
}

void Solver::attachClause(ClauseRef Ref) {
  const Lit *C = lits(Ref);
  Watches[C[0].Code].push_back(Watcher{Ref, C[1]});
  Watches[C[1].Code].push_back(Watcher{Ref, C[0]});
}

/// Normalizes \p Lits in place: sorts, removes duplicates and literals that
/// are false at the root, and detects tautologies / satisfied clauses.
/// Returns false if the clause is already satisfied or tautological (and
/// therefore should not be added).
bool Solver::addClausePreprocessed(std::vector<Lit> &Lits) {
  assert(decisionLevel() == 0 && "preprocess only at the root level");
  std::sort(Lits.begin(), Lits.end());
  Lit Prev = LitUndef;
  size_t Out = 0;
  for (Lit L : Lits) {
    assert(var(L) >= 0 && var(L) < numVars() && "literal over unknown var");
    if (value(L) == Value::True || L == ~Prev)
      return false; // Satisfied at root, or a tautology.
    if (value(L) == Value::False || L == Prev)
      continue; // Falsified at root, or duplicate.
    Lits[Out++] = Prev = L;
  }
  Lits.resize(Out);
  return true;
}

bool Solver::addClause(std::vector<Lit> Lits) {
  if (!Ok)
    return false;
  if (decisionLevel() != 0)
    cancelUntil(0);
  if (!addClausePreprocessed(Lits))
    return true; // Trivially satisfied; nothing to add.
  if (Lits.empty()) {
    Ok = false;
    return false;
  }
  if (Lits.size() == 1) {
    enqueue(Lits[0], Reason{});
    if (propagate().Kind != Reason::None)
      Ok = false;
    return Ok;
  }
  ClauseRef Ref = allocClause(Lits, /*Learned=*/false);
  attachClause(Ref);
  return true;
}

bool Solver::addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
bool Solver::addClause(Lit A, Lit B) {
  return addClause(std::vector<Lit>{A, B});
}
bool Solver::addClause(Lit A, Lit B, Lit C) {
  return addClause(std::vector<Lit>{A, B, C});
}

bool Solver::addAtMost(std::vector<Lit> Lits, int K) {
  if (!Ok)
    return false;
  if (decisionLevel() != 0)
    cancelUntil(0);

  // Fold in root-level assignments: true literals consume budget, false
  // literals can never contribute.
  size_t Out = 0;
  for (Lit L : Lits) {
    assert(var(L) >= 0 && var(L) < numVars() && "literal over unknown var");
    if (value(L) == Value::True) {
      --K;
      continue;
    }
    if (value(L) == Value::False)
      continue;
    Lits[Out++] = L;
  }
  Lits.resize(Out);

  if (K < 0) {
    Ok = false;
    return false;
  }
  if (static_cast<int>(Lits.size()) <= K)
    return true; // Trivially satisfied.
  if (K == 0) {
    // Degenerates to unit clauses.
    for (Lit L : Lits)
      if (!addClause(~L))
        return false;
    return Ok;
  }
  if (Lits.size() == static_cast<size_t>(K) + 1) {
    // AtMost(n-1 of n) is one clause over the negations.
    std::vector<Lit> Negated;
    Negated.reserve(Lits.size());
    for (Lit L : Lits)
      Negated.push_back(~L);
    return addClause(std::move(Negated));
  }

  uint32_t Idx = static_cast<uint32_t>(Cards.size());
  Cards.push_back(CardConstraint{std::move(Lits), K, 0});
  for (Lit L : Cards.back().Lits)
    CardOccs[L.Code].push_back(Idx);
  return true;
}

bool Solver::addAtLeast(std::vector<Lit> Lits, int K) {
  // AtLeast(L, K) over n literals == AtMost(~L, n - K).
  int N = static_cast<int>(Lits.size());
  if (K <= 0)
    return true;
  if (K > N) {
    Ok = false;
    return false;
  }
  for (Lit &L : Lits)
    L = ~L;
  return addAtMost(std::move(Lits), N - K);
}

bool Solver::addExactly(const std::vector<Lit> &Lits, int K) {
  if (!addAtMost(Lits, K))
    return false;
  return addAtLeast(Lits, K);
}

//===----------------------------------------------------------------------===//
// Assignment and propagation
//===----------------------------------------------------------------------===//

void Solver::enqueue(Lit P, Reason Why) {
  assert(value(P) == Value::Undef && "enqueue over assigned literal");
  Var V = var(P);
  Assigns[V] = sign(P) ? Value::False : Value::True;
  VarInfo[V] = VarData{Why, decisionLevel(), static_cast<int>(Trail.size())};
  // Cardinality counters track enqueued-true literals; symmetric decrement
  // happens in cancelUntil.
  for (uint32_t CardIdx : CardOccs[P.Code])
    ++Cards[CardIdx].TrueCount;
  Trail.push_back(P);
}

void Solver::cancelUntil(int Level) {
  if (decisionLevel() <= Level)
    return;
  int Bound = TrailLim[Level];
  for (int I = static_cast<int>(Trail.size()) - 1; I >= Bound; --I) {
    Lit P = Trail[I];
    Var V = var(P);
    for (uint32_t CardIdx : CardOccs[P.Code])
      --Cards[CardIdx].TrueCount;
    Assigns[V] = Value::Undef;
    Polarity[V] = static_cast<char>(sign(P)); // Phase saving.
    if (HeapPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(Level);
  QHead = Trail.size();
}

bool Solver::propagateCard(uint32_t CardIdx, Lit P, Reason &ConflictOut) {
  CardConstraint &Card = Cards[CardIdx];
  (void)P;
  if (Card.TrueCount > Card.K) {
    ConflictOut = Reason{Reason::CardKind, CardIdx};
    return false;
  }
  if (Card.TrueCount < Card.K)
    return true;
  // Saturated: every remaining literal must be false.
  for (Lit L : Card.Lits) {
    if (value(L) == Value::Undef) {
      ++Stats.CardPropagations;
      enqueue(~L, Reason{Reason::CardKind, CardIdx});
    } else if (value(L) == Value::True && Card.TrueCount > Card.K) {
      // A concurrent enqueue pushed us over; report the conflict.
      ConflictOut = Reason{Reason::CardKind, CardIdx};
      return false;
    }
  }
  return true;
}

Solver::Reason Solver::propagate() {
  Reason Conflict;
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++];
    ++Stats.Propagations;

    // Cardinality constraints containing P just gained a true literal.
    for (uint32_t CardIdx : CardOccs[P.Code]) {
      if (!propagateCard(CardIdx, P, Conflict)) {
        QHead = Trail.size();
        return Conflict;
      }
    }

    // Clause propagation: ~P became false; visit clauses watching ~P.
    Lit FalseLit = ~P;
    std::vector<Watcher> &Ws = Watches[FalseLit.Code];
    size_t I = 0, J = 0;
    while (I < Ws.size()) {
      Watcher W = Ws[I++];
      if (value(W.Blocker) == Value::True) {
        Ws[J++] = W;
        continue;
      }
      ClauseRef Ref = W.Ref;
      Lit *C = lits(Ref);
      if (C[0] == FalseLit)
        std::swap(C[0], C[1]);
      assert(C[1] == FalseLit && "watched literal bookkeeping broken");
      if (value(C[0]) == Value::True) {
        Ws[J++] = Watcher{Ref, C[0]};
        continue;
      }
      // Look for a replacement watch.
      uint32_t Size = header(Ref).Size;
      bool Moved = false;
      for (uint32_t K = 2; K < Size; ++K) {
        if (value(C[K]) != Value::False) {
          std::swap(C[1], C[K]);
          Watches[C[1].Code].push_back(Watcher{Ref, C[0]});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Unit or conflicting.
      Ws[J++] = Watcher{Ref, C[0]};
      if (value(C[0]) == Value::False) {
        // Conflict: flush the rest of the watch list and bail out.
        while (I < Ws.size())
          Ws[J++] = Ws[I++];
        Ws.resize(J);
        QHead = Trail.size();
        return Reason{Reason::ClauseKind, Ref};
      }
      enqueue(C[0], Reason{Reason::ClauseKind, Ref});
    }
    Ws.resize(J);
  }
  return Conflict;
}

//===----------------------------------------------------------------------===//
// Conflict analysis
//===----------------------------------------------------------------------===//

void Solver::collectReasonLits(Reason Why, Lit Implied,
                               std::vector<Lit> &Out) {
  Out.clear();
  if (Why.Kind == Reason::ClauseKind) {
    const Lit *C = lits(Why.Index);
    uint32_t Size = header(Why.Index).Size;
    for (uint32_t I = 0; I < Size; ++I)
      if (C[I] != Implied)
        Out.push_back(C[I]);
    if (header(Why.Index).Learned)
      claBumpActivity(Why.Index);
    return;
  }
  assert(Why.Kind == Reason::CardKind && "reason must exist");
  // For AtMost-K: the implied literal ~l (or a conflict) is explained by K
  // (respectively K+1) literals of the constraint that were true first.
  const CardConstraint &Card = Cards[Why.Index];
  int Needed = Card.K + (Implied == LitUndef ? 1 : 0);
  int ImpliedPos = Implied == LitUndef
                       ? static_cast<int>(Trail.size())
                       : trailPos(var(Implied));
  std::vector<Lit> TrueLits;
  for (Lit L : Card.Lits) {
    if (value(L) == Value::True && trailPos(var(L)) < ImpliedPos)
      TrueLits.push_back(L);
  }
  std::sort(TrueLits.begin(), TrueLits.end(), [this](Lit A, Lit B) {
    return trailPos(var(A)) < trailPos(var(B));
  });
  assert(static_cast<int>(TrueLits.size()) >= Needed &&
         "cardinality explanation underdetermined");
  TrueLits.resize(Needed);
  for (Lit L : TrueLits)
    Out.push_back(~L);
}

bool Solver::litRedundant(Lit P, uint32_t AbstractLevels) {
  // Local (non-recursive) minimization, MiniSat's "basic" mode: P is
  // redundant iff every antecedent of its reason is already in the learned
  // clause (Seen) or fixed at the root level. Deeper recursive schemes must
  // undo marks on failure; the local check needs no extra marking and is
  // always sound.
  (void)AbstractLevels;
  Reason Why = VarInfo[var(P)].Why;
  if (Why.Kind == Reason::None)
    return false;
  std::vector<Lit> Antecedents;
  collectReasonLits(Why, ~P, Antecedents);
  for (Lit Q : Antecedents) {
    Var V = var(Q);
    if (level(V) != 0 && !Seen[V])
      return false;
  }
  return true;
}

void Solver::analyze(Reason Conflict, std::vector<Lit> &Learned,
                     int &BtLevel) {
  Learned.clear();
  Learned.push_back(LitUndef); // Slot for the asserting literal.
  int Counter = 0;
  Lit P = LitUndef;
  int Index = static_cast<int>(Trail.size()) - 1;
  std::vector<Lit> ReasonLits;

  for (;;) {
    collectReasonLits(Conflict, P, ReasonLits);
    for (Lit Q : ReasonLits) {
      Var V = var(Q);
      assert(value(Q) == Value::False && "antecedents must be falsified");
      if (Seen[V] || level(V) == 0)
        continue;
      Seen[V] = 1;
      varBumpActivity(V);
      if (level(V) >= decisionLevel())
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Walk the trail backwards to the next marked literal.
    while (!Seen[var(Trail[Index])])
      --Index;
    P = Trail[Index];
    --Index;
    Conflict = VarInfo[var(P)].Why;
    Seen[var(P)] = 0;
    if (--Counter <= 0)
      break;
  }
  Learned[0] = ~P;

  // Minimization: drop literals whose reasons are subsumed by the clause.
  // Seen marks must be cleared for *all* originally collected literals,
  // including the dropped ones, so snapshot before minimizing.
  std::vector<Lit> ToClear(Learned.begin() + 1, Learned.end());
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < Learned.size(); ++I)
    AbstractLevels |= 1u << (level(var(Learned[I])) & 31);
  size_t Out = 1;
  for (size_t I = 1; I < Learned.size(); ++I) {
    if (!litRedundant(Learned[I], AbstractLevels))
      Learned[Out++] = Learned[I];
  }
  Learned.resize(Out);

  // Compute the backtrack level (highest level below the current one) and
  // place a literal of that level at position 1 for watching.
  if (Learned.size() == 1) {
    BtLevel = 0;
  } else {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < Learned.size(); ++I)
      if (level(var(Learned[I])) > level(var(Learned[MaxIdx])))
        MaxIdx = I;
    std::swap(Learned[1], Learned[MaxIdx]);
    BtLevel = level(var(Learned[1]));
  }

  // Clear the seen markers.
  Seen[var(Learned[0])] = 0;
  for (Lit L : ToClear)
    Seen[var(L)] = 0;
}

//===----------------------------------------------------------------------===//
// Activities and branching
//===----------------------------------------------------------------------===//

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > RescaleLimit) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[V] >= 0)
    heapUpdate(V);
}

void Solver::varDecayActivity() { VarInc /= VarDecay; }

void Solver::claBumpActivity(ClauseRef Ref) {
  ClauseHeader &H = header(Ref);
  H.Activity += static_cast<float>(ClaInc);
  if (H.Activity > 1e20f) {
    for (ClauseRef L : LearnedRefs)
      header(L).Activity *= 1e-20f;
    ClaInc *= 1e-20;
  }
}

void Solver::claDecayActivity() { ClaInc /= ClaDecay; }

void Solver::heapInsert(Var V) {
  HeapPos[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapPos[V]);
}

void Solver::heapUpdate(Var V) { heapPercolateUp(HeapPos[V]); }

Var Solver::heapPop() {
  Var Top = Heap[0];
  HeapPos[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapPos[Heap[0]] = 0;
    heapPercolateDown(0);
  }
  return Top;
}

void Solver::heapPercolateUp(int Pos) {
  Var V = Heap[Pos];
  while (Pos > 0) {
    int Parent = (Pos - 1) >> 1;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[Pos] = Heap[Parent];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Parent;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

void Solver::heapPercolateDown(int Pos) {
  Var V = Heap[Pos];
  int Size = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * Pos + 1;
    if (Child >= Size)
      break;
    if (Child + 1 < Size &&
        Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[Pos] = Heap[Child];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Child;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

void Solver::setRandomSeed(uint64_t Seed) {
  RandomState = Seed | 1; // xorshift state must be nonzero.
}

void Solver::applyStrategy(const SolverStrategy &S) {
  RestartMode = S.Restart;
  RestartUnit = S.RestartUnit;
  RestartGrowth = S.RestartGrowth;
  RandomFreq = S.RandomFreq;
  DefaultPhase = S.PositivePhase ? 0 : 1;
  for (char &P : Polarity)
    P = DefaultPhase;
}

Lit Solver::pickBranchLit() {
  // Occasional random decision for diversification.
  auto NextRandom = [this]() {
    RandomState ^= RandomState << 13;
    RandomState ^= RandomState >> 7;
    RandomState ^= RandomState << 17;
    return RandomState;
  };
  Var Next = VarUndef;
  if (!Heap.empty() &&
      (NextRandom() % 1000) < static_cast<uint64_t>(RandomFreq * 1000)) {
    Var Candidate = Heap[NextRandom() % Heap.size()];
    if (value(Candidate) == Value::Undef)
      Next = Candidate;
  }
  while (Next == VarUndef || value(Next) != Value::Undef) {
    if (heapEmpty())
      return LitUndef;
    Next = heapPop();
  }
  return mkLit(Next, Polarity[Next] != 0);
}

//===----------------------------------------------------------------------===//
// Learned clause management
//===----------------------------------------------------------------------===//

void Solver::reduceDB() {
  // Sort learned clauses by activity, keep the most active half, and never
  // delete clauses that are currently reasons.
  std::sort(LearnedRefs.begin(), LearnedRefs.end(),
            [this](ClauseRef A, ClauseRef B) {
              return header(A).Activity < header(B).Activity;
            });
  auto IsLocked = [this](ClauseRef Ref) {
    const Lit *C = lits(Ref);
    Var V = var(C[0]);
    return value(C[0]) == Value::True &&
           VarInfo[V].Why.Kind == Reason::ClauseKind &&
           VarInfo[V].Why.Index == Ref;
  };
  size_t Keep = LearnedRefs.size() / 2;
  size_t Out = 0;
  for (size_t I = 0; I < LearnedRefs.size(); ++I) {
    ClauseRef Ref = LearnedRefs[I];
    if (I < Keep && header(Ref).Size > 2 && !IsLocked(Ref)) {
      // Detach from watch lists; the arena slot is abandoned.
      for (int W = 0; W < 2; ++W) {
        std::vector<Watcher> &Ws = Watches[lits(Ref)[W].Code];
        for (size_t K = 0; K < Ws.size(); ++K) {
          if (Ws[K].Ref == Ref) {
            Ws[K] = Ws.back();
            Ws.pop_back();
            break;
          }
        }
      }
      header(Ref).Mark = 1;
      ++Stats.DeletedClauses;
      continue;
    }
    LearnedRefs[Out++] = Ref;
  }
  LearnedRefs.resize(Out);
}

void Solver::simplify() {
  if (!Ok)
    return;
  if (decisionLevel() != 0)
    cancelUntil(0);
  if (propagate().Kind != Reason::None) {
    Ok = false;
    return;
  }
  // Root assignments never backtrack, so their reasons are dead (conflict
  // analysis skips level-0 literals); drop them so detaching a clause that
  // served as a root reason leaves no dangling reference.
  for (Lit L : Trail)
    VarInfo[var(L)].Why = Reason{};
  // The arena stores clauses contiguously; walk it and detach every live
  // clause a root assignment satisfies.
  size_t At = 0;
  while (At < Arena.size()) {
    ClauseRef Ref = static_cast<ClauseRef>(At);
    ClauseHeader &H = header(Ref);
    At += 3 + H.Size;
    if (H.Mark)
      continue;
    const Lit *C = lits(Ref);
    bool Satisfied = false;
    for (uint32_t I = 0; I < H.Size && !Satisfied; ++I)
      Satisfied = value(C[I]) == Value::True;
    if (!Satisfied)
      continue;
    for (int W = 0; W < 2; ++W) {
      std::vector<Watcher> &Ws = Watches[C[W].Code];
      for (size_t K = 0; K < Ws.size(); ++K) {
        if (Ws[K].Ref == Ref) {
          Ws[K] = Ws.back();
          Ws.pop_back();
          break;
        }
      }
    }
    H.Mark = 1;
    ++Stats.DeletedClauses;
  }
  LearnedRefs.erase(std::remove_if(LearnedRefs.begin(), LearnedRefs.end(),
                                   [this](ClauseRef Ref) {
                                     return header(Ref).Mark != 0;
                                   }),
                    LearnedRefs.end());
}

//===----------------------------------------------------------------------===//
// Search
//===----------------------------------------------------------------------===//

uint64_t Solver::luby(uint64_t I) {
  // Finds the Luby sequence value for step I (1-based).
  uint64_t K = 1;
  while ((1ull << (K + 1)) - 1 <= I)
    ++K;
  while (I != (1ull << K) - 1) {
    I -= (1ull << K) - 1;
    K = 1;
    while ((1ull << (K + 1)) - 1 <= I)
      ++K;
  }
  return 1ull << (K - 1);
}

SolveResult Solver::search() {
  uint64_t RestartNum = 0;
  uint64_t ConflictsAtStart = Stats.Conflicts;
  auto NextRestartLimit = [this, &RestartNum]() {
    ++RestartNum;
    if (RestartMode == RestartPolicy::Luby)
      return luby(RestartNum) * RestartUnit;
    double Limit = static_cast<double>(RestartUnit);
    for (uint64_t I = 1; I < RestartNum; ++I)
      Limit *= RestartGrowth;
    return static_cast<uint64_t>(Limit) + 1;
  };
  uint64_t ConflictsUntilRestart = NextRestartLimit();
  uint64_t ConflictsThisRestart = 0;
  std::vector<Lit> Learned;

  for (;;) {
    if (Interrupt && Interrupt->load(std::memory_order_relaxed)) {
      cancelUntil(0);
      return SolveResult::Unknown;
    }
    Reason Conflict = propagate();
    if (Conflict.Kind != Reason::None) {
      ++Stats.Conflicts;
      ++ConflictsThisRestart;
      if (decisionLevel() == 0) {
        Ok = false;
        return SolveResult::Unsat;
      }
      int BtLevel = 0;
      analyze(Conflict, Learned, BtLevel);
      cancelUntil(BtLevel);
      if (Learned.size() == 1) {
        enqueue(Learned[0], Reason{});
      } else {
        ClauseRef Ref = allocClause(Learned, /*Learned=*/true);
        LearnedRefs.push_back(Ref);
        ++Stats.LearnedClauses;
        claBumpActivity(Ref);
        attachClause(Ref);
        enqueue(Learned[0], Reason{Reason::ClauseKind, Ref});
      }
      varDecayActivity();
      claDecayActivity();
      if (Hook && !HookFired &&
          Stats.Conflicts - ConflictsAtStart >= HookThreshold) {
        HookFired = true;
        Hook();
      }
      if (ConflictBudget != 0 &&
          Stats.Conflicts - ConflictsAtStart >= ConflictBudget) {
        // Out of budget: no verdict. Returning Unsat here would let a
        // caller that forgets budgetExhausted() treat a timeout as a
        // proof and retire a still-live part of the search space.
        BudgetHit = true;
        cancelUntil(0);
        return SolveResult::Unknown;
      }
      continue;
    }

    if (ConflictsThisRestart >= ConflictsUntilRestart) {
      ++Stats.Restarts;
      ConflictsUntilRestart = NextRestartLimit();
      ConflictsThisRestart = 0;
      cancelUntil(0);
      continue;
    }

    if (MaxLearned > 0 &&
        static_cast<double>(LearnedRefs.size()) >
            MaxLearned + static_cast<double>(Trail.size())) {
      reduceDB();
      MaxLearned *= 1.05;
    }

    // Assumption handling, then a fresh decision.
    Lit Next = LitUndef;
    while (decisionLevel() < static_cast<int>(Assumptions.size())) {
      Lit A = Assumptions[decisionLevel()];
      if (value(A) == Value::True) {
        TrailLim.push_back(static_cast<int>(Trail.size()));
        continue;
      }
      if (value(A) == Value::False)
        return SolveResult::Unsat; // Assumptions conflict with the formula.
      Next = A;
      break;
    }
    if (Next == LitUndef) {
      Next = pickBranchLit();
      if (Next == LitUndef) {
        // All variables assigned: a model.
        Model.assign(Assigns.begin(), Assigns.end());
        return SolveResult::Sat;
      }
      ++Stats.Decisions;
    }
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Next, Reason{});
  }
}

SolveResult Solver::solve() { return solve({}); }

SolveResult Solver::solve(const std::vector<Lit> &Assumps) {
  uint64_t Conflicts0 = Stats.Conflicts;
  uint64_t Propagations0 = Stats.Propagations;
  uint64_t Restarts0 = Stats.Restarts;
  SolveResult Result = solveInner(Assumps);
  if (Obs) {
    uint64_t Conflicts = Stats.Conflicts - Conflicts0;
    uint64_t Propagations = Stats.Propagations - Propagations0;
    uint64_t Restarts = Stats.Restarts - Restarts0;
    Obs->instant("sat.solve", "sat",
                 obs::ArgList()
                     .add("result", Result == SolveResult::Sat ? "sat"
                          : Result == SolveResult::Unsat ? "unsat"
                                                         : "unknown")
                     .add("conflicts", Conflicts)
                     .add("propagations", Propagations)
                     .add("restarts", Restarts)
                     .add("budget_hit", BudgetHit));
    Obs->count("sat.solve_calls");
    Obs->count("sat.conflicts", Conflicts);
    Obs->count("sat.propagations", Propagations);
    Obs->count("sat.restarts", Restarts);
    Obs->observe("sat.conflicts_per_solve",
                 static_cast<double>(Conflicts));
  }
  return Result;
}

SolveResult Solver::solveInner(const std::vector<Lit> &Assumps) {
  BudgetHit = false;
  HookFired = false;
  if (!Ok)
    return SolveResult::Unsat;
  cancelUntil(0);
  Assumptions = Assumps;
  if (MaxLearned == 0)
    MaxLearned = 4000;
  if (propagate().Kind != Reason::None) {
    Ok = false;
    return SolveResult::Unsat;
  }
  SolveResult Result = search();
  cancelUntil(0);
  Assumptions.clear();
  return Result;
}

Value Solver::modelValue(Var V) const {
  // Out-of-range queries answer Undef rather than asserting: enumeration
  // clients may project over variables created after the model was found
  // (e.g. a fresh generation guard), and those have no recorded value.
  if (V < 0 || static_cast<size_t>(V) >= Model.size())
    return Value::Undef;
  return Model[V];
}

Value Solver::modelValue(Lit L) const {
  Value V = modelValue(var(L));
  return sign(L) ? !V : V;
}
