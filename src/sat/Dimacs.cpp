//===--- Dimacs.cpp - DIMACS CNF input/output ------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace syrust;
using namespace syrust::sat;

namespace {

/// Ensures the solver has variables up to DIMACS index \p V (1-based).
void ensureVars(Solver &S, int V) {
  while (S.numVars() < V)
    (void)S.newVar();
}

/// Converts a DIMACS literal (nonzero int) into a Lit, creating variables
/// on demand.
Lit fromDimacs(Solver &S, long L) {
  int V = static_cast<int>(L < 0 ? -L : L);
  ensureVars(S, V);
  return mkLit(V - 1, L < 0);
}

} // namespace

DimacsResult syrust::sat::loadDimacs(Solver &S, std::string_view Text) {
  DimacsResult R;
  int LineNo = 0;
  bool SawHeader = false;

  for (const std::string &RawLine : split(Text, '\n')) {
    ++LineNo;
    std::string_view Line = trim(RawLine);
    if (Line.empty())
      continue;

    if (startsWith(Line, "c ") || Line == "c") {
      // Cardinality extension: "c atmost k l1 ... 0".
      std::string_view Rest = trim(Line.substr(1));
      bool AtMost = startsWith(Rest, "atmost ");
      bool AtLeast = startsWith(Rest, "atleast ");
      if (!AtMost && !AtLeast)
        continue; // Ordinary comment.
      Rest = trim(Rest.substr(AtMost ? 7 : 8));
      std::vector<long> Nums;
      const char *P = Rest.data();
      const char *End = Rest.data() + Rest.size();
      while (P < End) {
        char *Next = nullptr;
        long Val = std::strtol(P, &Next, 10);
        if (Next == P)
          break;
        Nums.push_back(Val);
        P = Next;
      }
      if (Nums.size() < 2 || Nums.back() != 0) {
        R.Error = format("line %d: malformed cardinality line", LineNo);
        return R;
      }
      long K = Nums.front();
      std::vector<Lit> Lits;
      for (size_t I = 1; I + 1 < Nums.size(); ++I)
        Lits.push_back(fromDimacs(S, Nums[I]));
      bool Added = AtMost ? S.addAtMost(Lits, static_cast<int>(K))
                          : S.addAtLeast(Lits, static_cast<int>(K));
      R.Consistent = R.Consistent && Added;
      ++R.NumCardinality;
      continue;
    }

    if (startsWith(Line, "v ") || Line == "v") {
      // Solution line ("v 1 -2 0") as modelToDimacs emits; each literal
      // becomes a unit clause so a saved model can be reloaded and
      // re-checked. Ids may be sparse (pruned-encoder exports skip
      // never-assigned variables); missing ids are simply left free.
      std::string_view Rest = trim(Line.substr(1));
      const char *P = Rest.data();
      const char *End = Rest.data() + Rest.size();
      bool Terminated = false;
      while (P < End) {
        char *Next = nullptr;
        long Val = std::strtol(P, &Next, 10);
        if (Next == P) {
          R.Error = format("line %d: expected literal", LineNo);
          return R;
        }
        P = Next;
        if (Val == 0) {
          Terminated = true;
          break;
        }
        R.Consistent =
            S.addClause(fromDimacs(S, Val)) && R.Consistent;
        ++R.NumModelLits;
      }
      if (!Terminated) {
        R.Error =
            format("line %d: solution line not terminated by 0", LineNo);
        return R;
      }
      continue;
    }

    if (startsWith(Line, "p ")) {
      if (SawHeader) {
        R.Error = format("line %d: duplicate problem header", LineNo);
        return R;
      }
      SawHeader = true;
      int V = 0, C = 0;
      if (std::sscanf(std::string(Line).c_str(), "p cnf %d %d", &V, &C) !=
          2) {
        R.Error = format("line %d: expected 'p cnf V C'", LineNo);
        return R;
      }
      ensureVars(S, V);
      continue;
    }

    // A clause: integers terminated by 0 (may span the line only).
    std::vector<Lit> Clause;
    const char *P = Line.data();
    const char *End = Line.data() + Line.size();
    bool Terminated = false;
    while (P < End) {
      char *Next = nullptr;
      long Val = std::strtol(P, &Next, 10);
      if (Next == P) {
        R.Error = format("line %d: expected literal", LineNo);
        return R;
      }
      P = Next;
      if (Val == 0) {
        Terminated = true;
        break;
      }
      Clause.push_back(fromDimacs(S, Val));
    }
    if (!Terminated) {
      R.Error = format("line %d: clause not terminated by 0", LineNo);
      return R;
    }
    R.Consistent = S.addClause(Clause) && R.Consistent;
    ++R.NumClauses;
  }

  R.Ok = true;
  R.NumVars = S.numVars();
  return R;
}

std::string syrust::sat::modelToDimacs(const Solver &S) {
  std::string Out = "v";
  for (int V = 0; V < S.numVars(); ++V) {
    Value Val = S.modelValue(V);
    if (Val == Value::Undef)
      continue;
    Out += format(" %s%d", Val == Value::True ? "" : "-", V + 1);
  }
  Out += " 0";
  return Out;
}
