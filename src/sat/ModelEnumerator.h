//===--- ModelEnumerator.h - Projected model enumeration -------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper repeatedly solves the synthesis formula, emits a
/// program for each model, and blocks the model ("phi := phi AND NOT sigma").
/// Blocking the *full* assignment would enumerate assignments that differ
/// only in don't-care variables and emit duplicate programs, so this helper
/// blocks models projected onto a caller-chosen set of variables (the A- and
/// U-variables that determine the program text).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SAT_MODELENUMERATOR_H
#define SYRUST_SAT_MODELENUMERATOR_H

#include "sat/Solver.h"

#include <algorithm>
#include <vector>

namespace syrust::sat {

/// Streams the models of a solver, blocking each one over a projection set.
class ModelEnumerator {
public:
  /// \p Projection lists the variables whose values define "the same
  /// model". VarUndef entries are dropped up front: an encoder that
  /// prunes dead call sites keeps VarUndef placeholders in its variable
  /// tables, and passing such a table through unfiltered would make
  /// blockCurrent() probe modelValue(VarUndef) on every block.
  ModelEnumerator(Solver &S, std::vector<Var> Projection)
      : S(S), Projection(std::move(Projection)) {
    this->Projection.erase(std::remove(this->Projection.begin(),
                                       this->Projection.end(), VarUndef),
                           this->Projection.end());
  }

  /// Finds the next model not yet enumerated. Returns false when the
  /// formula is exhausted (or the solver hit its budget; check
  /// Solver::budgetExhausted()).
  bool next() {
    if (!First && !blockCurrent())
      return false;
    First = false;
    if (S.solve() != SolveResult::Sat)
      return false;
    ++Count;
    return true;
  }

  /// Number of models delivered so far.
  uint64_t count() const { return Count; }

private:
  bool blockCurrent() {
    std::vector<Lit> Blocking;
    Blocking.reserve(Projection.size());
    for (Var V : Projection) {
      Value Val = S.modelValue(V);
      if (Val == Value::Undef)
        continue;
      Blocking.push_back(mkLit(V, Val == Value::True));
    }
    // Every projection variable Undef means the projection admits exactly
    // one (empty) image: enumeration is exhausted. Adding the empty
    // clause instead would flip okay() false and permanently poison the
    // solver for all later (non-enumeration) queries.
    if (Blocking.empty())
      return false;
    return S.addClause(std::move(Blocking));
  }

  Solver &S;
  std::vector<Var> Projection;
  bool First = true;
  uint64_t Count = 0;
};

} // namespace syrust::sat

#endif // SYRUST_SAT_MODELENUMERATOR_H
