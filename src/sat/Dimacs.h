//===--- Dimacs.h - DIMACS CNF input/output --------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DIMACS CNF parsing and solution printing, so the Sat4J-substitute
/// solver is usable standalone (debugging synthesis formulas, comparing
/// against reference solvers). Supports the standard `p cnf V C` header,
/// comment lines, an extension line `c atmost k l1 l2 ... 0` /
/// `c atleast k l1 l2 ... 0` for the native cardinality constraints, and
/// solution lines `v l1 l2 ... 0` (as modelToDimacs emits), whose
/// literals are asserted as unit clauses. Solution lines may use sparse
/// variable ids: an encoder that prunes dead call sites never assigns
/// their variables, so its exported model simply skips those ids and the
/// round-trip loadDimacs(modelToDimacs(S)) still reproduces the model on
/// every mentioned variable.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SAT_DIMACS_H
#define SYRUST_SAT_DIMACS_H

#include "sat/Solver.h"

#include <string>
#include <string_view>

namespace syrust::sat {

/// Result of loading a DIMACS problem.
struct DimacsResult {
  bool Ok = false;
  std::string Error;
  int NumVars = 0;
  int NumClauses = 0;
  int NumCardinality = 0;
  /// Literals asserted from solution ("v") lines.
  int NumModelLits = 0;
  /// False when the formula was proven inconsistent while loading.
  bool Consistent = true;
};

/// Parses DIMACS CNF text into \p S. Variables are created on demand (the
/// header's variable count is a lower bound). Returns counts or an error
/// description with a line number.
DimacsResult loadDimacs(Solver &S, std::string_view Text);

/// Renders the current model as a DIMACS "v" line ("v 1 -2 3 ... 0").
/// Only valid after a Sat solve.
std::string modelToDimacs(const Solver &S);

} // namespace syrust::sat

#endif // SYRUST_SAT_DIMACS_H
