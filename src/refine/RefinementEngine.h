//===--- RefinementEngine.h - Hybrid polymorphic API refinement -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5's hybrid type-variable instantiation:
///
///   * No-input polymorphism (5.1): constructors like Vec::new cannot be
///     resolved lazily, so their outputs are EAGERLY concretized over the
///     concrete types mined from the API set and template - deliberately
///     ignoring trait bounds; trait-failing concretizations are removed
///     when the compiler complains.
///   * Polymorphic inputs, concrete output (5.2): handled by subtyping in
///     the encoder; trait mismatches reported by the compiler block that
///     input combination on the offending API.
///   * Polymorphic inputs, polymorphic output (5.3): on each successful
///     (or directly-fixable) use, the API is duplicated with fully
///     concrete inputs and the checker-confirmed output, and the original
///     is blocked on that combination so the pair stays disjoint.
///
/// Modes: Hybrid (the paper's contribution), PurelyEager (SyPet-style, the
/// RQ3 ablation: instantiate everything up front over mined types, no
/// feedback), PurelyLazy (H+-style; fails on constructors, included for
/// completeness and demonstrations).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_REFINE_REFINEMENTENGINE_H
#define SYRUST_REFINE_REFINEMENTENGINE_H

#include "api/ApiDatabase.h"
#include "program/Program.h"
#include "rustsim/Diagnostic.h"
#include "types/Subtyping.h"
#include "types/TraitEnv.h"

#include <map>
#include <vector>

namespace syrust::obs {
class Recorder;
} // namespace syrust::obs

namespace syrust::refine {

/// Instantiation strategy.
enum class RefinementMode {
  Hybrid,      ///< The paper's approach (Section 5).
  PurelyEager, ///< SyPet-style full up-front instantiation (RQ3).
  PurelyLazy,  ///< H+-style; cannot synthesize constructors.
};

/// Counters exposed to the benches and EXPERIMENTS.md.
struct RefinementStats {
  uint64_t EagerConcretizations = 0;
  uint64_t TraitRemovals = 0;   ///< Concrete APIs removed on trait errors.
  uint64_t ComboBlocks = 0;     ///< Section 5.2/5.3 combination blocks.
  uint64_t OutputDuplications = 0; ///< Section 5.3 duplicate-and-block.
  uint64_t DirectFixes = 0;     ///< "expected X, got Y" direct fixes.
  uint64_t Bans = 0;            ///< Unfixable APIs disabled.
};

/// Mines concrete types (including concrete subterms) from the template
/// and API signatures; instantiation candidates for eager concretization.
std::vector<const types::Type *>
harvestConcreteTypes(const api::ApiDatabase &Db,
                     const std::vector<program::TemplateInput> &Inputs);

/// Drives API-database evolution from compiler feedback.
class RefinementEngine {
public:
  RefinementEngine(types::TypeArena &Arena, api::ApiDatabase &Db,
                   RefinementMode Mode = RefinementMode::Hybrid)
      : Arena(Arena), Db(Db), Mode(Mode) {}

  /// One-time setup before synthesis: eager concretization per the mode.
  void initialize(const std::vector<program::TemplateInput> &Inputs);

  /// Reacts to a rejection; returns true when the database changed (the
  /// synthesizer must rebuild its encoding).
  bool onDiagnostic(const rustsim::Diagnostic &Diag);

  /// Reacts to a successfully compiled program: Section 5.3 duplication
  /// of polymorphic-output APIs at their now-confirmed concrete types.
  /// Returns true when the database changed.
  bool onSuccess(const program::Program &P);

  const RefinementStats &stats() const { return Stats; }

  /// Maximum instantiations generated per API during eager passes.
  void setEagerCap(size_t Cap) { EagerCap = Cap; }

  /// Attaches the flight recorder; every database-mutating refinement
  /// action then emits a `refine.action` trace event carrying the
  /// triggering diagnostic and bumps a `refine.<action>` counter.
  void setRecorder(obs::Recorder *R) { Obs = R; }

private:
  /// Records one refinement action (null recorder: no-op).
  void note(const char *Action, const rustsim::Diagnostic *Diag);
  void eagerlyConcretize(api::ApiId Id, bool AllVars);
  bool duplicateWithConcreteTypes(api::ApiId Orig,
                                  std::vector<const types::Type *> Inputs,
                                  const types::Type *Output);

  types::TypeArena &Arena;
  api::ApiDatabase &Db;
  RefinementMode Mode;
  RefinementStats Stats;
  std::vector<const types::Type *> Harvested;
  std::map<api::ApiId, int> ArityStrikes;
  size_t EagerCap = 64;
  obs::Recorder *Obs = nullptr;
};

} // namespace syrust::refine

#endif // SYRUST_REFINE_REFINEMENTENGINE_H
