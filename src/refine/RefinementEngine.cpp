//===--- RefinementEngine.cpp - Hybrid polymorphic API refinement ---------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "refine/RefinementEngine.h"

#include "obs/Recorder.h"

#include <algorithm>
#include <set>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::refine;
using namespace syrust::rustsim;
using namespace syrust::types;

namespace {

/// Collects every concrete, non-reference, non-unit subterm of \p T in
/// first-occurrence order (pointer-order iteration would make eager
/// instantiation nondeterministic across processes).
void collectConcreteSubterms(const Type *T, std::set<const Type *> &Seen,
                             std::vector<const Type *> &Out) {
  if (T->isConcrete() && !T->isRef() && !T->isUnit() &&
      Seen.insert(T).second)
    Out.push_back(T);
  for (const Type *Arg : T->args())
    collectConcreteSubterms(Arg, Seen, Out);
}

/// True when an API has no inputs but a polymorphic output ("no input
/// polymorphism", Section 5.1). Constructors with concrete-only inputs and
/// a polymorphic output (e.g. with_capacity(usize) -> Vec<T>) are in the
/// same boat: nothing constrains the variable.
bool hasUnresolvableOutput(const ApiSig &Sig) {
  if (Sig.Output->isConcrete())
    return false;
  std::vector<std::string> OutVars;
  Sig.Output->collectVars(OutVars);
  std::vector<std::string> InVars;
  for (const Type *In : Sig.Inputs)
    In->collectVars(InVars);
  for (const std::string &V : OutVars)
    if (std::find(InVars.begin(), InVars.end(), V) == InVars.end())
      return true;
  return false;
}

} // namespace

std::vector<const Type *> syrust::refine::harvestConcreteTypes(
    const ApiDatabase &Db, const std::vector<TemplateInput> &Inputs) {
  std::set<const Type *> Seen;
  std::vector<const Type *> Found;
  for (const TemplateInput &In : Inputs)
    collectConcreteSubterms(In.Ty, Seen, Found);
  for (size_t I = 0; I < Db.size(); ++I) {
    const ApiSig &Sig = Db.get(static_cast<ApiId>(I));
    if (Sig.Builtin != BuiltinKind::None)
      continue;
    for (const Type *In : Sig.Inputs)
      collectConcreteSubterms(In, Seen, Found);
    collectConcreteSubterms(Sig.Output, Seen, Found);
  }
  return Found;
}

void RefinementEngine::initialize(
    const std::vector<TemplateInput> &Inputs) {
  Harvested = harvestConcreteTypes(Db, Inputs);
  if (Mode == RefinementMode::PurelyLazy)
    return; // No eager pass; constructors will simply never resolve.

  size_t InitialSize = Db.size();
  for (size_t I = 0; I < InitialSize; ++I) {
    ApiId Id = static_cast<ApiId>(I);
    const ApiSig &Sig = Db.get(Id);
    if (Sig.Builtin != BuiltinKind::None || !Sig.isPolymorphic())
      continue;
    if (Mode == RefinementMode::PurelyEager) {
      // SyPet-style: instantiate every type variable of every polymorphic
      // API up front; disable the polymorphic original.
      eagerlyConcretize(Id, /*AllVars=*/true);
      Db.ban(Id);
      ++Stats.Bans;
    } else if (hasUnresolvableOutput(Sig)) {
      // Hybrid: eager only where laziness cannot work (Section 5.1).
      eagerlyConcretize(Id, /*AllVars=*/true);
      Db.ban(Id);
      ++Stats.Bans;
    }
  }
}

void RefinementEngine::note(const char *Action,
                            const Diagnostic *Diag) {
  if (!Obs)
    return;
  obs::ArgList Args;
  Args.add("action", Action);
  if (Diag) {
    Args.add("detail", detailName(Diag->Detail));
    Args.add("api", static_cast<int64_t>(Diag->Api));
    Args.add("line", Diag->Line);
  }
  Obs->instant("refine.action", "refine", std::move(Args));
  Obs->count(std::string("refine.") + Action);
}

void RefinementEngine::eagerlyConcretize(ApiId Id, bool AllVars) {
  (void)AllVars;
  const ApiSig Orig = Db.get(Id); // Copy: Db mutates below.
  std::vector<std::string> Vars = Orig.typeVarNames();
  if (Vars.empty() || Harvested.empty())
    return;

  // Cartesian enumeration of harvested types over the variables, capped.
  size_t Total = 1;
  for (size_t V = 0; V < Vars.size(); ++V)
    Total *= Harvested.size();
  for (size_t N = 0; N < Total && N < EagerCap; ++N) {
    Substitution Subst;
    size_t Rem = N;
    for (const std::string &V : Vars) {
      Subst.bind(Arena.typeVar(V), Harvested[Rem % Harvested.size()]);
      Rem /= Harvested.size();
    }
    ApiSig Inst = Orig;
    Inst.RefinedFrom = Id;
    // Eager concretization IGNORES trait annotations (Section 5.1), but
    // rustc still checks them: carry the obligations in resolved form so
    // the checker can reject bad instantiations.
    Inst.Bounds.clear();
    for (const auto &[VarName, Trait] : Orig.Bounds)
      if (const Type *Bound = Subst.lookup(VarName))
        Inst.ResolvedBounds.emplace_back(Bound, Trait);
    for (const Type *&In : Inst.Inputs)
      In = applySubst(Arena, In, Subst);
    Inst.Output = applySubst(Arena, Inst.Output, Subst);
    if (!Inst.Output->isConcrete())
      continue;
    bool InputsConcrete = true;
    for (const Type *In : Inst.Inputs)
      InputsConcrete = InputsConcrete && In->isConcrete();
    if (!InputsConcrete)
      continue;
    if (Db.findDuplicate(Inst) != ApiIdInvalid)
      continue;
    Db.add(std::move(Inst));
    ++Stats.EagerConcretizations;
  }
}

bool RefinementEngine::duplicateWithConcreteTypes(
    ApiId Orig, std::vector<const Type *> Inputs, const Type *Output) {
  const ApiSig &OrigSig = Db.get(Orig);
  ApiSig Dup = OrigSig;
  Dup.Inputs = Inputs;
  Dup.Output = Output;
  Dup.RefinedFrom = Orig;
  // Resolve the trait obligations at the duplicated instantiation.
  Substitution Subst;
  if (matchCall(Inputs, OrigSig.Inputs, Subst)) {
    Dup.Bounds.clear();
    for (const auto &[VarName, Trait] : OrigSig.Bounds)
      if (const Type *Bound = Subst.lookup(VarName))
        Dup.ResolvedBounds.emplace_back(Bound, Trait);
  }
  if (Db.findDuplicate(Dup) != ApiIdInvalid)
    return false;
  Db.add(std::move(Dup));
  // Keep the duplicate disjoint from the original (Section 5.3).
  Db.blockCombo(Orig, std::move(Inputs));
  ++Stats.ComboBlocks;
  ++Stats.OutputDuplications;
  return true;
}

bool RefinementEngine::onDiagnostic(const Diagnostic &Diag) {
  if (Mode == RefinementMode::PurelyEager)
    return false; // No feedback loop in the SyPet-style ablation.
  if (Diag.Api == ApiIdInvalid)
    return false;
  const ApiSig &Sig = Db.get(Diag.Api);

  switch (Diag.Detail) {
  case ErrorDetail::TraitBound: {
    if (Sig.RefinedFrom != ApiIdInvalid || !Sig.isPolymorphic()) {
      // A fully concrete (eagerly produced) API hit a trait error: remove
      // it outright (Section 5.1).
      Db.ban(Diag.Api);
      ++Stats.TraitRemovals;
      note("trait_removal", &Diag);
      return true;
    }
    // Polymorphic original (Section 5.2): never match this combination
    // again.
    if (!Diag.ActualInputs.empty()) {
      Db.blockCombo(Diag.Api, Diag.ActualInputs);
      ++Stats.ComboBlocks;
      note("combo_block", &Diag);
      return true;
    }
    return false;
  }
  case ErrorDetail::Polymorphism: {
    if (Diag.ExpectedOutput && !Diag.ActualInputs.empty()) {
      // "expected X, got Y": fix directly by duplicating with the
      // checker-confirmed output (Section 5.3).
      if (duplicateWithConcreteTypes(Diag.Api, Diag.ActualInputs,
                                     Diag.ExpectedOutput)) {
        ++Stats.DirectFixes;
        note("direct_fix", &Diag);
        return true;
      }
      return false;
    }
    if (hasUnresolvableOutput(Sig)) {
      if (Mode == RefinementMode::PurelyLazy)
        return false; // H+-style laziness has no eager move to make:
                      // constructors stay unresolved (Section 5.1's
                      // "purely lazy approaches cannot synthesize types
                      // for no input polymorphism").
      // A constructor added after initialize() (e.g. by refinement):
      // concretize it now.
      eagerlyConcretize(Diag.Api, /*AllVars=*/true);
      Db.ban(Diag.Api);
      ++Stats.Bans;
      note("eager_concretize", &Diag);
      return true;
    }
    if (!Diag.ActualInputs.empty()) {
      Db.blockCombo(Diag.Api, Diag.ActualInputs);
      ++Stats.ComboBlocks;
      note("combo_block", &Diag);
      return true;
    }
    return false;
  }
  case ErrorDetail::TypeMismatch: {
    if (!Diag.ActualInputs.empty()) {
      Db.blockCombo(Diag.Api, Diag.ActualInputs);
      ++Stats.ComboBlocks;
      note("combo_block", &Diag);
      return true;
    }
    return false;
  }
  case ErrorDetail::Arity: {
    // A skewed collected signature is unfixable; after a few strikes the
    // API is deemed unfixable and disabled (Section 3).
    if (++ArityStrikes[Diag.Api] >= 3) {
      Db.ban(Diag.Api);
      ++Stats.Bans;
      note("ban", &Diag);
      return true;
    }
    return false;
  }
  case ErrorDetail::MethodNotFound: {
    // Resolution failures are also unfixable, but the engine is slower to
    // give up on them because re-collection sometimes repairs them (the
    // paper's generic-array/hashbrown Misc floods stay bounded).
    if (++ArityStrikes[Diag.Api] >= 10) {
      Db.ban(Diag.Api);
      ++Stats.Bans;
      note("ban", &Diag);
      return true;
    }
    return false;
  }
  case ErrorDetail::DefaultTypeParam:
  case ErrorDetail::AnonLifetime:
    // The paper's unsupported corner cases: no refinement exists (Section
    // 7.1 leaves them to future work), so the errors keep recurring.
    return false;
  case ErrorDetail::Ownership:
  case ErrorDetail::Borrowing:
  case ErrorDetail::None:
    return false;
  }
  return false;
}

bool RefinementEngine::onSuccess(const Program &P) {
  if (Mode != RefinementMode::Hybrid)
    return false;
  bool Changed = false;

  // Reconstruct the concrete types of every variable from declarations.
  std::vector<const Type *> VarTy(static_cast<size_t>(P.numVars()));
  for (size_t I = 0; I < P.Inputs.size(); ++I)
    VarTy[I] = P.Inputs[I].Ty;
  for (const Stmt &S : P.Stmts)
    VarTy[static_cast<size_t>(S.Out)] = S.DeclType;

  for (const Stmt &S : P.Stmts) {
    const ApiSig &Sig = Db.get(S.Api);
    if (Sig.Builtin != BuiltinKind::None)
      continue;
    if (Sig.RefinedFrom != ApiIdInvalid)
      continue; // Already a refinement product.
    if (Sig.Output->isConcrete() || !Sig.isPolymorphic())
      continue; // Only category 5.3 needs duplication.
    std::vector<const Type *> Actuals;
    bool AllConcrete = true;
    for (VarId A : S.Args) {
      const Type *Ty = VarTy[static_cast<size_t>(A)];
      Actuals.push_back(Ty);
      AllConcrete = AllConcrete && Ty && Ty->isConcrete();
    }
    if (!AllConcrete || !S.DeclType || !S.DeclType->isConcrete())
      continue;
    if (duplicateWithConcreteTypes(S.Api, Actuals, S.DeclType)) {
      Changed = true;
      note("output_duplication", nullptr);
    }
  }
  return Changed;
}
