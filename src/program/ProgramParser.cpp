//===--- ProgramParser.cpp - Parse rendered test-case source --------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "program/ProgramParser.h"

#include "support/StringUtils.h"

#include <map>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::types;

namespace {

/// Splits "f(a, b, c)" into the name and argument names. Returns false on
/// malformed syntax.
bool splitCall(std::string_view Call, std::string &Name,
               std::vector<std::string> &Args, std::string &Error) {
  size_t Open = Call.find('(');
  size_t Close = Call.rfind(')');
  if (Open == std::string_view::npos || Close == std::string_view::npos ||
      Close < Open) {
    Error = "expected a call 'api(args)'";
    return false;
  }
  Name = std::string(trim(Call.substr(0, Open)));
  std::string_view Inner = trim(Call.substr(Open + 1, Close - Open - 1));
  if (!Inner.empty()) {
    for (const std::string &Arg : split(Inner, ','))
      Args.emplace_back(trim(Arg));
  }
  if (Name.empty()) {
    Error = "missing API name";
    return false;
  }
  return true;
}

} // namespace

ProgramParseResult syrust::program::parseProgram(
    const ApiDatabase &Db, TypeArena &Arena,
    std::vector<TemplateInput> Inputs, const std::string &Source,
    std::set<std::string> TypeVars) {
  ProgramParseResult R;
  R.Prog.Inputs = Inputs;
  TypeParser TyParser(Arena, std::move(TypeVars));

  // Variable scope: name -> (id, current type).
  std::map<std::string, VarId> Scope;
  std::vector<const Type *> VarTy;
  for (const TemplateInput &In : Inputs) {
    Scope[In.Name] = static_cast<VarId>(VarTy.size());
    VarTy.push_back(In.Ty);
  }

  auto Fail = [&](int LineNo, const std::string &Msg) {
    R.Error = format("line %d: %s", LineNo, Msg.c_str());
    return R;
  };
  auto LookupVar = [&](const std::string &Name) -> VarId {
    auto It = Scope.find(Name);
    return It == Scope.end() ? -1 : It->second;
  };
  auto FindApi = [&](const std::string &Name, size_t Arity) -> ApiId {
    ApiId Fallback = ApiIdInvalid;
    for (size_t I = 0; I < Db.size(); ++I) {
      const ApiSig &Sig = Db.get(static_cast<ApiId>(I));
      if (Sig.Name != Name || Sig.Inputs.size() != Arity)
        continue;
      if (!Db.isBanned(static_cast<ApiId>(I)))
        return static_cast<ApiId>(I);
      if (Fallback == ApiIdInvalid)
        Fallback = static_cast<ApiId>(I);
    }
    return Fallback;
  };
  auto FindBuiltin = [&](BuiltinKind Kind) -> ApiId {
    for (size_t I = 0; I < Db.size(); ++I)
      if (Db.get(static_cast<ApiId>(I)).Builtin == Kind)
        return static_cast<ApiId>(I);
    return ApiIdInvalid;
  };
  auto Declare = [&](const std::string &Name, const Type *Ty) -> VarId {
    VarId Id = static_cast<VarId>(VarTy.size());
    Scope[Name] = Id;
    VarTy.push_back(Ty);
    return Id;
  };

  int LineNo = 0;
  for (const std::string &RawLine : split(Source, '\n')) {
    ++LineNo;
    std::string_view Line = trim(RawLine);
    if (Line.empty() || startsWith(Line, "//"))
      continue;
    if (Line.back() != ';')
      return Fail(LineNo, "statement must end with ';'");
    Line = trim(Line.substr(0, Line.size() - 1));

    Stmt S;

    if (startsWith(Line, "let mut ")) {
      // let mut NAME = SRC
      std::string_view Rest = trim(Line.substr(8));
      size_t Eq = Rest.find('=');
      if (Eq == std::string_view::npos)
        return Fail(LineNo, "expected '=' in let-mut binding");
      std::string Name = std::string(trim(Rest.substr(0, Eq)));
      std::string Src = std::string(trim(Rest.substr(Eq + 1)));
      VarId SrcId = LookupVar(Src);
      if (SrcId < 0)
        return Fail(LineNo, "unknown variable '" + Src + "'");
      S.Api = FindBuiltin(BuiltinKind::LetMut);
      if (S.Api == ApiIdInvalid)
        return Fail(LineNo, "no let-mut builtin in the API database");
      S.Args = {SrcId};
      S.DeclType = VarTy[static_cast<size_t>(SrcId)];
      S.Out = Declare(Name, S.DeclType);
      R.Prog.Stmts.push_back(std::move(S));
      continue;
    }

    if (startsWith(Line, "let ")) {
      std::string_view Rest = trim(Line.substr(4));
      size_t Eq = Rest.find('=');
      if (Eq == std::string_view::npos)
        return Fail(LineNo, "expected '=' in let binding");
      std::string_view Lhs = trim(Rest.substr(0, Eq));
      std::string_view Rhs = trim(Rest.substr(Eq + 1));

      // Optional type ascription on the left.
      std::string Name;
      const Type *Ascribed = nullptr;
      size_t Colon = Lhs.find(':');
      if (Colon != std::string_view::npos) {
        Name = std::string(trim(Lhs.substr(0, Colon)));
        Ascribed = TyParser.parse(trim(Lhs.substr(Colon + 1)));
        if (!Ascribed)
          return Fail(LineNo, "bad type: " + TyParser.error());
      } else {
        Name = std::string(trim(Lhs));
      }

      if (startsWith(Rhs, "&")) {
        // Borrow builtins: &NAME or &mut NAME.
        bool Mut = startsWith(Rhs, "&mut ");
        std::string Src =
            std::string(trim(Rhs.substr(Mut ? 5 : 1)));
        VarId SrcId = LookupVar(Src);
        if (SrcId < 0)
          return Fail(LineNo, "unknown variable '" + Src + "'");
        S.Api = FindBuiltin(Mut ? BuiltinKind::BorrowMut
                                : BuiltinKind::Borrow);
        if (S.Api == ApiIdInvalid)
          return Fail(LineNo, "no borrow builtin in the API database");
        S.Args = {SrcId};
        S.DeclType =
            Arena.ref(VarTy[static_cast<size_t>(SrcId)], Mut);
        if (Ascribed && Ascribed != S.DeclType)
          return Fail(LineNo, "ascribed type does not match the borrow");
        S.Out = Declare(Name, S.DeclType);
        R.Prog.Stmts.push_back(std::move(S));
        continue;
      }

      // API call with a bound result.
      std::string ApiName;
      std::vector<std::string> ArgNames;
      std::string CallError;
      if (!splitCall(Rhs, ApiName, ArgNames, CallError))
        return Fail(LineNo, CallError);
      ApiId Api = FindApi(ApiName, ArgNames.size());
      if (Api == ApiIdInvalid)
        return Fail(LineNo, format("no API '%s' with %zu inputs",
                                   ApiName.c_str(), ArgNames.size()));
      S.Api = Api;
      for (const std::string &Arg : ArgNames) {
        VarId Id = LookupVar(Arg);
        if (Id < 0)
          return Fail(LineNo, "unknown variable '" + Arg + "'");
        S.Args.push_back(Id);
      }
      S.DeclType = Ascribed ? Ascribed : Db.get(Api).Output;
      S.Out = Declare(Name, S.DeclType);
      R.Prog.Stmts.push_back(std::move(S));
      continue;
    }

    // Bare call statement: API(args);
    std::string ApiName;
    std::vector<std::string> ArgNames;
    std::string CallError;
    if (!splitCall(Line, ApiName, ArgNames, CallError))
      return Fail(LineNo, CallError);
    ApiId Api = FindApi(ApiName, ArgNames.size());
    if (Api == ApiIdInvalid)
      return Fail(LineNo, format("no API '%s' with %zu inputs",
                                 ApiName.c_str(), ArgNames.size()));
    S.Api = Api;
    for (const std::string &Arg : ArgNames) {
      VarId Id = LookupVar(Arg);
      if (Id < 0)
        return Fail(LineNo, "unknown variable '" + Arg + "'");
      S.Args.push_back(Id);
    }
    S.DeclType = Arena.unit();
    // Unit results still occupy an output slot, named by convention.
    S.Out = Declare(format("v%zu", R.Prog.Stmts.size() + 1),
                    S.DeclType);
    R.Prog.Stmts.push_back(std::move(S));
  }

  R.Ok = true;
  return R;
}
