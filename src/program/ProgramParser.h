//===--- ProgramParser.h - Parse rendered test-case source -----*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the Rust-like source produced by Program::render back into a
/// Program, given the API database and the template. Useful for writing
/// test cases and examples as text, for replaying bug programs from logs,
/// and as the round-trip property check on the renderer.
///
/// Grammar (one statement per line):
///   let mut NAME = NAME;
///   let NAME = &NAME;          | let NAME = &mut NAME;
///   let NAME : TYPE = API(ARGS);
///   API(ARGS);
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_PROGRAM_PROGRAMPARSER_H
#define SYRUST_PROGRAM_PROGRAMPARSER_H

#include "api/ApiDatabase.h"
#include "program/Program.h"
#include "types/TypeParser.h"

#include <set>
#include <string>

namespace syrust::program {

/// Result of parsing a program body.
struct ProgramParseResult {
  bool Ok = false;
  Program Prog;
  std::string Error; ///< With a 1-based source line number.
};

/// Parses \p Source against \p Db's API names and \p Inputs' variable
/// names. Synthesized variables must follow the renderer's convention
/// ("v1", "v2", ... in declaration order). Declared types are parsed in
/// \p TypeVars scope.
ProgramParseResult parseProgram(const api::ApiDatabase &Db,
                                types::TypeArena &Arena,
                                std::vector<TemplateInput> Inputs,
                                const std::string &Source,
                                std::set<std::string> TypeVars = {});

} // namespace syrust::program

#endif // SYRUST_PROGRAM_PROGRAMPARSER_H
