//===--- Program.cpp - Straight-line synthesized test programs ------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "program/Program.h"

#include "support/StringUtils.h"

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;

std::string Program::varName(VarId V) const {
  if (V < static_cast<VarId>(Inputs.size()))
    return Inputs[static_cast<size_t>(V)].Name;
  return format("v%d", V - static_cast<VarId>(Inputs.size()) + 1);
}

std::string Program::render(const ApiDatabase &Db) const {
  std::string Out;
  for (const Stmt &S : Stmts) {
    const ApiSig &Sig = Db.get(S.Api);
    std::string Rhs;
    switch (Sig.Builtin) {
    case BuiltinKind::LetMut:
      Rhs = varName(S.Args[0]);
      Out += format("let mut %s = %s;\n", varName(S.Out).c_str(),
                    Rhs.c_str());
      continue;
    case BuiltinKind::Borrow:
      Out += format("let %s = &%s;\n", varName(S.Out).c_str(),
                    varName(S.Args[0]).c_str());
      continue;
    case BuiltinKind::BorrowMut:
      Out += format("let %s = &mut %s;\n", varName(S.Out).c_str(),
                    varName(S.Args[0]).c_str());
      continue;
    case BuiltinKind::None:
      break;
    }
    std::vector<std::string> Args;
    Args.reserve(S.Args.size());
    for (VarId A : S.Args)
      Args.push_back(varName(A));
    Rhs = format("%s(%s)", Sig.Name.c_str(), join(Args, ", ").c_str());
    if (S.DeclType && S.DeclType->isUnit()) {
      Out += Rhs + ";\n";
    } else {
      Out += format("let %s : %s = %s;\n", varName(S.Out).c_str(),
                    S.DeclType ? S.DeclType->str().c_str() : "_",
                    Rhs.c_str());
    }
  }
  return Out;
}

uint64_t Program::hash() const {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  for (const Stmt &S : Stmts) {
    Mix(static_cast<uint64_t>(S.Api));
    for (VarId A : S.Args)
      Mix(static_cast<uint64_t>(A) + 0x1000);
  }
  Mix(Stmts.size());
  return H;
}

bool syrust::program::removeStatement(const Program &P, size_t Drop,
                                      Program &Out) {
  VarId Removed = P.Stmts[Drop].Out;
  Out.Inputs = P.Inputs;
  Out.Stmts.clear();
  for (size_t I = 0; I < P.Stmts.size(); ++I) {
    if (I == Drop)
      continue;
    Stmt S = P.Stmts[I];
    for (VarId &A : S.Args) {
      if (A == Removed)
        return false;
      if (A > Removed)
        --A;
    }
    if (S.Out > Removed)
      --S.Out;
    Out.Stmts.push_back(std::move(S));
  }
  return true;
}
