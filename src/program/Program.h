//===--- Program.h - Straight-line synthesized test programs ---*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program fragment SyRust synthesizes (Section 4.2):
///
///   Program := Line | Line; Program
///   Line    := f(Vars) | let v : t = f(Vars)
///   Vars    := v1, ..., vk
///
/// Variables are numbered densely: template inputs first, then one output
/// variable per line. Rendering produces the Rust source the paper's test
/// executor would compile.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_PROGRAM_PROGRAM_H
#define SYRUST_PROGRAM_PROGRAM_H

#include "api/ApiDatabase.h"
#include "types/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace syrust::program {

/// Dense variable index: [0, numTemplateInputs) are template-provided,
/// numTemplateInputs + i is the output of line i.
using VarId = int;

/// One synthesized line: `let vOut : DeclType = Api(Args...)`.
struct Stmt {
  api::ApiId Api = api::ApiIdInvalid;
  std::vector<VarId> Args;
  VarId Out = -1;
  /// Declared type of the output variable as predicted by the synthesizer
  /// (the instantiated API output).
  const types::Type *DeclType = nullptr;
};

/// A template-provided input variable.
struct TemplateInput {
  std::string Name;
  const types::Type *Ty = nullptr;
};

/// A complete straight-line test case.
struct Program {
  std::vector<TemplateInput> Inputs;
  std::vector<Stmt> Stmts;

  int numVars() const {
    return static_cast<int>(Inputs.size() + Stmts.size());
  }

  /// Display name of variable \p V ("s", "v", or "v3" for synthesized).
  std::string varName(VarId V) const;

  /// Renders the body of the test function as Rust source.
  std::string render(const api::ApiDatabase &Db) const;

  /// Structural hash over APIs and argument wiring (used by the result
  /// database to deduplicate).
  uint64_t hash() const;
};

/// Builds \p P without statement \p Drop into \p Out, renumbering later
/// output variables. Returns false when a later statement uses the
/// dropped output (removal impossible). Shared by the delta-debugging
/// minimizers (core::BugMinimizer, oracle::minimizeDisagreement).
bool removeStatement(const Program &P, size_t Drop, Program &Out);

} // namespace syrust::program

#endif // SYRUST_PROGRAM_PROGRAM_H
