//===--- Value.h - Abstract runtime values ---------------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value model the interpreter executes over. One variant-ish struct
/// covers the fragment's needs: scalars, strings, heap-backed containers
/// (an allocation id plus length/capacity), references (target variable +
/// allocation + borrow tag), Option-like wrappers, and aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_MIRI_VALUE_H
#define SYRUST_MIRI_VALUE_H

#include "program/Program.h"
#include "types/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace syrust::miri {

/// An abstract runtime value.
struct Value {
  const types::Type *Ty = nullptr;

  /// Scalar payload (integers, booleans, chars, lengths returned by APIs).
  int64_t Int = 0;

  /// Text payload for string-like values.
  std::string Str;

  /// Owning allocation id for heap-backed values; -1 for none.
  int Alloc = -1;

  /// For references and raw pointers: the allocation referred to (-1 when
  /// the referent is not heap-backed).
  int RefAlloc = -1;

  /// Borrow tag of a reference (0 = none).
  uint64_t Tag = 0;

  /// For references: the program variable pointed at; -1 otherwise.
  program::VarId RefVar = -1;

  /// True for &mut references.
  bool RefMut = false;

  /// Container length / capacity.
  int64_t Len = 0;
  int64_t Cap = 0;

  /// Option-like emptiness.
  bool IsNone = false;

  /// Aggregate payload (tuple elements, Some(...) contents, etc.).
  std::vector<Value> Elems;

  bool isReference() const { return RefVar >= 0 || Tag != 0; }
};

} // namespace syrust::miri

#endif // SYRUST_MIRI_VALUE_H
