//===--- Heap.h - Abstract heap with borrow stacks -------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory model of the Miri substitute: numbered allocations, a
/// Stacked-Borrows-style tag stack per allocation, and undefined-behavior
/// detectors for the four bug classes the paper's tool surfaced (Figure 7):
/// memory leak, dangling pointer, use-after-free, and out-of-bounds
/// pointer. Following Miri's semantics (and the discussion of bugs ⋆2/⋆4
/// in Section 7.1), *creating* a dangling or out-of-bounds pointer is
/// already undefined behavior - no dereference required.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_MIRI_HEAP_H
#define SYRUST_MIRI_HEAP_H

#include <cstdint>
#include <string>
#include <vector>

namespace syrust::miri {

/// Kinds of undefined behavior the interpreter flags.
enum class UbKind : uint8_t {
  None,
  MemoryLeak,
  DanglingPointer,
  UseAfterFree,
  OutOfBoundsPointer,
  DoubleFree,
  InvalidBorrow, ///< Stacked-borrows tag invalidation.
};

const char *ubKindName(UbKind K);

/// A flagged undefined behavior.
struct UbReport {
  UbKind Kind = UbKind::None;
  std::string Message;
  int Line = -1; ///< Statement index at which the UB occurred; -1 for
                 ///< end-of-program (drop glue / leak check).
};

/// One heap allocation.
struct Allocation {
  size_t Size = 0;
  bool Freed = false;
  /// Stacked-Borrows-lite: stack of borrow tags; index 0 is the owner tag.
  std::vector<uint64_t> BorrowStack;
  /// Exempt from the leak check (e.g. intentionally leaked via
  /// mem::forget-style APIs).
  bool LeakExempt = false;
  std::string Note; ///< For diagnostics ("ArrayQueue buffer").
};

/// Allocation arena plus UB detection. The first UB wins; later operations
/// still execute but do not overwrite the report.
class AbstractHeap {
public:
  /// Allocates \p Size abstract bytes; returns the allocation id.
  int allocate(size_t Size, std::string Note = {});

  /// Frees an allocation; flags DoubleFree on refree.
  void free(int Alloc, int Line);

  bool isFreed(int Alloc) const;
  size_t size(int Alloc) const;
  const Allocation &get(int Alloc) const;

  /// Marks an allocation exempt from the final leak check.
  void exemptFromLeakCheck(int Alloc);

  /// Pushes a borrow tag; \p Unique pops all shared tags above the parent
  /// (a &mut invalidates prior borrows). Returns the new tag. Borrowing
  /// freed memory flags UseAfterFree.
  uint64_t pushBorrow(int Alloc, bool Unique, int Line);

  /// Validates an access through \p Tag: flags UseAfterFree on freed
  /// memory and InvalidBorrow when the tag has been popped. A unique access
  /// pops tags above \p Tag.
  bool useBorrow(int Alloc, uint64_t Tag, bool UniqueAccess, int Line);

  /// Records creation of a raw pointer at \p Offset into \p Alloc. Flags
  /// DanglingPointer when the allocation is freed and OutOfBoundsPointer
  /// when the offset exceeds the allocation size (one-past-the-end is
  /// allowed, matching Rust).
  void recordRawPointer(int Alloc, int64_t Offset, int Line,
                        const std::string &What);

  /// Runs the end-of-program leak check: any live, non-exempt allocation
  /// flags MemoryLeak.
  void leakCheck();

  /// The first UB flagged, if any.
  const UbReport &ub() const { return Ub; }
  bool hasUb() const { return Ub.Kind != UbKind::None; }

  /// Explicitly flags a UB (used by library semantics for bespoke cases).
  void flag(UbKind Kind, std::string Message, int Line);

  size_t numAllocations() const { return Allocs.size(); }
  size_t numLive() const;

private:
  std::vector<Allocation> Allocs;
  UbReport Ub;
  uint64_t NextTag = 1;
};

} // namespace syrust::miri

#endif // SYRUST_MIRI_HEAP_H
