//===--- Interpreter.cpp - UB-detecting program interpreter ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "miri/Interpreter.h"

#include "obs/Recorder.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::miri;
using namespace syrust::program;
using namespace syrust::types;

Value &InterpCtx::deref(size_t I) {
  Value *V = Args[I];
  int Guard = 0;
  while (V->RefVar >= 0 && Guard++ < 16) {
    // References created by the borrow builtins point at the *variable*
    // (like &Vec pointing at the Vec header on the stack), so chasing them
    // is always valid even if the container's backing buffer relocated.
    // Borrow-stack validation applies only to references that semantics
    // callbacks explicitly tagged against an allocation.
    if (V->RefAlloc >= 0 && V->Tag != 0)
      Heap.useBorrow(V->RefAlloc, V->Tag, V->RefMut, Line);
    V = &(*Slots)[static_cast<size_t>(V->RefVar)];
  }
  return *V;
}

void Interpreter::dropValue(InterpCtx &Ctx, Value &V) {
  if (V.isReference())
    return; // References never own.
  // Custom drop glue by nominal type head.
  if (V.Ty && V.Ty->kind() == TypeKind::Named) {
    if (const DropSemantics *Drop = Registry.lookupDrop(V.Ty->name())) {
      (*Drop)(Ctx, V);
      return;
    }
  }
  // Default drop: free the backing allocation, then drop children.
  if (V.Alloc >= 0)
    Ctx.heap().free(V.Alloc, Ctx.line());
  for (Value &E : V.Elems)
    dropValue(Ctx, E);
}

ExecResult Interpreter::run(const Program &P) {
  AbstractHeap Heap;
  std::vector<Value> Slots(static_cast<size_t>(P.numVars()));
  std::vector<bool> Alive(static_cast<size_t>(P.numVars()), false);

  // Template inputs.
  std::vector<Value> Inputs = Init(Heap, Rand);
  assert(Inputs.size() == P.Inputs.size() &&
         "template init arity mismatch");
  for (size_t I = 0; I < Inputs.size(); ++I) {
    Slots[I] = std::move(Inputs[I]);
    Slots[I].Ty = P.Inputs[I].Ty;
    Alive[I] = true;
  }

  for (size_t LineNo = 0; LineNo < P.Stmts.size() && !Heap.hasUb();
       ++LineNo) {
    const Stmt &S = P.Stmts[LineNo];
    const ApiSig &Sig = Db.get(S.Api);
    int Line = static_cast<int>(LineNo);

    std::vector<Value *> Args;
    Args.reserve(S.Args.size());
    for (VarId A : S.Args)
      Args.push_back(&Slots[static_cast<size_t>(A)]);

    switch (Sig.Builtin) {
    case BuiltinKind::LetMut: {
      VarId Src = S.Args[0];
      Value &Out = Slots[static_cast<size_t>(S.Out)];
      const Type *SrcTy = Slots[static_cast<size_t>(Src)].Ty;
      if (Traits.isCopy(SrcTy)) {
        Out = Slots[static_cast<size_t>(Src)];
      } else {
        Out = std::move(Slots[static_cast<size_t>(Src)]);
        Alive[static_cast<size_t>(Src)] = false;
      }
      Alive[static_cast<size_t>(S.Out)] = true;
      continue;
    }
    case BuiltinKind::Borrow:
    case BuiltinKind::BorrowMut: {
      // A builtin borrow references the variable itself (not its backing
      // buffer, which may relocate on container growth); no allocation tag
      // is attached.
      bool Mut = Sig.Builtin == BuiltinKind::BorrowMut;
      VarId Target = S.Args[0];
      Value Ref;
      Ref.Ty = S.DeclType;
      Ref.RefVar = Target;
      Ref.RefMut = Mut;
      Slots[static_cast<size_t>(S.Out)] = std::move(Ref);
      Alive[static_cast<size_t>(S.Out)] = true;
      continue;
    }
    case BuiltinKind::None:
      break;
    }

    // Library API call.
    const ApiSemantics *Fn = Registry.lookupApi(Sig.SemanticsKey);
    InterpCtx Ctx(Heap, Cov, Rand, std::move(Args), S.Args, S.DeclType,
                  Line, &Slots);
    Value Out;
    if (Fn) {
      Out = (*Fn)(Ctx);
    } else {
      // Unmodeled API: produce an inert default of the declared type.
      Out.Ty = S.DeclType;
    }
    if (!Out.Ty)
      Out.Ty = S.DeclType;

    // Ownership effects mirror the checker: owned non-Copy arguments are
    // consumed. Whatever the callee did not explicitly take over (by
    // clearing Value::Alloc) is dropped inside the callee, exactly like a
    // by-value parameter going out of scope in Rust - including custom
    // drop glue, so passing a buggy-drop value into any API still
    // triggers its drop bug.
    for (VarId A : S.Args) {
      size_t Idx = static_cast<size_t>(A);
      const Type *ArgTy = Slots[Idx].Ty;
      if (!ArgTy || ArgTy->isRef() || Traits.isCopy(ArgTy))
        continue;
      if (!Alive[Idx])
        continue; // Already consumed (same var twice is checker-rejected).
      Alive[Idx] = false;
      std::vector<Value *> NoArgs;
      InterpCtx DropCtx(Heap, Cov, Rand, NoArgs, {}, nullptr, Line,
                        &Slots);
      dropValue(DropCtx, Slots[Idx]);
      Slots[Idx].Alloc = -1;
    }
    Slots[static_cast<size_t>(S.Out)] = std::move(Out);
    Alive[static_cast<size_t>(S.Out)] = true;
  }

  // End of scope: run drop glue in reverse declaration order, then the
  // leak check.
  if (!Heap.hasUb()) {
    for (int V = P.numVars() - 1; V >= 0; --V) {
      if (!Alive[static_cast<size_t>(V)])
        continue;
      std::vector<Value *> NoArgs;
      InterpCtx Ctx(Heap, Cov, Rand, NoArgs, {}, nullptr,
                    static_cast<int>(P.Stmts.size()), &Slots);
      dropValue(Ctx, Slots[static_cast<size_t>(V)]);
      if (Heap.hasUb())
        break;
    }
  }
  if (!Heap.hasUb())
    Heap.leakCheck();

  ExecResult R;
  R.UbFound = Heap.hasUb();
  R.Report = Heap.ub();
  if (Obs) {
    obs::ArgList Args;
    Args.add("ub", R.UbFound);
    if (R.UbFound) {
      Args.add("kind", ubKindName(R.Report.Kind));
      Args.add("line", R.Report.Line);
    }
    Obs->instant("exec.verdict", "miri", std::move(Args));
    Obs->count("exec.runs");
    if (R.UbFound)
      Obs->count("exec.ub");
  }
  return R;
}
