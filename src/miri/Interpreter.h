//===--- Interpreter.h - UB-detecting program interpreter ------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Miri substitute: executes checker-accepted programs over library
/// *semantic models* (per-API callbacks registered by each crate spec) on
/// the abstract heap, runs drop glue at end of scope, and reports the first
/// undefined behavior. Library semantics receive an InterpCtx giving them
/// argument access (including reference chasing with borrow validation),
/// heap operations, and coverage instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_MIRI_INTERPRETER_H
#define SYRUST_MIRI_INTERPRETER_H

#include "api/ApiDatabase.h"
#include "coverage/CoverageMap.h"
#include "miri/Heap.h"
#include "miri/Value.h"
#include "program/Program.h"
#include "support/Rng.h"
#include "types/TraitEnv.h"

#include <functional>
#include <map>
#include <string>

namespace syrust::obs {
class Recorder;
} // namespace syrust::obs

namespace syrust::miri {

class Interpreter;

/// Execution context handed to library semantics callbacks.
class InterpCtx {
public:
  AbstractHeap &heap() { return Heap; }
  coverage::CoverageMap *cov() { return Cov; }
  syrust::Rng &rng() { return Rand; }

  /// Current statement index (for UB line attribution).
  int line() const { return Line; }

  /// Number of call arguments.
  size_t numArgs() const { return Args.size(); }

  /// Raw argument value (the reference itself for reference args).
  Value &arg(size_t I) { return *Args[I]; }

  /// Program variable id of argument \p I (for building references that
  /// point at it).
  program::VarId argVar(size_t I) const { return ArgVars[I]; }

  /// Follows a reference argument to the owning slot, validating the
  /// borrow through the heap (flags UseAfterFree/InvalidBorrow). For
  /// non-reference arguments returns the value itself.
  Value &deref(size_t I);

  /// Declared output type of the call.
  const types::Type *outType() const { return OutTy; }

  /// Marks component/library lines covered; convenience forwarding.
  void coverLines(int Begin, int End) {
    if (Cov)
      Cov->coverLines(Begin, End);
  }
  void coverBranch(int Branch, bool Taken) {
    if (Cov)
      Cov->coverBranch(Branch, Taken);
  }

  /// Flags bespoke UB from library semantics.
  void flag(UbKind Kind, const std::string &Message) {
    Heap.flag(Kind, Message, Line);
  }

private:
  friend class Interpreter;
  InterpCtx(AbstractHeap &Heap, coverage::CoverageMap *Cov,
            syrust::Rng &Rand, std::vector<Value *> Args,
            std::vector<program::VarId> ArgVars, const types::Type *OutTy,
            int Line, std::vector<Value> *Slots)
      : Heap(Heap), Cov(Cov), Rand(Rand), Args(std::move(Args)),
        ArgVars(std::move(ArgVars)), OutTy(OutTy), Line(Line),
        Slots(Slots) {}

  AbstractHeap &Heap;
  coverage::CoverageMap *Cov;
  syrust::Rng &Rand;
  std::vector<Value *> Args;
  std::vector<program::VarId> ArgVars;
  const types::Type *OutTy;
  int Line;
  std::vector<Value> *Slots;
};

/// Semantics of one library API: consumes the context, returns the output
/// value.
using ApiSemantics = std::function<Value(InterpCtx &)>;

/// Drop glue for one nominal type head (e.g. "BitBox"). Runs when an owned
/// value of that type goes out of scope; responsible for freeing backing
/// allocations (or deliberately not, for buggy models).
using DropSemantics = std::function<void(InterpCtx &, Value &)>;

/// Per-crate registry mapping ApiSig::SemanticsKey to executable behavior.
class SemanticsRegistry {
public:
  void registerApi(const std::string &Key, ApiSemantics Fn) {
    ApiFns[Key] = std::move(Fn);
  }
  void registerDrop(const std::string &TypeHead, DropSemantics Fn) {
    DropFns[TypeHead] = std::move(Fn);
  }
  const ApiSemantics *lookupApi(const std::string &Key) const {
    auto It = ApiFns.find(Key);
    return It == ApiFns.end() ? nullptr : &It->second;
  }
  const DropSemantics *lookupDrop(const std::string &TypeHead) const {
    auto It = DropFns.find(TypeHead);
    return It == DropFns.end() ? nullptr : &It->second;
  }

private:
  std::map<std::string, ApiSemantics> ApiFns;
  std::map<std::string, DropSemantics> DropFns;
};

/// Builds the values for template inputs at the start of each run.
using TemplateInit =
    std::function<std::vector<Value>(AbstractHeap &, syrust::Rng &)>;

/// Outcome of interpreting one test case.
struct ExecResult {
  bool UbFound = false;
  UbReport Report;
};

/// Executes programs against a semantics registry.
class Interpreter {
public:
  Interpreter(const api::ApiDatabase &Db, const types::TraitEnv &Traits,
              const SemanticsRegistry &Registry, TemplateInit Init,
              coverage::CoverageMap *Cov = nullptr, uint64_t Seed = 1)
      : Db(Db), Traits(Traits), Registry(Registry), Init(std::move(Init)),
        Cov(Cov), Rand(Seed) {}

  /// Runs \p P to completion (or first UB) including end-of-scope drops
  /// and the leak check.
  ExecResult run(const program::Program &P);

  /// Attaches the flight recorder; every run() then emits an
  /// `exec.verdict` trace event (with the UB kind on failure) and bumps
  /// the `exec.*` counters.
  void setRecorder(obs::Recorder *R) { Obs = R; }

private:
  void dropValue(InterpCtx &Ctx, Value &V);

  const api::ApiDatabase &Db;
  const types::TraitEnv &Traits;
  const SemanticsRegistry &Registry;
  TemplateInit Init;
  coverage::CoverageMap *Cov;
  syrust::Rng Rand;
  obs::Recorder *Obs = nullptr;
};

} // namespace syrust::miri

#endif // SYRUST_MIRI_INTERPRETER_H
