//===--- Heap.cpp - Abstract heap with borrow stacks ----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "miri/Heap.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace syrust;
using namespace syrust::miri;

const char *syrust::miri::ubKindName(UbKind K) {
  switch (K) {
  case UbKind::None:
    return "none";
  case UbKind::MemoryLeak:
    return "memory-leak";
  case UbKind::DanglingPointer:
    return "dangling-pointer";
  case UbKind::UseAfterFree:
    return "use-after-free";
  case UbKind::OutOfBoundsPointer:
    return "oob-pointer";
  case UbKind::DoubleFree:
    return "double-free";
  case UbKind::InvalidBorrow:
    return "invalid-borrow";
  }
  return "?";
}

int AbstractHeap::allocate(size_t Size, std::string Note) {
  Allocation A;
  A.Size = Size;
  A.BorrowStack = {NextTag++};
  A.Note = std::move(Note);
  Allocs.push_back(std::move(A));
  return static_cast<int>(Allocs.size() - 1);
}

void AbstractHeap::flag(UbKind Kind, std::string Message, int Line) {
  if (Ub.Kind != UbKind::None)
    return; // First UB wins.
  Ub.Kind = Kind;
  Ub.Message = std::move(Message);
  Ub.Line = Line;
}

void AbstractHeap::free(int Alloc, int Line) {
  assert(Alloc >= 0 && static_cast<size_t>(Alloc) < Allocs.size());
  Allocation &A = Allocs[static_cast<size_t>(Alloc)];
  if (A.Freed) {
    flag(UbKind::DoubleFree,
         format("double free of allocation %d (%s)", Alloc,
                A.Note.c_str()),
         Line);
    return;
  }
  A.Freed = true;
}

bool AbstractHeap::isFreed(int Alloc) const {
  return Allocs[static_cast<size_t>(Alloc)].Freed;
}

size_t AbstractHeap::size(int Alloc) const {
  return Allocs[static_cast<size_t>(Alloc)].Size;
}

const Allocation &AbstractHeap::get(int Alloc) const {
  return Allocs[static_cast<size_t>(Alloc)];
}

void AbstractHeap::exemptFromLeakCheck(int Alloc) {
  Allocs[static_cast<size_t>(Alloc)].LeakExempt = true;
}

uint64_t AbstractHeap::pushBorrow(int Alloc, bool Unique, int Line) {
  Allocation &A = Allocs[static_cast<size_t>(Alloc)];
  if (A.Freed) {
    flag(UbKind::UseAfterFree,
         format("borrow of freed allocation %d (%s)", Alloc,
                A.Note.c_str()),
         Line);
    return 0;
  }
  if (Unique && A.BorrowStack.size() > 1) {
    // A fresh unique borrow invalidates all previous borrows above the
    // owner tag.
    A.BorrowStack.resize(1);
  }
  uint64_t Tag = NextTag++;
  A.BorrowStack.push_back(Tag);
  return Tag;
}

bool AbstractHeap::useBorrow(int Alloc, uint64_t Tag, bool UniqueAccess,
                             int Line) {
  Allocation &A = Allocs[static_cast<size_t>(Alloc)];
  if (A.Freed) {
    flag(UbKind::UseAfterFree,
         format("use of freed allocation %d (%s) through tag %llu", Alloc,
                A.Note.c_str(), static_cast<unsigned long long>(Tag)),
         Line);
    return false;
  }
  auto It = std::find(A.BorrowStack.begin(), A.BorrowStack.end(), Tag);
  if (It == A.BorrowStack.end()) {
    flag(UbKind::InvalidBorrow,
         format("tag %llu is not in the borrow stack of allocation %d",
                static_cast<unsigned long long>(Tag), Alloc),
         Line);
    return false;
  }
  if (UniqueAccess) {
    // Using a tag for writing pops everything above it.
    A.BorrowStack.erase(It + 1, A.BorrowStack.end());
  }
  return true;
}

void AbstractHeap::recordRawPointer(int Alloc, int64_t Offset, int Line,
                                    const std::string &What) {
  const Allocation &A = Allocs[static_cast<size_t>(Alloc)];
  if (A.Freed) {
    flag(UbKind::DanglingPointer,
         format("created dangling pointer (%s) into freed allocation %d",
                What.c_str(), Alloc),
         Line);
    return;
  }
  if (Offset < 0 || static_cast<size_t>(Offset) > A.Size) {
    flag(UbKind::OutOfBoundsPointer,
         format("created out-of-bounds pointer (%s): offset %lld outside "
                "allocation %d of size %zu",
                What.c_str(), static_cast<long long>(Offset), Alloc,
                A.Size),
         Line);
  }
}

void AbstractHeap::leakCheck() {
  for (size_t I = 0; I < Allocs.size(); ++I) {
    const Allocation &A = Allocs[I];
    if (!A.Freed && !A.LeakExempt) {
      flag(UbKind::MemoryLeak,
           format("memory leak: allocation %zu (%s) of size %zu never "
                  "freed",
                  I, A.Note.c_str(), A.Size),
           -1);
      return;
    }
  }
}

size_t AbstractHeap::numLive() const {
  size_t N = 0;
  for (const Allocation &A : Allocs)
    N += A.Freed ? 0 : 1;
  return N;
}
