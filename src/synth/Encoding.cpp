//===--- Encoding.cpp - SAT encoding of the synthesis space ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Liveness discipline (refining Figure 14 into a deterministic model):
///
///   * owned non-Copy values: V_{i+1} <=> V_i AND not-consumed-at-i, via
///     the Rule 5/appendix-rule-10 cardinality (consumption kills) plus a
///     persistence clause (nothing else kills);
///   * Copy values and template-provided references: persist to the end;
///   * borrow-created and propagation-created references: alive exactly
///     while their immediate source is alive (Rule 6 both directions);
///     paths through owned wrappers are checked post-hoc (Rule 7).
///
/// Forcing persistence matters for soundness: if availability could be
/// dropped spuriously, the solver could "forget" an active &mut borrow and
/// slip past the Rule 8/9 exclusivity clauses.
///
/// Incremental sync discipline: the initial build and every in-place
/// extension run the same sync() path against snapshots of the previous
/// state (empty on first build). Each constraint falls into one of three
/// classes:
///
///   * additive - per-candidate/per-pair clauses whose meaning never
///     changes as the database grows (U=>A, U=>V, incompatibility pairs,
///     Rule 6 ties, Rules 8/9, redundancy 1): emitted once, only for the
///     candidates/pairs introduced by this sync;
///   * monotone - cardinalities over growing literal sets (exactly-one's
///     at-most half, per-slot at-most-one, consumption-kills, redundancy
///     2): re-emitted over the full grown set; the retired smaller card
///     is implied by the larger one and stays harmlessly behind;
///   * closure-sensitive - clauses asserting "one of the currently known
///     options holds" which would wrongly constrain a grown space
///     (exactly-one's at-least half, slot at-least, output V=>triggers,
///     owned-value persistence, redundancy 3): these carry the negated
///     generation guard and are re-emitted under a fresh guard each
///     sync; solving assumes the current guard, and a unit clause
///     retires the previous generation.
///
/// Dead-site elimination (DESIGN.md 5g): a call site whose required
/// input slot has zero candidates can never be chosen, so instead of
/// allocating its A-variable and asserting guarded ~A (the historical
/// empty-slot clause), the site is simply not materialized - no A, no
/// U-variables, no per-slot clauses, no joint cross-products. This is a
/// structural decision taken identically in both GraphPrune modes (probe
/// answers are arm-independent), so the solver-visible formula - and
/// therefore the CDCL decision sequence and the program stream - cannot
/// depend on the prune flag. A later sync re-probes dead sites from
/// scratch and materializes the ones a refinement made fillable; every
/// clause that references a possibly-dead site either skips it (its A is
/// structurally false) or, where the site's absence must actively forbid
/// something (a mutable borrow whose let_mut site is dead), asserts the
/// guarded negation so revival can retract it.
///
//===----------------------------------------------------------------------===//

#include "synth/Encoding.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::sat;
using namespace syrust::synth;
using namespace syrust::types;

Encoding::Encoding(TypeArena &Arena, const TraitEnv &Traits,
                   const ApiDatabase &Db,
                   const std::vector<TemplateInput> &Inputs, int NumLines,
                   const SynthOptions &Opts)
    : Arena(Arena), Traits(Traits), Db(Db), Inputs(Inputs),
      NumLines(NumLines), Opts(Opts) {
  // Mode selection must precede everything else: the portfolio's op log
  // has to see every variable and clause.
  Solver.configure(Opts.Portfolio, Opts.Strategy);
  Solver.setRandomSeed(Opts.SolverSeed);
  Solver.setRecorder(Opts.Obs);
  sync();
}

const Type *Encoding::renamedInput(ApiId F, size_t J) const {
  for (size_t K = 0; K < Active.size(); ++K)
    if (Active[K] == F)
      return RenIn[K][J];
  return nullptr;
}

const Type *Encoding::renamedOutput(ApiId F) const {
  for (size_t K = 0; K < Active.size(); ++K)
    if (Active[K] == F)
      return RenOut[K];
  return nullptr;
}

bool Encoding::isOwnedNonCopy(const Type *Ty) const {
  return !Ty->isRef() && !Traits.isCopy(Ty);
}

sat::Var Encoding::getV(VarId X, const Type *Ty, int Line) {
  auto Key = std::make_tuple(X, Ty, Line);
  auto It = VMap.find(Key);
  if (It != VMap.end())
    return It->second;
  sat::Var V = Solver.newVar();
  VMap.emplace(Key, V);
  return V;
}

bool Encoding::hasV(VarId X, const Type *Ty, int Line) const {
  return VMap.count(std::make_tuple(X, Ty, Line)) != 0;
}

bool Encoding::isNewType(VarId X, const Type *Ty) const {
  size_t Idx = static_cast<size_t>(X);
  return Idx >= PrevTypes.size() || PrevTypes[Idx].count(Ty) == 0;
}

size_t Encoding::prevSlotCount(int Line, size_t Kk, size_t J) const {
  size_t L = static_cast<size_t>(Line);
  if (L >= PrevSlots.size() || Kk >= PrevSlots[L].size() ||
      J >= PrevSlots[L][Kk].size())
    return 0;
  return PrevSlots[L][Kk][J];
}

bool Encoding::wasLive(int Line, size_t Kk) const {
  size_t L = static_cast<size_t>(Line);
  return L < PrevHadA.size() && Kk < PrevHadA[L].size() &&
         PrevHadA[L][Kk] != 0;
}

bool Encoding::probeUnifiable2(const Type *Ty, const Type *Pattern) const {
  if (Opts.Compat)
    return Opts.Compat->unifiable2(Ty, Pattern);
  Substitution Probe;
  return unifiable(Ty, Pattern, Probe);
}

bool Encoding::probeJoint(const Type *T1, const Type *P1, const Type *T2,
                          const Type *P2) const {
  if (Opts.Compat)
    return Opts.Compat->unifiableJoint(T1, P1, T2, P2);
  Substitution Joint;
  return unifiable(T1, P1, Joint) && unifiable(T2, P2, Joint);
}

bool Encoding::probeFeeds(ApiId Producer, const Type *Ty, size_t Kk,
                          size_t J) {
  // Third probe arm: the frozen dependency graph holds the precomputed
  // answer for (base producer, base consumer, slot) triples - one bit
  // test instead of a cache lookup. Producer-less types (template
  // inputs, builtin-derived) and refinement-added APIs (ids past the
  // graph's node set - the run-local overlay the frozen graph does not
  // cover) fall back to the cache/direct arm. All arms agree by
  // construction: the graph's edge set is exactly the probe-success set
  // over the same "a<ApiId>" renaming (DESIGN.md 5g), so this split
  // cannot change which candidates exist.
  if (Opts.GraphPrune && Opts.Graph && Producer != ApiIdInvalid &&
      static_cast<size_t>(Producer) < Opts.Graph->numNodes() &&
      static_cast<size_t>(Active[Kk]) < Opts.Graph->numNodes()) {
    ++Prune.GraphProbes;
    return Opts.Graph->hasEdge(Producer, Active[Kk],
                               static_cast<int>(J));
  }
  ++Prune.FallbackProbes;
  return probeUnifiable2(Ty, RenIn[Kk][J]);
}

void Encoding::addGuarded(std::vector<Lit> Lits) {
  if (Gen != sat::VarUndef)
    Lits.push_back(mkLit(Gen, true));
  Solver.addClause(std::move(Lits));
}

bool Encoding::extendForDatabaseChange() {
  if (!Opts.IncrementalRefinement)
    return false;
  std::vector<ApiId> NewActive = Db.activeIds();
  if (NewActive.size() < Active.size() ||
      !std::equal(Active.begin(), Active.end(), NewActive.begin()))
    return false; // Destructive change (ban): caller rebuilds.
  // Flush the pending model before any new variables exist: blockCurrent
  // reads model values, and the saved model only covers current vars.
  if (HasModel)
    blockCurrent();
  sync();
  return true;
}

void Encoding::sync() {
  // Snapshot the previous closure so the build functions can tell new
  // sites, candidates, and (var, type) pairs from already-encoded ones.
  PrevActive = Active.size();
  PrevTypes.assign(VarTypes.size(), {});
  for (size_t X = 0; X < VarTypes.size(); ++X)
    PrevTypes[X].insert(VarTypes[X].begin(), VarTypes[X].end());
  PrevSlots.assign(Sites.size(), {});
  PrevHadA.assign(Sites.size(), {});
  for (size_t I = 0; I < Sites.size(); ++I) {
    PrevSlots[I].resize(Sites[I].size());
    PrevHadA[I].resize(Sites[I].size());
    for (size_t Kk = 0; Kk < Sites[I].size(); ++Kk) {
      PrevHadA[I][Kk] = Sites[I][Kk].A != sat::VarUndef;
      PrevSlots[I][Kk].resize(Sites[I][Kk].Slots.size());
      for (size_t J = 0; J < Sites[I][Kk].Slots.size(); ++J)
        PrevSlots[I][Kk][J] = Sites[I][Kk].Slots[J].size();
    }
  }

  // Turn the generation over: retire the previous guard's clauses and
  // open a fresh one.
  if (Opts.IncrementalRefinement) {
    if (Gen != sat::VarUndef) {
      Solver.addClause(mkLit(Gen, true));
      // The unit just satisfied every clause of the retired generation;
      // detach them so they stop taxing propagation.
      Solver.simplify();
    }
    Gen = Solver.newVar();
  }

  // Refresh the active set; extendForDatabaseChange guarantees the old
  // Active is a prefix, so renamed signatures only append.
  Active = Db.activeIds();
  RenIn.resize(Active.size());
  RenOut.resize(Active.size());
  for (size_t K = PrevActive; K < Active.size(); ++K) {
    const ApiSig &Sig = Db.get(Active[K]);
    std::string Suffix = format("a%d", Active[K]);
    for (const Type *In : Sig.Inputs)
      RenIn[K].push_back(renameVars(Arena, In, Suffix));
    RenOut[K] = renameVars(Arena, Sig.Output, Suffix);
    ActiveIndex[Active[K]] = K;
  }

  buildTypeUniverse();
  buildCallSites();
  buildContextConstraints();
  if (Opts.SemanticAware) {
    // The ownership/borrow clauses are the CEGAR strategy's lazy tier: it
    // solves without them and materializes only the ones a candidate
    // model violates, with the model acting as the counterexample.
    Solver.beginLazy();
    buildSemanticConstraints();
    Solver.endLazy();
    buildRedundancyConstraints();
  }
  buildBlockedCombos();
  VarCount = static_cast<size_t>(Solver.numVars());
  if (Opts.Obs)
    Opts.Obs->instant("synth.sync", "synth",
                      obs::ArgList()
                          .add("length", NumLines)
                          .add("active_apis",
                               static_cast<uint64_t>(Active.size()))
                          .add("sat_vars", static_cast<uint64_t>(VarCount))
                          .add("candidates",
                               static_cast<uint64_t>(TotalCandidates)));
}

void Encoding::buildTypeUniverse() {
  // NOTE: all collections here iterate in *insertion* order - never in
  // pointer order - so encodings (and therefore enumeration order and
  // every experiment table) are reproducible across processes. The
  // recompute is total; newly producible types may interleave among old
  // ones, which is why the sync snapshots are per-variable type *sets*.
  int K = static_cast<int>(Inputs.size());
  VarTypes.assign(static_cast<size_t>(K + NumLines), {});
  VarProducers.assign(static_cast<size_t>(K + NumLines), {});
  for (int X = 0; X < K; ++X) {
    VarTypes[static_cast<size_t>(X)] = {Inputs[static_cast<size_t>(X)].Ty};
    VarProducers[static_cast<size_t>(X)] = {ApiIdInvalid};
  }

  // Types available strictly before each line, grown monotonically.
  std::vector<const Type *> Avail;
  std::set<const Type *> AvailSeen;
  auto AddAvail = [&](const Type *Ty) {
    if (AvailSeen.insert(Ty).second)
      Avail.push_back(Ty);
  };
  for (int X = 0; X < K; ++X)
    AddAvail(Inputs[static_cast<size_t>(X)].Ty);

  for (int I = 0; I < NumLines; ++I) {
    std::vector<const Type *> OutTys;
    std::vector<ApiId> OutProds;
    std::set<const Type *> OutSeen;
    // Producer recorded per type at zero probe cost; the dedup keeps
    // the first producer, which is enough - equal interned outputs give
    // equal probe answers whichever producer keys the graph row.
    auto AddOut = [&](const Type *Ty, ApiId Producer) {
      if (OutSeen.insert(Ty).second) {
        OutTys.push_back(Ty);
        OutProds.push_back(Producer);
      }
    };
    for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
      const ApiSig &Sig = Db.get(Active[Kk]);
      if (Sig.Builtin == BuiltinKind::None) {
        AddOut(RenOut[Kk], Active[Kk]);
        continue;
      }
      // Builtins derive their output from the chosen argument type;
      // those types have no frozen-graph producer and take the
      // fallback probe arm.
      for (const Type *Ty : Avail) {
        if (Ty->isRef())
          continue; // Encoder restriction: builtins act on non-refs.
        switch (Sig.Builtin) {
        case BuiltinKind::LetMut:
          AddOut(Ty, ApiIdInvalid);
          break;
        case BuiltinKind::Borrow:
          AddOut(Arena.ref(Ty, /*Mutable=*/false), ApiIdInvalid);
          break;
        case BuiltinKind::BorrowMut:
          AddOut(Arena.ref(Ty, /*Mutable=*/true), ApiIdInvalid);
          break;
        case BuiltinKind::None:
          break;
        }
      }
    }
    VarTypes[static_cast<size_t>(K + I)] = OutTys;
    VarProducers[static_cast<size_t>(K + I)] = OutProds;
    for (const Type *Ty : OutTys)
      AddAvail(Ty);
  }
}

void Encoding::buildCallSites() {
  int K = static_cast<int>(Inputs.size());
  if (Sites.empty())
    Sites.assign(static_cast<size_t>(NumLines), {});
  for (int I = 0; I < NumLines; ++I) {
    std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];
    LineSites.resize(Active.size());
    for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
      const ApiSig &Sig = Db.get(Active[Kk]);
      CallSite &Site = LineSites[Kk];

      // Candidates of slot J not yet encoded, in the canonical (X, Ty)
      // order, with U unallocated. NewOnly restricts to (var, type)
      // pairs new this sync - the live-site incremental append.
      auto Probe = [&](size_t J, bool NewOnly,
                       std::vector<Candidate> &Out) {
        for (int X = 0; X < K + I; ++X) {
          const std::vector<const Type *> &Tys =
              VarTypes[static_cast<size_t>(X)];
          for (size_t Ti = 0; Ti < Tys.size(); ++Ti) {
            const Type *Ty = Tys[Ti];
            if (NewOnly && !isNewType(X, Ty))
              continue; // Candidate already encoded.
            if (Sig.Builtin != BuiltinKind::None && Ty->isRef())
              continue; // Builtins act on non-reference values.
            if (Opts.SemanticAware &&
                Sig.Builtin == BuiltinKind::BorrowMut && X < K)
              continue; // Template bindings are immutable (no `mut`).
            if (!probeFeeds(VarProducers[static_cast<size_t>(X)][Ti], Ty,
                            Kk, J))
              continue;
            Candidate C;
            C.Var = X;
            C.Ty = Ty;
            Out.push_back(C);
          }
        }
      };

      if (Site.A != sat::VarUndef) {
        // Live site: append the candidates this sync introduced.
        for (size_t J = 0; J < Sig.Inputs.size(); ++J) {
          std::vector<Candidate> Added;
          Probe(J, /*NewOnly=*/true, Added);
          for (Candidate &C : Added) {
            C.U = Solver.newVar();
            Site.Slots[J].push_back(C);
            ++TotalCandidates;
          }
        }
        continue;
      }

      // Fresh site (new API, or dead on every sync so far): probe every
      // slot into temporaries first, bailing at the first unfillable
      // one. An API with an empty input slot can never be called, so
      // materializing it would only grow the formula with always-false
      // structure - skip the A-variable, the U-variables, and every
      // downstream clause (dead-site elimination; identical in both
      // prune modes, see the file comment).
      std::vector<std::vector<Candidate>> Tmp(Sig.Inputs.size());
      bool Alive = true;
      size_t ProbedSlots = 0;
      for (size_t J = 0; J < Sig.Inputs.size() && Alive; ++J) {
        Probe(J, /*NewOnly=*/false, Tmp[J]);
        ++ProbedSlots;
        if (Tmp[J].empty())
          Alive = false;
      }
      if (!Alive) {
        size_t Cands = 0;
        for (const std::vector<Candidate> &T : Tmp)
          Cands += T.size();
        ++Prune.DeadSites;
        Prune.VarsAvoided += 1 + Cands;
        Prune.ClausesAvoided += 2 * Cands + 2 * ProbedSlots;
        continue; // Site stays dead; the next sync re-probes it.
      }
      // Materialize in the historical order: A first, then the slot-
      // major U sequence.
      Site.A = Solver.newVar();
      Site.Slots.assign(Sig.Inputs.size(), {});
      for (size_t J = 0; J < Sig.Inputs.size(); ++J) {
        for (Candidate &C : Tmp[J]) {
          C.U = Solver.newVar();
          Site.Slots[J].push_back(C);
          ++TotalCandidates;
        }
      }
    }
  }
}

void Encoding::buildContextConstraints() {
  int K = static_cast<int>(Inputs.size());

  // Template availability at line 0 plus V-propagation for all variables.
  // Both are per-(var, type) facts: emitted once, when the pair appears.
  for (int X = 0; X < K; ++X) {
    const Type *Ty = Inputs[static_cast<size_t>(X)].Ty;
    if (!isNewType(X, Ty))
      continue;
    Solver.addClause(mkLit(getV(X, Ty, 0)));
    for (int I = 1; I <= NumLines; ++I)
      Solver.addClause(mkLit(getV(X, Ty, I), true),
                       mkLit(getV(X, Ty, I - 1)));
  }
  for (int J = 0; J < NumLines; ++J) {
    for (const Type *Ty : VarTypes[static_cast<size_t>(K + J)]) {
      if (!isNewType(K + J, Ty))
        continue;
      for (int I = J + 2; I <= NumLines; ++I)
        Solver.addClause(mkLit(getV(K + J, Ty, I), true),
                         mkLit(getV(K + J, Ty, I - 1)));
    }
  }

  for (int I = 0; I < NumLines; ++I) {
    std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];

    // Exactly one API per line, over the *live* sites only - dead-
    // eliminated sites have no A-variable, and their absence is exactly
    // what shrinks the formula. The at-most half is monotone (re-emit
    // when this line's live set grew); the at-least half is closure-
    // sensitive and rides the generation guard. A line with zero live
    // sites yields the empty guarded clause: the length is impossible
    // this generation, the same verdict the historical per-site
    // forced-false As produced.
    std::vector<Lit> ALits;
    size_t PrevLiveN = 0;
    for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
      if (LineSites[Kk].A != sat::VarUndef)
        ALits.push_back(mkLit(LineSites[Kk].A));
      if (wasLive(I, Kk))
        ++PrevLiveN;
    }
    if (ALits.size() > PrevLiveN)
      Solver.addAtMost(ALits, 1);
    addGuarded(ALits);

    // Use-variable wiring. Materialization guarantees every slot of a
    // live site has at least one candidate (the historical empty-slot
    // guarded ~A became dead-site elimination).
    for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
      CallSite &Site = LineSites[Kk];
      if (Site.A == sat::VarUndef)
        continue; // Dead-eliminated: no variables, no clauses.
      for (size_t J = 0; J < Site.Slots.size(); ++J) {
        std::vector<Candidate> &Slot = Site.Slots[J];
        size_t Prev = prevSlotCount(I, Kk, J);
        std::vector<Lit> AtLeast{mkLit(Site.A, true)};
        std::vector<Lit> ULits;
        for (size_t Ci = 0; Ci < Slot.size(); ++Ci) {
          Candidate &C = Slot[Ci];
          if (Ci >= Prev) {
            Solver.addClause(mkLit(C.U, true), mkLit(Site.A)); // U => A
            Solver.addClause(mkLit(C.U, true),
                             mkLit(getV(C.Var, C.Ty, I))); // U => V
          }
          AtLeast.push_back(mkLit(C.U));
          ULits.push_back(mkLit(C.U));
        }
        addGuarded(AtLeast);            // A => some candidate used.
        if (Slot.size() > Prev)
          Solver.addAtMost(ULits, 1);   // At most one per slot.
      }

      // Pairwise compatibility across slots (Definition 2(3) + Rule 4).
      // Additive: only pairs involving a candidate new this sync.
      for (size_t J1 = 0; J1 < Site.Slots.size(); ++J1) {
        for (size_t J2 = J1 + 1; J2 < Site.Slots.size(); ++J2) {
          size_t P1 = prevSlotCount(I, Kk, J1);
          size_t P2 = prevSlotCount(I, Kk, J2);
          for (size_t I1 = 0; I1 < Site.Slots[J1].size(); ++I1) {
            for (size_t I2 = 0; I2 < Site.Slots[J2].size(); ++I2) {
              if (I1 < P1 && I2 < P2)
                continue;
              Candidate &C1 = Site.Slots[J1][I1];
              Candidate &C2 = Site.Slots[J2][I2];
              bool Compatible = true;
              if (C1.Var == C2.Var && !C1.Ty->isPrim() &&
                  !C1.Ty->isSharedRef()) {
                Compatible = false; // Rule 4: no owned/mut aliasing.
              } else {
                Compatible = probeJoint(C1.Ty, RenIn[Kk][J1], C2.Ty,
                                        RenIn[Kk][J2]);
              }
              if (!Compatible)
                Solver.addClause(mkLit(C1.U, true), mkLit(C2.U, true));
            }
          }
        }
      }
    }

    // Output creation: V(o_i, tau, i+1) <=> OR(triggers). The forward
    // trigger=>V implications are additive; the V=>triggers closure is
    // guarded (a later sync can add triggers for this type).
    VarId Out = K + I;
    for (const Type *Ty : VarTypes[static_cast<size_t>(Out)]) {
      std::vector<Lit> Triggers;
      std::vector<Lit> NewTriggers;
      for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
        if (LineSites[Kk].A == sat::VarUndef)
          continue; // Dead site: no candidates, no triggers.
        const ApiSig &Sig = Db.get(Active[Kk]);
        if (Sig.Builtin == BuiltinKind::None) {
          if (RenOut[Kk] == Ty) {
            Triggers.push_back(mkLit(LineSites[Kk].A));
            if (!wasLive(I, Kk))
              NewTriggers.push_back(mkLit(LineSites[Kk].A));
          }
          continue;
        }
        size_t Prev = prevSlotCount(I, Kk, 0);
        std::vector<Candidate> &Slot = LineSites[Kk].Slots[0];
        for (size_t Ci = 0; Ci < Slot.size(); ++Ci) {
          Candidate &C = Slot[Ci];
          const Type *Derived = nullptr;
          switch (Sig.Builtin) {
          case BuiltinKind::LetMut:
            Derived = C.Ty;
            break;
          case BuiltinKind::Borrow:
            Derived = Arena.ref(C.Ty, false);
            break;
          case BuiltinKind::BorrowMut:
            Derived = Arena.ref(C.Ty, true);
            break;
          case BuiltinKind::None:
            break;
          }
          if (Derived == Ty) {
            Triggers.push_back(mkLit(C.U));
            if (Ci >= Prev)
              NewTriggers.push_back(mkLit(C.U));
          }
        }
      }
      sat::Var V = getV(Out, Ty, I + 1);
      if (Triggers.empty()) {
        addGuarded({mkLit(V, true)});
        continue;
      }
      for (Lit T : NewTriggers)
        Solver.addClause(~T, mkLit(V)); // trigger => V
      std::vector<Lit> VImplies{mkLit(V, true)};
      for (Lit T : Triggers)
        VImplies.push_back(T);
      addGuarded(VImplies); // V => some trigger.
    }
  }
}

void Encoding::buildSemanticConstraints() {
  int K = static_cast<int>(Inputs.size());
  int NumVars = K + NumLines;

  // Per-line consuming uses of every mutable-reference (var, type) pair,
  // shared with the Rule 6 ties below: a &mut moved into a by-value
  // parameter stops persisting, exactly as the checker kills the binding.
  std::map<std::pair<VarId, const Type *>,
           std::vector<std::vector<Lit>>>
      MutConsuming;

  // Classify each (var, type) pair and collect its use variables per line.
  for (int X = 0; X < NumVars; ++X) {
    int FirstLine = X < K ? 0 : X - K + 1;
    for (const Type *Ty : VarTypes[static_cast<size_t>(X)]) {
      bool PairNew = isNewType(X, Ty);
      bool OwnedNonCopy = isOwnedNonCopy(Ty);
      // `&mut T` is not Copy: like owned non-Copy values it moves when
      // passed by value (a non-ref parameter pattern, e.g. a bare type
      // variable). Uses feeding ref-typed parameters reborrow instead.
      bool Consumable = OwnedNonCopy || Ty->isMutRef();
      bool TieHandled = Ty->isRef() && X >= K; // Output refs get ties.
      for (int I = FirstLine; I < NumLines; ++I) {
        // Consuming uses of (X, Ty) on line I, counting how many were
        // already present before this sync.
        std::vector<Lit> Consuming;
        size_t OldConsuming = 0;
        if (Consumable) {
          for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
            const ApiSig &Sig = Db.get(Active[Kk]);
            if (Sig.Builtin == BuiltinKind::Borrow ||
                Sig.Builtin == BuiltinKind::BorrowMut)
              continue;
            CallSite &Site = Sites[static_cast<size_t>(I)][Kk];
            for (size_t J = 0; J < Site.Slots.size(); ++J) {
              if (!movesOnUse(Ty, RenIn[Kk][J], Traits))
                continue; // Ref-typed parameter: reborrow, not a move.
              size_t Prev = prevSlotCount(I, Kk, J);
              for (size_t Ci = 0; Ci < Site.Slots[J].size(); ++Ci) {
                Candidate &C = Site.Slots[J][Ci];
                if (C.Var == X && C.Ty == Ty) {
                  Consuming.push_back(mkLit(C.U));
                  if (Kk < PrevActive && Ci < Prev)
                    ++OldConsuming;
                }
              }
            }
          }
        }
        if (Consumable) {
          sat::Var VNow = getV(X, Ty, I);
          sat::Var VNext = getV(X, Ty, I + 1);
          // Consumption kills (Rule 5): uses + persistence <= 1.
          // Monotone: re-emit when the consuming set grew.
          // WeakenConsumptionKills is the oracle's injected-bug canary
          // hook (tests only): dropping this cardinality lets consumed
          // values stay available, so the encoder emits use-after-move
          // programs the checker rejects with Ownership errors.
          if (!Opts.WeakenConsumptionKills && !Consuming.empty() &&
              (PairNew || Consuming.size() > OldConsuming)) {
            std::vector<Lit> Card = Consuming;
            Card.push_back(mkLit(VNext));
            Solver.addAtMost(Card, 1);
          }
          if (!TieHandled) {
            // Nothing else kills: V_i => V_{i+1} OR consumed. The
            // consumed-by list is closure-sensitive, so guarded. Output
            // refs get the equivalent persistence from their Rule 6 tie.
            std::vector<Lit> Persist{mkLit(VNow, true), mkLit(VNext)};
            for (Lit C : Consuming)
              Persist.push_back(C);
            addGuarded(Persist);
          }
          if (Ty->isMutRef()) {
            auto &PerLine = MutConsuming[{X, Ty}];
            PerLine.resize(static_cast<size_t>(NumLines));
            PerLine[static_cast<size_t>(I)] = Consuming;
          }
        } else if (!TieHandled && PairNew) {
          // Copy values (including shared refs) persist.
          Solver.addClause(mkLit(getV(X, Ty, I), true),
                           mkLit(getV(X, Ty, I + 1)));
        }
      }
    }
  }

  for (int I = 0; I < NumLines; ++I) {
    std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];
    VarId Out = K + I;
    for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
      const ApiSig &Sig = Db.get(Active[Kk]);
      CallSite &Site = LineSites[Kk];
      if (Site.A == sat::VarUndef)
        continue; // Dead-eliminated: no candidates to tie.
      size_t PrevFirstSlot =
          Site.Slots.empty() ? 0 : prevSlotCount(I, Kk, 0);

      // Mutable borrows require a `let mut` binding (Section 6.2's
      // assignment-to-mutable builtin exists exactly to enable this).
      // Additive per (candidate, let_mut site) pair - but the defining
      // line's let_mut site may itself be dead-eliminated, and a later
      // refinement can revive it. While it is dead the borrow is
      // impossible (guarded ~U, re-asserted each sync so revival can
      // retract it); once both ends exist, the implication is emitted
      // exactly once, when the later of the two appeared.
      if (Sig.Builtin == BuiltinKind::BorrowMut) {
        for (size_t Ci = 0; Ci < Site.Slots[0].size(); ++Ci) {
          Candidate &C = Site.Slots[0][Ci];
          if (C.Var < K)
            continue; // Filtered at candidate creation.
          bool CandNew = Ci >= PrevFirstSlot;
          int DefLine = C.Var - K;
          // Find the let_mut site of the defining line.
          for (size_t K2 = 0; K2 < Active.size(); ++K2) {
            if (Db.get(Active[K2]).Builtin != BuiltinKind::LetMut)
              continue;
            CallSite &Def = Sites[static_cast<size_t>(DefLine)][K2];
            if (Def.A == sat::VarUndef)
              addGuarded({mkLit(C.U, true)});
            else if (CandNew || !wasLive(DefLine, K2))
              Solver.addClause(mkLit(C.U, true), mkLit(Def.A));
          }
        }
      }

      // Rule 6 ties: borrow-created references live exactly while their
      // source lives. Shared refs get both directions, additive per
      // candidate. For mutable refs the "source alive => ref alive"
      // direction only holds until a consuming use moves the &mut out
      // (it is not Copy); the consuming-use list is closure-sensitive,
      // so those clauses are guarded and re-emitted over all candidates
      // each sync.
      auto AddTie = [&](Candidate &C, const Type *RefTy, bool NewCand) {
        bool MutRef = RefTy->isMutRef();
        const std::vector<std::vector<Lit>> *ConsumedBy = nullptr;
        if (MutRef) {
          auto It = MutConsuming.find({Out, RefTy});
          if (It != MutConsuming.end())
            ConsumedBy = &It->second;
        }
        for (int M = I + 2; M <= NumLines; ++M) {
          sat::Var VRef = getV(Out, RefTy, M);
          sat::Var VSrc = getV(C.Var, C.Ty, M);
          // U and ref alive => source alive.
          if (NewCand)
            Solver.addClause(mkLit(C.U, true), mkLit(VRef, true),
                             mkLit(VSrc));
          if (!MutRef) {
            // U and source alive => ref alive (maximal persistence).
            if (NewCand)
              Solver.addClause(mkLit(C.U, true), mkLit(VSrc, true),
                               mkLit(VRef));
            continue;
          }
          // U and source alive => ref alive OR consumed earlier.
          std::vector<Lit> Persist{mkLit(C.U, true), mkLit(VSrc, true),
                                   mkLit(VRef)};
          if (ConsumedBy)
            for (int L = I + 1; L < M; ++L)
              for (Lit CL : (*ConsumedBy)[static_cast<size_t>(L)])
                Persist.push_back(CL);
          addGuarded(Persist);
        }
      };
      if (Sig.Builtin == BuiltinKind::Borrow ||
          Sig.Builtin == BuiltinKind::BorrowMut) {
        bool Mut = Sig.Builtin == BuiltinKind::BorrowMut;
        size_t Begin = Mut ? 0 : PrevFirstSlot;
        for (size_t Ci = Begin; Ci < Site.Slots[0].size(); ++Ci) {
          Candidate &C = Site.Slots[0][Ci];
          AddTie(C, Arena.ref(C.Ty, Mut), Ci >= PrevFirstSlot);
        }
      } else if (!Sig.PropagatesFrom.empty() && RenOut[Kk]->isRef()) {
        bool MutOut = RenOut[Kk]->isMutRef();
        for (int J : Sig.PropagatesFrom) {
          if (J < 0 || static_cast<size_t>(J) >= Site.Slots.size())
            continue;
          size_t Prev = prevSlotCount(I, Kk, static_cast<size_t>(J));
          std::vector<Candidate> &Slot =
              Site.Slots[static_cast<size_t>(J)];
          size_t Begin = MutOut ? 0 : Prev;
          for (size_t Ci = Begin; Ci < Slot.size(); ++Ci)
            if (Slot[Ci].Ty->isRef())
              AddTie(Slot[Ci], RenOut[Kk], Ci >= Prev);
        }
      }
    }
  }

  // Rules 8/9: borrow exclusivity. For each (owner, type): a live &mut
  // forbids later borrows; a live & forbids later &mut. Additive per
  // (first, second) borrow pair: emit when either end is new.
  int NumVarsAll = K + NumLines;
  for (int X = 0; X < NumVarsAll; ++X) {
    for (const Type *Ty : VarTypes[static_cast<size_t>(X)]) {
      if (Ty->isRef())
        continue;
      // Collect per-line borrow uses of (X, Ty).
      struct BorrowUse {
        int Line;
        sat::Var U;
        bool Mut;
        bool New;
      };
      std::vector<BorrowUse> Borrows;
      for (int I = 0; I < NumLines; ++I) {
        for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
          const ApiSig &Sig = Db.get(Active[Kk]);
          if (Sig.Builtin != BuiltinKind::Borrow &&
              Sig.Builtin != BuiltinKind::BorrowMut)
            continue;
          if (Sites[static_cast<size_t>(I)][Kk].A == sat::VarUndef)
            continue; // Dead-eliminated on this line.
          bool Mut = Sig.Builtin == BuiltinKind::BorrowMut;
          size_t Prev = prevSlotCount(I, Kk, 0);
          std::vector<Candidate> &Slot =
              Sites[static_cast<size_t>(I)][Kk].Slots[0];
          for (size_t Ci = 0; Ci < Slot.size(); ++Ci)
            if (Slot[Ci].Var == X && Slot[Ci].Ty == Ty)
              Borrows.push_back(BorrowUse{
                  I, Slot[Ci].U, Mut, Kk >= PrevActive || Ci >= Prev});
        }
      }
      for (const BorrowUse &First : Borrows) {
        const Type *RefTy = Arena.ref(Ty, First.Mut);
        for (const BorrowUse &Second : Borrows) {
          if (Second.Line <= First.Line)
            continue;
          // Rule 8 (mut blocks all) / Rule 9 (shared blocks mut).
          if (!First.Mut && !Second.Mut)
            continue; // Shared borrows coexist.
          if (!First.New && !Second.New)
            continue; // Pair already constrained.
          sat::Var RefAlive =
              getV(K + First.Line, RefTy, Second.Line + 1);
          Solver.addClause(std::vector<Lit>{
              mkLit(First.U, true), mkLit(RefAlive, true),
              mkLit(Second.U, true)});
        }
      }
    }
  }
}

void Encoding::buildRedundancyConstraints() {
  int K = static_cast<int>(Inputs.size());

  // Indices of builtin APIs in Active.
  int LetMutIdx = -1;
  std::vector<size_t> BorrowIdxs;
  for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
    BuiltinKind B = Db.get(Active[Kk]).Builtin;
    if (B == BuiltinKind::LetMut)
      LetMutIdx = static_cast<int>(Kk);
    else if (B == BuiltinKind::Borrow || B == BuiltinKind::BorrowMut)
      BorrowIdxs.push_back(Kk);
  }

  // (1) No move-to-mutable of an already-mutable variable. Additive per
  // (candidate, defining-line let_mut site) pair; while the defining
  // line's let_mut site is dead-eliminated the clause is vacuous (that
  // A is structurally false), so it is emitted when a revival
  // materializes the site.
  if (LetMutIdx >= 0) {
    for (int I = 0; I < NumLines; ++I) {
      CallSite &Mover =
          Sites[static_cast<size_t>(I)][static_cast<size_t>(LetMutIdx)];
      if (Mover.A == sat::VarUndef)
        continue; // Dead-eliminated on this line.
      size_t Prev = prevSlotCount(I, static_cast<size_t>(LetMutIdx), 0);
      std::vector<Candidate> &Slot = Mover.Slots[0];
      for (size_t Ci = 0; Ci < Slot.size(); ++Ci) {
        Candidate &C = Slot[Ci];
        if (C.Var < K)
          continue;
        int DefLine = C.Var - K;
        CallSite &Def = Sites[static_cast<size_t>(DefLine)]
                             [static_cast<size_t>(LetMutIdx)];
        if (Def.A == sat::VarUndef)
          continue; // A dead let_mut can never be chosen there.
        if (Ci >= Prev ||
            !wasLive(DefLine, static_cast<size_t>(LetMutIdx)))
          Solver.addClause(mkLit(C.U, true), mkLit(Def.A, true));
      }
    }
  }

  // (2) At most one mutable borrow of any variable, program-wide.
  // Monotone: re-emit when the list grew past one.
  int NumVarsAll = K + NumLines;
  for (int X = 0; X < NumVarsAll; ++X) {
    for (const Type *Ty : VarTypes[static_cast<size_t>(X)]) {
      std::vector<Lit> MutBorrows;
      size_t OldCount = 0;
      for (int I = 0; I < NumLines; ++I) {
        for (size_t Kk : BorrowIdxs) {
          if (Db.get(Active[Kk]).Builtin != BuiltinKind::BorrowMut)
            continue;
          if (Sites[static_cast<size_t>(I)][Kk].A == sat::VarUndef)
            continue; // Dead-eliminated on this line.
          size_t Prev = prevSlotCount(I, Kk, 0);
          std::vector<Candidate> &Slot =
              Sites[static_cast<size_t>(I)][Kk].Slots[0];
          for (size_t Ci = 0; Ci < Slot.size(); ++Ci)
            if (Slot[Ci].Var == X && Slot[Ci].Ty == Ty) {
              MutBorrows.push_back(mkLit(Slot[Ci].U));
              if (Kk < PrevActive && Ci < Prev)
                ++OldCount;
            }
        }
      }
      if (MutBorrows.size() > 1 && MutBorrows.size() > OldCount)
        Solver.addAtMost(MutBorrows, 1);
    }
  }

  // (3) Every created reference must be used at least once. The use list
  // is closure-sensitive (later refinements add consumers): guarded.
  for (int I = 0; I < NumLines; ++I) {
    for (size_t Kk : BorrowIdxs) {
      if (Sites[static_cast<size_t>(I)][Kk].A == sat::VarUndef)
        continue; // Dead borrow site: nothing is created to use.
      std::vector<Lit> Clause{
          mkLit(Sites[static_cast<size_t>(I)][Kk].A, true)};
      VarId Out = K + I;
      for (int M = I + 1; M < NumLines; ++M) {
        for (size_t K2 = 0; K2 < Active.size(); ++K2) {
          for (auto &Slot : Sites[static_cast<size_t>(M)][K2].Slots)
            for (Candidate &C : Slot)
              if (C.Var == Out)
                Clause.push_back(mkLit(C.U));
        }
      }
      addGuarded(Clause);
    }
  }
}

void Encoding::buildBlockedCombos() {
  for (int I = 0; I < NumLines; ++I) {
    for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
      CallSite &Site = Sites[static_cast<size_t>(I)][Kk];
      // Collect the combos blocked for this API.
      // (Iterate via probe: ApiDatabase exposes membership tests only, so
      // the synthesizer's combos come through isComboBlocked on candidate
      // type tuples. To keep the encoding closed-form we instead intersect
      // per-slot candidate types and test each cross-product lazily below,
      // bounded by slots' distinct-type counts.)
      if (Site.Slots.empty())
        continue;
      std::vector<std::vector<const Type *>> SlotTypes(Site.Slots.size());
      for (size_t J = 0; J < Site.Slots.size(); ++J) {
        std::set<const Type *> Seen;
        for (Candidate &C : Site.Slots[J])
          if (Seen.insert(C.Ty).second)
            SlotTypes[J].push_back(C.Ty); // Insertion order.
      }
      // Enumerate type tuples (bounded: used only for small slot counts).
      size_t Total = 1;
      for (auto &Ts : SlotTypes)
        Total *= std::max<size_t>(Ts.size(), 1);
      if (Total > 4096)
        continue; // Pathological; blocked combos re-checked at codegen.
      for (size_t N = 0; N < Total; ++N) {
        std::vector<const Type *> Combo;
        size_t Rem = N;
        bool Valid = true;
        for (size_t J = 0; J < SlotTypes.size(); ++J) {
          if (SlotTypes[J].empty()) {
            Valid = false;
            break;
          }
          Combo.push_back(SlotTypes[J][Rem % SlotTypes[J].size()]);
          Rem /= SlotTypes[J].size();
        }
        if (!Valid || !Db.isComboBlocked(Active[Kk], Combo))
          continue;
        auto Key = std::make_tuple(I, Active[Kk], Combo);
        auto Existing = ComboAux.find(Key);
        if (Existing != ComboAux.end()) {
          // Already blocked: wire candidates new this sync into the
          // existing aux vars so the block stays complete as slots grow.
          for (size_t J = 0; J < Site.Slots.size(); ++J) {
            size_t Prev = prevSlotCount(I, Kk, J);
            for (size_t Ci = Prev; Ci < Site.Slots[J].size(); ++Ci)
              if (Site.Slots[J][Ci].Ty == Combo[J])
                Solver.addClause(mkLit(Site.Slots[J][Ci].U, true),
                                 mkLit(Existing->second[J]));
          }
          continue;
        }
        // Block: not all slots may simultaneously use these types.
        std::vector<Lit> Clause{mkLit(Site.A, true)};
        std::vector<sat::Var> Aux;
        for (size_t J = 0; J < SlotTypes.size(); ++J) {
          // Aux var S: some candidate of slot J with type Combo[J] used.
          sat::Var S = Solver.newVar();
          for (Candidate &C : Site.Slots[J])
            if (C.Ty == Combo[J])
              Solver.addClause(mkLit(C.U, true), mkLit(S));
          Clause.push_back(mkLit(S, true));
          Aux.push_back(S);
        }
        Solver.addClause(Clause);
        ComboAux.emplace(std::move(Key), std::move(Aux));
      }
    }
  }
}

bool Encoding::nextModel() {
  if (HasModel)
    blockCurrent();
  Solver.setConflictBudget(Opts.SolveConflictBudget);
  if (Gen != sat::VarUndef)
    HasModel = Solver.solve({mkLit(Gen)}) == SolveResult::Sat;
  else
    HasModel = Solver.solve() == SolveResult::Sat;
  return HasModel;
}

void Encoding::recordCurrentSig() {
  ModelSig Sig;
  Sig.Lines.resize(static_cast<size_t>(NumLines));
  for (size_t I = 0; I < Sites.size(); ++I) {
    for (size_t Kk = 0; Kk < Sites[I].size(); ++Kk) {
      CallSite &Site = Sites[I][Kk];
      if (Solver.modelValue(Site.A) != Value::True)
        continue;
      Sig.Lines[I].Api = Active[Kk];
      for (auto &Slot : Site.Slots)
        for (Candidate &C : Slot)
          if (Solver.modelValue(C.U) == Value::True) {
            Sig.Lines[I].Uses.emplace_back(C.Var, C.Ty);
            break;
          }
      break;
    }
  }
  BlockedSigs.push_back(std::move(Sig));
}

void Encoding::blockCurrent() {
  assert(HasModel && "no model to block");
  if (Opts.IncrementalRefinement)
    recordCurrentSig();
  std::vector<Lit> Blocking;
  for (auto &LineSites : Sites) {
    for (CallSite &Site : LineSites) {
      if (Solver.modelValue(Site.A) == Value::True)
        Blocking.push_back(mkLit(Site.A, true));
      for (auto &Slot : Site.Slots)
        for (Candidate &C : Slot)
          if (Solver.modelValue(C.U) == Value::True)
            Blocking.push_back(mkLit(C.U, true));
    }
  }
  Solver.addClause(std::move(Blocking));
  HasModel = false;
}

size_t Encoding::seedBlockedModels(const std::vector<ModelSig> &Sigs) {
  size_t Count = 0;
  for (const ModelSig &Sig : Sigs) {
    if (static_cast<int>(Sig.Lines.size()) != NumLines)
      continue;
    std::vector<Lit> Blocking;
    bool Mapped = true;
    for (int I = 0; I < NumLines && Mapped; ++I) {
      const ModelSig::LinePick &Pick =
          Sig.Lines[static_cast<size_t>(I)];
      auto It = ActiveIndex.find(Pick.Api);
      if (It == ActiveIndex.end()) {
        Mapped = false;
        break;
      }
      CallSite &Site = Sites[static_cast<size_t>(I)][It->second];
      // A dead-eliminated site has no A-variable: the program cannot be
      // synthesized here, so (like a vanished candidate) the signature
      // is dropped.
      if (Site.A == sat::VarUndef ||
          Pick.Uses.size() != Site.Slots.size()) {
        Mapped = false;
        break;
      }
      Blocking.push_back(mkLit(Site.A, true));
      for (size_t J = 0; J < Site.Slots.size(); ++J) {
        sat::Var U = sat::VarUndef;
        for (Candidate &C : Site.Slots[J])
          if (C.Var == Pick.Uses[J].first &&
              C.Ty == Pick.Uses[J].second) {
            U = C.U;
            break;
          }
        if (U == sat::VarUndef) {
          Mapped = false;
          break;
        }
        Blocking.push_back(mkLit(U, true));
      }
    }
    if (!Mapped)
      continue;
    // The U=>A and per-slot exactly-one structure make this clause
    // semantically identical to the blockCurrent() clause of the
    // original model: it excludes exactly that program.
    Solver.addClause(std::move(Blocking));
    BlockedSigs.push_back(Sig);
    ++Count;
  }
  return Count;
}

std::vector<Encoding::ModelSig> Encoding::takeBlockedModels() {
  if (HasModel) {
    if (Opts.IncrementalRefinement)
      recordCurrentSig();
    HasModel = false;
  }
  return std::move(BlockedSigs);
}

Program Encoding::decode() const {
  assert(HasModel && "decode requires a current model");
  int K = static_cast<int>(Inputs.size());
  Program P;
  P.Inputs = Inputs;

  // Predicted types per variable (the codeGen prediction of Section 5.3).
  std::vector<const Type *> Predicted(static_cast<size_t>(K + NumLines),
                                      nullptr);
  for (int X = 0; X < K; ++X)
    Predicted[static_cast<size_t>(X)] = Inputs[static_cast<size_t>(X)].Ty;

  for (int I = 0; I < NumLines; ++I) {
    const std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];
    int Chosen = -1;
    for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
      if (Solver.modelValue(LineSites[Kk].A) == Value::True) {
        Chosen = static_cast<int>(Kk);
        break;
      }
    }
    assert(Chosen >= 0 && "model must select an API per line");
    const CallSite &Site = LineSites[static_cast<size_t>(Chosen)];
    const ApiSig &Sig = Db.get(Active[static_cast<size_t>(Chosen)]);

    Stmt S;
    S.Api = Active[static_cast<size_t>(Chosen)];
    S.Out = K + I;
    for (const auto &Slot : Site.Slots) {
      for (const Candidate &C : Slot) {
        if (Solver.modelValue(C.U) == Value::True) {
          S.Args.push_back(C.Var);
          break;
        }
      }
    }
    assert(S.Args.size() == Sig.Inputs.size() &&
           "every slot must be filled");

    // Predict the declared output type from predicted argument types.
    const Type *Decl = nullptr;
    switch (Sig.Builtin) {
    case BuiltinKind::LetMut:
      Decl = Predicted[static_cast<size_t>(S.Args[0])];
      break;
    case BuiltinKind::Borrow:
      Decl = Arena.ref(Predicted[static_cast<size_t>(S.Args[0])], false);
      break;
    case BuiltinKind::BorrowMut:
      Decl = Arena.ref(Predicted[static_cast<size_t>(S.Args[0])], true);
      break;
    case BuiltinKind::None: {
      // Deliberately not routed through the probe helpers: this is the
      // one unification that needs the accumulated substitution (each
      // argument extends Pred toward the output prediction), not a
      // boolean compatibility answer.
      Substitution Pred;
      for (size_t J = 0; J < S.Args.size(); ++J) {
        const Type *ArgTy = Predicted[static_cast<size_t>(S.Args[J])];
        Substitution Attempt = Pred;
        if (unifiable(ArgTy, RenIn[static_cast<size_t>(Chosen)][J],
                      Attempt))
          Pred = Attempt;
      }
      Decl = applySubst(Arena, RenOut[static_cast<size_t>(Chosen)], Pred);
      break;
    }
    }
    Predicted[static_cast<size_t>(S.Out)] = Decl;
    S.DeclType = Decl;
    P.Stmts.push_back(std::move(S));
  }
  return P;
}

bool Encoding::pathCheckOk(const Program &P, const ApiDatabase &Db,
                           const TraitEnv &Traits) {
  int NumVars = P.numVars();
  std::vector<bool> Consumed(static_cast<size_t>(NumVars), false);
  std::vector<std::vector<VarId>> Roots(static_cast<size_t>(NumVars));

  for (const Stmt &S : P.Stmts) {
    const ApiSig &Sig = Db.get(S.Api);
    // Rule 7: no argument may ride on a consumed root.
    for (VarId A : S.Args) {
      for (VarId R : Roots[static_cast<size_t>(A)])
        if (Consumed[static_cast<size_t>(R)])
          return false;
    }
    bool IsBorrow = Sig.Builtin == BuiltinKind::Borrow ||
                    Sig.Builtin == BuiltinKind::BorrowMut;
    if (!IsBorrow) {
      for (size_t J = 0; J < S.Args.size(); ++J) {
        VarId A = S.Args[J];
        const Type *Ty = nullptr;
        if (A < static_cast<VarId>(P.Inputs.size()))
          Ty = P.Inputs[static_cast<size_t>(A)].Ty;
        else
          Ty = P.Stmts[static_cast<size_t>(A) - P.Inputs.size()].DeclType;
        // Same move discipline as the checker: owned non-Copy values and
        // `&mut` passed by value consume; ref-pattern uses reborrow.
        if (Ty && J < Sig.Inputs.size() &&
            movesOnUse(Ty, Sig.Inputs[J], Traits))
          Consumed[static_cast<size_t>(A)] = true;
      }
    }
    // Root propagation.
    auto RootsOf = [&](VarId A) -> std::vector<VarId> {
      if (Roots[static_cast<size_t>(A)].empty())
        return {A};
      return Roots[static_cast<size_t>(A)];
    };
    if (IsBorrow) {
      Roots[static_cast<size_t>(S.Out)] = RootsOf(S.Args[0]);
    } else {
      // Dedup: diamond-shaped borrow chains would otherwise accumulate
      // duplicate roots (mirrors the checker's AddRoot).
      std::vector<VarId> &OutRoots = Roots[static_cast<size_t>(S.Out)];
      for (int J : Sig.PropagatesFrom) {
        if (J < 0 || static_cast<size_t>(J) >= S.Args.size())
          continue;
        for (VarId R : RootsOf(S.Args[static_cast<size_t>(J)]))
          if (std::find(OutRoots.begin(), OutRoots.end(), R) ==
              OutRoots.end())
            OutRoots.push_back(R);
      }
    }
  }
  return true;
}
