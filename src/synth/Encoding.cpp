//===--- Encoding.cpp - SAT encoding of the synthesis space ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Liveness discipline (refining Figure 14 into a deterministic model):
///
///   * owned non-Copy values: V_{i+1} <=> V_i AND not-consumed-at-i, via
///     the Rule 5/appendix-rule-10 cardinality (consumption kills) plus a
///     persistence clause (nothing else kills);
///   * Copy values and template-provided references: persist to the end;
///   * borrow-created and propagation-created references: alive exactly
///     while their immediate source is alive (Rule 6 both directions);
///     paths through owned wrappers are checked post-hoc (Rule 7).
///
/// Forcing persistence matters for soundness: if availability could be
/// dropped spuriously, the solver could "forget" an active &mut borrow and
/// slip past the Rule 8/9 exclusivity clauses.
///
//===----------------------------------------------------------------------===//

#include "synth/Encoding.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::sat;
using namespace syrust::synth;
using namespace syrust::types;

Encoding::Encoding(TypeArena &Arena, const TraitEnv &Traits,
                   const ApiDatabase &Db,
                   const std::vector<TemplateInput> &Inputs, int NumLines,
                   const SynthOptions &Opts)
    : Arena(Arena), Traits(Traits), Db(Db), Inputs(Inputs),
      NumLines(NumLines), Opts(Opts) {
  Solver.setRandomSeed(Opts.SolverSeed);
  build();
}

const Type *Encoding::renamedInput(ApiId F, size_t J) const {
  for (size_t K = 0; K < Active.size(); ++K)
    if (Active[K] == F)
      return RenIn[K][J];
  return nullptr;
}

const Type *Encoding::renamedOutput(ApiId F) const {
  for (size_t K = 0; K < Active.size(); ++K)
    if (Active[K] == F)
      return RenOut[K];
  return nullptr;
}

bool Encoding::isOwnedNonCopy(const Type *Ty) const {
  return !Ty->isRef() && !Traits.isCopy(Ty);
}

sat::Var Encoding::getV(VarId X, const Type *Ty, int Line) {
  auto Key = std::make_tuple(X, Ty, Line);
  auto It = VMap.find(Key);
  if (It != VMap.end())
    return It->second;
  sat::Var V = Solver.newVar();
  VMap.emplace(Key, V);
  return V;
}

bool Encoding::hasV(VarId X, const Type *Ty, int Line) const {
  return VMap.count(std::make_tuple(X, Ty, Line)) != 0;
}

void Encoding::build() {
  Active = Db.activeIds();
  RenIn.resize(Active.size());
  RenOut.resize(Active.size());
  for (size_t K = 0; K < Active.size(); ++K) {
    const ApiSig &Sig = Db.get(Active[K]);
    std::string Suffix = format("a%d", Active[K]);
    for (const Type *In : Sig.Inputs)
      RenIn[K].push_back(renameVars(Arena, In, Suffix));
    RenOut[K] = renameVars(Arena, Sig.Output, Suffix);
  }
  buildTypeUniverse();
  buildCallSites();
  buildContextConstraints();
  if (Opts.SemanticAware) {
    buildSemanticConstraints();
    buildRedundancyConstraints();
  }
  buildBlockedCombos();
  VarCount = static_cast<size_t>(Solver.numVars());
}

void Encoding::buildTypeUniverse() {
  // NOTE: all collections here iterate in *insertion* order - never in
  // pointer order - so encodings (and therefore enumeration order and
  // every experiment table) are reproducible across processes.
  int K = static_cast<int>(Inputs.size());
  VarTypes.assign(static_cast<size_t>(K + NumLines), {});
  for (int X = 0; X < K; ++X)
    VarTypes[static_cast<size_t>(X)] = {Inputs[static_cast<size_t>(X)].Ty};

  // Types available strictly before each line, grown monotonically.
  std::vector<const Type *> Avail;
  std::set<const Type *> AvailSeen;
  auto AddAvail = [&](const Type *Ty) {
    if (AvailSeen.insert(Ty).second)
      Avail.push_back(Ty);
  };
  for (int X = 0; X < K; ++X)
    AddAvail(Inputs[static_cast<size_t>(X)].Ty);

  for (int I = 0; I < NumLines; ++I) {
    std::vector<const Type *> OutTys;
    std::set<const Type *> OutSeen;
    auto AddOut = [&](const Type *Ty) {
      if (OutSeen.insert(Ty).second)
        OutTys.push_back(Ty);
    };
    for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
      const ApiSig &Sig = Db.get(Active[Kk]);
      if (Sig.Builtin == BuiltinKind::None) {
        AddOut(RenOut[Kk]);
        continue;
      }
      // Builtins derive their output from the chosen argument type.
      for (const Type *Ty : Avail) {
        if (Ty->isRef())
          continue; // Encoder restriction: builtins act on non-refs.
        switch (Sig.Builtin) {
        case BuiltinKind::LetMut:
          AddOut(Ty);
          break;
        case BuiltinKind::Borrow:
          AddOut(Arena.ref(Ty, /*Mutable=*/false));
          break;
        case BuiltinKind::BorrowMut:
          AddOut(Arena.ref(Ty, /*Mutable=*/true));
          break;
        case BuiltinKind::None:
          break;
        }
      }
    }
    VarTypes[static_cast<size_t>(K + I)] = OutTys;
    for (const Type *Ty : OutTys)
      AddAvail(Ty);
  }
}

void Encoding::buildCallSites() {
  int K = static_cast<int>(Inputs.size());
  Sites.assign(static_cast<size_t>(NumLines), {});
  for (int I = 0; I < NumLines; ++I) {
    std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];
    LineSites.resize(Active.size());
    for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
      const ApiSig &Sig = Db.get(Active[Kk]);
      CallSite &Site = LineSites[Kk];
      Site.A = Solver.newVar();
      Site.Slots.resize(Sig.Inputs.size());
      for (size_t J = 0; J < Sig.Inputs.size(); ++J) {
        const Type *Pattern = RenIn[Kk][J];
        for (int X = 0; X < K + I; ++X) {
          for (const Type *Ty : VarTypes[static_cast<size_t>(X)]) {
            if (Sig.Builtin != BuiltinKind::None && Ty->isRef())
              continue; // Builtins act on non-reference values.
            if (Opts.SemanticAware &&
                Sig.Builtin == BuiltinKind::BorrowMut && X < K)
              continue; // Template bindings are immutable (no `mut`).
            Substitution Probe;
            if (!unifiable(Ty, Pattern, Probe))
              continue;
            Candidate C;
            C.Var = X;
            C.Ty = Ty;
            C.U = Solver.newVar();
            Site.Slots[J].push_back(C);
            ++TotalCandidates;
          }
        }
      }
    }
  }
}

void Encoding::buildContextConstraints() {
  int K = static_cast<int>(Inputs.size());

  // Template availability at line 0 plus V-propagation for all variables.
  for (int X = 0; X < K; ++X)
    Solver.addClause(mkLit(getV(X, Inputs[static_cast<size_t>(X)].Ty, 0)));
  for (int X = 0; X < K; ++X) {
    const Type *Ty = Inputs[static_cast<size_t>(X)].Ty;
    for (int I = 1; I <= NumLines; ++I)
      Solver.addClause(mkLit(getV(X, Ty, I), true),
                       mkLit(getV(X, Ty, I - 1)));
  }
  for (int J = 0; J < NumLines; ++J) {
    for (const Type *Ty : VarTypes[static_cast<size_t>(K + J)]) {
      for (int I = J + 2; I <= NumLines; ++I)
        Solver.addClause(mkLit(getV(K + J, Ty, I), true),
                         mkLit(getV(K + J, Ty, I - 1)));
    }
  }

  for (int I = 0; I < NumLines; ++I) {
    std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];

    // Exactly one API per line.
    std::vector<Lit> ALits;
    for (CallSite &Site : LineSites)
      ALits.push_back(mkLit(Site.A));
    Solver.addExactly(ALits, 1);

    // Use-variable wiring.
    for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
      CallSite &Site = LineSites[Kk];
      for (size_t J = 0; J < Site.Slots.size(); ++J) {
        std::vector<Candidate> &Slot = Site.Slots[J];
        if (Slot.empty()) {
          // An input cannot be filled: the API is unusable on this line.
          Solver.addClause(mkLit(Site.A, true));
          continue;
        }
        std::vector<Lit> AtLeast{mkLit(Site.A, true)};
        std::vector<Lit> ULits;
        for (Candidate &C : Slot) {
          Solver.addClause(mkLit(C.U, true), mkLit(Site.A)); // U => A
          Solver.addClause(mkLit(C.U, true),
                           mkLit(getV(C.Var, C.Ty, I))); // U => V
          AtLeast.push_back(mkLit(C.U));
          ULits.push_back(mkLit(C.U));
        }
        Solver.addClause(AtLeast);      // A => some candidate used.
        Solver.addAtMost(ULits, 1);     // At most one per slot.
      }

      // Pairwise compatibility across slots (Definition 2(3) + Rule 4).
      for (size_t J1 = 0; J1 < Site.Slots.size(); ++J1) {
        for (size_t J2 = J1 + 1; J2 < Site.Slots.size(); ++J2) {
          for (Candidate &C1 : Site.Slots[J1]) {
            for (Candidate &C2 : Site.Slots[J2]) {
              bool Compatible = true;
              if (C1.Var == C2.Var && !C1.Ty->isPrim() &&
                  !C1.Ty->isSharedRef()) {
                Compatible = false; // Rule 4: no owned/mut aliasing.
              } else {
                Substitution Joint;
                Compatible =
                    unifiable(C1.Ty, RenIn[Kk][J1], Joint) &&
                    unifiable(C2.Ty, RenIn[Kk][J2], Joint);
              }
              if (!Compatible)
                Solver.addClause(mkLit(C1.U, true), mkLit(C2.U, true));
            }
          }
        }
      }
    }

    // Output creation: V(o_i, tau, i+1) <=> OR(triggers).
    VarId Out = K + I;
    for (const Type *Ty : VarTypes[static_cast<size_t>(Out)]) {
      std::vector<Lit> Triggers;
      for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
        const ApiSig &Sig = Db.get(Active[Kk]);
        if (Sig.Builtin == BuiltinKind::None) {
          if (RenOut[Kk] == Ty)
            Triggers.push_back(mkLit(LineSites[Kk].A));
          continue;
        }
        for (Candidate &C : LineSites[Kk].Slots[0]) {
          const Type *Derived = nullptr;
          switch (Sig.Builtin) {
          case BuiltinKind::LetMut:
            Derived = C.Ty;
            break;
          case BuiltinKind::Borrow:
            Derived = Arena.ref(C.Ty, false);
            break;
          case BuiltinKind::BorrowMut:
            Derived = Arena.ref(C.Ty, true);
            break;
          case BuiltinKind::None:
            break;
          }
          if (Derived == Ty)
            Triggers.push_back(mkLit(C.U));
        }
      }
      sat::Var V = getV(Out, Ty, I + 1);
      if (Triggers.empty()) {
        Solver.addClause(mkLit(V, true));
        continue;
      }
      std::vector<Lit> VImplies{mkLit(V, true)};
      for (Lit T : Triggers) {
        VImplies.push_back(T);
        Solver.addClause(~T, mkLit(V)); // trigger => V
      }
      Solver.addClause(VImplies); // V => some trigger.
    }
  }
}

void Encoding::buildSemanticConstraints() {
  int K = static_cast<int>(Inputs.size());
  int NumVars = K + NumLines;

  // Classify each (var, type) pair and collect its use variables per line.
  for (int X = 0; X < NumVars; ++X) {
    int FirstLine = X < K ? 0 : X - K + 1;
    for (const Type *Ty : VarTypes[static_cast<size_t>(X)]) {
      bool OwnedNonCopy = isOwnedNonCopy(Ty);
      bool TieHandled = Ty->isRef() && X >= K; // Output refs get ties.
      for (int I = FirstLine; I < NumLines; ++I) {
        // Consuming uses of (X, Ty) on line I.
        std::vector<Lit> Consuming;
        for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
          const ApiSig &Sig = Db.get(Active[Kk]);
          if (Sig.Builtin == BuiltinKind::Borrow ||
              Sig.Builtin == BuiltinKind::BorrowMut)
            continue;
          for (auto &Slot : Sites[static_cast<size_t>(I)][Kk].Slots)
            for (Candidate &C : Slot)
              if (C.Var == X && C.Ty == Ty)
                Consuming.push_back(mkLit(C.U));
        }
        sat::Var VNow = getV(X, Ty, I);
        sat::Var VNext = getV(X, Ty, I + 1);
        if (OwnedNonCopy) {
          // Consumption kills (Rule 5): uses + persistence <= 1.
          std::vector<Lit> Card = Consuming;
          Card.push_back(mkLit(VNext));
          Solver.addAtMost(Card, 1);
          // Nothing else kills: V_i => V_{i+1} OR consumed.
          std::vector<Lit> Persist{mkLit(VNow, true), mkLit(VNext)};
          for (Lit C : Consuming)
            Persist.push_back(C);
          Solver.addClause(Persist);
        } else if (!TieHandled) {
          // Copy values and template references persist.
          Solver.addClause(mkLit(VNow, true), mkLit(VNext));
        }
      }
    }
  }

  for (int I = 0; I < NumLines; ++I) {
    std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];
    VarId Out = K + I;
    for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
      const ApiSig &Sig = Db.get(Active[Kk]);
      CallSite &Site = LineSites[Kk];

      // Mutable borrows require a `let mut` binding (Section 6.2's
      // assignment-to-mutable builtin exists exactly to enable this).
      if (Sig.Builtin == BuiltinKind::BorrowMut) {
        for (Candidate &C : Site.Slots[0]) {
          if (C.Var < K)
            continue; // Filtered at candidate creation.
          int DefLine = C.Var - K;
          // Find the let_mut site of the defining line.
          for (size_t K2 = 0; K2 < Active.size(); ++K2) {
            if (Db.get(Active[K2]).Builtin == BuiltinKind::LetMut) {
              Solver.addClause(
                  mkLit(C.U, true),
                  mkLit(Sites[static_cast<size_t>(DefLine)][K2].A));
            }
          }
        }
      }

      // Rule 6 ties: borrow-created references live exactly while their
      // source lives.
      auto AddTie = [&](Candidate &C, const Type *RefTy) {
        for (int M = I + 2; M <= NumLines; ++M) {
          sat::Var VRef = getV(Out, RefTy, M);
          sat::Var VSrc = getV(C.Var, C.Ty, M);
          // U and ref alive => source alive.
          Solver.addClause(mkLit(C.U, true), mkLit(VRef, true),
                           mkLit(VSrc));
          // U and source alive => ref alive (maximal persistence).
          Solver.addClause(mkLit(C.U, true), mkLit(VSrc, true),
                           mkLit(VRef));
        }
      };
      if (Sig.Builtin == BuiltinKind::Borrow ||
          Sig.Builtin == BuiltinKind::BorrowMut) {
        bool Mut = Sig.Builtin == BuiltinKind::BorrowMut;
        for (Candidate &C : Site.Slots[0])
          AddTie(C, Arena.ref(C.Ty, Mut));
      } else if (!Sig.PropagatesFrom.empty() && RenOut[Kk]->isRef()) {
        for (int J : Sig.PropagatesFrom) {
          if (J < 0 || static_cast<size_t>(J) >= Site.Slots.size())
            continue;
          for (Candidate &C : Site.Slots[static_cast<size_t>(J)])
            if (C.Ty->isRef())
              AddTie(C, RenOut[Kk]);
        }
      }
    }
  }

  // Rules 8/9: borrow exclusivity. For each (owner, type): a live &mut
  // forbids later borrows; a live & forbids later &mut.
  int NumVarsAll = K + NumLines;
  for (int X = 0; X < NumVarsAll; ++X) {
    for (const Type *Ty : VarTypes[static_cast<size_t>(X)]) {
      if (Ty->isRef())
        continue;
      // Collect per-line borrow uses of (X, Ty).
      struct BorrowUse {
        int Line;
        sat::Var U;
        bool Mut;
      };
      std::vector<BorrowUse> Borrows;
      for (int I = 0; I < NumLines; ++I) {
        for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
          const ApiSig &Sig = Db.get(Active[Kk]);
          if (Sig.Builtin != BuiltinKind::Borrow &&
              Sig.Builtin != BuiltinKind::BorrowMut)
            continue;
          bool Mut = Sig.Builtin == BuiltinKind::BorrowMut;
          for (Candidate &C : Sites[static_cast<size_t>(I)][Kk].Slots[0])
            if (C.Var == X && C.Ty == Ty)
              Borrows.push_back(BorrowUse{I, C.U, Mut});
        }
      }
      for (const BorrowUse &First : Borrows) {
        const Type *RefTy = Arena.ref(Ty, First.Mut);
        for (const BorrowUse &Second : Borrows) {
          if (Second.Line <= First.Line)
            continue;
          // Rule 8 (mut blocks all) / Rule 9 (shared blocks mut).
          if (!First.Mut && !Second.Mut)
            continue; // Shared borrows coexist.
          sat::Var RefAlive =
              getV(K + First.Line, RefTy, Second.Line + 1);
          Solver.addClause(std::vector<Lit>{
              mkLit(First.U, true), mkLit(RefAlive, true),
              mkLit(Second.U, true)});
        }
      }
    }
  }
}

void Encoding::buildRedundancyConstraints() {
  int K = static_cast<int>(Inputs.size());

  // Indices of builtin APIs in Active.
  int LetMutIdx = -1;
  std::vector<size_t> BorrowIdxs;
  for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
    BuiltinKind B = Db.get(Active[Kk]).Builtin;
    if (B == BuiltinKind::LetMut)
      LetMutIdx = static_cast<int>(Kk);
    else if (B == BuiltinKind::Borrow || B == BuiltinKind::BorrowMut)
      BorrowIdxs.push_back(Kk);
  }

  // (1) No move-to-mutable of an already-mutable variable.
  if (LetMutIdx >= 0) {
    for (int I = 0; I < NumLines; ++I) {
      for (Candidate &C :
           Sites[static_cast<size_t>(I)][static_cast<size_t>(LetMutIdx)]
               .Slots[0]) {
        if (C.Var < K)
          continue;
        int DefLine = C.Var - K;
        Solver.addClause(
            mkLit(C.U, true),
            mkLit(Sites[static_cast<size_t>(DefLine)]
                       [static_cast<size_t>(LetMutIdx)]
                           .A,
                  true));
      }
    }
  }

  // (2) At most one mutable borrow of any variable, program-wide.
  int NumVarsAll = K + NumLines;
  for (int X = 0; X < NumVarsAll; ++X) {
    for (const Type *Ty : VarTypes[static_cast<size_t>(X)]) {
      std::vector<Lit> MutBorrows;
      for (int I = 0; I < NumLines; ++I) {
        for (size_t Kk : BorrowIdxs) {
          if (Db.get(Active[Kk]).Builtin != BuiltinKind::BorrowMut)
            continue;
          for (Candidate &C : Sites[static_cast<size_t>(I)][Kk].Slots[0])
            if (C.Var == X && C.Ty == Ty)
              MutBorrows.push_back(mkLit(C.U));
        }
      }
      if (MutBorrows.size() > 1)
        Solver.addAtMost(MutBorrows, 1);
    }
  }

  // (3) Every created reference must be used at least once.
  for (int I = 0; I < NumLines; ++I) {
    for (size_t Kk : BorrowIdxs) {
      std::vector<Lit> Clause{
          mkLit(Sites[static_cast<size_t>(I)][Kk].A, true)};
      VarId Out = K + I;
      for (int M = I + 1; M < NumLines; ++M) {
        for (size_t K2 = 0; K2 < Active.size(); ++K2) {
          for (auto &Slot : Sites[static_cast<size_t>(M)][K2].Slots)
            for (Candidate &C : Slot)
              if (C.Var == Out)
                Clause.push_back(mkLit(C.U));
        }
      }
      Solver.addClause(Clause);
    }
  }
}

void Encoding::buildBlockedCombos() {
  for (int I = 0; I < NumLines; ++I) {
    for (size_t Kk = 0; Kk < Active.size(); ++Kk) {
      const ApiSig &Sig = Db.get(Active[Kk]);
      (void)Sig;
      CallSite &Site = Sites[static_cast<size_t>(I)][Kk];
      // Collect the combos blocked for this API.
      // (Iterate via probe: ApiDatabase exposes membership tests only, so
      // the synthesizer's combos come through isComboBlocked on candidate
      // type tuples. To keep the encoding closed-form we instead intersect
      // per-slot candidate types and test each cross-product lazily below,
      // bounded by slots' distinct-type counts.)
      if (Site.Slots.empty())
        continue;
      std::vector<std::vector<const Type *>> SlotTypes(Site.Slots.size());
      for (size_t J = 0; J < Site.Slots.size(); ++J) {
        std::set<const Type *> Seen;
        for (Candidate &C : Site.Slots[J])
          if (Seen.insert(C.Ty).second)
            SlotTypes[J].push_back(C.Ty); // Insertion order.
      }
      // Enumerate type tuples (bounded: used only for small slot counts).
      std::vector<size_t> Idx(Site.Slots.size(), 0);
      size_t Total = 1;
      for (auto &Ts : SlotTypes)
        Total *= std::max<size_t>(Ts.size(), 1);
      if (Total > 4096)
        continue; // Pathological; blocked combos re-checked at codegen.
      for (size_t N = 0; N < Total; ++N) {
        std::vector<const Type *> Combo;
        size_t Rem = N;
        bool Valid = true;
        for (size_t J = 0; J < SlotTypes.size(); ++J) {
          if (SlotTypes[J].empty()) {
            Valid = false;
            break;
          }
          Combo.push_back(SlotTypes[J][Rem % SlotTypes[J].size()]);
          Rem /= SlotTypes[J].size();
        }
        if (!Valid || !Db.isComboBlocked(Active[Kk], Combo))
          continue;
        // Block: not all slots may simultaneously use these types.
        std::vector<Lit> Clause{mkLit(Site.A, true)};
        for (size_t J = 0; J < SlotTypes.size(); ++J) {
          // Aux var S: some candidate of slot J with type Combo[J] used.
          sat::Var S = Solver.newVar();
          for (Candidate &C : Site.Slots[J])
            if (C.Ty == Combo[J])
              Solver.addClause(mkLit(C.U, true), mkLit(S));
          Clause.push_back(mkLit(S, true));
        }
        Solver.addClause(Clause);
      }
    }
  }
}

bool Encoding::nextModel() {
  if (HasModel)
    blockCurrent();
  Solver.setConflictBudget(Opts.SolveConflictBudget);
  HasModel = Solver.solve() == SolveResult::Sat;
  return HasModel;
}

void Encoding::blockCurrent() {
  assert(HasModel && "no model to block");
  std::vector<Lit> Blocking;
  for (auto &LineSites : Sites) {
    for (CallSite &Site : LineSites) {
      if (Solver.modelValue(Site.A) == Value::True)
        Blocking.push_back(mkLit(Site.A, true));
      for (auto &Slot : Site.Slots)
        for (Candidate &C : Slot)
          if (Solver.modelValue(C.U) == Value::True)
            Blocking.push_back(mkLit(C.U, true));
    }
  }
  Solver.addClause(std::move(Blocking));
  HasModel = false;
}

Program Encoding::decode() const {
  assert(HasModel && "decode requires a current model");
  int K = static_cast<int>(Inputs.size());
  Program P;
  P.Inputs = Inputs;

  // Predicted types per variable (the codeGen prediction of Section 5.3).
  std::vector<const Type *> Predicted(static_cast<size_t>(K + NumLines),
                                      nullptr);
  for (int X = 0; X < K; ++X)
    Predicted[static_cast<size_t>(X)] = Inputs[static_cast<size_t>(X)].Ty;

  for (int I = 0; I < NumLines; ++I) {
    const std::vector<CallSite> &LineSites = Sites[static_cast<size_t>(I)];
    int Chosen = -1;
    for (size_t Kk = 0; Kk < LineSites.size(); ++Kk) {
      if (Solver.modelValue(LineSites[Kk].A) == Value::True) {
        Chosen = static_cast<int>(Kk);
        break;
      }
    }
    assert(Chosen >= 0 && "model must select an API per line");
    const CallSite &Site = LineSites[static_cast<size_t>(Chosen)];
    const ApiSig &Sig = Db.get(Active[static_cast<size_t>(Chosen)]);

    Stmt S;
    S.Api = Active[static_cast<size_t>(Chosen)];
    S.Out = K + I;
    for (const auto &Slot : Site.Slots) {
      for (const Candidate &C : Slot) {
        if (Solver.modelValue(C.U) == Value::True) {
          S.Args.push_back(C.Var);
          break;
        }
      }
    }
    assert(S.Args.size() == Sig.Inputs.size() &&
           "every slot must be filled");

    // Predict the declared output type from predicted argument types.
    const Type *Decl = nullptr;
    switch (Sig.Builtin) {
    case BuiltinKind::LetMut:
      Decl = Predicted[static_cast<size_t>(S.Args[0])];
      break;
    case BuiltinKind::Borrow:
      Decl = Arena.ref(Predicted[static_cast<size_t>(S.Args[0])], false);
      break;
    case BuiltinKind::BorrowMut:
      Decl = Arena.ref(Predicted[static_cast<size_t>(S.Args[0])], true);
      break;
    case BuiltinKind::None: {
      Substitution Pred;
      for (size_t J = 0; J < S.Args.size(); ++J) {
        const Type *ArgTy = Predicted[static_cast<size_t>(S.Args[J])];
        Substitution Attempt = Pred;
        if (unifiable(ArgTy, RenIn[static_cast<size_t>(Chosen)][J],
                      Attempt))
          Pred = Attempt;
      }
      Decl = applySubst(Arena, RenOut[static_cast<size_t>(Chosen)], Pred);
      break;
    }
    }
    Predicted[static_cast<size_t>(S.Out)] = Decl;
    S.DeclType = Decl;
    P.Stmts.push_back(std::move(S));
  }
  return P;
}

bool Encoding::pathCheckOk(const Program &P, const ApiDatabase &Db,
                           const TraitEnv &Traits) {
  int NumVars = P.numVars();
  std::vector<bool> Consumed(static_cast<size_t>(NumVars), false);
  std::vector<std::vector<VarId>> Roots(static_cast<size_t>(NumVars));

  for (const Stmt &S : P.Stmts) {
    const ApiSig &Sig = Db.get(S.Api);
    // Rule 7: no argument may ride on a consumed root.
    for (VarId A : S.Args) {
      for (VarId R : Roots[static_cast<size_t>(A)])
        if (Consumed[static_cast<size_t>(R)])
          return false;
    }
    bool IsBorrow = Sig.Builtin == BuiltinKind::Borrow ||
                    Sig.Builtin == BuiltinKind::BorrowMut;
    if (!IsBorrow) {
      for (VarId A : S.Args) {
        const Type *Ty = nullptr;
        if (A < static_cast<VarId>(P.Inputs.size()))
          Ty = P.Inputs[static_cast<size_t>(A)].Ty;
        else
          Ty = P.Stmts[static_cast<size_t>(A) - P.Inputs.size()].DeclType;
        if (Ty && !Ty->isRef() && !Traits.isCopy(Ty))
          Consumed[static_cast<size_t>(A)] = true;
      }
    }
    // Root propagation.
    auto RootsOf = [&](VarId A) -> std::vector<VarId> {
      if (Roots[static_cast<size_t>(A)].empty())
        return {A};
      return Roots[static_cast<size_t>(A)];
    };
    if (IsBorrow) {
      Roots[static_cast<size_t>(S.Out)] = RootsOf(S.Args[0]);
    } else {
      for (int J : Sig.PropagatesFrom) {
        if (J < 0 || static_cast<size_t>(J) >= S.Args.size())
          continue;
        for (VarId R : RootsOf(S.Args[static_cast<size_t>(J)]))
          Roots[static_cast<size_t>(S.Out)].push_back(R);
      }
    }
  }
  return true;
}
