//===--- SeenPrograms.h - Collision-checked duplicate net ------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesizer's last-resort duplicate net. A bare 64-bit
/// structural-hash set silently drops a *distinct* program whenever two
/// programs collide; over campaign-scale enumeration that is a real (if
/// rare) coverage hole, and it is invisible. This net verifies every
/// hash hit against the stored canonical keys of the bucket: a key match
/// is a genuine duplicate, a mismatch is a true collision - the program
/// is still emitted and the collision is counted
/// (SynthStats::HashCollisions, `synth.hash_collisions`).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SYNTH_SEENPROGRAMS_H
#define SYRUST_SYNTH_SEENPROGRAMS_H

#include "program/Program.h"
#include "support/StringUtils.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace syrust::synth {

enum class SeenOutcome {
  Fresh,     ///< Never seen: recorded, emit the program.
  Duplicate, ///< Same canonical key already recorded: skip.
  Collision, ///< Hash hit but distinct key: recorded, emit, count.
};

class SeenPrograms {
public:
  /// Canonical structural key, covering exactly what Program::hash()
  /// covers (API ids, argument wiring, statement count) so a key match
  /// is precisely "the hash told the truth".
  static std::string canonicalKey(const program::Program &P) {
    std::string Key;
    for (const program::Stmt &S : P.Stmts) {
      Key += format("%d(", S.Api);
      for (size_t J = 0; J < S.Args.size(); ++J)
        Key += format(J ? ",%d" : "%d", S.Args[J]);
      Key += ')';
    }
    return Key;
  }

  SeenOutcome note(const program::Program &P) {
    return noteKeyed(P.hash(), canonicalKey(P));
  }

  /// Test seam: feed a forced hash with an arbitrary key to exercise the
  /// collision path without manufacturing a real 64-bit collision.
  SeenOutcome noteKeyed(uint64_t Hash, std::string Key) {
    auto [It, Inserted] = Buckets.try_emplace(Hash);
    std::vector<std::string> &Bucket = It->second;
    if (Inserted) {
      Bucket.push_back(std::move(Key));
      return SeenOutcome::Fresh;
    }
    for (const std::string &Existing : Bucket)
      if (Existing == Key)
        return SeenOutcome::Duplicate;
    Bucket.push_back(std::move(Key));
    return SeenOutcome::Collision;
  }

  void reserve(size_t N) { Buckets.reserve(N); }

private:
  /// Hash -> canonical keys of every distinct program seen with it.
  /// Unordered on purpose: membership is all that is ever asked.
  std::unordered_map<uint64_t, std::vector<std::string>> Buckets;
};

} // namespace syrust::synth

#endif // SYRUST_SYNTH_SEENPROGRAMS_H
