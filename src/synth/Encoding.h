//===--- Encoding.h - SAT encoding of the synthesis space ------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the SAT formula of Section 4 / Appendix C for programs of one
/// fixed length over the current API database, and decodes models back to
/// programs.
///
/// Variable families (Figure 14):
///   A[f,i]      - API f is called on line i;
///   V[x,tau,i]  - variable x with encoder-level type tau is available in
///                 the synthesis type context of line i;
///   U[x,tau,i,j,f] - x:tau is used as the j-th input of f on line i.
///
/// Encoder-level types keep each API's type variables (renamed apart per
/// API), and slot matching uses the optimistic `unifiable` relation: the
/// encoder deliberately over-approximates (no trait bounds, no default
/// type parameters) and lets compiler diagnostics drive refinement
/// (Section 5). The Section 4.4 ownership/borrow constraints and the
/// Section 4.7 redundancy suppressions are emitted only when
/// SemanticAware is on - turning them off is exactly the RQ2 ablation.
///
/// Model blocking exploits the exactly-one structure: the true A- and
/// U-variables uniquely determine a program, so blocking the conjunction
/// of those (a ~20-literal clause) blocks exactly that program.
///
/// Incremental refinement (update(phi, A) without rebuild-the-world):
/// when the database only grows, extendForDatabaseChange() adds the new
/// call-site variables and clauses to the *live* solver instead of
/// recreating it, so learned clauses and every emitted-model blocking
/// clause survive. Constraints whose clause sets are closure-sensitive
/// ("A implies some candidate", "V implies some trigger", exactly-one's
/// at-least half, owned-value persistence, created-refs-must-be-used) are
/// guarded by a per-generation selector variable: each sync retires the
/// previous generation with a unit clause and re-emits those constraints
/// over the grown sets under a fresh guard, and solving assumes the
/// current guard. Destructive changes (bans) still rebuild, but the
/// synthesizer replays blocked-model signatures (ModelSig) into the fresh
/// solver so enumeration never re-walks emitted programs.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SYNTH_ENCODING_H
#define SYRUST_SYNTH_ENCODING_H

#include "api/ApiDatabase.h"
#include "api/DependencyGraph.h"
#include "obs/Recorder.h"
#include "program/Program.h"
#include "sat/Portfolio.h"
#include "sat/Solver.h"
#include "types/CompatCache.h"
#include "types/Subtyping.h"
#include "types/TraitEnv.h"

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace syrust::synth {

/// Feature toggles and tuning for the encoder/synthesizer.
struct SynthOptions {
  /// Section 4.4 + 4.7 constraints (ownership, lifetimes, borrows,
  /// redundancy). Off = the RQ2 ablation variant.
  bool SemanticAware = true;
  /// Test-scheduling extension (the paper's Section 7.4.3 future work):
  /// instead of exhausting each program length before moving to the
  /// next, round-robin across all lengths so deep call chains are
  /// reached early. Off reproduces Algorithm 1's strict length order.
  bool InterleaveLengths = false;
  /// Additive database refinements extend the live encoding in place
  /// (generation-guarded clauses + assumption solving) and blocked
  /// models persist across full rebuilds. Off = the historical
  /// rebuild-the-world path, kept selectable for A/B comparisons; it
  /// emits bit-identical formulas to the pre-incremental encoder.
  bool IncrementalRefinement = true;
  /// Conflict budget per solve (0 = unlimited).
  uint64_t SolveConflictBudget = 200000;
  uint64_t SolverSeed = 1;
  /// Race the fixed strategy portfolio (sat/SolverStrategy.h) on every
  /// solve episode that proves hard. Emitted programs are byte-identical
  /// with the portfolio on or off: member 0 is the unmodified baseline
  /// solver and helper racers only contribute Unsat proofs for episodes
  /// the baseline abandons at its conflict budget.
  bool Portfolio = false;
  /// Run one named solver configuration instead of the baseline (must be
  /// a name sat::findStrategy knows; validate before constructing the
  /// encoder). Unlike Portfolio this *does* change the program stream -
  /// it is an explicit opt-in. Ignored when Portfolio is set.
  std::string Strategy;
  /// Flight recorder for trace events and metrics; null (the default)
  /// disables instrumentation at the cost of one pointer check.
  obs::Recorder *Obs = nullptr;
  /// Memoized compatibility kernel consulted for the encoder's
  /// unifiability probes; null computes every probe directly (the
  /// --no-compat-cache escape hatch). Campaign runs chain a per-job
  /// cache onto the crate's shared precomputed matrix
  /// (core::CrateAnalysis). Cached and direct answers are identical by
  /// construction, so enumeration order does not depend on this setting.
  types::CompatCache *Compat = nullptr;
  /// Frozen per-crate API dependency graph consulted for producer ->
  /// consumer slot probes when GraphPrune is on; null always takes the
  /// Compat/direct fallback. The graph's edge set is by construction
  /// exactly the set of (producer, consumer, slot) triples whose
  /// unifiable2 probe succeeds (DESIGN.md 5g), so the graph and
  /// fallback arms return identical answers and enumeration order does
  /// not depend on this setting.
  const api::DependencyGraph *Graph = nullptr;
  /// Answer candidate probes with Graph's O(1) bitset rows instead of
  /// CompatCache lookups (--no-graph-prune is the escape hatch). Only
  /// the probe *mechanism* switches: program streams are byte-identical
  /// on/off; only throughput and the prune.* probe-split counters
  /// change. Dead-site elimination is structural and applies in both
  /// modes.
  bool GraphPrune = true;
  /// Coverage-guided episode bias (--bias-coverage): in interleaved mode
  /// the synthesizer replaces the round-robin length rotation with a
  /// weighted draw from its own deterministic Rng, weighting each live
  /// length by the new-edge yield the driver feeds back through
  /// Synthesizer::noteCoverage(). Unlike GraphPrune this deliberately
  /// *changes* the emitted stream; it stays deterministic per (seed,
  /// crate) because the bias Rng and the yield decay run on the
  /// simulated clock, never on host time or scheduling.
  bool BiasCoverage = false;
  /// Seed for the bias Rng (the driver passes the run seed). Separate
  /// from SolverSeed so biased scheduling never perturbs solver
  /// tie-breaking.
  uint64_t BiasSeed = 1;
  /// Invoked for every model the Rule 7 path post-check rejects (the
  /// encoder's final verdict on such programs is "reject"). The oracle
  /// replays these through the checker to audit the agreement of the
  /// filter itself; null skips the callback.
  std::function<void(const program::Program &)> OnPathFiltered;
  /// TESTING ONLY - the oracle's injected-bug canary: deliberately drop
  /// the Rule 5 consumption-kill cardinalities so the encoder emits
  /// use-after-move programs. The agreement oracle must catch and
  /// minimize the resulting Ownership disagreements.
  bool WeakenConsumptionKills = false;
};

/// Encoding-build pruning counters. Deterministic: pure functions of
/// the database snapshot and sync sequence, so campaign aggregation can
/// sum them in matrix order. The graph/fallback probe split depends on
/// the GraphPrune setting (that is the point of the A/B); the dead-site
/// numbers do not - elimination runs in both modes.
struct PruneStats {
  /// Probes answered by the dependency graph's bitset rows - each one a
  /// CompatCache lookup avoided.
  uint64_t GraphProbes = 0;
  /// Probes answered by the CompatCache / direct-unification fallback
  /// (graph off, no frozen producer, or a refinement-added API outside
  /// the frozen graph's node set).
  uint64_t FallbackProbes = 0;
  /// Call sites never materialized because an input slot had zero
  /// candidates (dead-API elimination).
  uint64_t DeadSites = 0;
  /// SAT variables (the A plus every probed U) dead sites would have
  /// allocated.
  uint64_t VarsAvoided = 0;
  /// Lower bound of clauses dead sites would have emitted (U=>A and
  /// U=>V per candidate plus per-slot cardinalities; joint-compat
  /// cross-products and semantic clauses are not counted).
  uint64_t ClausesAvoided = 0;
};

/// SAT encoding for one (API database snapshot, program length) pair.
class Encoding {
public:
  /// A solver-independent signature of one blocked model: per line, the
  /// chosen API and the (variable, encoder-type) pair used in each input
  /// slot. Types are interned in the TypeArena and ApiIds are stable, so
  /// a signature maps onto any later encoding of the same length whose
  /// database still contains the participating APIs and candidates.
  struct ModelSig {
    struct LinePick {
      api::ApiId Api = api::ApiIdInvalid;
      std::vector<std::pair<program::VarId, const types::Type *>> Uses;
    };
    std::vector<LinePick> Lines;
  };

  Encoding(types::TypeArena &Arena, const types::TraitEnv &Traits,
           const api::ApiDatabase &Db,
           const std::vector<program::TemplateInput> &Inputs, int NumLines,
           const SynthOptions &Opts);

  /// Finds the next not-yet-blocked model. Returns false when the space is
  /// exhausted (or the budget was hit; see budgetExhausted()).
  bool nextModel();

  /// True when the last nextModel() failure was a solver budget stop, not
  /// a real UNSAT.
  bool budgetExhausted() const { return Solver.budgetExhausted(); }

  /// Decodes the current model into a program with predicted declared
  /// types (the codeGen step of Algorithm 1).
  program::Program decode() const;

  /// Blocks the current model's program so enumeration advances.
  void blockCurrent();

  /// Grows the encoding in place after a database refinement that only
  /// *added* API instances (the active set is a prefix of the new one).
  /// Returns false - leaving the encoding untouched - when the change was
  /// destructive or incremental refinement is disabled; the caller must
  /// then rebuild from scratch.
  bool extendForDatabaseChange();

  /// Replays blocked-model signatures (from a retired encoding of the
  /// same length) as blocking clauses. Signatures that no longer map -
  /// their API was banned or a candidate disappeared - are dropped; such
  /// programs can never be synthesized again anyway. Returns how many
  /// were re-blocked.
  size_t seedBlockedModels(const std::vector<ModelSig> &Sigs);

  /// Hands over every blocked model (including a still-pending current
  /// model) for replay into a successor encoding. Leaves this encoding
  /// without a current model; only call when retiring it.
  std::vector<ModelSig> takeBlockedModels();

  /// Rule 7 path check, run as post-processing (Section 4.4.3): verifies
  /// no variable is used after a root owner on its lifetime path has been
  /// consumed. Exposed statically so tests can target it directly.
  static bool pathCheckOk(const program::Program &P,
                          const api::ApiDatabase &Db,
                          const types::TraitEnv &Traits);

  int numLines() const { return NumLines; }
  size_t numSatVars() const { return VarCount; }
  size_t numCandidates() const { return TotalCandidates; }
  const sat::SolverStats &solverStats() const { return Solver.stats(); }
  /// Deterministic portfolio race counters (all zero when the portfolio
  /// is off).
  const sat::PortfolioStats &portfolioStats() const {
    return Solver.portfolioStats();
  }
  /// Pruning counters accumulated over every sync of this encoding.
  const PruneStats &pruneStats() const { return Prune; }

private:
  /// One (variable, encoder-type) candidate for an input slot.
  struct Candidate {
    program::VarId Var;
    const types::Type *Ty;
    sat::Var U = sat::VarUndef;
  };

  /// Per (line, api) call-site encoding. A stays VarUndef - and Slots
  /// stays empty - for a *dead* site: one whose required input slot had
  /// zero candidates at every sync so far, eliminated before any of its
  /// variables or clauses reach the solver. A later sync that makes
  /// every slot fillable materializes it from scratch.
  struct CallSite {
    sat::Var A = sat::VarUndef;
    /// Candidates per input slot.
    std::vector<std::vector<Candidate>> Slots;
  };

  sat::Var getV(program::VarId X, const types::Type *Ty, int Line);
  bool hasV(program::VarId X, const types::Type *Ty, int Line) const;
  const types::Type *renamedInput(api::ApiId F, size_t J) const;
  const types::Type *renamedOutput(api::ApiId F) const;
  bool isOwnedNonCopy(const types::Type *Ty) const;

  /// True when (X, Ty) entered VarTypes[X] during the current sync.
  bool isNewType(program::VarId X, const types::Type *Ty) const;
  /// Candidate count of (line, site, slot) before the current sync.
  size_t prevSlotCount(int Line, size_t Kk, size_t J) const;
  /// True when site (Line, Kk) was already materialized before the
  /// current sync (distinguishes revived dead sites and brand-new APIs,
  /// which need full emission, from live sites, which only append).
  bool wasLive(int Line, size_t Kk) const;
  /// The three probe arms behind one face (identical answers each):
  /// pair compatibility via cache or direct unification...
  bool probeUnifiable2(const types::Type *Ty,
                       const types::Type *Pattern) const;
  /// ...joint two-slot compatibility via cache or a shared direct
  /// substitution...
  bool probeJoint(const types::Type *T1, const types::Type *P1,
                  const types::Type *T2, const types::Type *P2) const;
  /// ...and the candidate probe "can (X typed Ty, produced by Producer)
  /// feed slot J of site Kk", answered by the dependency graph's bitset
  /// when GraphPrune covers the triple and by probeUnifiable2 otherwise.
  bool probeFeeds(api::ApiId Producer, const types::Type *Ty, size_t Kk,
                  size_t J);
  /// Adds a closure-sensitive clause under the current generation guard
  /// (plain clause when guards are off).
  void addGuarded(std::vector<sat::Lit> Lits);
  void recordCurrentSig();

  /// Unified build/extend: the initial build is a sync against empty
  /// previous state; extendForDatabaseChange() is a sync against the
  /// snapshots taken last time.
  void sync();
  void buildTypeUniverse();
  void buildCallSites();
  void buildContextConstraints();
  void buildSemanticConstraints();
  void buildRedundancyConstraints();
  void buildBlockedCombos();

  types::TypeArena &Arena;
  const types::TraitEnv &Traits;
  const api::ApiDatabase &Db;
  std::vector<program::TemplateInput> Inputs;
  int NumLines;
  SynthOptions Opts;

  std::vector<api::ApiId> Active;
  /// Position in Active per active ApiId.
  std::map<api::ApiId, size_t> ActiveIndex;
  /// Renamed signatures indexed by position in Active.
  std::vector<std::vector<const types::Type *>> RenIn;
  std::vector<const types::Type *> RenOut;

  /// Possible encoder-level types of each variable. Template variables
  /// have exactly one; line outputs one per producible type.
  std::vector<std::vector<const types::Type *>> VarTypes;
  /// Parallel to VarTypes: the non-builtin API whose renamed output the
  /// type is (the first producer when several share an interned output -
  /// any of them keys the same graph row answer), or ApiIdInvalid for
  /// template inputs and builtin-derived types, which take the fallback
  /// probe arm. Recomputed with VarTypes at zero probe cost.
  std::vector<std::vector<api::ApiId>> VarProducers;

  /// CallSites[i][k] for line i, Active[k].
  std::vector<std::vector<CallSite>> Sites;

  /// V variables keyed by (var, type, line).
  std::map<std::tuple<program::VarId, const types::Type *, int>, sat::Var>
      VMap;

  /// Pre-sync snapshots, consulted while syncing to emit only what is
  /// new. Type sets per variable (NOT prefix counts: builtin-derived
  /// output types interleave into VarTypes as the availability list
  /// grows) and candidate counts per slot (slots only ever append).
  std::vector<std::set<const types::Type *>> PrevTypes;
  std::vector<std::vector<std::vector<size_t>>> PrevSlots;
  /// Which call sites were materialized before this sync (dead sites
  /// report 0 here AND zero PrevSlots counts, so a revival re-emits
  /// everything as new).
  std::vector<std::vector<char>> PrevHadA;
  size_t PrevActive = 0;

  /// Generation guard: closure-sensitive clauses carry ~Gen, solving
  /// assumes Gen. VarUndef when incremental refinement is off.
  sat::Var Gen = sat::VarUndef;

  /// Aux vars of already-emitted blocked-combo clauses, keyed by (line,
  /// api, type tuple), so extensions can wire new candidates into the
  /// existing clause instead of under-blocking.
  std::map<std::tuple<int, api::ApiId, std::vector<const types::Type *>>,
           std::vector<sat::Var>>
      ComboAux;

  /// Signatures of every model blocked so far (incremental mode only).
  std::vector<ModelSig> BlockedSigs;

  mutable sat::Portfolio Solver;
  size_t VarCount = 0;
  size_t TotalCandidates = 0;
  PruneStats Prune;
  bool HasModel = false;
};

} // namespace syrust::synth

#endif // SYRUST_SYNTH_ENCODING_H
