//===--- Synthesizer.h - Test-case enumeration driver ----------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streams well-formed candidate test cases for one (template, API
/// database) pair, walking program lengths 1..m as in Algorithm 1. Handles
/// the two events Algorithm 1 weaves into the enumeration loop:
///
///   * model blocking (phi := phi AND NOT sigma) - done with small
///     projected blocking clauses;
///   * API-database refinement (update(phi, A)) - classified on
///     notifyDatabaseChanged(): additive changes (the common eager/lazy
///     concretization case) extend the live encodings in place, keeping
///     learned clauses and every blocking clause; destructive changes
///     (bans) rebuild, replaying blocked-model signatures into the fresh
///     solver. Either way the solver never re-walks an emitted program,
///     with the structural-hash set kept as a last-resort safety net.
///
/// Interleaved mode keeps exhausted lengths around: a refinement that
/// *adds* API instances can make a previously UNSAT length satisfiable
/// again, so additions revive dead lengths (extend or rebuild) instead of
/// abandoning them forever.
///
/// Models failing the Rule 7 path post-check are blocked and counted but
/// never emitted.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SYNTH_SYNTHESIZER_H
#define SYRUST_SYNTH_SYNTHESIZER_H

#include "support/Rng.h"
#include "synth/Encoding.h"
#include "synth/SeenPrograms.h"

#include <memory>
#include <unordered_map>

namespace syrust::synth {

/// Aggregate synthesis statistics.
struct SynthStats {
  uint64_t Emitted = 0;
  uint64_t PathFiltered = 0;
  /// Programs re-emitted by the solver and dropped via the hash set. With
  /// incremental refinement this should stay ~0: blocking persists.
  uint64_t DuplicatesSkipped = 0;
  /// True 64-bit structural-hash collisions caught by the canonical-key
  /// verification (SeenPrograms): distinct programs that a bare hash set
  /// would have silently dropped. Such programs are still emitted.
  uint64_t HashCollisions = 0;
  /// Full encoding constructions (one per length per rebuild).
  uint64_t Rebuilds = 0;
  /// Database changes absorbed by extending a live encoding in place.
  uint64_t IncrementalExtends = 0;
  /// Blocking clauses replayed into fresh encodings after rebuilds.
  uint64_t ModelsReblocked = 0;
  /// Exhausted lengths brought back by database additions.
  uint64_t DeadLengthRevivals = 0;
  /// nextModel() calls and the solver work they cost, summed over all
  /// encodings this synthesizer ever owned.
  uint64_t SolveCalls = 0;
  uint64_t SolverConflicts = 0;
  uint64_t SolverPropagations = 0;
  /// Wall-clock spent constructing/extending encodings vs. solving.
  double BuildSeconds = 0;
  double SolveSeconds = 0;
  int CurrentLength = 0;
  /// Compatibility-kernel memo outcome (all zero when the cache is off).
  /// Hits answered from the run's own cache, BaseHits from the shared
  /// per-crate matrix, Misses computed fresh. Filled by the driver, which
  /// owns the cache; the synthesizer only consumes it through
  /// SynthOptions::Compat.
  uint64_t CompatHits = 0;
  uint64_t CompatBaseHits = 0;
  uint64_t CompatMisses = 0;
  /// Portfolio race outcomes summed over all encodings (zero with the
  /// portfolio off). Races counts episodes where helper racers launched;
  /// UnsatWins counts baseline Unknowns upgraded to real Unsat proofs by
  /// a helper; Cancels counts cancellation signals sent to losing racers.
  /// All three are deterministic (functions of the solve-episode
  /// sequence, not of thread timing).
  uint64_t PortfolioRaces = 0;
  uint64_t PortfolioUnsatWins = 0;
  uint64_t PortfolioCancels = 0;
  /// Encoding-build pruning outcomes summed over all encodings this
  /// synthesizer ever owned (synth::PruneStats). The graph/fallback
  /// probe split reflects the GraphPrune setting; dead-site elimination
  /// is structural, so those numbers are identical prune-on/off. All
  /// deterministic (functions of the database and sync sequence).
  uint64_t PruneGraphProbes = 0;
  uint64_t PruneFallbackProbes = 0;
  uint64_t PruneDeadSites = 0;
  uint64_t PruneVarsAvoided = 0;
  uint64_t PruneClausesAvoided = 0;
  /// Coverage-guided bias outcomes (all zero with BiasCoverage off).
  /// BiasPicks counts weighted length draws that replaced a round-robin
  /// rotation step; BiasNewEdges sums the never-covered-edge yield the
  /// driver fed back through noteCoverage(); BiasDecays counts the
  /// SimClock-driven halvings of the per-length yield weights. All
  /// deterministic: functions of the seed and the simulated clock.
  uint64_t BiasPicks = 0;
  uint64_t BiasNewEdges = 0;
  uint64_t BiasDecays = 0;
};

/// Enumerates candidate programs of increasing length.
class Synthesizer {
public:
  Synthesizer(types::TypeArena &Arena, const types::TraitEnv &Traits,
              const api::ApiDatabase &Db,
              std::vector<program::TemplateInput> Inputs, int MaxLines,
              SynthOptions Opts = {});

  /// Produces the next program, or nullopt when all lengths are exhausted.
  std::optional<program::Program> next();

  /// Signals that the API database was refined. Add-only changes extend
  /// the live encodings in place; destructive changes rebuild them and
  /// replay the blocked models. Additions also revive exhausted lengths
  /// (interleaved mode), since new instances can unlock them.
  void notifyDatabaseChanged();

  /// Coverage feedback for --bias-coverage: the driver reports how many
  /// never-covered dependency-graph edges the last emitted program of
  /// \p Length newly covered, at simulated time \p NowSeconds. The
  /// per-length yield weights steer subsequent interleaved length draws
  /// and decay by halving on a fixed simulated-time cadence, so a
  /// length's hot streak fades instead of monopolizing the schedule
  /// forever. A no-op unless SynthOptions::BiasCoverage is set.
  void noteCoverage(int Length, uint64_t NewEdges, double NowSeconds);

  const SynthStats &stats() const { return Stats; }

  /// True when enumeration ended due to solver budget rather than a real
  /// proof of exhaustion (conservative: per current length).
  bool sawBudgetStop() const { return BudgetStop; }

private:
  bool advanceLength();
  std::unique_ptr<Encoding> makeEncoding(int Length);
  void retireEncoding(std::unique_ptr<Encoding> &E);
  bool solveNext(Encoding &E);
  void snapshotDb();
  void refreshSolverStats();
  std::optional<program::Program> nextSequential();
  std::optional<program::Program> nextInterleaved();
  bool acceptProgram(program::Program &P);

  types::TypeArena &Arena;
  const types::TraitEnv &Traits;
  const api::ApiDatabase &Db;
  std::vector<program::TemplateInput> Inputs;
  int MaxLines;
  SynthOptions Opts;

  std::unique_ptr<Encoding> Enc;
  /// Interleaved mode: one encoding per length. Exhausted lengths keep
  /// their encoding (marked dead in LengthLive) so additions can revive
  /// them in place.
  std::vector<std::unique_ptr<Encoding>> LengthEncs;
  std::vector<char> LengthLive;
  /// Interleaved mode: marks lengths that went dormant on a budget stop
  /// (Unknown) rather than a real UNSAT proof. Such a length must be
  /// revived by *any* database change - including destructive ones,
  /// which only an actual proof would let us skip.
  std::vector<char> LengthUnknown;
  size_t Rotation = 0;
  /// --bias-coverage state: one never-covered-edge yield weight per
  /// length (same indexing as LengthEncs), the dedicated bias Rng, and
  /// the next simulated-time decay boundary. The Rng is separate from
  /// the solver's so biased scheduling cannot perturb solver
  /// tie-breaking, and the decay runs on the SimClock so a fixed
  /// (crate, seed) cell replays byte-identically at any --jobs.
  std::vector<uint64_t> LengthYield;
  Rng BiasRng;
  double BiasNextDecay = 0;
  /// The last-resort duplicate net: hash lookups verified against stored
  /// canonical program keys, so a 64-bit collision cannot silently drop
  /// a distinct program.
  SeenPrograms Seen;

  /// Blocked models harvested from retired encodings, per length,
  /// replayed into their replacements after destructive rebuilds.
  /// Accessed only by find/operator[], so ordering is not load-bearing.
  std::unordered_map<int, std::vector<Encoding::ModelSig>> RetiredSigs;
  /// Database state at the last (re)build/extend, for classifying the
  /// next change: old activeIds being a prefix of the new ones means
  /// add-only; a grown database means additions are present.
  std::vector<api::ApiId> ActiveSnapshot;
  size_t DbSizeSnapshot = 0;
  /// Solver-stat totals of encodings retired so far.
  uint64_t RetiredConflicts = 0;
  uint64_t RetiredPropagations = 0;
  uint64_t RetiredRaces = 0;
  uint64_t RetiredUnsatWins = 0;
  uint64_t RetiredCancels = 0;
  /// Prune-stat totals of encodings retired so far (same absorb
  /// pattern: totals = retired + live encodings).
  PruneStats RetiredPrune;

  SynthStats Stats;
  bool BudgetStop = false;
  bool Done = false;
};

} // namespace syrust::synth

#endif // SYRUST_SYNTH_SYNTHESIZER_H
