//===--- Synthesizer.h - Test-case enumeration driver ----------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streams well-formed candidate test cases for one (template, API
/// database) pair, walking program lengths 1..m as in Algorithm 1. Handles
/// the two events Algorithm 1 weaves into the enumeration loop:
///
///   * model blocking (phi := phi AND NOT sigma) - done with small
///     projected blocking clauses;
///   * API-database refinement (update(phi, A)) - the encoding is rebuilt
///     on notifyDatabaseChanged(), and previously emitted programs are
///     skipped via a structural-hash set so no test case repeats.
///
/// Models failing the Rule 7 path post-check are blocked and counted but
/// never emitted.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_SYNTH_SYNTHESIZER_H
#define SYRUST_SYNTH_SYNTHESIZER_H

#include "synth/Encoding.h"

#include <memory>
#include <set>

namespace syrust::synth {

/// Aggregate synthesis statistics.
struct SynthStats {
  uint64_t Emitted = 0;
  uint64_t PathFiltered = 0;
  uint64_t DuplicatesSkipped = 0;
  uint64_t Rebuilds = 0;
  int CurrentLength = 0;
};

/// Enumerates candidate programs of increasing length.
class Synthesizer {
public:
  Synthesizer(types::TypeArena &Arena, const types::TraitEnv &Traits,
              const api::ApiDatabase &Db,
              std::vector<program::TemplateInput> Inputs, int MaxLines,
              SynthOptions Opts = {});

  /// Produces the next program, or nullopt when all lengths are exhausted.
  std::optional<program::Program> next();

  /// Signals that the API database was refined; the encoding for the
  /// current length is rebuilt against the new database.
  void notifyDatabaseChanged();

  const SynthStats &stats() const { return Stats; }

  /// True when enumeration ended due to solver budget rather than a real
  /// proof of exhaustion (conservative: per current length).
  bool sawBudgetStop() const { return BudgetStop; }

private:
  bool advanceLength();
  void rebuild();
  std::optional<program::Program> nextSequential();
  std::optional<program::Program> nextInterleaved();
  bool acceptProgram(program::Program &P);

  types::TypeArena &Arena;
  const types::TraitEnv &Traits;
  const api::ApiDatabase &Db;
  std::vector<program::TemplateInput> Inputs;
  int MaxLines;
  SynthOptions Opts;

  std::unique_ptr<Encoding> Enc;
  /// Interleaved mode: one live encoding per length (null = exhausted).
  std::vector<std::unique_ptr<Encoding>> LengthEncs;
  size_t Rotation = 0;
  std::set<uint64_t> SeenHashes;
  SynthStats Stats;
  bool BudgetStop = false;
  bool Done = false;
};

} // namespace syrust::synth

#endif // SYRUST_SYNTH_SYNTHESIZER_H
