//===--- Synthesizer.cpp - Test-case enumeration driver -------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include <chrono>

using namespace syrust;
using namespace syrust::program;
using namespace syrust::synth;

namespace {
double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

/// Simulated-time cadence on which --bias-coverage halves the
/// per-length yield weights, so stale hot streaks fade.
constexpr double kBiasDecayInterval = 30.0;
} // namespace

Synthesizer::Synthesizer(types::TypeArena &Arena,
                         const types::TraitEnv &Traits,
                         const api::ApiDatabase &Db,
                         std::vector<TemplateInput> Inputs, int MaxLines,
                         SynthOptions Opts)
    : Arena(Arena), Traits(Traits), Db(Db), Inputs(std::move(Inputs)),
      MaxLines(MaxLines), Opts(Opts) {
  // Long runs push hundreds of thousands of hashes through the duplicate
  // net; reserving up front keeps the hot insert path rehash-free until
  // well past typical run sizes.
  Seen.reserve(1 << 16);
  Stats.CurrentLength = 1;
  if (Opts.BiasCoverage) {
    LengthYield.assign(static_cast<size_t>(MaxLines), 0);
    BiasRng.reseed(Opts.BiasSeed);
    BiasNextDecay = kBiasDecayInterval;
  }
  if (Opts.InterleaveLengths) {
    LengthEncs.resize(static_cast<size_t>(MaxLines));
    LengthLive.assign(static_cast<size_t>(MaxLines), 1);
    LengthUnknown.assign(static_cast<size_t>(MaxLines), 0);
    for (int L = 1; L <= MaxLines; ++L)
      LengthEncs[static_cast<size_t>(L - 1)] = makeEncoding(L);
  } else {
    Enc = makeEncoding(1);
  }
  snapshotDb();
}

void Synthesizer::snapshotDb() {
  ActiveSnapshot = Db.activeIds();
  DbSizeSnapshot = Db.size();
}

std::unique_ptr<Encoding> Synthesizer::makeEncoding(int Length) {
  auto T0 = std::chrono::steady_clock::now();
  size_t Reblocked = 0;
  auto E =
      std::make_unique<Encoding>(Arena, Traits, Db, Inputs, Length, Opts);
  ++Stats.Rebuilds;
  if (Opts.IncrementalRefinement) {
    auto It = RetiredSigs.find(Length);
    if (It != RetiredSigs.end()) {
      Reblocked = E->seedBlockedModels(It->second);
      Stats.ModelsReblocked += Reblocked;
    }
  }
  Stats.BuildSeconds += secondsSince(T0);
  if (Opts.Obs) {
    Opts.Obs->instant("synth.build", "synth",
                      obs::ArgList()
                          .add("length", Length)
                          .add("reblocked",
                               static_cast<uint64_t>(Reblocked)));
    Opts.Obs->count("synth.builds");
  }
  return E;
}

void Synthesizer::retireEncoding(std::unique_ptr<Encoding> &E) {
  if (!E)
    return;
  RetiredConflicts += E->solverStats().Conflicts;
  RetiredPropagations += E->solverStats().Propagations;
  RetiredRaces += E->portfolioStats().Races;
  RetiredUnsatWins += E->portfolioStats().UnsatWins;
  RetiredCancels += E->portfolioStats().Cancels;
  const PruneStats &P = E->pruneStats();
  RetiredPrune.GraphProbes += P.GraphProbes;
  RetiredPrune.FallbackProbes += P.FallbackProbes;
  RetiredPrune.DeadSites += P.DeadSites;
  RetiredPrune.VarsAvoided += P.VarsAvoided;
  RetiredPrune.ClausesAvoided += P.ClausesAvoided;
  if (Opts.IncrementalRefinement) {
    // Successor encodings replay these; signatures that stop mapping
    // (their API got banned) are unreachable and dropped on replay.
    RetiredSigs[E->numLines()] = E->takeBlockedModels();
  }
  E.reset();
}

void Synthesizer::refreshSolverStats() {
  uint64_t Conflicts = RetiredConflicts;
  uint64_t Propagations = RetiredPropagations;
  uint64_t Races = RetiredRaces;
  uint64_t UnsatWins = RetiredUnsatWins;
  uint64_t Cancels = RetiredCancels;
  PruneStats Prune = RetiredPrune;
  auto Absorb = [&](const Encoding &E) {
    Conflicts += E.solverStats().Conflicts;
    Propagations += E.solverStats().Propagations;
    Races += E.portfolioStats().Races;
    UnsatWins += E.portfolioStats().UnsatWins;
    Cancels += E.portfolioStats().Cancels;
    Prune.GraphProbes += E.pruneStats().GraphProbes;
    Prune.FallbackProbes += E.pruneStats().FallbackProbes;
    Prune.DeadSites += E.pruneStats().DeadSites;
    Prune.VarsAvoided += E.pruneStats().VarsAvoided;
    Prune.ClausesAvoided += E.pruneStats().ClausesAvoided;
  };
  if (Enc)
    Absorb(*Enc);
  for (const auto &E : LengthEncs)
    if (E)
      Absorb(*E);
  Stats.SolverConflicts = Conflicts;
  Stats.SolverPropagations = Propagations;
  Stats.PortfolioRaces = Races;
  Stats.PortfolioUnsatWins = UnsatWins;
  Stats.PortfolioCancels = Cancels;
  Stats.PruneGraphProbes = Prune.GraphProbes;
  Stats.PruneFallbackProbes = Prune.FallbackProbes;
  Stats.PruneDeadSites = Prune.DeadSites;
  Stats.PruneVarsAvoided = Prune.VarsAvoided;
  Stats.PruneClausesAvoided = Prune.ClausesAvoided;
}

bool Synthesizer::solveNext(Encoding &E) {
  auto T0 = std::chrono::steady_clock::now();
  bool Sat = E.nextModel();
  Stats.SolveSeconds += secondsSince(T0);
  ++Stats.SolveCalls;
  refreshSolverStats();
  return Sat;
}

void Synthesizer::notifyDatabaseChanged() {
  std::vector<api::ApiId> NewActive = Db.activeIds();
  // Adding instances appends to the database with stable ids, so an
  // add-only change leaves the previous active list as a prefix.
  bool AddOnly = NewActive.size() >= ActiveSnapshot.size() &&
                 std::equal(ActiveSnapshot.begin(), ActiveSnapshot.end(),
                            NewActive.begin());
  bool Additions = Db.size() > DbSizeSnapshot;

  if (!Opts.InterleaveLengths) {
    // Sequential mode follows Algorithm 1: once every length is proven
    // exhausted the run is over; lengths already walked are not revisited.
    if (!Done && Enc) {
      bool Extended = false;
      if (AddOnly) {
        auto T0 = std::chrono::steady_clock::now();
        Extended = Enc->extendForDatabaseChange();
        Stats.BuildSeconds += secondsSince(T0);
      }
      if (Extended) {
        ++Stats.IncrementalExtends;
        if (Opts.Obs) {
          Opts.Obs->instant("synth.extend", "synth",
                            obs::ArgList().add("length",
                                               Stats.CurrentLength));
          Opts.Obs->count("synth.extends");
        }
      } else {
        retireEncoding(Enc);
        Enc = makeEncoding(Stats.CurrentLength);
      }
    }
    snapshotDb();
    return;
  }

  for (size_t Idx = 0; Idx < LengthEncs.size(); ++Idx) {
    bool Live = LengthLive[Idx] != 0;
    // A length proven UNSAT stays dead unless the database actually grew:
    // bans and combo blocks only shrink the space, so the proof stands.
    // A length that went dormant on a budget stop (Unknown) has no such
    // proof - it must get another chance on *any* change, destructive
    // ones included.
    if (!Live && !Additions && !LengthUnknown[Idx])
      continue;
    auto &Slot = LengthEncs[Idx];
    bool Extended = false;
    if (Slot && AddOnly) {
      auto T0 = std::chrono::steady_clock::now();
      Extended = Slot->extendForDatabaseChange();
      Stats.BuildSeconds += secondsSince(T0);
    }
    if (Extended) {
      ++Stats.IncrementalExtends;
      if (Opts.Obs) {
        Opts.Obs->instant("synth.extend", "synth",
                          obs::ArgList().add("length",
                                             static_cast<int>(Idx) + 1));
        Opts.Obs->count("synth.extends");
      }
    } else {
      retireEncoding(Slot);
      Slot = makeEncoding(static_cast<int>(Idx) + 1);
    }
    if (!Live) {
      LengthLive[Idx] = 1;
      LengthUnknown[Idx] = 0;
      ++Stats.DeadLengthRevivals;
      Done = false;
      if (Opts.Obs) {
        Opts.Obs->instant("synth.revive", "synth",
                          obs::ArgList().add("length",
                                             static_cast<int>(Idx) + 1));
        Opts.Obs->count("synth.revivals");
      }
    }
  }
  snapshotDb();
}

bool Synthesizer::advanceLength() {
  if (Stats.CurrentLength >= MaxLines) {
    Done = true;
    return false;
  }
  retireEncoding(Enc);
  ++Stats.CurrentLength;
  Enc = makeEncoding(Stats.CurrentLength);
  return true;
}

bool Synthesizer::acceptProgram(Program &P) {
  if (Opts.SemanticAware && !Encoding::pathCheckOk(P, Db, Traits)) {
    ++Stats.PathFiltered;
    if (Opts.Obs)
      Opts.Obs->count("synth.path_filtered");
    if (Opts.OnPathFiltered)
      Opts.OnPathFiltered(P); // Oracle replays the filter's rejects.
    return false; // Model auto-blocked on the next nextModel() call.
  }
  SeenOutcome Outcome = Seen.note(P);
  if (Outcome == SeenOutcome::Duplicate) {
    ++Stats.DuplicatesSkipped;
    if (Opts.Obs)
      Opts.Obs->count("synth.duplicates_skipped");
    return false; // Re-emitted after a rebuild; skip.
  }
  if (Outcome == SeenOutcome::Collision) {
    // A bare hash set would have dropped this distinct program.
    ++Stats.HashCollisions;
    if (Opts.Obs)
      Opts.Obs->count("synth.hash_collisions");
  }
  ++Stats.Emitted;
  if (Opts.Obs) {
    Opts.Obs->instant("synth.emit", "synth",
                      obs::ArgList().add(
                          "length",
                          static_cast<uint64_t>(P.Stmts.size())));
    Opts.Obs->count("synth.emitted");
    Opts.Obs->gaugeSet("synth.current_length", Stats.CurrentLength);
  }
  return true;
}

std::optional<Program> Synthesizer::nextSequential() {
  while (!Done) {
    if (!solveNext(*Enc)) {
      if (Enc->budgetExhausted())
        BudgetStop = true;
      if (!advanceLength())
        return std::nullopt;
      continue;
    }
    Program P = Enc->decode();
    if (acceptProgram(P))
      return P;
  }
  return std::nullopt;
}

void Synthesizer::noteCoverage(int Length, uint64_t NewEdges,
                               double NowSeconds) {
  if (!Opts.BiasCoverage)
    return;
  // Decay on the simulated clock, not per call: halving every fixed
  // interval keeps the weights a pure function of (seed, emission
  // sequence, sim time), so replays are byte-identical.
  while (NowSeconds >= BiasNextDecay) {
    for (uint64_t &Y : LengthYield)
      Y /= 2;
    BiasNextDecay += kBiasDecayInterval;
    ++Stats.BiasDecays;
  }
  Stats.BiasNewEdges += NewEdges;
  if (Length >= 1 && static_cast<size_t>(Length) <= LengthYield.size())
    LengthYield[static_cast<size_t>(Length - 1)] += NewEdges;
}

std::optional<Program> Synthesizer::nextInterleaved() {
  // Round-robin across live lengths; a length that proves UNSAT goes
  // dormant but keeps its encoding, so a later database addition can
  // revive it. The rotation pointer persists across calls, so each call
  // samples the "next" length. With --bias-coverage and any live
  // yield signal, the rotation is replaced by a weighted draw over the
  // live lengths: weight 1 plus the length's decayed never-covered-
  // edge yield, so lengths that recently opened new dependency-graph
  // territory get solved more often while cold lengths still get a
  // floor of attention.
  while (!Done) {
    size_t Live = 0;
    for (char L : LengthLive)
      Live += L ? 1 : 0;
    if (Live == 0) {
      Done = true;
      return std::nullopt;
    }
    if (Opts.BiasCoverage) {
      std::vector<size_t> LiveIdx;
      std::vector<double> Weights;
      LiveIdx.reserve(LengthEncs.size());
      Weights.reserve(LengthEncs.size());
      uint64_t TotalYield = 0;
      for (size_t I = 0; I < LengthEncs.size(); ++I) {
        if (!LengthLive[I])
          continue;
        LiveIdx.push_back(I);
        TotalYield += LengthYield[I];
        // Integer-valued doubles only: exact on every platform, so the
        // draw cannot diverge across compilers or libm versions. The
        // yield is capped at 8:1 over a cold length - an unbounded
        // weight concentrates nearly every draw on one length, which
        // re-enumerates duplicates there while starving the rest.
        uint64_t Y = LengthYield[I] > 7 ? 7 : LengthYield[I];
        Weights.push_back(1.0 + static_cast<double>(Y));
      }
      // Draw only while there is signal to follow. With every live
      // yield at zero (cold start, or a long dry spell decayed the
      // counters away) a weighted draw is just a noisier round-robin,
      // so fall through to the rotation until coverage speaks again.
      if (TotalYield > 0) {
        size_t Idx = LiveIdx[BiasRng.pickWeighted(Weights)];
        ++Stats.BiasPicks;
        Encoding *E = LengthEncs[Idx].get();
        if (!solveNext(*E)) {
          if (E->budgetExhausted()) {
            BudgetStop = true;
            LengthUnknown[Idx] = 1;
          }
          LengthLive[Idx] = 0;
          continue;
        }
        Stats.CurrentLength = E->numLines();
        Program P = E->decode();
        if (acceptProgram(P))
          return P;
        continue; // Rejected or duplicate: redraw.
      }
    }
    for (size_t Tried = 0; Tried < LengthEncs.size(); ++Tried) {
      size_t Idx = Rotation % LengthEncs.size();
      ++Rotation;
      if (!LengthLive[Idx])
        continue;
      Encoding *E = LengthEncs[Idx].get();
      if (!solveNext(*E)) {
        // Budget stops (Unknown) are not exhaustion proofs: mark the
        // dormancy as revivable-on-any-change.
        if (E->budgetExhausted()) {
          BudgetStop = true;
          LengthUnknown[Idx] = 1;
        }
        LengthLive[Idx] = 0;
        continue;
      }
      Stats.CurrentLength = E->numLines();
      Program P = E->decode();
      if (acceptProgram(P))
        return P;
      // Rejected by the path check or a duplicate: stay in the loop so
      // the next length gets its turn.
    }
  }
  return std::nullopt;
}

std::optional<Program> Synthesizer::next() {
  return Opts.InterleaveLengths ? nextInterleaved() : nextSequential();
}
