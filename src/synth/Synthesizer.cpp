//===--- Synthesizer.cpp - Test-case enumeration driver -------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

using namespace syrust;
using namespace syrust::program;
using namespace syrust::synth;

Synthesizer::Synthesizer(types::TypeArena &Arena,
                         const types::TraitEnv &Traits,
                         const api::ApiDatabase &Db,
                         std::vector<TemplateInput> Inputs, int MaxLines,
                         SynthOptions Opts)
    : Arena(Arena), Traits(Traits), Db(Db), Inputs(std::move(Inputs)),
      MaxLines(MaxLines), Opts(Opts) {
  Stats.CurrentLength = 1;
  rebuild();
}

void Synthesizer::rebuild() {
  if (Opts.InterleaveLengths) {
    // Rebuild every still-live length. On first call, build all lengths.
    bool First = LengthEncs.empty();
    LengthEncs.resize(static_cast<size_t>(MaxLines));
    for (int L = 1; L <= MaxLines; ++L) {
      auto &Slot = LengthEncs[static_cast<size_t>(L - 1)];
      if (First || Slot)
        Slot = std::make_unique<Encoding>(Arena, Traits, Db, Inputs, L,
                                          Opts);
    }
    ++Stats.Rebuilds;
    return;
  }
  Enc = std::make_unique<Encoding>(Arena, Traits, Db, Inputs,
                                   Stats.CurrentLength, Opts);
  ++Stats.Rebuilds;
}

void Synthesizer::notifyDatabaseChanged() {
  if (!Done)
    rebuild();
}

bool Synthesizer::advanceLength() {
  if (Stats.CurrentLength >= MaxLines) {
    Done = true;
    return false;
  }
  ++Stats.CurrentLength;
  rebuild();
  return true;
}

bool Synthesizer::acceptProgram(Program &P) {
  if (Opts.SemanticAware && !Encoding::pathCheckOk(P, Db, Traits)) {
    ++Stats.PathFiltered;
    return false; // Model auto-blocked on the next nextModel() call.
  }
  if (!SeenHashes.insert(P.hash()).second) {
    ++Stats.DuplicatesSkipped;
    return false; // Re-emitted after a rebuild; skip.
  }
  ++Stats.Emitted;
  return true;
}

std::optional<Program> Synthesizer::nextSequential() {
  while (!Done) {
    if (!Enc->nextModel()) {
      if (Enc->budgetExhausted())
        BudgetStop = true;
      if (!advanceLength())
        return std::nullopt;
      continue;
    }
    Program P = Enc->decode();
    if (acceptProgram(P))
      return P;
  }
  return std::nullopt;
}

std::optional<Program> Synthesizer::nextInterleaved() {
  // Round-robin across live lengths; a length that proves UNSAT is
  // dropped. The rotation pointer persists across calls, so each call
  // samples the "next" length.
  while (!Done) {
    size_t Live = 0;
    for (const auto &E : LengthEncs)
      Live += E ? 1 : 0;
    if (Live == 0) {
      Done = true;
      return std::nullopt;
    }
    for (size_t Tried = 0; Tried < LengthEncs.size(); ++Tried) {
      size_t Idx = Rotation % LengthEncs.size();
      ++Rotation;
      Encoding *E = LengthEncs[Idx].get();
      if (!E)
        continue;
      if (!E->nextModel()) {
        if (E->budgetExhausted())
          BudgetStop = true;
        LengthEncs[Idx].reset();
        continue;
      }
      Stats.CurrentLength = E->numLines();
      Program P = E->decode();
      if (acceptProgram(P))
        return P;
      // Rejected by the path check or a duplicate: stay in the loop so
      // the next length gets its turn.
    }
  }
  return std::nullopt;
}

std::optional<Program> Synthesizer::next() {
  return Opts.InterleaveLengths ? nextInterleaved() : nextSequential();
}
