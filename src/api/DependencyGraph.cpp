//===--- DependencyGraph.cpp - Producer/consumer API graph ----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "api/DependencyGraph.h"

#include "types/Subtyping.h"

using namespace syrust;
using namespace syrust::api;
using namespace syrust::types;

DependencyGraph syrust::api::buildDependencyGraph(const ApiDatabase &Db,
                                                  TypeArena &Arena,
                                                  CompatCache &Cache) {
  DependencyGraph G;
  G.NumNodes = Db.size();

  G.SlotBase.resize(Db.size() + 1, 0);
  for (size_t K = 0; K < Db.size(); ++K)
    G.SlotBase[K + 1] =
        G.SlotBase[K] +
        static_cast<uint32_t>(Db.get(static_cast<ApiId>(K)).Inputs.size());
  G.WordsPerRow = (Db.size() + 63) / 64;
  G.Bits.assign(static_cast<size_t>(G.SlotBase[Db.size()]) * G.WordsPerRow,
                0);

  // Rename with the same "a<ApiId>" suffix Encoding::sync and
  // CrateAnalysis use, so the probe keys below are the interned pointers
  // the precomputed matrix already holds.
  std::vector<std::vector<const Type *>> RenIn(Db.size());
  std::vector<const Type *> RenOut(Db.size());
  for (size_t K = 0; K < Db.size(); ++K) {
    const ApiSig &Sig = Db.get(static_cast<ApiId>(K));
    std::string Suffix = "a" + std::to_string(static_cast<ApiId>(K));
    for (const Type *In : Sig.Inputs)
      RenIn[K].push_back(renameVars(Arena, In, Suffix));
    RenOut[K] = renameVars(Arena, Sig.Output, Suffix);
  }

  // Producer-major enumeration yields the sorted (Producer, Consumer,
  // Slot) edge order directly - no post-sort, and the dense edge index
  // is its append position.
  for (size_t A = 0; A < Db.size(); ++A) {
    for (size_t B = 0; B < Db.size(); ++B) {
      for (size_t J = 0; J < RenIn[B].size(); ++J) {
        const Type *Pattern = RenIn[B][J];
        if (!Cache.unifiable2(RenOut[A], Pattern))
          continue;
        DependencyEdge E;
        E.Producer = static_cast<ApiId>(A);
        E.Consumer = static_cast<ApiId>(B);
        E.Slot = static_cast<int>(J);
        E.ByRef = Pattern->isRef();
        E.Generic = !RenOut[A]->isConcrete() || !Pattern->isConcrete();
        G.Index.emplace(
            DependencyGraph::packKey(E.Producer, E.Consumer, E.Slot),
            static_cast<int>(G.Edges.size()));
        G.Edges.push_back(E);
        size_t Row = G.SlotBase[B] + J;
        G.Bits[Row * G.WordsPerRow + A / 64] |= uint64_t(1) << (A % 64);
      }
    }
  }
  return G;
}

std::string DependencyGraph::describe(const ApiDatabase &Db) const {
  std::string Out;
  Out += "nodes " + std::to_string(NumNodes) + " edges " +
         std::to_string(Edges.size()) + "\n";
  for (const DependencyEdge &E : Edges) {
    const ApiSig &P = Db.get(E.Producer);
    const ApiSig &C = Db.get(E.Consumer);
    Out += P.Name + " -> " + C.Name + "#" + std::to_string(E.Slot) + " [" +
           (P.Output ? P.Output->str() : "()") + " => " +
           C.Inputs[static_cast<size_t>(E.Slot)]->str() +
           (E.ByRef ? ", by-ref" : ", by-value") +
           (E.Generic ? ", generic" : "") + "]\n";
  }
  return Out;
}
