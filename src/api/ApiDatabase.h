//===--- ApiDatabase.h - Mutable API specification set ---------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evolving set of API specifications Algorithm 1 synthesizes against.
/// Refinement (Section 5) mutates it: eager concretizations and duplicated
/// refined APIs are added, unfixable APIs are banned, and original
/// polymorphic APIs accumulate blocked input-type combinations so the
/// duplicated refinement stays disjoint from the original (Section 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_API_APIDATABASE_H
#define SYRUST_API_APIDATABASE_H

#include "api/ApiSig.h"

#include <map>
#include <set>
#include <vector>

namespace syrust::api {

/// Owns the API signatures and their refinement state.
class ApiDatabase {
public:
  /// Adds a signature and returns its id. Ids are stable for the lifetime
  /// of the database.
  ApiId add(ApiSig Sig) {
    Apis.push_back(std::move(Sig));
    Banned.push_back(false);
    return static_cast<ApiId>(Apis.size() - 1);
  }

  const ApiSig &get(ApiId Id) const { return Apis[static_cast<size_t>(Id)]; }
  size_t size() const { return Apis.size(); }

  /// Prevents the synthesizer from using an API deemed unfixable
  /// (Section 3: "APIs deemed unfixable will be prevented from being used").
  void ban(ApiId Id) { Banned[static_cast<size_t>(Id)] = true; }
  bool isBanned(ApiId Id) const { return Banned[static_cast<size_t>(Id)]; }

  /// Blocks an input-type combination on a polymorphic original after its
  /// refinement was duplicated (Section 5.3: "we block combinations rather
  /// than individual input types").
  void blockCombo(ApiId Id, std::vector<const types::Type *> Combo) {
    BlockedCombos[Id].insert(std::move(Combo));
  }

  bool isComboBlocked(ApiId Id,
                      const std::vector<const types::Type *> &Combo) const {
    auto It = BlockedCombos.find(Id);
    return It != BlockedCombos.end() && It->second.count(Combo) != 0;
  }

  /// Ids of APIs the synthesizer may use.
  std::vector<ApiId> activeIds() const {
    std::vector<ApiId> Ids;
    for (size_t I = 0; I < Apis.size(); ++I)
      if (!Banned[I])
        Ids.push_back(static_cast<ApiId>(I));
    return Ids;
  }

  /// Finds an existing signature with identical name, inputs, and output
  /// (used to avoid duplicate refinements). Returns ApiIdInvalid if none.
  ApiId findDuplicate(const ApiSig &Sig) const {
    for (size_t I = 0; I < Apis.size(); ++I) {
      const ApiSig &A = Apis[I];
      if (A.Name == Sig.Name && A.Inputs == Sig.Inputs &&
          A.Output == Sig.Output)
        return static_cast<ApiId>(I);
    }
    return ApiIdInvalid;
  }

private:
  std::vector<ApiSig> Apis;
  std::vector<bool> Banned;
  std::map<ApiId, std::set<std::vector<const types::Type *>>> BlockedCombos;
};

/// Appends the three built-in operations of Section 6.2 (let-mut and the
/// two borrows) to \p Db, using a fresh type variable from \p Arena.
/// Returns their ids in {LetMut, Borrow, BorrowMut} order.
std::vector<ApiId> addBuiltinApis(ApiDatabase &Db, types::TypeArena &Arena);

} // namespace syrust::api

#endif // SYRUST_API_APIDATABASE_H
