//===--- ApiSig.h - Library API type signatures ----------------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An API type signature as consumed by the synthesizer: input types,
/// output type, trait bounds on type variables, and the annotations the
/// reproduction needs to mirror the paper's evaluation realities (unsafe
/// weighting for API selection, signature-collection quirks that produce
/// Misc/Lifetime errors, and lifetime-propagation metadata for Rules 6-7).
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_API_APISIG_H
#define SYRUST_API_APISIG_H

#include "types/Type.h"

#include <string>
#include <vector>

namespace syrust::api {

using ApiId = int;
constexpr ApiId ApiIdInvalid = -1;

/// The three built-in operations the paper always adds to the API set
/// (Section 6.2): assignment-to-mutable and the two borrow forms.
enum class BuiltinKind : uint8_t {
  None,      ///< Ordinary library API.
  LetMut,    ///< `let mut x = y;` - ownership move to a fresh mutable var.
  Borrow,    ///< `let r = &v;` - shared borrow.
  BorrowMut, ///< `let r = &mut v;` - mutable borrow.
};

/// Simulated imperfections of the collected API specifications. The paper
/// attributes its Miscellaneous and residual Lifetime&Ownership errors to
/// exactly these phenomena (Section 7.1).
struct ApiQuirks {
  /// The collected signature's arity differs from the real one; calling the
  /// API yields an "expected n arguments, found j" Misc error.
  bool SkewedArity = false;
  /// The API resolves through trait-method machinery the collector missed;
  /// calls yield "method not found" Misc errors (generic-array, hashbrown).
  bool MethodNotFound = false;
  /// The real signature involves an anonymous parameterized lifetime the
  /// encoder cannot express; calls that chain its output into another call
  /// are rejected with a Lifetime&Ownership error.
  bool AnonLifetime = false;
  /// The type variable has a default the collector dropped (petgraph);
  /// uses with an unresolved variable are rejected with a Type error.
  bool NeedsDefaultTypeParam = false;
};

/// One API type signature.
struct ApiSig {
  /// Display name, e.g. "Vec::push".
  std::string Name;

  /// Input types in call order. For methods the receiver is input 0.
  std::vector<const types::Type *> Inputs;

  /// Output type; the unit type for procedures.
  const types::Type *Output = nullptr;

  /// Trait bounds: (type-variable name, required trait). The SAT encoder
  /// ignores these (Section 5.2); the checker enforces them.
  std::vector<std::pair<std::string, std::string>> Bounds;

  /// Bounds already resolved to concrete types, produced when refinement
  /// instantiates a polymorphic API (the instantiated signature no longer
  /// mentions the type variable, but rustc would still check the trait).
  std::vector<std::pair<const types::Type *, std::string>> ResolvedBounds;

  /// True when the implementation contains unsafe code; selection weighs
  /// such APIs 50% higher (Section 6.2).
  bool HasUnsafe = false;

  BuiltinKind Builtin = BuiltinKind::None;

  ApiQuirks Quirks;

  /// Indices of inputs whose lifetime flows into the output (Definition 5
  /// paths). Borrow builtins implicitly propagate from input 0.
  std::vector<int> PropagatesFrom;

  /// Key into the miri semantic-model registry; empty for builtins.
  std::string SemanticsKey;

  /// For APIs produced by refinement: the id of the polymorphic original.
  ApiId RefinedFrom = ApiIdInvalid;

  /// Distinct type-variable names over inputs and output.
  std::vector<std::string> typeVarNames() const {
    std::vector<std::string> Names;
    for (const types::Type *In : Inputs)
      In->collectVars(Names);
    if (Output)
      Output->collectVars(Names);
    return Names;
  }

  bool isPolymorphic() const {
    for (const types::Type *In : Inputs)
      if (!In->isConcrete())
        return true;
    return Output && !Output->isConcrete();
  }

  /// True when the output (possibly through a wrapper) carries a borrow of
  /// some input, i.e. PropagatesFrom is non-empty or this is a borrow
  /// builtin.
  bool propagatesLifetime() const {
    return !PropagatesFrom.empty() || Builtin == BuiltinKind::Borrow ||
           Builtin == BuiltinKind::BorrowMut;
  }
};

} // namespace syrust::api

#endif // SYRUST_API_APISIG_H
