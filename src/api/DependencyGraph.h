//===--- DependencyGraph.h - Producer/consumer API graph -------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The API dependency graph: nodes are the API signatures of one crate's
/// database and a directed edge (A, B, j) says "the output of A unifies
/// into input slot j of B" - the producer/consumer relation RULF uses as
/// its coverage unit for library fuzzing. The edge set is derived from
/// exactly the slot-pairwise compatibility probes core::CrateAnalysis
/// already precomputes (renamed output type vs renamed input pattern
/// under two-sided unification), so building the graph alongside the
/// matrix costs zero extra probes.
///
/// The graph is frozen per crate: it covers every signature of the base
/// database (bans and run-local refinement never change it), edges are
/// sorted by (producer, consumer, slot), and edge truth is a pure
/// function of interned type pointers - so two builds over the same
/// database are byte-identical regardless of seed, worker count, or
/// whether a shared analysis or a private instantiation supplied the
/// types. coverage::ApiPairCoverage marks bitsets over these nodes and
/// edges as the synthesizer emits programs.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_API_DEPENDENCYGRAPH_H
#define SYRUST_API_DEPENDENCYGRAPH_H

#include "api/ApiDatabase.h"
#include "types/CompatCache.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace syrust::api {

/// One producer -> consumer edge: the output of \c Producer can feed
/// input slot \c Slot of \c Consumer.
struct DependencyEdge {
  ApiId Producer = ApiIdInvalid;
  ApiId Consumer = ApiIdInvalid;
  /// Input-slot index on the consumer (the receiver is slot 0).
  int Slot = 0;
  /// The consumer slot takes a reference (&T / &mut T) rather than
  /// consuming the value.
  bool ByRef = false;
  /// The connection involves an uninstantiated type variable on either
  /// endpoint (producer output or consumer slot pattern), i.e. it only
  /// exists under some generic instantiation.
  bool Generic = false;
};

/// Frozen producer/consumer graph over one API database. See file
/// comment for the determinism contract.
class DependencyGraph {
public:
  DependencyGraph() = default;

  /// Nodes are ApiIds [0, numNodes()), mirroring the database the graph
  /// was built from (builtins included).
  size_t numNodes() const { return NumNodes; }
  size_t numEdges() const { return Edges.size(); }

  /// Edges sorted by (Producer, Consumer, Slot) - the deterministic
  /// bitset order coverage tracking and serialization rely on.
  const std::vector<DependencyEdge> &edges() const { return Edges; }

  /// Dense index of edge (Producer, Consumer, Slot) into edges(), or -1
  /// when the graph has no such edge.
  int edgeIndex(ApiId Producer, ApiId Consumer, int Slot) const {
    auto It = Index.find(packKey(Producer, Consumer, Slot));
    return It == Index.end() ? -1 : It->second;
  }

  /// O(1) membership test over the same edge set as edgeIndex(), backed
  /// by per-(consumer, slot) bitset rows over producer ids instead of a
  /// hash probe. This is the encoder's pruning fast path: one bit test
  /// replaces a CompatCache lookup, and by construction (the edge set is
  /// exactly the probe-success set) the answer equals
  /// Cache.unifiable2(renamed output of Producer, renamed slot pattern).
  bool hasEdge(ApiId Producer, ApiId Consumer, int Slot) const {
    size_t Row = static_cast<size_t>(SlotBase[static_cast<size_t>(Consumer)]) +
                 static_cast<size_t>(Slot);
    uint64_t Word =
        Bits[Row * WordsPerRow + static_cast<size_t>(Producer) / 64];
    return (Word >> (static_cast<size_t>(Producer) % 64)) & 1;
  }

  /// True when \p Consumer has at least one inbound producer for slot
  /// \p Slot anywhere in the database (any bit set in the row).
  bool slotHasProducer(ApiId Consumer, int Slot) const {
    size_t Row = static_cast<size_t>(SlotBase[static_cast<size_t>(Consumer)]) +
                 static_cast<size_t>(Slot);
    for (size_t W = 0; W < WordsPerRow; ++W)
      if (Bits[Row * WordsPerRow + W])
        return true;
    return false;
  }

  /// Canonical one-line-per-edge rendering (golden tests): endpoint
  /// names and types from \p Db plus the edge metadata.
  std::string describe(const ApiDatabase &Db) const;

private:
  friend DependencyGraph buildDependencyGraph(const ApiDatabase &Db,
                                              types::TypeArena &Arena,
                                              types::CompatCache &Cache);

  static uint64_t packKey(ApiId Producer, ApiId Consumer, int Slot) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(Producer)) << 40) |
           (static_cast<uint64_t>(static_cast<uint32_t>(Consumer) &
                                  0xffffff)
            << 16) |
           static_cast<uint64_t>(static_cast<uint32_t>(Slot) & 0xffff);
  }

  size_t NumNodes = 0;
  std::vector<DependencyEdge> Edges;
  std::unordered_map<uint64_t, int> Index;

  /// Bitset adjacency: row r = SlotBase[Consumer] + Slot holds one bit
  /// per producer id, WordsPerRow 64-bit words per row. SlotBase is the
  /// prefix sum of input counts over consumer ids (one trailing total
  /// entry), so rows for all (consumer, slot) pairs pack densely.
  std::vector<uint32_t> SlotBase;
  std::vector<uint64_t> Bits;
  size_t WordsPerRow = 0;
};

/// Builds the graph over every signature of \p Db. Signatures are
/// renamed with the same "a<ApiId>" suffix Encoding::sync uses (interned
/// into \p Arena, so inside core::CrateAnalysis the renames resolve to
/// the already-interned pointers) and each candidate edge is one
/// \c unifiable2(renamed output, renamed slot pattern) probe through
/// \p Cache - the exact probes of the precomputed per-slot matrix, so a
/// build over a populated base cache adds no new entries.
DependencyGraph buildDependencyGraph(const ApiDatabase &Db,
                                     types::TypeArena &Arena,
                                     types::CompatCache &Cache);

} // namespace syrust::api

#endif // SYRUST_API_DEPENDENCYGRAPH_H
