//===--- ApiDatabase.cpp - Mutable API specification set ------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "api/ApiDatabase.h"

using namespace syrust::api;
using namespace syrust::types;

std::vector<ApiId> syrust::api::addBuiltinApis(ApiDatabase &Db,
                                               TypeArena &Arena) {
  const Type *T = Arena.typeVar("T");
  std::vector<ApiId> Ids;

  ApiSig LetMut;
  LetMut.Name = "builtin::let_mut";
  LetMut.Inputs = {T};
  LetMut.Output = T;
  LetMut.Builtin = BuiltinKind::LetMut;
  Ids.push_back(Db.add(std::move(LetMut)));

  ApiSig Borrow;
  Borrow.Name = "builtin::borrow";
  Borrow.Inputs = {T};
  Borrow.Output = Arena.ref(T, /*Mutable=*/false);
  Borrow.Builtin = BuiltinKind::Borrow;
  Borrow.PropagatesFrom = {0};
  Ids.push_back(Db.add(std::move(Borrow)));

  ApiSig BorrowMut;
  BorrowMut.Name = "builtin::borrow_mut";
  BorrowMut.Inputs = {T};
  BorrowMut.Output = Arena.ref(T, /*Mutable=*/true);
  BorrowMut.Builtin = BuiltinKind::BorrowMut;
  BorrowMut.PropagatesFrom = {0};
  Ids.push_back(Db.add(std::move(BorrowMut)));

  return Ids;
}
