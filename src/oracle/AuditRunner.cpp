//===--- AuditRunner.cpp - Campaign-style audit fan-out -------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "oracle/AuditRunner.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::json;
using namespace syrust::oracle;
using namespace syrust::rustsim;

std::vector<std::string> AuditSpec::validate(const Session &S) const {
  std::vector<std::string> Errors;
  if (Crates.empty())
    Errors.push_back("AuditSpec.Crates must name at least one crate");
  std::set<std::string> Seen;
  for (const std::string &Name : Crates) {
    if (!Seen.insert(Name).second)
      Errors.push_back("AuditSpec.Crates lists '" + Name +
                       "' more than once");
    else if (!S.find(Name))
      Errors.push_back("AuditSpec.Crates names unknown crate '" + Name +
                       "'; try `syrust list`");
  }
  if (SeedEnd < SeedBegin)
    Errors.push_back("AuditSpec seed range is empty: SeedEnd " +
                     std::to_string(SeedEnd) + " < SeedBegin " +
                     std::to_string(SeedBegin));
  if (Jobs < 1)
    Errors.push_back("AuditSpec.Jobs must be at least 1, got " +
                     std::to_string(Jobs));
  std::vector<std::string> BaseErrors = Base.validate();
  Errors.insert(Errors.end(), BaseErrors.begin(), BaseErrors.end());
  return Errors;
}

std::vector<AuditJob>
syrust::oracle::expandAuditMatrix(const AuditSpec &Spec) {
  std::vector<AuditJob> Jobs;
  size_t Index = 0;
  for (const std::string &Crate : Spec.Crates) {
    for (uint64_t Seed = Spec.SeedBegin; Seed <= Spec.SeedEnd; ++Seed) {
      AuditJob Job;
      Job.Index = Index++;
      Job.Crate = Crate;
      Job.Seed = Seed;
      Job.Config = Spec.Base;
      Job.Config.Seed = Seed;
      Jobs.push_back(std::move(Job));
      if (Seed == UINT64_MAX)
        break; // Seed + 1 would wrap.
    }
  }
  return Jobs;
}

namespace {

/// One worker's job queue; the campaign pool's mutex-guarded deque
/// (CampaignRunner.cpp), for the same reason: audits run for
/// milliseconds to seconds, so queue operations are nowhere near the
/// critical path and this version is trivially ThreadSanitizer-clean.
struct WorkerQueue {
  std::mutex Mu;
  std::deque<size_t> Q;

  void push(size_t Job) {
    std::lock_guard<std::mutex> Lock(Mu);
    Q.push_back(Job);
  }
  /// Owner end: newest first.
  std::optional<size_t> popBack() {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Q.empty())
      return std::nullopt;
    size_t Job = Q.back();
    Q.pop_back();
    return Job;
  }
  /// Thief end: oldest first.
  std::optional<size_t> stealFront() {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Q.empty())
      return std::nullopt;
    size_t Job = Q.front();
    Q.pop_front();
    return Job;
  }
};

} // namespace

AuditRunResult syrust::oracle::runAudit(
    const Session &S, const AuditSpec &Spec,
    std::function<void(const AuditJobResult &)> OnJobDone) {
  assert(Spec.validate(S).empty() &&
         "invalid AuditSpec; validate() before running");
  std::vector<AuditJob> Jobs = expandAuditMatrix(Spec);

  AuditRunResult Result;
  Result.Jobs.resize(Jobs.size());
  int Workers = Spec.Jobs;
  if (static_cast<size_t>(Workers) > Jobs.size())
    Workers = static_cast<int>(Jobs.size() ? Jobs.size() : 1);
  Result.Workers = Workers;

  std::vector<WorkerQueue> Queues(Workers);
  for (size_t I = 0; I < Jobs.size(); ++I)
    Queues[I % Workers].push(I);

  // One metrics-only recorder per worker; the merged counters are
  // integer sums, identical for any pool width.
  std::vector<obs::Recorder> Recorders;
  Recorders.reserve(Workers);
  for (int W = 0; W < Workers; ++W) {
    obs::Recorder::Options Opts;
    Opts.Metrics = true;
    Opts.Lane = W;
    Recorders.emplace_back(Opts);
  }

  std::mutex JobDoneMu;
  auto WorkerLoop = [&](int Me) {
    obs::Recorder &Rec = Recorders[Me];
    for (;;) {
      std::optional<size_t> JobIdx = Queues[Me].popBack();
      for (int Off = 1; !JobIdx && Off < Workers; ++Off)
        JobIdx = Queues[(Me + Off) % Workers].stealFront();
      if (!JobIdx)
        return; // Every deque empty: no work will ever appear again.
      const AuditJob &Job = Jobs[*JobIdx];
      AuditJobResult &Slot = Result.Jobs[*JobIdx];
      Slot.Job = Job;
      Slot.Worker = Me;
      Slot.Result = auditOne(S, Job.Crate, Job.Config, &Rec);
      if (OnJobDone) {
        std::lock_guard<std::mutex> Lock(JobDoneMu);
        OnJobDone(Slot);
      }
    }
  };

  if (Workers <= 1) {
    WorkerLoop(0); // Same code path, no thread: --jobs 1 is the oracle.
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (int W = 0; W < Workers; ++W)
      Pool.emplace_back(WorkerLoop, W);
    for (std::thread &T : Pool)
      T.join();
  }

  // Merge in matrix order - completion order must never leak into the
  // aggregate. Per-crate API coverage ORs into one slot per
  // AuditSpec::Crates name.
  for (const std::string &Crate : Spec.Crates)
    Result.ApiCoverage.emplace_back(Crate, coverage::ApiCoverageData());
  uint64_t MergeConflicts = 0;
  for (const AuditJobResult &JR : Result.Jobs) {
    const AuditResult &R = JR.Result;
    for (auto &[Crate, Data] : Result.ApiCoverage)
      if (Crate == JR.Job.Crate) {
        if (Data.mergeFrom(R.ApiCoverage))
          ++MergeConflicts;
        break;
      }
    Result.Totals.ModelsReplayed += R.ModelsReplayed;
    Result.Totals.AgreePass += R.AgreePass;
    Result.Totals.AgreeReject += R.AgreeReject;
    Result.Totals.ExpectedTotal += R.ExpectedTotal;
    Result.Totals.UnexpectedTotal += R.UnexpectedTotal;
    Result.Totals.FilteredCompilable += R.FilteredCompilable;
    Result.Totals.MinimizerSteps += R.MinimizerSteps;
    for (const auto &[Det, N] : R.Expected)
      Result.Totals.Expected[Det] += N;
  }
  // Nonzero-only, so clean aggregates keep their exact key set.
  if (MergeConflicts)
    Result.MergedCounters["coverage.api.merge_conflicts"] += MergeConflicts;
  for (obs::Recorder &Rec : Recorders)
    for (const auto &[Name, C] : Rec.metrics().counters())
      Result.MergedCounters[Name] += C->value();
  return Result;
}

namespace {

json::Value auditResultToJson(const AuditResult &R) {
  Value Doc = Value::object();
  Doc.set("supported", Value::boolean(R.Supported));
  Doc.set("models_replayed",
          Value::integer(static_cast<int64_t>(R.ModelsReplayed)));
  Doc.set("agree_pass",
          Value::integer(static_cast<int64_t>(R.AgreePass)));
  Doc.set("agree_reject",
          Value::integer(static_cast<int64_t>(R.AgreeReject)));
  Doc.set("expected_total",
          Value::integer(static_cast<int64_t>(R.ExpectedTotal)));
  Doc.set("unexpected_total",
          Value::integer(static_cast<int64_t>(R.UnexpectedTotal)));
  Doc.set("filtered_compilable",
          Value::integer(static_cast<int64_t>(R.FilteredCompilable)));
  Doc.set("minimizer_steps",
          Value::integer(static_cast<int64_t>(R.MinimizerSteps)));
  Value Expected = Value::object();
  for (const auto &[Det, N] : R.Expected)
    Expected.set(detailName(Det),
                 Value::integer(static_cast<int64_t>(N)));
  Doc.set("expected_by_detail", std::move(Expected));
  Value Unexpected = Value::array();
  for (const Disagreement &D : R.Unexpected) {
    Value Repro = Value::object();
    Repro.set("detail", Value::string(detailName(D.Detail)));
    Repro.set("message", Value::string(D.Message));
    Repro.set("lines", Value::integer(D.Lines));
    Repro.set("source", Value::string(D.Source));
    Repro.set("minimized_lines", Value::integer(D.MinimizedLines));
    Repro.set("minimized_source", Value::string(D.MinimizedSource));
    Repro.set("minimizer_steps",
              Value::integer(static_cast<int64_t>(D.MinimizerSteps)));
    Unexpected.push(std::move(Repro));
  }
  Doc.set("unexpected", std::move(Unexpected));
  Doc.set("api_coverage", coverage::apiCoverageToJson(R.ApiCoverage));
  return Doc;
}

} // namespace

json::Value syrust::oracle::auditToJson(const AuditSpec &Spec,
                                        const AuditRunResult &R) {
  Value Root = Value::object();
  // Version 5 across every document kind (see ResultJson.cpp for the
  // history): this document gained per-job and per-crate api_coverage.
  // Nothing in it may depend on scheduling (worker ids, pool width,
  // wall time): byte-identical output for any --jobs count is the
  // contract.
  Root.set("schema_version", Value::integer(5));
  Root.set("kind", Value::string("audit"));
  Root.set("clean", Value::boolean(R.clean()));

  Value Matrix = Value::object();
  Value CrateList = Value::array();
  for (const std::string &Name : Spec.Crates)
    CrateList.push(Value::string(Name));
  Matrix.set("crates", std::move(CrateList));
  Matrix.set("seed_begin",
             Value::integer(static_cast<int64_t>(Spec.SeedBegin)));
  Matrix.set("seed_end",
             Value::integer(static_cast<int64_t>(Spec.SeedEnd)));
  Matrix.set("max_models",
             Value::integer(static_cast<int64_t>(Spec.Base.MaxModels)));
  Matrix.set("max_lines", Value::integer(Spec.Base.MaxLines));
  Matrix.set("num_apis", Value::integer(Spec.Base.NumApis));
  Matrix.set("jobs_total",
             Value::integer(static_cast<int64_t>(R.Jobs.size())));
  Root.set("matrix", std::move(Matrix));

  Value Jobs = Value::array();
  for (const AuditJobResult &JR : R.Jobs) {
    Value Job = Value::object();
    Job.set("crate", Value::string(JR.Job.Crate));
    Job.set("seed", Value::integer(static_cast<int64_t>(JR.Job.Seed)));
    Job.set("result", auditResultToJson(JR.Result));
    Jobs.push(std::move(Job));
  }
  Root.set("jobs", std::move(Jobs));

  Value Totals = Value::object();
  Totals.set("models_replayed",
             Value::integer(
                 static_cast<int64_t>(R.Totals.ModelsReplayed)));
  Totals.set("agree_pass",
             Value::integer(static_cast<int64_t>(R.Totals.AgreePass)));
  Totals.set("agree_reject",
             Value::integer(static_cast<int64_t>(R.Totals.AgreeReject)));
  Totals.set("expected_total",
             Value::integer(
                 static_cast<int64_t>(R.Totals.ExpectedTotal)));
  Totals.set("unexpected_total",
             Value::integer(
                 static_cast<int64_t>(R.Totals.UnexpectedTotal)));
  Totals.set("filtered_compilable",
             Value::integer(
                 static_cast<int64_t>(R.Totals.FilteredCompilable)));
  Totals.set("minimizer_steps",
             Value::integer(
                 static_cast<int64_t>(R.Totals.MinimizerSteps)));
  Value Expected = Value::object();
  for (const auto &[Det, N] : R.Totals.Expected)
    Expected.set(detailName(Det),
                 Value::integer(static_cast<int64_t>(N)));
  Totals.set("expected_by_detail", std::move(Expected));
  Root.set("totals", std::move(Totals));

  // Per-crate API-pair coverage, already OR-merged in matrix order.
  Value ApiCov = Value::array();
  for (const auto &[Crate, Data] : R.ApiCoverage) {
    Value E = Value::object();
    E.set("crate", Value::string(Crate));
    E.set("api_coverage", coverage::apiCoverageToJson(Data));
    ApiCov.push(std::move(E));
  }
  Root.set("api_coverage", std::move(ApiCov));

  // Merged pool counters (std::map: sorted, deterministic).
  Value Metrics = Value::object();
  for (const auto &[Name, N] : R.MergedCounters)
    Metrics.set(Name, Value::integer(static_cast<int64_t>(N)));
  Root.set("metrics", std::move(Metrics));
  return Root;
}
