//===--- AuditRunner.h - Campaign-style audit fan-out ----------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans an agreement-oracle matrix - every named crate × every seed in
/// an inclusive range - across a work-stealing thread pool, exactly the
/// campaign engine's shape (campaign/CampaignRunner.h): jobs are dealt
/// round-robin, stolen when durations diverge, and merged strictly in
/// matrix order, so the aggregate audit document is byte-identical for
/// any `--jobs` count. The document (schema_version 5, kind "audit")
/// carries per-job classification counts, every minimized repro,
/// per-crate api_coverage, and the pool's merged `oracle.*` counters -
/// and deliberately nothing scheduling-dependent.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_ORACLE_AUDITRUNNER_H
#define SYRUST_ORACLE_AUDITRUNNER_H

#include "oracle/Oracle.h"
#include "support/Json.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace syrust::oracle {

/// The audit matrix: every named crate × every seed in [SeedBegin,
/// SeedEnd], all sharing one base OracleConfig (each job overrides
/// Seed).
struct AuditSpec {
  /// Crate names (the CLI's `--crates`; Session::supportedCrates() is
  /// the `all` expansion).
  std::vector<std::string> Crates;

  /// Inclusive seed range (`--seeds N..M`; a single seed is N..N).
  uint64_t SeedBegin = 2021;
  uint64_t SeedEnd = 2021;

  /// Configuration every job starts from.
  OracleConfig Base;

  /// Pool width (`--jobs`). 1 runs the whole matrix on the calling
  /// thread - through the same code path, so results are identical.
  int Jobs = 1;

  /// Checks the matrix against \p S and the base config against its
  /// domains. Returns one specific message per problem; empty =
  /// runnable.
  std::vector<std::string> validate(const core::Session &S) const;
};

/// One cell of the matrix, fully resolved.
struct AuditJob {
  size_t Index = 0; ///< Position in matrix order (the merge key).
  std::string Crate;
  uint64_t Seed = 0;
  OracleConfig Config;
};

/// A finished cell.
struct AuditJobResult {
  AuditJob Job;
  AuditResult Result;
  /// Which pool worker ran it. Diagnostic only - never serialized into
  /// the aggregate document, which must not depend on scheduling.
  int Worker = -1;
};

/// Audit-wide sums, accumulated in matrix order.
struct AuditTotals {
  uint64_t ModelsReplayed = 0;
  uint64_t AgreePass = 0;
  uint64_t AgreeReject = 0;
  uint64_t ExpectedTotal = 0;
  uint64_t UnexpectedTotal = 0;
  uint64_t FilteredCompilable = 0;
  uint64_t MinimizerSteps = 0;
  std::map<rustsim::ErrorDetail, uint64_t> Expected;
};

/// Everything an audit run produces.
struct AuditRunResult {
  std::vector<AuditJobResult> Jobs; ///< Matrix order.
  AuditTotals Totals;
  /// Final per-worker metric counters summed across the pool. Integer
  /// sums commute, so these totals are identical for any worker count.
  std::map<std::string, uint64_t> MergedCounters;
  /// Per-crate API-pair coverage of the audited streams, OR-merged
  /// across seeds in matrix order. One entry per AuditSpec::Crates name.
  std::vector<std::pair<std::string, coverage::ApiCoverageData>> ApiCoverage;
  /// Workers the pool actually spawned (diagnostic only).
  int Workers = 0;

  /// The audit's pass/fail verdict: any unexpected disagreement
  /// anywhere in the matrix fails (`syrust audit` exits nonzero).
  bool clean() const { return Totals.UnexpectedTotal == 0; }
};

/// Lays out the matrix in deterministic order: crates outermost (in the
/// given order), then seeds ascending.
std::vector<AuditJob> expandAuditMatrix(const AuditSpec &Spec);

/// Runs the matrix across \p Spec.Jobs workers. \p OnJobDone, when set,
/// fires under a lock as each job finishes (progress reporting; the
/// callback order is scheduling-dependent, the returned result is not).
/// Precondition: Spec.validate(S) is empty.
AuditRunResult
runAudit(const core::Session &S, const AuditSpec &Spec,
         std::function<void(const AuditJobResult &)> OnJobDone = nullptr);

/// The aggregate audit document (schema_version 5, kind "audit").
/// Matrix, per-job classification counts and minimized repros in matrix
/// order, totals, per-crate api_coverage, and the merged `oracle.*`
/// counters - and nothing scheduling-dependent, so the document is
/// byte-identical for any worker count.
json::Value auditToJson(const AuditSpec &Spec, const AuditRunResult &R);

} // namespace syrust::oracle

#endif // SYRUST_ORACLE_AUDITRUNNER_H
