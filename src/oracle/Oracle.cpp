//===--- Oracle.cpp - Encoder/checker agreement oracle --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "oracle/Oracle.h"

#include "core/CrateAnalysis.h"
#include "rustsim/Checker.h"
#include "sat/SolverStrategy.h"
#include "synth/Synthesizer.h"

#include <algorithm>
#include <utility>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::oracle;
using namespace syrust::program;
using namespace syrust::rustsim;
using namespace syrust::synth;

std::vector<std::string> OracleConfig::validate() const {
  std::vector<std::string> Errors;
  if (NumApis < 1)
    Errors.push_back("OracleConfig.NumApis must be at least 1, got " +
                     std::to_string(NumApis));
  if (MaxLines < 0)
    Errors.push_back("OracleConfig.MaxLines must be non-negative, got " +
                     std::to_string(MaxLines));
  if (MaxModels == 0)
    Errors.push_back("OracleConfig.MaxModels must be nonzero (a zero cap "
                     "would audit nothing and report vacuous agreement)");
  if (EagerCap == 0)
    Errors.push_back("OracleConfig.EagerCap must be nonzero (a zero cap "
                     "would forbid every eager instantiation)");
  if (!Strategy.empty() && !sat::findStrategy(Strategy))
    Errors.push_back("OracleConfig.Strategy '" + Strategy +
                     "' is not a known solver strategy (known: " +
                     sat::knownStrategyNames() + ")");
  return Errors;
}

bool syrust::oracle::isExpectedDetail(ErrorDetail Detail) {
  switch (Detail) {
  case ErrorDetail::TraitBound:
  case ErrorDetail::Polymorphism:
  case ErrorDetail::DefaultTypeParam:
  case ErrorDetail::AnonLifetime:
  case ErrorDetail::Arity:
  case ErrorDetail::MethodNotFound:
    // The checker is deliberately stricter here (Checker.h file comment):
    // these rejections are the refinement loop's feedback, not encoder
    // bugs.
    return true;
  case ErrorDetail::None:
  case ErrorDetail::TypeMismatch:
  case ErrorDetail::Ownership:
  case ErrorDetail::Borrowing:
    // Rules 1-9 claim to encode concrete typing, moves, and borrows
    // exactly; an emitted program rejected here is a soundness bug.
    return false;
  }
  return false;
}

namespace {

/// Declared type of \p V in \p P: the template input type or the
/// synthesizer-predicted output type of its defining line.
const types::Type *declaredType(const Program &P, VarId V) {
  size_t Idx = static_cast<size_t>(V);
  if (Idx < P.Inputs.size())
    return P.Inputs[Idx].Ty;
  return P.Stmts[Idx - P.Inputs.size()].DeclType;
}

} // namespace

MinimizedDisagreement syrust::oracle::minimizeDisagreement(
    types::TypeArena &Arena, const types::TraitEnv &Traits,
    const ApiDatabase &Db, const Program &P, ErrorDetail Detail) {
  Checker Check(Arena, Traits);
  MinimizedDisagreement Min;
  Min.Program = P;

  auto StillFails = [&](const Program &Candidate) {
    ++Min.Steps;
    CompileResult R = Check.check(Candidate, Db);
    return !R.Success && R.Diag.Detail == Detail;
  };

  // Greedy fixpoint. Each accepted move strictly shrinks the program
  // (fewer lines, or a lexicographically smaller argument vector), so
  // the restart loop terminates.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    // Move 1: drop a statement, back to front (later lines are the
    // likeliest padding; removeStatement refuses when the output is
    // still used).
    for (size_t I = Min.Program.Stmts.size(); I-- > 0;) {
      Program Smaller;
      if (!removeStatement(Min.Program, I, Smaller))
        continue;
      if (StillFails(Smaller)) {
        Min.Program = std::move(Smaller);
        Progress = true;
        break;
      }
    }
    if (Progress)
      continue;
    // Move 2: rewire an argument to an earlier variable of the same
    // declared type. This unpins dependency chains so a later drop pass
    // can remove the now-unused producer line.
    for (size_t I = 0; I < Min.Program.Stmts.size() && !Progress; ++I) {
      Stmt &S = Min.Program.Stmts[I];
      for (size_t J = 0; J < S.Args.size() && !Progress; ++J) {
        const types::Type *Want = declaredType(Min.Program, S.Args[J]);
        for (VarId B = 0; B < S.Args[J]; ++B) {
          if (declaredType(Min.Program, B) != Want)
            continue;
          Program Rewired = Min.Program;
          Rewired.Stmts[I].Args[J] = B;
          if (StillFails(Rewired)) {
            Min.Program = std::move(Rewired);
            Progress = true;
            break;
          }
        }
      }
    }
  }
  return Min;
}

AuditResult syrust::oracle::auditOne(const Session &S,
                                     const std::string &CrateName,
                                     const OracleConfig &Config,
                                     obs::Recorder *Obs) {
  AuditResult Result;
  Result.Crate = CrateName;
  Result.Seed = Config.Seed;
  const CrateSpec *Spec = S.find(CrateName);
  if (!Spec || !Spec->Info.SupportsSynthesis ||
      !Config.validate().empty()) {
    Result.Supported = false;
    return Result;
  }

  // Exactly the driver's instantiation path (SyRustDriver::run), so the
  // enumeration the oracle audits is the enumeration real runs emit.
  std::shared_ptr<const CrateAnalysis> Analysis;
  if (Config.UseCompatCache)
    Analysis = S.analysisFor(*Spec);
  std::unique_ptr<CrateInstance> Inst =
      Analysis ? Analysis->makeWorkerInstance() : Spec->instantiate();
  std::unique_ptr<types::CompatCache> Compat;
  if (Config.UseCompatCache)
    Compat = std::make_unique<types::CompatCache>(
        Analysis ? &Analysis->baseCache() : nullptr);
  Rng R(Config.Seed ^ std::hash<std::string>{}(Spec->Info.Name));
  {
    ApiSelectionOptions SelOpts;
    SelOpts.Pinned = Inst->Pinned;
    SelOpts.NumApis = Config.NumApis;
    std::vector<ApiId> Selected = selectApiSubset(Inst->Db, SelOpts, R);
    for (size_t I = 0; I < Inst->Db.size(); ++I) {
      ApiId Id = static_cast<ApiId>(I);
      if (Inst->Db.get(Id).Builtin != BuiltinKind::None)
        continue;
      if (std::find(Selected.begin(), Selected.end(), Id) ==
          Selected.end())
        Inst->Db.ban(Id);
    }
  }

  refine::RefinementEngine Refine(Inst->Arena, Inst->Db, Config.Mode);
  Refine.setEagerCap(Config.EagerCap);
  Refine.setRecorder(Obs);
  Refine.initialize(Inst->Inputs);

  SynthOptions Opts;
  Opts.SemanticAware = true;
  Opts.IncrementalRefinement = true;
  Opts.Portfolio = Config.Portfolio;
  Opts.Strategy = Config.Strategy;
  Opts.SolverSeed = Config.Seed;
  Opts.Obs = Obs;
  Opts.Compat = Compat.get();
  Opts.WeakenConsumptionKills = Config.WeakenConsumptionKills;
  // The differential tap: every model the Rule-7 path filter swallows is
  // captured here and replayed through the checker alongside the
  // emitted stream.
  std::vector<Program> Filtered;
  Opts.OnPathFiltered = [&Filtered](const Program &P) {
    Filtered.push_back(P);
  };

  // The frozen dependency graph serves two consumers: API-pair coverage
  // of the audited stream and the encoder's graph-guided candidate
  // probes. Shared graph when the analysis exists, otherwise a local
  // build against a scratch cache (never the audit's Compat - its
  // counters mirror a real run's).
  api::DependencyGraph LocalGraph;
  const api::DependencyGraph *Graph;
  if (Analysis) {
    Graph = &Analysis->graph();
  } else {
    types::CompatCache Scratch;
    LocalGraph = api::buildDependencyGraph(Inst->Db, Inst->Arena, Scratch);
    Graph = &LocalGraph;
  }
  coverage::ApiPairCoverage ApiCov(*Graph);
  Opts.Graph = Graph;
  Opts.GraphPrune = Config.GraphPrune;

  int MaxLines = Config.MaxLines > 0
                     ? std::min(Config.MaxLines, Inst->MaxLen)
                     : Inst->MaxLen;
  Synthesizer Synth(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs,
                    MaxLines, Opts);
  Checker Check(Inst->Arena, Inst->Traits);
  Check.setRecorder(Obs);

  auto Count = [&Obs](const char *Name) {
    if (Obs)
      Obs->count(Name);
  };

  while (Result.ModelsReplayed < Config.MaxModels) {
    std::optional<Program> P = Synth.next();
    // Replay whatever the path filter rejected while producing this
    // model (or proving exhaustion). Order is enumeration order, so the
    // replayed stream - and the report - is deterministic.
    for (const Program &F : Filtered) {
      ++Result.ModelsReplayed;
      Count("oracle.models_replayed");
      CompileResult C = Check.check(F, Inst->Db);
      if (!C.Success) {
        ++Result.AgreeReject;
        Count("oracle.agree_reject");
      } else {
        // Filter stricter than the checker: lost coverage, not
        // unsoundness. Counted, surfaced, never fatal.
        ++Result.FilteredCompilable;
        Count("oracle.filtered_compilable");
      }
    }
    Filtered.clear();
    if (!P.has_value())
      break;

    ++Result.ModelsReplayed;
    Count("oracle.models_replayed");
    {
      const coverage::ApiPairCoverage::MarkDelta Delta =
          ApiCov.markProgram(*P, Inst->Db);
      if (Obs) {
        if (Delta.NewNodes)
          Obs->count("coverage.api.nodes_covered", Delta.NewNodes);
        if (Delta.NewEdges)
          Obs->count("coverage.api.edges_covered", Delta.NewEdges);
        if (Delta.Unmatched)
          Obs->count("coverage.api.unmatched_edges", Delta.Unmatched);
      }
    }
    CompileResult C = Check.check(*P, Inst->Db);
    bool DbChanged = false;
    if (C.Success) {
      ++Result.AgreePass;
      Count("oracle.agree_pass");
      DbChanged = Refine.onSuccess(*P);
    } else {
      if (isExpectedDetail(C.Diag.Detail)) {
        ++Result.Expected[C.Diag.Detail];
        ++Result.ExpectedTotal;
        Count("oracle.expected");
      } else {
        ++Result.UnexpectedTotal;
        Count("oracle.unexpected");
        Disagreement D;
        D.Detail = C.Diag.Detail;
        D.Message = C.Diag.Message;
        D.Lines = static_cast<int>(P->Stmts.size());
        D.Source = P->render(Inst->Db);
        MinimizedDisagreement Min = minimizeDisagreement(
            Inst->Arena, Inst->Traits, Inst->Db, *P, C.Diag.Detail);
        D.MinimizedLines = static_cast<int>(Min.Program.Stmts.size());
        D.MinimizedSource = Min.Program.render(Inst->Db);
        D.MinimizerSteps = Min.Steps;
        Result.MinimizerSteps += Min.Steps;
        if (Obs) {
          Obs->count("oracle.minimizer_steps", Min.Steps);
          Obs->instant("oracle.disagreement", "oracle",
                       obs::ArgList()
                           .add("detail", detailName(D.Detail))
                           .add("lines", D.Lines)
                           .add("minimized_lines", D.MinimizedLines));
        }
        Result.Unexpected.push_back(std::move(D));
      }
      // Feed the diagnostic back exactly as the driver would: the
      // refined database steers what the encoder enumerates next, and
      // the oracle must audit that steered stream too.
      DbChanged = Refine.onDiagnostic(C.Diag);
    }
    if (DbChanged)
      Synth.notifyDatabaseChanged();
  }
  Result.ApiCoverage = ApiCov.data();
  return Result;
}
