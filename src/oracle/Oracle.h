//===--- Oracle.h - Encoder/checker agreement oracle -----------*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential agreement oracle behind `syrust audit`. Figure 6's
/// headline claim - semantic-aware synthesis keeps the compiler-rejection
/// rate under 1%, with the residue concentrated in categories the
/// refinement loop is *designed* to learn from - is only trustworthy if
/// the SAT encoding and the semantic checker agree about Rust. This
/// module turns that agreement into a checkable invariant, Csmith-style:
/// replay every model the encoder emits AND every model its Rule-7 path
/// filter rejects through rustsim::Checker, classify each outcome, and
/// delta-debug every unexpected disagreement down to a minimal repro.
///
/// The disagreement taxonomy (see DESIGN.md "The agreement oracle"):
///
///   * agree_pass - emitted, checker accepts. The common case.
///   * agree_reject - path-filtered, checker rejects. The filter did its
///     job.
///   * expected - emitted, checker rejects with a detail the encoder
///     cannot see by design (trait bounds, polymorphism resolution,
///     defaulted type parameters, anonymous lifetimes, collector skew:
///     arity / method resolution). These are the paper's refinement
///     feedback diet, not bugs.
///   * UNEXPECTED - emitted, checker rejects with Ownership, Borrowing,
///     or TypeMismatch. Rules 1-9 claim to encode exactly these, so any
///     such rejection is an encoder or checker bug. The oracle shrinks
///     each one to a minimal program and `syrust audit` exits nonzero.
///   * filtered_compilable - path-filtered, checker accepts.
///     Informational: the filter was too strict (lost coverage, not
///     unsoundness), counted but never fatal.
///
/// Audits replay the driver's exact enumeration (same RNG seeding, same
/// API subset, same refinement feedback), so the streams examined are
/// the streams real runs emit - capped by model count, not simulated
/// time, so a report is byte-identical for any scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_ORACLE_ORACLE_H
#define SYRUST_ORACLE_ORACLE_H

#include "core/Session.h"
#include "coverage/ApiPairCoverage.h"
#include "program/Program.h"
#include "refine/RefinementEngine.h"
#include "rustsim/Diagnostic.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace syrust::oracle {

/// Configuration for one (crate, seed) audit. A deliberate subset of
/// RunConfig: audits have no simulated clock, no execution stage, and no
/// line/branch coverage - only enumeration and checking (API-pair
/// coverage over the dependency graph is tracked, since it needs only
/// the emitted stream).
struct OracleConfig {
  /// APIs selected per library (Section 6.2; matches RunConfig).
  int NumApis = 15;
  uint64_t Seed = 2021;
  /// Cap on program length; 0 = the crate's own MaxLen.
  int MaxLines = 0;
  /// Models replayed per audit (emitted + path-filtered). The cap is on
  /// examined models, never on host time, so reports are deterministic.
  uint64_t MaxModels = 2000;
  /// Polymorphism strategy driving the refinement feedback loop.
  refine::RefinementMode Mode = refine::RefinementMode::Hybrid;
  /// Cap on eager instantiations per API (matches RunConfig).
  size_t EagerCap = 48;
  bool UseCompatCache = true;
  /// Answer encoder candidate probes from the dependency graph's bitset
  /// instead of CompatCache lookups (matches RunConfig::GraphPrune; the
  /// audited stream is byte-identical either way).
  bool GraphPrune = true;
  /// Race the solver-strategy portfolio during the audited enumeration
  /// (the audited stream is byte-identical either way; this exercises
  /// the portfolio path under the agreement oracle).
  bool Portfolio = false;
  /// Named solver configuration for the audited enumeration; must be a
  /// name sat::findStrategy() knows (validate() rejects anything else).
  /// Empty = baseline.
  std::string Strategy;
  /// Canary hook: drop the encoder's consumption-kill clauses
  /// (SynthOptions::WeakenConsumptionKills) so use-after-move programs
  /// get emitted. The oracle MUST then report unexpected Ownership
  /// disagreements - the self-test that proves the harness can catch a
  /// real encoder bug.
  bool WeakenConsumptionKills = false;

  /// One specific message per invalid field; empty when runnable.
  std::vector<std::string> validate() const;
};

/// How one replayed model relates the encoder's verdict to the checker's.
enum class AgreementClass : uint8_t {
  AgreePass,
  AgreeReject,
  Expected,
  Unexpected,
  FilteredCompilable,
};

/// True for checker rejections of *emitted* programs the encoder cannot
/// see by design (the refinement feedback diet); false for the
/// Ownership/Borrowing/TypeMismatch details Rules 1-9 claim to encode.
bool isExpectedDetail(rustsim::ErrorDetail Detail);

/// One unexpected disagreement, with its delta-debugged minimal repro.
struct Disagreement {
  rustsim::ErrorDetail Detail = rustsim::ErrorDetail::None;
  std::string Message; ///< Checker message on the original program.
  int Lines = 0;
  std::string Source; ///< Rendered original program.
  int MinimizedLines = 0;
  std::string MinimizedSource;
  uint64_t MinimizerSteps = 0; ///< Candidate checks the shrink cost.
};

/// Everything one (crate, seed) audit produces. Deliberately free of
/// host wall time and scheduling artifacts.
struct AuditResult {
  std::string Crate;
  uint64_t Seed = 0;
  bool Supported = true;
  uint64_t ModelsReplayed = 0;
  uint64_t AgreePass = 0;
  uint64_t AgreeReject = 0;
  uint64_t ExpectedTotal = 0;
  uint64_t UnexpectedTotal = 0;
  uint64_t FilteredCompilable = 0;
  uint64_t MinimizerSteps = 0;
  /// Expected disagreements by checker detail (the refinement diet's
  /// composition; std::map so serialization order is deterministic).
  std::map<rustsim::ErrorDetail, uint64_t> Expected;
  /// Minimized repro per unexpected disagreement, in emission order.
  std::vector<Disagreement> Unexpected;
  /// API-pair coverage of the audited (emitted) stream over the crate's
  /// dependency graph. No simulated clock here, so no snapshots and no
  /// saturation - bitsets and totals only.
  coverage::ApiCoverageData ApiCoverage;
};

/// Outcome of shrinking one disagreeing program.
struct MinimizedDisagreement {
  program::Program Program;
  uint64_t Steps = 0; ///< Candidate checks performed.
};

/// Delta-debugs \p P down to a minimal program that still makes the
/// checker reject with exactly \p Detail. Two shrink moves iterated to
/// fixpoint: drop a statement (back to front, via
/// program::removeStatement), and substitute an argument with an
/// earlier variable of the same declared type. Every accepted move
/// strictly shrinks (line count, then argument indices), so the loop
/// terminates. Precondition: the checker rejects \p P with \p Detail.
MinimizedDisagreement minimizeDisagreement(types::TypeArena &Arena,
                                           const types::TraitEnv &Traits,
                                           const api::ApiDatabase &Db,
                                           const program::Program &P,
                                           rustsim::ErrorDetail Detail);

/// Replays one (crate, seed) enumeration through the checker. Mirrors
/// SyRustDriver::run()'s wiring exactly - same RNG seeding, same API
/// subset selection, same refinement feedback - so the audited stream
/// is the stream a real run emits. \p Obs, when set, receives the
/// `oracle.*` counters and per-model trace events.
AuditResult auditOne(const core::Session &S, const std::string &CrateName,
                     const OracleConfig &Config,
                     obs::Recorder *Obs = nullptr);

} // namespace syrust::oracle

#endif // SYRUST_ORACLE_ORACLE_H
