#!/usr/bin/env sh
# CI gate: every bench artifact CHANGES.md cites must be committed.
#
# CHANGES.md records perf claims against named BENCH_*.json documents;
# a claim whose artifact was never committed (or was renamed away) is
# unverifiable. Run from anywhere inside the repository.
set -eu

cd "$(git rev-parse --show-toplevel)"

REFS=$(grep -o 'BENCH_[A-Za-z0-9_]*\.json' CHANGES.md | sort -u || true)

if [ -z "$REFS" ]; then
  echo "ok: CHANGES.md references no bench artifacts"
  exit 0
fi

MISSING=""
for REF in $REFS; do
  if ! git ls-files --error-unmatch "bench/$REF" >/dev/null 2>&1; then
    MISSING="$MISSING $REF"
  fi
done

if [ -n "$MISSING" ]; then
  echo "error: CHANGES.md references bench artifacts not tracked in bench/:" >&2
  for REF in $MISSING; do
    echo "  $REF" >&2
  done
  echo "hint: run the bench in a release build, un-ignore the file in .gitignore, and commit bench/<name>" >&2
  exit 1
fi

echo "ok: every bench artifact referenced in CHANGES.md is committed"
