//===--- syrust.cpp - Command-line driver ---------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The command-line face of the framework:
///
///   syrust list
///       Print the library inventory (Figure 12).
///   syrust run <crate> [options]
///       Run the full pipeline against one library model.
///   syrust campaign [options]
///       Fan a (crate, seed, variant) job matrix across a work-stealing
///       thread pool and merge the results deterministically — the
///       paper's 64-container cluster campaign (Section 6.2) at
///       one-machine scale (docs/CAMPAIGNS.md).
///   syrust audit [options]
///       Replay enumerated models (emitted and Rule-7 path-filtered)
///       through the semantic checker and classify every
///       encoder/checker disagreement; unexpected ones (Ownership,
///       Borrowing, TypeMismatch - the dimensions Rules 1-9 claim to
///       encode) are delta-debugged to minimal repros and fail the
///       audit with exit code 1.
///   syrust report <trace.json>
///       Print a per-stage latency/throughput breakdown of a trace
///       previously written with `--trace-out`.
///   syrust coverage <file> [--top N]
///       Render the API-pair coverage carried by a run, campaign,
///       audit, or --coverage-out document: per-crate covered/total
///       dependency-graph nodes and edges, saturation time, and the
///       first N never-covered edges with both endpoint signatures
///       (docs/OBSERVABILITY.md).
///
/// Options for `run`:
///   --budget <sim-seconds>   simulated budget (default 600)
///   --seed <n>               RNG seed (default 2021)
///   --apis <n>               APIs to select (default 15)
///   --no-semantic            RQ2 variant: Section 4.4 constraints off
///   --eager                  RQ3 variant: purely eager refinement
///   --lazy                   purely lazy refinement (H+-style)
///   --interleave             round-robin program lengths (7.4.3)
///   --mutate-inputs          perturb template inputs (7.4.2)
///   --no-incremental         rebuild encodings from scratch on every
///                            database refinement (historical behavior)
///   --no-compat-cache        disable the memoized compatibility kernel
///                            and shared per-crate analysis (identical
///                            results, slower encoding builds)
///   --portfolio              race the solver-strategy portfolio on hard
///                            solve episodes (byte-identical program
///                            stream; budget-stop Unknowns become real
///                            UNSAT proofs)
///   --strategy <name>        run one named solver configuration instead
///                            of the baseline (unknown names are
///                            rejected with the known-name list; unlike
///                            --portfolio this changes the stream)
///   --solve-budget <n>       per-solve conflict budget (0 = encoder
///                            default; benches lower it so budget
///                            exhaustion actually occurs)
///   --stop-on-bug            stop at the first UB
///   --minimize               delta-debug the bug-inducing program
///   --max-tests <n>          hard cap on synthesized test cases
///   --log-tests <n>          retain + print the first n test records
///   --json-errors            route diagnostics via the JSON channel
///   --json                   print the full result as JSON
///   --trace-out <file>       write a Chrome trace-event JSON trace
///   --metrics-out <file>     write JSONL metrics snapshots
///   --coverage-out <file>    write the raw API-pair coverage document
///                            (kind "coverage"; `syrust coverage` reads
///                            it back)
///   --no-api-coverage        skip dependency-graph edge marking (the
///                            api_coverage section then reports zeros)
///   --trace-wall             attach real wall-clock to trace events
///                            (breaks byte-identical traces; profiling
///                            only; requires --trace-out)
///
/// Options for `campaign`:
///   --crates all|a,b,c       job matrix crates (default all supported)
///   --seeds N[..M]           inclusive seed range (default 2021)
///   --variants v1,v2         named config variants (default base);
///                            known: base, no-semantic, eager, lazy,
///                            interleave, mutate-inputs, no-incremental,
///                            no-compat-cache, portfolio
///   --jobs <n>               pool workers (default 1)
///   --no-compat-cache        disable the memoized compatibility kernel
///                            for every job (same as listing the
///                            no-compat-cache variant, but composes with
///                            other variants)
///   --portfolio              race the solver portfolio in every job
///                            (same as listing the portfolio variant,
///                            but composes with other variants)
///   --strategy <name>        named solver configuration for every job
///                            (unknown names rejected)
///   --solve-budget <n>       per-solve conflict budget for every job
///   --budget <sim-seconds>   simulated budget per job (default 600)
///   --apis <n>               APIs to select per job (default 15)
///   --max-tests <n>          hard cap on test cases per job
///   --out <dir>              write aggregate.json + per-job JSON here
///                            (created if missing); default: aggregate
///                            JSON to stdout
///   --trace                  merge per-worker flight-recorder traces
///                            into <dir>/trace.json (requires --out)
///   --coverage-out <file>    write the campaign's merged per-crate
///                            API-pair coverage document (byte-identical
///                            for any --jobs)
///   --no-api-coverage        skip edge marking in every job
///
/// Options for `audit`:
///   --crates all|a,b,c       audit matrix crates (default all supported)
///   --seeds N[..M]           inclusive seed range (default 2021)
///   --apis <n>               APIs to select per audit (default 15)
///   --max-lines <n>          cap program length (default: crate's own)
///   --max-models <n>         models replayed per audit (default 2000)
///   --jobs <n>               pool workers (default 1)
///   --no-compat-cache        disable the memoized compatibility kernel
///   --portfolio              race the solver portfolio during the
///                            audited enumeration (audited stream is
///                            byte-identical either way)
///   --strategy <name>        named solver configuration for the audited
///                            enumeration (unknown names rejected)
///   --weaken-kills           canary: drop the encoder's consumption-kill
///                            clauses; the audit MUST then fail with
///                            Ownership disagreements (oracle self-test)
///   --out <dir>              write audit.json here (created if missing)
///   --json                   print the audit document to stdout
///   --coverage-out <file>    write the audited streams' merged per-crate
///                            API-pair coverage document
///
/// Options for `coverage`:
///   --top <n>                never-covered edges listed per crate
///                            (default 10; 0 disables the listings)
///
/// Unknown or malformed flags are rejected with a specific error, and
/// an invalid configuration is rejected field by field before anything
/// runs.
///
//===----------------------------------------------------------------------===//

#include "campaign/CampaignRunner.h"
#include "core/ResultJson.h"
#include "core/Session.h"
#include "oracle/AuditRunner.h"
#include "report/CoverageReport.h"
#include "report/Table.h"
#include "report/TraceReport.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "types/CompatCache.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;
using namespace syrust::rustsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: syrust list\n"
               "       syrust run <crate> [--budget N] [--seed N] "
               "[--apis N]\n"
               "                  [--no-semantic] [--eager] [--lazy]\n"
               "                  [--interleave] [--mutate-inputs] "
               "[--no-incremental]\n"
               "                  [--no-compat-cache] [--portfolio] "
               "[--strategy NAME]\n"
               "                  [--solve-budget N] "
               "[--stop-on-bug] [--minimize] "
               "[--max-tests N]\n"
               "                  [--log-tests N] [--json-errors] "
               "[--json]\n"
               "                  [--trace-out FILE] [--metrics-out FILE] "
               "[--trace-wall]\n"
               "                  [--coverage-out FILE] "
               "[--no-api-coverage]\n"
               "       syrust campaign [--crates all|a,b,c] "
               "[--seeds N[..M]]\n"
               "                  [--variants v1,v2] [--jobs N] "
               "[--budget N]\n"
               "                  [--apis N] [--max-tests N] "
               "[--no-compat-cache]\n"
               "                  [--portfolio] [--strategy NAME] "
               "[--solve-budget N]\n"
               "                  [--out DIR] [--trace] "
               "[--coverage-out FILE] [--no-api-coverage]\n"
               "       syrust audit [--crates all|a,b,c] [--seeds N[..M]]\n"
               "                  [--apis N] [--max-lines N] "
               "[--max-models N]\n"
               "                  [--jobs N] [--no-compat-cache] "
               "[--weaken-kills]\n"
               "                  [--portfolio] [--strategy NAME]\n"
               "                  [--out DIR] [--json] "
               "[--coverage-out FILE]\n"
               "       syrust report <trace.json>\n"
               "       syrust coverage <file> [--top N]\n");
  return 2;
}

bool writeFile(const char *Path, const std::string &Data) {
  std::FILE *F = std::fopen(Path, "wb");
  if (!F)
    return false;
  bool Ok =
      std::fwrite(Data.data(), 1, Data.size(), F) == Data.size();
  Ok = (std::fclose(F) == 0) && Ok;
  return Ok;
}

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  return Ok;
}

int cmdList() {
  Table T({"Library", "Cat.", "Downloads", "Poly", "Subcomponent",
           "Bug", "Synthesizable"});
  for (const CrateSpec &Spec : allCrates()) {
    T.addRow({Spec.Info.Name, Spec.Info.Category,
              fmtCount(Spec.Info.Downloads),
              Spec.Info.Polymorphic ? "yes" : "no",
              Spec.Info.Subcomponent,
              Spec.Bug ? Spec.Bug->BugType : "-",
              Spec.Info.SupportsSynthesis ? "yes" : "no (closures)"});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}

int cmdRun(int Argc, char **Argv) {
  if (Argc < 1) {
    std::fprintf(stderr, "syrust run: missing <crate> argument\n");
    return usage();
  }
  Session S;
  const CrateSpec *Spec = S.find(Argv[0]);
  if (!Spec) {
    std::fprintf(stderr, "unknown crate '%s'; try `syrust list`\n",
                 Argv[0]);
    return 2;
  }

  RunConfig Config;
  bool Json = false;
  const char *TraceOut = nullptr;
  const char *MetricsOut = nullptr;
  const char *CoverageOut = nullptr;
  bool TraceWall = false;
  bool ParseOk = true;
  for (int I = 1; I < Argc && ParseOk; ++I) {
    const char *Arg = Argv[I];
    // Strict value parsing: a flag that takes a value fails loudly when
    // the value is missing or not a number, instead of atof-ing garbage
    // to 0 and silently running with the wrong configuration.
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "syrust run: missing value for %s\n", Arg);
        ParseOk = false;
        return nullptr;
      }
      return Argv[++I];
    };
    auto NextNum = [&](double &Out) {
      const char *V = NextValue();
      if (!V)
        return false;
      char *End = nullptr;
      Out = std::strtod(V, &End);
      if (End == V || *End != '\0') {
        std::fprintf(stderr,
                     "syrust run: malformed number '%s' for %s\n", V,
                     Arg);
        ParseOk = false;
        return false;
      }
      if (Out < 0) {
        std::fprintf(stderr,
                     "syrust run: %s must be non-negative, got '%s'\n",
                     Arg, V);
        ParseOk = false;
        return false;
      }
      return true;
    };
    double Num = 0;
    if (!std::strcmp(Arg, "--budget")) {
      if (NextNum(Num))
        Config.BudgetSeconds = Num;
    } else if (!std::strcmp(Arg, "--seed")) {
      if (NextNum(Num))
        Config.Seed = static_cast<uint64_t>(Num);
    } else if (!std::strcmp(Arg, "--apis")) {
      if (NextNum(Num))
        Config.NumApis = static_cast<int>(Num);
    } else if (!std::strcmp(Arg, "--max-tests")) {
      if (NextNum(Num))
        Config.MaxTests = static_cast<uint64_t>(Num);
    } else if (!std::strcmp(Arg, "--log-tests")) {
      if (NextNum(Num))
        Config.RecordTests = static_cast<size_t>(Num);
    } else if (!std::strcmp(Arg, "--trace-out")) {
      TraceOut = NextValue();
    } else if (!std::strcmp(Arg, "--metrics-out")) {
      MetricsOut = NextValue();
    } else if (!std::strcmp(Arg, "--coverage-out")) {
      CoverageOut = NextValue();
    } else if (!std::strcmp(Arg, "--no-api-coverage")) {
      Config.TrackApiCoverage = false;
    } else if (!std::strcmp(Arg, "--trace-wall")) {
      TraceWall = true;
    } else if (!std::strcmp(Arg, "--no-semantic")) {
      Config.SemanticAware = false;
    } else if (!std::strcmp(Arg, "--eager")) {
      Config.Mode = refine::RefinementMode::PurelyEager;
    } else if (!std::strcmp(Arg, "--lazy")) {
      Config.Mode = refine::RefinementMode::PurelyLazy;
    } else if (!std::strcmp(Arg, "--interleave")) {
      Config.InterleaveLengths = true;
    } else if (!std::strcmp(Arg, "--mutate-inputs")) {
      Config.MutateInputs = true;
    } else if (!std::strcmp(Arg, "--no-incremental")) {
      Config.IncrementalRefinement = false;
    } else if (!std::strcmp(Arg, "--no-compat-cache")) {
      Config.UseCompatCache = false;
    } else if (!std::strcmp(Arg, "--portfolio")) {
      Config.Portfolio = true;
    } else if (!std::strcmp(Arg, "--strategy")) {
      const char *V = NextValue();
      if (V)
        Config.Strategy = V;
    } else if (!std::strcmp(Arg, "--solve-budget")) {
      if (NextNum(Num))
        Config.SolveConflictBudget = static_cast<uint64_t>(Num);
    } else if (!std::strcmp(Arg, "--stop-on-bug")) {
      Config.StopOnFirstBug = true;
    } else if (!std::strcmp(Arg, "--minimize")) {
      Config.MinimizeBugs = true;
    } else if (!std::strcmp(Arg, "--json")) {
      Json = true;
    } else if (!std::strcmp(Arg, "--json-errors")) {
      Config.JsonErrorChannel = true;
    } else {
      std::fprintf(stderr, "syrust run: unknown flag '%s'\n", Arg);
      return usage();
    }
  }
  if (!ParseOk)
    return usage();
  if (TraceWall && !TraceOut) {
    std::fprintf(stderr,
                 "syrust run: --trace-wall requires --trace-out\n");
    return usage();
  }
  std::vector<std::string> Errors = Config.validate();
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "syrust run: %s\n", E.c_str());
    return 2;
  }

  obs::Recorder::Options ObsOpts;
  ObsOpts.Trace = TraceOut != nullptr;
  ObsOpts.Metrics = MetricsOut != nullptr;
  ObsOpts.WallClock = TraceWall;
  obs::Recorder Recorder(ObsOpts);
  obs::Recorder *Obs =
      (TraceOut || MetricsOut) ? &Recorder : nullptr;

  RunResult R = S.runOne(*Spec, Config, Obs);

  if (TraceOut && !writeFile(TraceOut, Recorder.tracer().chromeJson())) {
    std::fprintf(stderr, "syrust run: cannot write trace to '%s'\n",
                 TraceOut);
    return 1;
  }
  if (MetricsOut && !writeFile(MetricsOut, Recorder.metrics().jsonl())) {
    std::fprintf(stderr, "syrust run: cannot write metrics to '%s'\n",
                 MetricsOut);
    return 1;
  }
  if (CoverageOut &&
      !writeFile(CoverageOut,
                 coverage::coverageDocumentToJson(
                     {{Spec->Info.Name, R.ApiCoverage}})
                         .dump() +
                     "\n")) {
    std::fprintf(stderr, "syrust run: cannot write coverage to '%s'\n",
                 CoverageOut);
    return 1;
  }

  if (Json) {
    std::printf("%s\n", resultToJson(R).dump().c_str());
    return 0;
  }
  if (!R.Supported) {
    std::printf("%s uses closure-based APIs; excluded from synthesis "
                "(Section 7.1)\n",
                Spec->Info.Name.c_str());
    return 0;
  }

  std::printf("crate            %s (%s)\n", Spec->Info.Name.c_str(),
              Spec->Info.Subcomponent.c_str());
  std::printf("synthesized      %llu (max length %d%s)\n",
              static_cast<unsigned long long>(R.Synthesized),
              R.MaxLenReached,
              R.SpaceExhausted ? ", space exhausted" : "");
  std::printf("rejected         %llu (%s)\n",
              static_cast<unsigned long long>(R.Rejected),
              fmtPercent(R.rejectedPercent()).c_str());
  std::printf("  type           %s\n",
              fmtShare(R.categoryPercent(ErrorCategory::Type)).c_str());
  std::printf("  lifetime/own   %s\n",
              fmtShare(R.categoryPercent(ErrorCategory::LifetimeOwnership))
                  .c_str());
  std::printf("  misc           %s\n",
              fmtShare(R.categoryPercent(ErrorCategory::Misc)).c_str());
  std::printf("executed         %llu\n",
              static_cast<unsigned long long>(R.Executed));
  std::printf("synthesis        %llu rebuilds, %llu incremental extends, "
              "%llu models re-blocked\n",
              static_cast<unsigned long long>(R.Synth.Rebuilds),
              static_cast<unsigned long long>(R.Synth.IncrementalExtends),
              static_cast<unsigned long long>(R.Synth.ModelsReblocked));
  std::printf("                 %llu duplicates skipped, %llu dead-length "
              "revivals\n",
              static_cast<unsigned long long>(R.Synth.DuplicatesSkipped),
              static_cast<unsigned long long>(R.Synth.DeadLengthRevivals));
  std::printf("solver           %llu solve calls, %llu conflicts, "
              "%llu propagations\n",
              static_cast<unsigned long long>(R.Synth.SolveCalls),
              static_cast<unsigned long long>(R.Synth.SolverConflicts),
              static_cast<unsigned long long>(R.Synth.SolverPropagations));
  std::printf("                 %.3fs building encodings, %.3fs solving "
              "(wall)\n",
              R.Synth.BuildSeconds, R.Synth.SolveSeconds);
  std::printf("coverage         component %.2f%% line / %.2f%% branch; "
              "library %.2f%% / %.2f%%\n",
              R.Coverage.ComponentLine, R.Coverage.ComponentBranch,
              R.Coverage.LibraryLine, R.Coverage.LibraryBranch);
  if (R.BugFound) {
    std::printf("\nBUG after %.2f sim-s (%d lines): %s\n", R.TimeToBug,
                R.BugLines, R.FirstBug.Message.c_str());
    std::printf("%s", R.BugProgram.c_str());
    if (R.MinimizedLines > 0 && !R.MinimizedProgram.empty()) {
      std::printf("\nminimized to %d lines:\n%s", R.MinimizedLines,
                  R.MinimizedProgram.c_str());
    }
  } else {
    std::printf("\nno undefined behavior found within budget\n");
  }
  if (!R.Db.records().empty()) {
    std::printf("\nfirst %zu test records (Algorithm 1's DB):\n",
                R.Db.records().size());
    for (const TestRecord &Rec : R.Db.records()) {
      const char *Verdict = Rec.Verdict == TestVerdict::Rejected
                                ? "REJECTED"
                                : Rec.Verdict == TestVerdict::Ub
                                      ? "UB"
                                      : "passed";
      std::printf("[t=%.2f %s] %s\n%s", Rec.AtSeconds, Verdict,
                  Rec.Message.c_str(), Rec.Source.c_str());
    }
  }
  return 0;
}

/// Parses `N` or `N..M` into an inclusive seed range.
bool parseSeedRange(const char *Text, uint64_t &Begin, uint64_t &End) {
  const char *Dots = std::strstr(Text, "..");
  char *EndPtr = nullptr;
  Begin = std::strtoull(Text, &EndPtr, 10);
  if (EndPtr == Text)
    return false;
  if (!Dots) {
    End = Begin;
    return *EndPtr == '\0';
  }
  if (EndPtr != Dots)
    return false;
  const char *Second = Dots + 2;
  End = std::strtoull(Second, &EndPtr, 10);
  return EndPtr != Second && *EndPtr == '\0';
}

int cmdCampaign(int Argc, char **Argv) {
  Session S;
  campaign::CampaignSpec Spec;
  Spec.Crates = S.supportedCrates();
  const char *OutDir = nullptr;
  const char *CoverageOut = nullptr;
  bool ParseOk = true;
  for (int I = 0; I < Argc && ParseOk; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "syrust campaign: missing value for %s\n",
                     Arg);
        ParseOk = false;
        return nullptr;
      }
      return Argv[++I];
    };
    auto NextNum = [&](double &Out) {
      const char *V = NextValue();
      if (!V)
        return false;
      char *End = nullptr;
      Out = std::strtod(V, &End);
      if (End == V || *End != '\0') {
        std::fprintf(stderr,
                     "syrust campaign: malformed number '%s' for %s\n",
                     V, Arg);
        ParseOk = false;
        return false;
      }
      return true;
    };
    double Num = 0;
    if (!std::strcmp(Arg, "--crates")) {
      const char *V = NextValue();
      if (!V)
        break;
      if (std::strcmp(V, "all"))
        Spec.Crates = split(V, ',');
    } else if (!std::strcmp(Arg, "--seeds")) {
      const char *V = NextValue();
      if (!V)
        break;
      if (!parseSeedRange(V, Spec.SeedBegin, Spec.SeedEnd)) {
        std::fprintf(stderr,
                     "syrust campaign: malformed seed range '%s' for "
                     "--seeds (want N or N..M)\n",
                     V);
        ParseOk = false;
      }
    } else if (!std::strcmp(Arg, "--variants")) {
      const char *V = NextValue();
      if (V)
        Spec.Variants = split(V, ',');
    } else if (!std::strcmp(Arg, "--jobs")) {
      if (NextNum(Num))
        Spec.Jobs = static_cast<int>(Num);
    } else if (!std::strcmp(Arg, "--budget")) {
      if (NextNum(Num))
        Spec.Base.BudgetSeconds = Num;
    } else if (!std::strcmp(Arg, "--apis")) {
      if (NextNum(Num))
        Spec.Base.NumApis = static_cast<int>(Num);
    } else if (!std::strcmp(Arg, "--max-tests")) {
      if (NextNum(Num))
        Spec.Base.MaxTests = static_cast<uint64_t>(Num);
    } else if (!std::strcmp(Arg, "--no-compat-cache")) {
      Spec.Base.UseCompatCache = false;
    } else if (!std::strcmp(Arg, "--portfolio")) {
      Spec.Base.Portfolio = true;
    } else if (!std::strcmp(Arg, "--strategy")) {
      const char *V = NextValue();
      if (V)
        Spec.Base.Strategy = V;
    } else if (!std::strcmp(Arg, "--solve-budget")) {
      if (NextNum(Num))
        Spec.Base.SolveConflictBudget = static_cast<uint64_t>(Num);
    } else if (!std::strcmp(Arg, "--out")) {
      OutDir = NextValue();
    } else if (!std::strcmp(Arg, "--trace")) {
      Spec.Trace = true;
    } else if (!std::strcmp(Arg, "--coverage-out")) {
      CoverageOut = NextValue();
    } else if (!std::strcmp(Arg, "--no-api-coverage")) {
      Spec.Base.TrackApiCoverage = false;
    } else {
      std::fprintf(stderr, "syrust campaign: unknown flag '%s'\n", Arg);
      return usage();
    }
  }
  if (!ParseOk)
    return usage();
  if (Spec.Trace && !OutDir) {
    std::fprintf(stderr, "syrust campaign: --trace requires --out\n");
    return usage();
  }
  std::vector<std::string> Errors = Spec.validate(S);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "syrust campaign: %s\n", E.c_str());
    return 2;
  }

  campaign::CampaignRunner Runner(S, Spec);
  size_t Total = campaign::expandMatrix(Spec).size();
  size_t Done = 0;
  // Progress to stderr: stdout carries only the deterministic summary
  // (or the aggregate document itself).
  Runner.onJobDone([&](const campaign::CampaignJobResult &JR) {
    ++Done;
    std::fprintf(stderr, "[%zu/%zu] %s seed=%llu %s: %llu synthesized\n",
                 Done, Total, JR.Job.Crate.c_str(),
                 static_cast<unsigned long long>(JR.Job.Seed),
                 JR.Job.Variant.c_str(),
                 static_cast<unsigned long long>(JR.Result.Synthesized));
  });
  campaign::CampaignResult R = Runner.run();
  std::string Aggregate = campaign::campaignToJson(Spec, R).dump();

  if (CoverageOut &&
      !writeFile(CoverageOut,
                 coverage::coverageDocumentToJson(R.ApiCoverage).dump() +
                     "\n")) {
    std::fprintf(stderr,
                 "syrust campaign: cannot write coverage to '%s'\n",
                 CoverageOut);
    return 1;
  }

  if (!OutDir) {
    std::printf("%s\n", Aggregate.c_str());
    return 0;
  }

  if (::mkdir(OutDir, 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "syrust campaign: cannot create '%s'\n",
                 OutDir);
    return 1;
  }
  std::string Dir = OutDir;
  if (!Dir.empty() && Dir.back() != '/')
    Dir += '/';
  if (!writeFile((Dir + "aggregate.json").c_str(), Aggregate + "\n")) {
    std::fprintf(stderr, "syrust campaign: cannot write '%s'\n",
                 (Dir + "aggregate.json").c_str());
    return 1;
  }
  for (const campaign::CampaignJobResult &JR : R.Jobs) {
    std::string Name =
        format("job-%03zu-%s-s%llu-%s.json", JR.Job.Index,
               JR.Job.Crate.c_str(),
               static_cast<unsigned long long>(JR.Job.Seed),
               JR.Job.Variant.c_str());
    if (!writeFile((Dir + Name).c_str(),
                   resultToJson(JR.Result).dump() + "\n")) {
      std::fprintf(stderr, "syrust campaign: cannot write '%s'\n",
                   (Dir + Name).c_str());
      return 1;
    }
  }
  if (Spec.Trace &&
      !writeFile((Dir + "trace.json").c_str(), R.MergedTraceJson)) {
    std::fprintf(stderr, "syrust campaign: cannot write '%s'\n",
                 (Dir + "trace.json").c_str());
    return 1;
  }

  Table T({"Crate", "Seed", "Variant", "# Synthesized", "# Rejected (%)",
           "# Executed", "Bug"});
  for (const campaign::CampaignJobResult &JR : R.Jobs) {
    const RunResult &Res = JR.Result;
    T.addRow({JR.Job.Crate, std::to_string(JR.Job.Seed), JR.Job.Variant,
              fmtCount(Res.Synthesized),
              fmtCount(Res.Rejected) + " (" +
                  fmtPercent(Res.rejectedPercent()) + ")",
              fmtCount(Res.Executed), Res.BugFound ? "yes" : "-"});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\ntotals: %llu synthesized, %llu rejected, %llu executed, "
              "%llu UB events, %llu jobs with a bug\n",
              static_cast<unsigned long long>(R.Totals.Synthesized),
              static_cast<unsigned long long>(R.Totals.Rejected),
              static_cast<unsigned long long>(R.Totals.Executed),
              static_cast<unsigned long long>(R.Totals.UbCount),
              static_cast<unsigned long long>(R.Totals.BugsFound));
  std::printf("wrote %s and %zu per-job documents\n",
              (Dir + "aggregate.json").c_str(), R.Jobs.size());
  return 0;
}

int cmdAudit(int Argc, char **Argv) {
  Session S;
  oracle::AuditSpec Spec;
  Spec.Crates = S.supportedCrates();
  const char *OutDir = nullptr;
  const char *CoverageOut = nullptr;
  bool Json = false;
  bool ParseOk = true;
  for (int I = 0; I < Argc && ParseOk; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "syrust audit: missing value for %s\n",
                     Arg);
        ParseOk = false;
        return nullptr;
      }
      return Argv[++I];
    };
    auto NextNum = [&](double &Out) {
      const char *V = NextValue();
      if (!V)
        return false;
      char *End = nullptr;
      Out = std::strtod(V, &End);
      if (End == V || *End != '\0') {
        std::fprintf(stderr,
                     "syrust audit: malformed number '%s' for %s\n", V,
                     Arg);
        ParseOk = false;
        return false;
      }
      return true;
    };
    double Num = 0;
    if (!std::strcmp(Arg, "--crates")) {
      const char *V = NextValue();
      if (!V)
        break;
      if (std::strcmp(V, "all"))
        Spec.Crates = split(V, ',');
    } else if (!std::strcmp(Arg, "--seeds")) {
      const char *V = NextValue();
      if (!V)
        break;
      if (!parseSeedRange(V, Spec.SeedBegin, Spec.SeedEnd)) {
        std::fprintf(stderr,
                     "syrust audit: malformed seed range '%s' for "
                     "--seeds (want N or N..M)\n",
                     V);
        ParseOk = false;
      }
    } else if (!std::strcmp(Arg, "--apis")) {
      if (NextNum(Num))
        Spec.Base.NumApis = static_cast<int>(Num);
    } else if (!std::strcmp(Arg, "--max-lines")) {
      if (NextNum(Num))
        Spec.Base.MaxLines = static_cast<int>(Num);
    } else if (!std::strcmp(Arg, "--max-models")) {
      if (NextNum(Num))
        Spec.Base.MaxModels = static_cast<uint64_t>(Num);
    } else if (!std::strcmp(Arg, "--jobs")) {
      if (NextNum(Num))
        Spec.Jobs = static_cast<int>(Num);
    } else if (!std::strcmp(Arg, "--no-compat-cache")) {
      Spec.Base.UseCompatCache = false;
    } else if (!std::strcmp(Arg, "--portfolio")) {
      Spec.Base.Portfolio = true;
    } else if (!std::strcmp(Arg, "--strategy")) {
      const char *V = NextValue();
      if (V)
        Spec.Base.Strategy = V;
    } else if (!std::strcmp(Arg, "--weaken-kills")) {
      Spec.Base.WeakenConsumptionKills = true;
    } else if (!std::strcmp(Arg, "--out")) {
      OutDir = NextValue();
    } else if (!std::strcmp(Arg, "--json")) {
      Json = true;
    } else if (!std::strcmp(Arg, "--coverage-out")) {
      CoverageOut = NextValue();
    } else {
      std::fprintf(stderr, "syrust audit: unknown flag '%s'\n", Arg);
      return usage();
    }
  }
  if (!ParseOk)
    return usage();
  std::vector<std::string> Errors = Spec.validate(S);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "syrust audit: %s\n", E.c_str());
    return 2;
  }

  size_t Total = oracle::expandAuditMatrix(Spec).size();
  size_t Done = 0;
  // Progress to stderr: stdout carries only the deterministic summary
  // (or the audit document itself).
  oracle::AuditRunResult R = runAudit(
      S, Spec, [&](const oracle::AuditJobResult &JR) {
        ++Done;
        std::fprintf(stderr,
                     "[%zu/%zu] %s seed=%llu: %llu replayed, "
                     "%llu unexpected\n",
                     Done, Total, JR.Job.Crate.c_str(),
                     static_cast<unsigned long long>(JR.Job.Seed),
                     static_cast<unsigned long long>(
                         JR.Result.ModelsReplayed),
                     static_cast<unsigned long long>(
                         JR.Result.UnexpectedTotal));
      });
  std::string Doc = auditToJson(Spec, R).dump();
  int Exit = R.clean() ? 0 : 1;

  if (CoverageOut &&
      !writeFile(CoverageOut,
                 coverage::coverageDocumentToJson(R.ApiCoverage).dump() +
                     "\n")) {
    std::fprintf(stderr, "syrust audit: cannot write coverage to '%s'\n",
                 CoverageOut);
    return 1;
  }

  if (OutDir) {
    if (::mkdir(OutDir, 0777) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "syrust audit: cannot create '%s'\n", OutDir);
      return 1;
    }
    std::string Path = std::string(OutDir);
    if (!Path.empty() && Path.back() != '/')
      Path += '/';
    Path += "audit.json";
    if (!writeFile(Path.c_str(), Doc + "\n")) {
      std::fprintf(stderr, "syrust audit: cannot write '%s'\n",
                   Path.c_str());
      return 1;
    }
  }
  if (Json) {
    std::printf("%s\n", Doc.c_str());
    return Exit;
  }

  Table T({"Crate", "Seed", "Replayed", "Pass", "Agree-Reject",
           "Expected", "UNEXPECTED", "Filtered-OK"});
  for (const oracle::AuditJobResult &JR : R.Jobs) {
    const oracle::AuditResult &Res = JR.Result;
    T.addRow({JR.Job.Crate, std::to_string(JR.Job.Seed),
              fmtCount(Res.ModelsReplayed), fmtCount(Res.AgreePass),
              fmtCount(Res.AgreeReject), fmtCount(Res.ExpectedTotal),
              fmtCount(Res.UnexpectedTotal),
              fmtCount(Res.FilteredCompilable)});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\ntotals: %llu replayed, %llu agree-pass, %llu "
              "agree-reject, %llu expected, %llu UNEXPECTED, %llu "
              "filtered-compilable\n",
              static_cast<unsigned long long>(R.Totals.ModelsReplayed),
              static_cast<unsigned long long>(R.Totals.AgreePass),
              static_cast<unsigned long long>(R.Totals.AgreeReject),
              static_cast<unsigned long long>(R.Totals.ExpectedTotal),
              static_cast<unsigned long long>(R.Totals.UnexpectedTotal),
              static_cast<unsigned long long>(
                  R.Totals.FilteredCompilable));
  for (const oracle::AuditJobResult &JR : R.Jobs)
    for (const oracle::Disagreement &D : JR.Result.Unexpected)
      std::printf("\nUNEXPECTED %s (%s seed=%llu): %s\noriginal "
                  "(%d lines):\n%sminimized (%d lines, %llu steps):\n%s",
                  detailName(D.Detail), JR.Job.Crate.c_str(),
                  static_cast<unsigned long long>(JR.Job.Seed),
                  D.Message.c_str(), D.Lines, D.Source.c_str(),
                  D.MinimizedLines,
                  static_cast<unsigned long long>(D.MinimizerSteps),
                  D.MinimizedSource.c_str());
  if (Exit != 0)
    std::printf("\naudit FAILED: %llu unexpected disagreement(s) - the "
                "encoder and checker disagree about Rust\n",
                static_cast<unsigned long long>(
                    R.Totals.UnexpectedTotal));
  return Exit;
}

int cmdReport(int Argc, char **Argv) {
  if (Argc != 1) {
    std::fprintf(stderr,
                 "syrust report: expected exactly one trace file\n");
    return usage();
  }
  std::string Data;
  if (!readFile(Argv[0], Data)) {
    std::fprintf(stderr, "syrust report: cannot read '%s'\n", Argv[0]);
    return 1;
  }
  TraceSummary Summary;
  std::string Err;
  if (!summarizeTrace(Data, Summary, Err)) {
    // A common slip is pointing `report` at one of our other JSON
    // documents; those all carry a `kind` field, so dispatch on it and
    // point at the right verb instead of dumping a parse error.
    json::ParseResult P = json::parse(Data);
    if (P.Ok && P.Val.kind() == json::Value::Kind::Object &&
        P.Val.has("kind")) {
      const std::string Kind = P.Val.get("kind").asString();
      if (Kind == "campaign" || Kind == "coverage" || Kind == "audit") {
        std::fprintf(stderr,
                     "syrust report: '%s' is a %s document, not a "
                     "trace; try `syrust coverage %s`%s\n",
                     Argv[0], Kind.c_str(), Argv[0],
                     Kind == "audit"
                         ? " for its api_coverage section"
                         : "");
        return 1;
      }
    }
    std::fprintf(stderr, "syrust report: %s: %s\n", Argv[0],
                 Err.c_str());
    return 1;
  }
  std::printf("%s", renderTraceSummary(Summary).c_str());
  return 0;
}

int cmdCoverage(int Argc, char **Argv) {
  if (Argc < 1) {
    std::fprintf(stderr, "syrust coverage: missing <file> argument\n");
    return usage();
  }
  int Top = 10;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--top")) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr,
                     "syrust coverage: missing value for --top\n");
        return usage();
      }
      const char *V = Argv[++I];
      char *End = nullptr;
      long N = std::strtol(V, &End, 10);
      if (End == V || *End != '\0' || N < 0) {
        std::fprintf(stderr,
                     "syrust coverage: malformed count '%s' for --top\n",
                     V);
        return usage();
      }
      Top = static_cast<int>(N);
    } else {
      std::fprintf(stderr, "syrust coverage: unknown flag '%s'\n", Arg);
      return usage();
    }
  }

  std::string Data;
  if (!readFile(Argv[0], Data)) {
    std::fprintf(stderr, "syrust coverage: cannot read '%s'\n", Argv[0]);
    return 1;
  }
  json::ParseResult P = json::parse(Data);
  if (!P.Ok) {
    std::fprintf(stderr, "syrust coverage: %s: %s\n", Argv[0],
                 P.Error.c_str());
    return 1;
  }
  std::vector<ApiCoverageEntry> Entries;
  std::string Err;
  if (!collectApiCoverage(P.Val, Entries, Err)) {
    std::fprintf(stderr, "syrust coverage: %s: %s\n", Argv[0],
                 Err.c_str());
    return 1;
  }

  // The never-covered listings need each crate's database and frozen
  // dependency graph. Rebuild them from the bundled registry on demand
  // (a fresh instance + a scratch compat cache per crate - cheap: only
  // the pairwise probes the graph needs, never the joint matrix) and
  // keep them alive for the duration of the render.
  Session S;
  struct CrateModel {
    std::unique_ptr<crates::CrateInstance> Inst;
    api::DependencyGraph Graph;
  };
  std::map<std::string, CrateModel> Models;
  CrateApiResolver Resolver = [&](const std::string &Name) -> CrateApiView {
    auto It = Models.find(Name);
    if (It == Models.end()) {
      CrateModel M;
      if (const CrateSpec *Spec = S.find(Name)) {
        M.Inst = Spec->instantiate();
        types::CompatCache Scratch;
        M.Graph =
            api::buildDependencyGraph(M.Inst->Db, M.Inst->Arena, Scratch);
      }
      It = Models.emplace(Name, std::move(M)).first;
    }
    if (!It->second.Inst)
      return {};
    return {&It->second.Inst->Db, &It->second.Graph};
  };

  CoverageReportOptions Opts;
  Opts.TopNeverCovered = Top;
  std::printf("%s", renderApiCoverage(Entries, Resolver, Opts).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (!std::strcmp(Argv[1], "list"))
    return cmdList();
  if (!std::strcmp(Argv[1], "run"))
    return cmdRun(Argc - 2, Argv + 2);
  if (!std::strcmp(Argv[1], "campaign"))
    return cmdCampaign(Argc - 2, Argv + 2);
  if (!std::strcmp(Argv[1], "audit"))
    return cmdAudit(Argc - 2, Argv + 2);
  if (!std::strcmp(Argv[1], "report"))
    return cmdReport(Argc - 2, Argv + 2);
  if (!std::strcmp(Argv[1], "coverage"))
    return cmdCoverage(Argc - 2, Argv + 2);
  std::fprintf(stderr, "syrust: unknown command '%s'\n", Argv[1]);
  return usage();
}
