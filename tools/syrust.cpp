//===--- syrust.cpp - Command-line driver ---------------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The command-line face of the framework — deliberately thin. Every
/// verb's grammar, validation, and execution live in the cli library
/// (cli/RequestSpec.h, cli/Execute.h), which the `syrust serve` wire
/// protocol shares; this file only maps process conventions onto that
/// API: argv in, stdout/stderr/files/exit-code out.
///
///   syrust list                        library inventory (Figure 12)
///   syrust run <crate> [options]       one full pipeline run
///   syrust campaign [options]          (crate, seed, variant) matrix on
///                                      a work-stealing pool; supports
///                                      --checkpoint FILE resume
///   syrust audit [options]             encoder/checker agreement oracle
///   syrust report <trace.json>         per-stage trace breakdown
///   syrust coverage <file> [--top N]   API-pair coverage rendering
///   syrust serve --socket PATH         long-running daemon serving the
///                                      above over a local socket
///
/// run/campaign/audit/coverage accept `--connect SOCKET` to submit the
/// request to a daemon instead of executing in-process; the response
/// (stdout bytes, output files, exit code) is identical by construction
/// because the daemon runs the same cli::execute over a warm Session.
///
/// Exit codes, uniform across all verbs (docs/SERVE.md):
///   0 ok · 1 finding (UB / unexpected audit disagreement) ·
///   2 usage or configuration error · 3 environment failure
///
/// Run `syrust` with no arguments for the full flag listing; per-knob
/// documentation lives in the cli option table (cli/RequestSpec.cpp).
///
//===----------------------------------------------------------------------===//

#include "cli/Execute.h"
#include "cli/RequestSpec.h"
#include "core/Session.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <csignal>
#include <cstdio>
#include <cstring>

using namespace syrust;

namespace {

int usage() {
  std::fprintf(stderr, "%s", cli::usageText().c_str());
  return cli::ExitUsage;
}

/// The active daemon, for signal-driven shutdown. requestStop() is
/// async-signal-safe (one pipe write).
serve::Server *ActiveServer = nullptr;

void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestStop();
}

/// Routes a parsed request to a daemon and replays its response locally:
/// same stdout bytes, same files (written client-side), same exit code.
int runConnected(cli::Verb V, int Argc, const char *const *Argv,
                 const std::string &Socket) {
  json::Value Request;
  std::vector<std::string> Errors;
  if (!cli::argvToRequestJson(V, Argc, Argv, Request, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                   E.c_str());
    return usage();
  }

  serve::Client Client;
  std::string Err;
  if (!Client.connect(Socket, Err)) {
    std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                 Err.c_str());
    return cli::ExitRuntime;
  }
  json::Value Doc;
  if (!Client.call(Request, Doc, Err)) {
    std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                 Err.c_str());
    return cli::ExitRuntime;
  }
  cli::Response Resp;
  if (!serve::responseFromJson(Doc, Resp, Err)) {
    // The daemon refused the request (validation failure) or the
    // response was unusable; its message already names the bad field.
    std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                 Err.c_str());
    return cli::ExitUsage;
  }
  if (!cli::writeResponseFiles(Resp, Err)) {
    std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                 Err.c_str());
    return cli::ExitRuntime;
  }
  if (!Resp.Error.empty())
    std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                 Resp.Error.c_str());
  std::fwrite(Resp.Output.data(), 1, Resp.Output.size(), stdout);
  return Resp.ExitCode;
}

int runServe(const cli::RequestSpec &Spec, const core::Session &S) {
  serve::Server Server(S, Spec.Serve);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "syrust serve: %s\n", Err.c_str());
    return cli::ExitRuntime;
  }
  ActiveServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr, "syrust serve: listening on %s\n",
               Server.socketPath().c_str());
  int Exit = Server.run();
  ActiveServer = nullptr;
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  cli::Verb V;
  if (!cli::verbFromName(Argv[1], V)) {
    std::fprintf(stderr, "syrust: unknown command '%s'\n", Argv[1]);
    return usage();
  }

  cli::RequestSpec Spec;
  std::vector<std::string> Errors;
  if (!cli::parseArgv(V, Argc - 2, Argv + 2, Spec, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                   E.c_str());
    return usage();
  }

  if (!Spec.Connect.empty())
    return runConnected(V, Argc - 2, Argv + 2, Spec.Connect);

  core::Session S;
  Errors = cli::finalize(S, Spec);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                   E.c_str());
    return cli::ExitUsage;
  }

  if (V == cli::Verb::Serve)
    return runServe(Spec, S);

  // Progress to stderr: stdout carries only the deterministic output.
  cli::Response Resp =
      cli::execute(S, Spec, [&](const std::string &Line) {
        std::fprintf(stderr, "%s\n", Line.c_str());
      });
  std::string Err;
  if (!cli::writeResponseFiles(Resp, Err)) {
    std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                 Err.c_str());
    return cli::ExitRuntime;
  }
  if (!Resp.Error.empty())
    std::fprintf(stderr, "syrust %s: %s\n", cli::verbName(V),
                 Resp.Error.c_str());
  std::fwrite(Resp.Output.data(), 1, Resp.Output.size(), stdout);
  return Resp.ExitCode;
}
