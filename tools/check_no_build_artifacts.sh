#!/usr/bin/env sh
# CI gate: fail if build artifacts are tracked or staged.
#
# The build tree once lived in version control (831 files); this keeps it
# from coming back. Run from anywhere inside the repository.
set -eu

cd "$(git rev-parse --show-toplevel)"

# Everything git knows about (index + staged adds), filtered down to
# build trees and object/binary droppings.
BAD=$(git ls-files --cached --full-name |
  grep -E '(^|/)(build|build-[^/]*|cmake-build-[^/]*)/|\.(o|obj|a|so|dylib|exe)$' ||
  true)

if [ -n "$BAD" ]; then
  echo "error: build artifacts are tracked or staged:" >&2
  echo "$BAD" | head -20 >&2
  COUNT=$(echo "$BAD" | wc -l)
  if [ "$COUNT" -gt 20 ]; then
    echo "... and $((COUNT - 20)) more" >&2
  fi
  echo "hint: git rm -r --cached <path> and check .gitignore" >&2
  exit 1
fi

echo "ok: no build artifacts tracked or staged"
