//===--- EncodingTest.cpp - White-box tests for the SAT encoding ----------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Direct tests of the Encoding class: enumeration counts on hand-sized
/// API sets where the program space can be verified by hand, the effect of
/// individual constraint families, and size/ablation properties.
///
//===----------------------------------------------------------------------===//

#include "rustsim/Checker.h"
#include "support/StringUtils.h"
#include "synth/Encoding.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

#include <set>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::synth;
using namespace syrust::types;

namespace {

class EncodingFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;

  const Type *ty(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(ty(I));
    Sig.Output = ty(Out);
    return Db.add(std::move(Sig));
  }

  /// Enumerates every program of exactly \p Lines lines.
  std::vector<Program> enumerate(int Lines,
                                 std::vector<TemplateInput> Inputs,
                                 SynthOptions Opts = {}) {
    Encoding Enc(Arena, Traits, Db, Inputs, Lines, Opts);
    std::vector<Program> Out;
    while (Enc.nextModel()) {
      Out.push_back(Enc.decode());
      if (Out.size() > 20000)
        break;
    }
    return Out;
  }
};

TEST_F(EncodingFixture, ExactCountOnHandVerifiableSpace) {
  // Two unary APIs over two template scalars, one line: f(x), f(y),
  // g(x), g(y) = 4 programs exactly (scalars are Copy; no builtins).
  Traits.addDefaultPrimImpls();
  addApi("f", {"usize"}, "bool");
  addApi("g", {"usize"}, "u8");
  auto Programs =
      enumerate(1, {{"x", ty("usize")}, {"y", ty("usize")}});
  EXPECT_EQ(Programs.size(), 4u);
  std::set<uint64_t> Hashes;
  for (const Program &P : Programs)
    EXPECT_TRUE(Hashes.insert(P.hash()).second);
}

TEST_F(EncodingFixture, TwoLineCountSquaresWithChaining) {
  // h : usize -> usize. Line 1: h(x). Line 2: h(x) or h(v1): with one
  // template var, 1 * 2 = 2 two-line programs.
  Traits.addDefaultPrimImpls();
  addApi("h", {"usize"}, "usize");
  auto Programs = enumerate(2, {{"x", ty("usize")}});
  EXPECT_EQ(Programs.size(), 2u);
}

TEST_F(EncodingFixture, UnusableApiForcedOff) {
  // k takes a String but the template provides none: zero programs.
  Traits.addDefaultPrimImpls();
  addApi("k", {"String"}, "usize");
  auto Programs = enumerate(1, {{"x", ty("usize")}});
  EXPECT_TRUE(Programs.empty());
}

TEST_F(EncodingFixture, ConsumptionLimitsOwnedUse) {
  // c consumes a String; with one template String only one single-line
  // program exists, and no two-line program can consume it twice.
  Traits.addDefaultPrimImpls();
  addApi("c", {"String"}, "usize");
  auto One = enumerate(1, {{"s", ty("String")}});
  EXPECT_EQ(One.size(), 1u);
  auto Two = enumerate(2, {{"s", ty("String")}});
  EXPECT_TRUE(Two.empty());
}

TEST_F(EncodingFixture, RQ2AblationAllowsDoubleConsumption) {
  // The same space with semantic awareness off contains the double-use
  // program (which the checker then rejects) - the Figure 9 mechanism.
  Traits.addDefaultPrimImpls();
  addApi("c", {"String"}, "usize");
  SynthOptions Opts;
  Opts.SemanticAware = false;
  auto Two = enumerate(2, {{"s", ty("String")}}, Opts);
  ASSERT_EQ(Two.size(), 1u);
  rustsim::Checker Check(Arena, Traits);
  auto R = Check.check(Two[0], Db);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, rustsim::ErrorDetail::Ownership);
}

TEST_F(EncodingFixture, CopyArgsAreReusable) {
  // usize is Copy: two lines can both consume x.
  Traits.addDefaultPrimImpls();
  addApi("u", {"usize"}, "bool");
  auto Two = enumerate(2, {{"x", ty("usize")}});
  // Line1: u(x). Line2: u(x). (bool output is not a u-candidate.)
  EXPECT_EQ(Two.size(), 1u);
}

TEST_F(EncodingFixture, BlockedComboRemovesExactlyThatInstantiation) {
  Traits.addDefaultPrimImpls();
  ApiId Id = addApi("p", {"T"}, "bool");
  auto Before =
      enumerate(1, {{"x", ty("usize")}, {"s", ty("String")}});
  ASSERT_EQ(Before.size(), 2u); // p(x) and p(s).
  Db.blockCombo(Id, {ty("String")});
  auto After =
      enumerate(1, {{"x", ty("usize")}, {"s", ty("String")}});
  ASSERT_EQ(After.size(), 1u);
  EXPECT_EQ(After[0].Stmts[0].Args[0], 0) << "p(x) must survive";
}

TEST_F(EncodingFixture, SatVarCountGrowsWithLength) {
  Traits.addDefaultPrimImpls();
  addBuiltinApis(Db, Arena);
  addApi("f", {"usize"}, "usize");
  std::vector<TemplateInput> Inputs{{"x", ty("usize")}};
  size_t Prev = 0;
  for (int L = 1; L <= 4; ++L) {
    Encoding Enc(Arena, Traits, Db, Inputs, L, SynthOptions{});
    EXPECT_GT(Enc.numSatVars(), Prev);
    Prev = Enc.numSatVars();
  }
}

TEST_F(EncodingFixture, DecodedProgramsAlwaysWellFormed) {
  Traits.addDefaultPrimImpls();
  addBuiltinApis(Db, Arena);
  addApi("Vec::len", {"&Vec<T>"}, "usize");
  addApi("mk", {"usize"}, "Vec<u8>");
  auto Programs = enumerate(3, {{"x", ty("usize")}});
  EXPECT_GT(Programs.size(), 3u);
  for (const Program &P : Programs) {
    ASSERT_EQ(P.Stmts.size(), 3u);
    int NumVars = static_cast<int>(P.Inputs.size());
    for (const Stmt &S : P.Stmts) {
      const ApiSig &Sig = Db.get(S.Api);
      EXPECT_EQ(S.Args.size(), Sig.Inputs.size());
      for (VarId A : S.Args) {
        EXPECT_GE(A, 0);
        EXPECT_LT(A, NumVars) << "argument declared later than its use";
      }
      EXPECT_EQ(S.Out, NumVars);
      ++NumVars;
      EXPECT_NE(S.DeclType, nullptr);
    }
  }
}

TEST_F(EncodingFixture, BudgetExhaustionIsReported) {
  Traits.addDefaultPrimImpls();
  addBuiltinApis(Db, Arena);
  for (int I = 0; I < 6; ++I)
    addApi(format("api%d", I), {"usize", "usize"}, "usize");
  SynthOptions Opts;
  Opts.SolveConflictBudget = 1; // Absurdly small.
  Encoding Enc(Arena, Traits, Db, {{"x", ty("usize")}}, 4, Opts);
  int Count = 0;
  while (Enc.nextModel() && Count < 100000)
    ++Count;
  // Either the space was tiny or the budget tripped; on this space the
  // budget trips long before exhaustion.
  EXPECT_TRUE(Enc.budgetExhausted());
}

TEST_F(EncodingFixture, MutBorrowTargetsRequireLetMutEvenAtDistance) {
  Traits.addDefaultPrimImpls();
  auto B = addBuiltinApis(Db, Arena);
  (void)B;
  addApi("touch", {"&mut Counter"}, "usize");
  addApi("mk", {"usize"}, "Counter");
  // Valid chains must thread mk -> let mut -> &mut -> touch; anything
  // borrowing a non-letmut Counter must be absent.
  auto Programs = enumerate(4, {{"x", ty("usize")}});
  bool SawFullChain = false;
  for (const Program &P : Programs) {
    for (size_t I = 0; I < P.Stmts.size(); ++I) {
      const Stmt &S = P.Stmts[I];
      if (Db.get(S.Api).Builtin != BuiltinKind::BorrowMut)
        continue;
      VarId Target = S.Args[0];
      ASSERT_GE(Target, 1) << P.render(Db);
      const Stmt &Def =
          P.Stmts[static_cast<size_t>(Target) - P.Inputs.size()];
      EXPECT_EQ(Db.get(Def.Api).Builtin, BuiltinKind::LetMut)
          << P.render(Db);
      SawFullChain = true;
    }
  }
  EXPECT_TRUE(SawFullChain);
}

} // namespace
