//===--- MiriTest.cpp - Tests for the heap and interpreter ----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "miri/Interpreter.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::miri;
using namespace syrust::program;
using namespace syrust::types;

namespace {

//===----------------------------------------------------------------------===//
// AbstractHeap
//===----------------------------------------------------------------------===//

TEST(HeapTest, AllocateAndFree) {
  AbstractHeap H;
  int A = H.allocate(16, "buf");
  EXPECT_FALSE(H.isFreed(A));
  EXPECT_EQ(H.size(A), 16u);
  H.free(A, 0);
  EXPECT_TRUE(H.isFreed(A));
  EXPECT_FALSE(H.hasUb());
}

TEST(HeapTest, DoubleFreeFlagged) {
  AbstractHeap H;
  int A = H.allocate(8);
  H.free(A, 0);
  H.free(A, 1);
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::DoubleFree);
  EXPECT_EQ(H.ub().Line, 1);
}

TEST(HeapTest, LeakCheckFlagsLiveAllocations) {
  AbstractHeap H;
  (void)H.allocate(8, "leaky");
  H.leakCheck();
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::MemoryLeak);
}

TEST(HeapTest, LeakExemptionSuppressesLeak) {
  AbstractHeap H;
  int A = H.allocate(8);
  H.exemptFromLeakCheck(A);
  H.leakCheck();
  EXPECT_FALSE(H.hasUb());
}

TEST(HeapTest, FirstUbWins) {
  AbstractHeap H;
  int A = H.allocate(8);
  H.free(A, 0);
  H.free(A, 1); // DoubleFree.
  H.recordRawPointer(A, 100, 2, "later");
  EXPECT_EQ(H.ub().Kind, UbKind::DoubleFree);
}

TEST(HeapTest, BorrowOfFreedIsUseAfterFree) {
  AbstractHeap H;
  int A = H.allocate(8);
  H.free(A, 0);
  (void)H.pushBorrow(A, false, 1);
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::UseAfterFree);
}

TEST(HeapTest, UseThroughFreedAllocIsUseAfterFree) {
  AbstractHeap H;
  int A = H.allocate(8);
  uint64_t Tag = H.pushBorrow(A, true, 0);
  H.free(A, 1);
  H.useBorrow(A, Tag, true, 2);
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::UseAfterFree);
  EXPECT_EQ(H.ub().Line, 2);
}

TEST(HeapTest, StackedBorrowsUniqueInvalidatesShared) {
  AbstractHeap H;
  int A = H.allocate(8);
  uint64_t Shared = H.pushBorrow(A, false, 0);
  (void)H.pushBorrow(A, true, 1); // Unique pops the shared tag.
  H.useBorrow(A, Shared, false, 2);
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::InvalidBorrow);
}

TEST(HeapTest, SharedBorrowsCoexist) {
  AbstractHeap H;
  int A = H.allocate(8);
  uint64_t S1 = H.pushBorrow(A, false, 0);
  uint64_t S2 = H.pushBorrow(A, false, 1);
  EXPECT_TRUE(H.useBorrow(A, S1, false, 2));
  EXPECT_TRUE(H.useBorrow(A, S2, false, 3));
  EXPECT_FALSE(H.hasUb());
}

TEST(HeapTest, DanglingPointerCreationFlagged) {
  AbstractHeap H;
  int A = H.allocate(8);
  H.free(A, 0);
  H.recordRawPointer(A, 0, 1, "scan");
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::DanglingPointer);
}

TEST(HeapTest, OobPointerCreationFlagged) {
  AbstractHeap H;
  int A = H.allocate(8);
  H.recordRawPointer(A, 8, 0, "one-past-end"); // Allowed.
  EXPECT_FALSE(H.hasUb());
  H.recordRawPointer(A, 9, 1, "past");
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::OutOfBoundsPointer);
}

TEST(HeapTest, NegativeOffsetIsOob) {
  AbstractHeap H;
  int A = H.allocate(8);
  H.recordRawPointer(A, -1, 0, "before");
  ASSERT_TRUE(H.hasUb());
  EXPECT_EQ(H.ub().Kind, UbKind::OutOfBoundsPointer);
}

//===----------------------------------------------------------------------===//
// Interpreter over a small vec-like model
//===----------------------------------------------------------------------===//

/// Fixture wiring a minimal library model: a heap-backed MyVec<String>
/// with push/pop/into_parts plus a leaky queue and a UAF-on-drop box.
class InterpFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;
  SemanticsRegistry Registry;
  ApiId LetMut, Borrow, BorrowMut;
  ApiId Push, Pop, IntoParts, QueueNew, BoxUp;

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out, const std::string &Key) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(parse(I));
    Sig.Output = parse(Out);
    Sig.SemanticsKey = Key;
    return Db.add(std::move(Sig));
  }

  void SetUp() override {
    Traits.addDefaultPrimImpls();
    auto B = addBuiltinApis(Db, Arena);
    LetMut = B[0];
    Borrow = B[1];
    BorrowMut = B[2];
    Push = addApi("MyVec::push", {"&mut MyVec<String>", "String"}, "()",
                  "myvec::push");
    Pop = addApi("MyVec::pop", {"&mut MyVec<String>"}, "Option<String>",
                 "myvec::pop");
    IntoParts = addApi("MyVec::into_parts", {"MyVec<String>"},
                       "(usize, usize)", "myvec::into_parts");
    QueueNew = addApi("LeakyQueue::new", {"usize"}, "LeakyQueue<String>",
                      "queue::new");
    BoxUp = addApi("MyVec::into_bad_box", {"MyVec<String>"},
                   "BadBox<String>", "myvec::into_bad_box");

    Registry.registerApi("myvec::push", [](InterpCtx &Ctx) {
      Value &Vec = Ctx.deref(0);
      Vec.Len += 1;
      Value Out;
      Out.Ty = Ctx.outType();
      return Out;
    });
    Registry.registerApi("myvec::pop", [](InterpCtx &Ctx) {
      Value &Vec = Ctx.deref(0);
      Value Out;
      Out.Ty = Ctx.outType();
      if (Vec.Len == 0) {
        Out.IsNone = true;
      } else {
        Vec.Len -= 1;
        Out.Elems.push_back(Value{});
      }
      return Out;
    });
    Registry.registerApi("myvec::into_parts", [](InterpCtx &Ctx) {
      Value &Vec = Ctx.deref(0);
      // Destroys the vector: frees its buffer, returns raw parts. The
      // buffer is taken over (Alloc cleared) so the callee-side drop of
      // the consumed argument does not double-free.
      Ctx.heap().free(Vec.Alloc, Ctx.line());
      Vec.Alloc = -1;
      Value Out;
      Out.Ty = Ctx.outType();
      return Out;
    });
    Registry.registerApi("queue::new", [](InterpCtx &Ctx) {
      Value Out;
      Out.Ty = Ctx.outType();
      int64_t Cap = Ctx.deref(0).Int;
      Out.Cap = Cap;
      Out.Alloc =
          Ctx.heap().allocate(static_cast<size_t>(Cap) * 8, "queue buf");
      return Out;
    });
    Registry.registerApi("myvec::into_bad_box", [](InterpCtx &Ctx) {
      Value &Vec = Ctx.deref(0);
      // Buggy: frees the buffer but keeps the pointer in the box.
      Ctx.heap().free(Vec.Alloc, Ctx.line());
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = Vec.Alloc; // Stashed raw pointer.
      Vec.Alloc = -1;
      return Out;
    });
    // LeakyQueue drop: frees only when the queue was filled to capacity.
    Registry.registerDrop("LeakyQueue", [](InterpCtx &Ctx, Value &V) {
      if (V.Alloc >= 0 && V.Len == V.Cap)
        Ctx.heap().free(V.Alloc, Ctx.line());
      // Otherwise: leak (the ⋆1-style bug).
    });
    // BadBox drop: dereferences the stale pointer -> UAF.
    Registry.registerDrop("BadBox", [](InterpCtx &Ctx, Value &V) {
      int StaleAlloc = static_cast<int>(V.Int);
      if (StaleAlloc >= 0)
        Ctx.heap().free(StaleAlloc, Ctx.line());
    });
  }

  /// Template: test(s: String, v: MyVec<String>, n: usize).
  Program makeTemplate() {
    Program P;
    P.Inputs.push_back({"s", parse("String")});
    P.Inputs.push_back({"v", parse("MyVec<String>")});
    P.Inputs.push_back({"n", parse("usize")});
    return P;
  }

  TemplateInit makeInit() {
    return [](AbstractHeap &Heap, Rng &) {
      std::vector<Value> Vals(3);
      Vals[0].Str = "hello";
      Vals[1].Alloc = Heap.allocate(64, "myvec buf");
      Vals[1].Len = 2;
      Vals[1].Cap = 8;
      Vals[2].Int = 4;
      return Vals;
    };
  }

  ExecResult run(const Program &P) {
    Interpreter Interp(Db, Traits, Registry, makeInit());
    return Interp.run(P);
  }
};

TEST_F(InterpFixture, CleanProgramHasNoUb) {
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 3, parse("MyVec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {3}, 4, parse("&mut MyVec<String>")});
  P.Stmts.push_back(Stmt{Push, {4, 0}, 5, Arena.unit()});
  P.Stmts.push_back(Stmt{Pop, {4}, 6, parse("Option<String>")});
  ExecResult R = run(P);
  EXPECT_FALSE(R.UbFound) << R.Report.Message;
}

TEST_F(InterpFixture, IntoPartsThenDropIsClean) {
  // into_parts frees the buffer; the consumed vector is not dropped again.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{IntoParts, {1}, 3, parse("(usize, usize)")});
  ExecResult R = run(P);
  EXPECT_FALSE(R.UbFound) << R.Report.Message;
}

TEST_F(InterpFixture, LeakyQueueLeaksWhenNotFull) {
  // The ⋆1 bug shape: one line, non-zero capacity, leak at drop.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{QueueNew, {2}, 3, parse("LeakyQueue<String>")});
  ExecResult R = run(P);
  ASSERT_TRUE(R.UbFound);
  EXPECT_EQ(R.Report.Kind, UbKind::MemoryLeak);
}

TEST_F(InterpFixture, BadBoxDropIsUseAfterFree) {
  // The ⋆3 bug shape: convert then drop -> double free of the stale
  // pointer target (reported as DoubleFree by the heap).
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{BoxUp, {1}, 3, parse("BadBox<String>")});
  ExecResult R = run(P);
  ASSERT_TRUE(R.UbFound);
  EXPECT_EQ(R.Report.Kind, UbKind::DoubleFree);
}

TEST_F(InterpFixture, DropGlueFreesOwnedValues) {
  // No statements: template values drop cleanly, no leak.
  Program P = makeTemplate();
  ExecResult R = run(P);
  EXPECT_FALSE(R.UbFound) << R.Report.Message;
}

TEST_F(InterpFixture, MovedValueNotDoubleDropped) {
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 3, parse("MyVec<String>")});
  P.Stmts.push_back(Stmt{LetMut, {3}, 4, parse("MyVec<String>")});
  ExecResult R = run(P);
  EXPECT_FALSE(R.UbFound) << R.Report.Message;
}

} // namespace
