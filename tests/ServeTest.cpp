//===--- ServeTest.cpp - syrust serve daemon tests ------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
//
// End-to-end daemon tests over a real AF_UNIX socket: the byte-identity
// contract (a campaign submitted over the wire answers with the same
// document offline execution produces), the control verbs, and the
// hostility suite — a client sending garbage must never take the daemon
// away from the clients behaving themselves.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "cli/Execute.h"
#include "core/Session.h"
#include "serve/Client.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

using namespace syrust;
using namespace syrust::serve;

namespace {

/// One live daemon on a socket in the test temp dir, served from a
/// background thread. The fixture session is shared — analyses stay
/// warm across every test in the binary, daemon-style.
class ServeTest : public testing::Test {
protected:
  void SetUp() override {
    // Per-process socket name: ctest runs each test of this binary as
    // its own process, often in parallel, and two daemons on one path
    // would unlink each other's sockets. Short names too: sun_path is
    // ~108 bytes and TempDir can be deep, so fall back to /tmp.
    const std::string Name =
        "/syrust_serve_" + std::to_string(::getpid()) + ".sock";
    SocketPath = testing::TempDir() + Name;
    if (SocketPath.size() >= 100)
      SocketPath = "/tmp" + Name;

    cli::ServeRequest Options;
    Options.SocketPath = SocketPath;
    Options.MaxInflight = 2;
    Daemon.reset(new Server(session(), Options));
    std::string Err;
    ASSERT_TRUE(Daemon->start(Err)) << Err;
    IoThread = std::thread([this] { ExitCode = Daemon->run(); });
  }

  void TearDown() override {
    Daemon->requestStop();
    IoThread.join();
    EXPECT_EQ(cli::ExitOk, ExitCode);
    Daemon.reset();
  }

  static core::Session &session() {
    static core::Session S;
    return S;
  }

  json::Value call(Client &C, const std::string &RequestText) {
    json::ParseResult P = json::parse(RequestText);
    EXPECT_TRUE(P.Ok) << P.Error;
    json::Value Response;
    std::string Err;
    EXPECT_TRUE(C.call(P.Val, Response, Err)) << Err;
    return Response;
  }

  Client connected() {
    Client C;
    std::string Err;
    EXPECT_TRUE(C.connect(SocketPath, Err)) << Err;
    return C;
  }

  std::string SocketPath;
  std::unique_ptr<Server> Daemon;
  std::thread IoThread;
  int ExitCode = -1;
};

TEST_F(ServeTest, PingPongsAndEchoesId) {
  Client C = connected();
  json::Value R = call(C, "{\"verb\":\"ping\",\"id\":7}");
  EXPECT_TRUE(R.get("ok").asBool());
  EXPECT_TRUE(R.get("pong").asBool());
  EXPECT_EQ(7, R.get("id").asInt());
}

TEST_F(ServeTest, CampaignOverSocketMatchesOfflineByteForByte) {
  // The headline contract. Offline first:
  cli::RequestSpec Spec;
  std::vector<std::string> Errors;
  const char *Argv[] = {"--crates", "slab,bytes", "--seeds",
                        "2021..2022", "--budget", "8", "--out", "d"};
  ASSERT_TRUE(cli::parseArgv(cli::Verb::Campaign, 8, Argv, Spec, Errors));
  ASSERT_TRUE((Errors = cli::finalize(session(), Spec)).empty())
      << Errors.front();
  cli::Response Offline = cli::execute(session(), Spec);

  // Same request over the wire.
  json::Value Wire;
  ASSERT_TRUE(cli::argvToRequestJson(cli::Verb::Campaign, 8, Argv, Wire,
                                     Errors));
  Client C = connected();
  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(C.call(Wire, Doc, Err)) << Err;
  cli::Response Online;
  ASSERT_TRUE(responseFromJson(Doc, Online, Err)) << Err;

  EXPECT_EQ(Offline.ExitCode, Online.ExitCode);
  EXPECT_EQ(Offline.Output, Online.Output);
  ASSERT_EQ(Offline.Files.size(), Online.Files.size());
  for (size_t I = 0; I < Offline.Files.size(); ++I) {
    EXPECT_EQ(Offline.Files[I].first, Online.Files[I].first);
    // Byte-for-byte, wall-time-free per-job documents included: the
    // daemon rendered them once and shipped the bytes.
    if (Offline.Files[I].first == "d/aggregate.json") {
      EXPECT_EQ(Offline.Files[I].second, Online.Files[I].second)
          << Offline.Files[I].first;
    }
  }
}

TEST_F(ServeTest, GarbageJsonGetsAnErrorButKeepsTheConnection) {
  Client C = connected();
  std::string Raw, Err;
  ASSERT_TRUE(C.callRaw("this is not json{{{", Raw, Err)) << Err;
  json::ParseResult P = json::parse(Raw);
  ASSERT_TRUE(P.Ok);
  EXPECT_FALSE(P.Val.get("ok").asBool());
  EXPECT_NE(std::string::npos,
            P.Val.get("error").asString().find("malformed"));

  // Framing stayed intact: the same connection still serves.
  json::Value R = call(C, "{\"verb\":\"ping\"}");
  EXPECT_TRUE(R.get("ok").asBool());
}

TEST_F(ServeTest, InvalidRequestsNameTheBadField) {
  Client C = connected();
  json::Value R =
      call(C, "{\"verb\":\"run\",\"crate\":\"slab\",\"bogus\":1}");
  EXPECT_FALSE(R.get("ok").asBool());
  EXPECT_NE(std::string::npos, R.get("error").asString().find("bogus"));

  R = call(C, "{\"verb\":\"run\",\"crate\":\"no_such_crate\"}");
  EXPECT_FALSE(R.get("ok").asBool());
  EXPECT_NE(std::string::npos,
            R.get("error").asString().find("no_such_crate"));

  // The connection survives its own bad requests.
  EXPECT_TRUE(call(C, "{\"verb\":\"ping\"}").get("ok").asBool());
}

TEST_F(ServeTest, OversizedFrameDropsOnlyThatClient) {
  Client Innocent = connected();

  // A hostile 4 GiB length prefix: the daemon must hang up on this
  // client (stream position is unrecoverable)...
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());
  ASSERT_EQ(0, ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr)));
  const char Evil[8] = {'\xff', '\xff', '\xff', '\xff', 'j', 'u', 'n',
                        'k'};
  ASSERT_EQ(8, ::write(Fd, Evil, 8));
  char Buf[16];
  EXPECT_EQ(0, ::read(Fd, Buf, sizeof(Buf))); // EOF: dropped.
  ::close(Fd);

  // ...while everyone else stays served.
  EXPECT_TRUE(
      call(Innocent, "{\"verb\":\"ping\"}").get("ok").asBool());
}

TEST_F(ServeTest, MidRequestDisconnectLeavesTheDaemonServing) {
  // Send half a frame, then vanish.
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());
  ASSERT_EQ(0, ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr)));
  std::string Frame = encodeFrame("{\"verb\":\"ping\"}");
  ASSERT_EQ(5, ::write(Fd, Frame.data(), 5));
  ::close(Fd);

  Client C = connected();
  EXPECT_TRUE(call(C, "{\"verb\":\"ping\"}").get("ok").asBool());
}

TEST_F(ServeTest, StatsReportWarmAnalysesAndQueues) {
  Client C = connected();
  // Warm the session through the daemon.
  call(C, "{\"verb\":\"run\",\"crate\":\"slab\",\"budget\":8}");
  json::Value R = call(C, "{\"verb\":\"stats\"}");
  ASSERT_TRUE(R.get("ok").asBool());
  const json::Value &Stats = R.get("stats");
  EXPECT_GE(Stats.get("gauges").get("serve.warm.builds").asDouble(), 1.0);
  EXPECT_GE(Stats.get("counters").get("serve.requests.total").asInt(), 1);
  EXPECT_EQ(0.0,
            Stats.get("gauges").get("serve.queue.depth").asDouble());
}

TEST_F(ServeTest, PerClientInflightCapRejectsTheExcess) {
  auto rawConnect = [&] {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());
    EXPECT_EQ(0, ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                           sizeof(Addr)));
    return Fd;
  };
  auto sendFrame = [](int Fd, const std::string &Payload) {
    std::string Frame = encodeFrame(Payload);
    ASSERT_EQ(static_cast<ssize_t>(Frame.size()),
              ::write(Fd, Frame.data(), Frame.size()));
  };

  // Occupy the single executor with a slow campaign from another
  // connection, so this client's queue cannot drain under the burst.
  int Slow = rawConnect();
  sendFrame(Slow, "{\"verb\":\"campaign\",\"crates\":\"slab,bytes\","
                  "\"seeds\":\"1..40\",\"budget\":10}");
  // Don't burst until the campaign is actually the one running.
  Client Probe = connected();
  for (;;) {
    json::Value R = call(Probe, "{\"verb\":\"stats\"}");
    if (R.get("stats")
            .get("counters")
            .get("serve.requests.campaign")
            .asInt() >= 1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Pipeline MaxInflight+1 requests on one connection without reading;
  // the cap (2 here) must reject the excess with an error response
  // while the capped requests still answer.
  int Fd = rawConnect();
  for (int I = 0; I < 3; ++I)
    sendFrame(Fd,
              "{\"verb\":\"run\",\"crate\":\"slab\",\"budget\":8,"
              "\"id\":" +
                  std::to_string(I) + "}");

  FrameDecoder D;
  int Answered = 0, Rejected = 0;
  std::string Payload;
  while (Answered + Rejected < 3) {
    char Buf[65536];
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    ASSERT_GT(N, 0);
    D.feed(Buf, static_cast<size_t>(N));
    while (D.next(Payload) == FrameDecoder::Status::Frame) {
      json::ParseResult P = json::parse(Payload);
      ASSERT_TRUE(P.Ok);
      if (P.Val.get("ok").asBool())
        ++Answered;
      else {
        ++Rejected;
        EXPECT_NE(std::string::npos,
                  P.Val.get("error").asString().find("in flight"));
      }
    }
  }
  ::close(Fd);

  // Let the slow campaign answer too, so TearDown's shutdown finds a
  // quiet daemon.
  FrameDecoder SlowD;
  for (;;) {
    char Buf[65536];
    ssize_t N = ::read(Slow, Buf, sizeof(Buf));
    ASSERT_GT(N, 0);
    SlowD.feed(Buf, static_cast<size_t>(N));
    if (SlowD.next(Payload) == FrameDecoder::Status::Frame)
      break;
  }
  ::close(Slow);

  EXPECT_EQ(2, Answered);
  EXPECT_EQ(1, Rejected);
}

TEST_F(ServeTest, TwoClientsAreServedFairly) {
  // Not a scheduling-order assertion (that would be timing-dependent) —
  // just that interleaved clients both complete against one daemon.
  Client A = connected();
  Client B = connected();
  json::Value RA =
      call(A, "{\"verb\":\"run\",\"crate\":\"slab\",\"budget\":8}");
  json::Value RB =
      call(B, "{\"verb\":\"run\",\"crate\":\"bytes\",\"budget\":8}");
  EXPECT_TRUE(RA.get("ok").asBool());
  EXPECT_TRUE(RB.get("ok").asBool());
  EXPECT_NE(RA.get("output").asString(), RB.get("output").asString());
}

} // namespace
