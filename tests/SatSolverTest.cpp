//===--- SatSolverTest.cpp - Unit and property tests for the CDCL core ----===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sat/ModelEnumerator.h"
#include "sat/Portfolio.h"
#include "sat/Solver.h"
#include "sat/SolverStrategy.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace syrust;
using namespace syrust::sat;

namespace {

std::vector<Var> makeVars(Solver &S, int N) {
  std::vector<Var> Vars;
  for (int I = 0; I < N; ++I)
    Vars.push_back(S.newVar());
  return Vars;
}

//===----------------------------------------------------------------------===//
// Literal algebra
//===----------------------------------------------------------------------===//

TEST(LitTest, EncodingRoundTrip) {
  Lit P = mkLit(7, false);
  EXPECT_EQ(var(P), 7);
  EXPECT_FALSE(sign(P));
  EXPECT_EQ(var(~P), 7);
  EXPECT_TRUE(sign(~P));
  EXPECT_EQ(~~P, P);
  EXPECT_NE(~P, P);
}

TEST(LitTest, ValueNegation) {
  EXPECT_EQ(!Value::True, Value::False);
  EXPECT_EQ(!Value::False, Value::True);
  EXPECT_EQ(!Value::Undef, Value::Undef);
}

//===----------------------------------------------------------------------===//
// Basic clause solving
//===----------------------------------------------------------------------===//

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver S;
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SolverTest, SingleUnit) {
  Solver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause(mkLit(V)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(V), Value::True);
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause(mkLit(V)));
  EXPECT_FALSE(S.addClause(mkLit(V, true)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_FALSE(S.okay());
}

TEST(SolverTest, ImplicationChainPropagates) {
  Solver S;
  auto Vars = makeVars(S, 5);
  for (int I = 0; I + 1 < 5; ++I)
    ASSERT_TRUE(S.addClause(mkLit(Vars[I], true), mkLit(Vars[I + 1])));
  ASSERT_TRUE(S.addClause(mkLit(Vars[0])));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  for (Var V : Vars)
    EXPECT_EQ(S.modelValue(V), Value::True);
}

TEST(SolverTest, TautologyIsIgnored) {
  Solver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause(std::vector<Lit>{mkLit(V), mkLit(V, true)}));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SolverTest, DuplicateLiteralsCollapse) {
  Solver S;
  Var V = S.newVar();
  Var W = S.newVar();
  ASSERT_TRUE(
      S.addClause(std::vector<Lit>{mkLit(V), mkLit(V), mkLit(W, true)}));
  ASSERT_TRUE(S.addClause(mkLit(W)));
  ASSERT_TRUE(S.addClause(mkLit(V, true), mkLit(W)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(W), Value::True);
}

TEST(SolverTest, XorChainUnsat) {
  // x1 xor x2, x2 xor x3, x1 = x3 forced unequal -> unsat for odd cycles.
  Solver S;
  auto V = makeVars(S, 3);
  auto AddXor = [&](Var A, Var B) {
    ASSERT_TRUE(S.addClause(mkLit(A), mkLit(B)));
    ASSERT_TRUE(S.addClause(mkLit(A, true), mkLit(B, true)));
  };
  AddXor(V[0], V[1]);
  AddXor(V[1], V[2]);
  AddXor(V[2], V[0]);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SolverTest, PigeonholeUnsat) {
  // 4 pigeons into 3 holes: classic hard UNSAT instance exercising learning.
  constexpr int Pigeons = 4, Holes = 3;
  Solver S;
  Var P[Pigeons][Holes];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P) {
    std::vector<Lit> AtLeastOne;
    for (Var V : Row)
      AtLeastOne.push_back(mkLit(V));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (int H = 0; H < Holes; ++H)
    for (int I = 0; I < Pigeons; ++I)
      for (int J = I + 1; J < Pigeons; ++J)
        ASSERT_TRUE(S.addClause(mkLit(P[I][H], true), mkLit(P[J][H], true)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(SolverTest, PigeonholeViaCardinalityUnsat) {
  // Same instance but holes constrained with native AtMost-1.
  constexpr int Pigeons = 5, Holes = 4;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P) {
    std::vector<Lit> AtLeastOne;
    for (Var V : Row)
      AtLeastOne.push_back(mkLit(V));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (int H = 0; H < Holes; ++H) {
    std::vector<Lit> Column;
    for (int I = 0; I < Pigeons; ++I)
      Column.push_back(mkLit(P[I][H]));
    ASSERT_TRUE(S.addAtMost(Column, 1));
  }
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

//===----------------------------------------------------------------------===//
// Cardinality constraints
//===----------------------------------------------------------------------===//

TEST(CardinalityTest, AtMostZeroForcesAllFalse) {
  Solver S;
  auto Vars = makeVars(S, 4);
  std::vector<Lit> Lits;
  for (Var V : Vars)
    Lits.push_back(mkLit(V));
  ASSERT_TRUE(S.addAtMost(Lits, 0));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  for (Var V : Vars)
    EXPECT_EQ(S.modelValue(V), Value::False);
}

TEST(CardinalityTest, AtLeastAllForcesAllTrue) {
  Solver S;
  auto Vars = makeVars(S, 4);
  std::vector<Lit> Lits;
  for (Var V : Vars)
    Lits.push_back(mkLit(V));
  ASSERT_TRUE(S.addAtLeast(Lits, 4));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  for (Var V : Vars)
    EXPECT_EQ(S.modelValue(V), Value::True);
}

TEST(CardinalityTest, ExactlyOnePropagatesNegations) {
  Solver S;
  auto Vars = makeVars(S, 5);
  std::vector<Lit> Lits;
  for (Var V : Vars)
    Lits.push_back(mkLit(V));
  ASSERT_TRUE(S.addExactly(Lits, 1));
  ASSERT_TRUE(S.addClause(mkLit(Vars[2])));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(S.modelValue(Vars[I]), I == 2 ? Value::True : Value::False);
}

TEST(CardinalityTest, OverfullAtMostConflictsAtRoot) {
  Solver S;
  auto Vars = makeVars(S, 3);
  for (Var V : Vars)
    ASSERT_TRUE(S.addClause(mkLit(V)));
  std::vector<Lit> Lits;
  for (Var V : Vars)
    Lits.push_back(mkLit(V));
  EXPECT_FALSE(S.addAtMost(Lits, 1));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(CardinalityTest, AtLeastMoreThanSizeIsUnsat) {
  Solver S;
  auto Vars = makeVars(S, 2);
  std::vector<Lit> Lits{mkLit(Vars[0]), mkLit(Vars[1])};
  EXPECT_FALSE(S.addAtLeast(Lits, 3));
}

TEST(CardinalityTest, MixedPolarityAtMost) {
  // AtMost(x, ~y; 1) with x forced true forces y true.
  Solver S;
  Var X = S.newVar();
  Var Y = S.newVar();
  Var Z = S.newVar();
  ASSERT_TRUE(
      S.addAtMost(std::vector<Lit>{mkLit(X), mkLit(Y, true), mkLit(Z)}, 1));
  ASSERT_TRUE(S.addClause(mkLit(X)));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(Y), Value::True);
  EXPECT_EQ(S.modelValue(Z), Value::False);
}

/// Property: for random cardinality instances, solver verdict and any model
/// agree with brute force over all 2^N assignments.
class CardinalityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CardinalityPropertyTest, AgreesWithBruteForce) {
  Rng R(GetParam());
  constexpr int N = 8;
  for (int Round = 0; Round < 20; ++Round) {
    Solver S;
    auto Vars = makeVars(S, N);
    // Random mix of clauses and cardinality constraints.
    struct CardSpec {
      std::vector<Lit> Lits;
      int K;
      bool AtMostKind;
    };
    std::vector<std::vector<Lit>> Clauses;
    std::vector<CardSpec> CardSpecs;
    int NumClauses = 2 + static_cast<int>(R.below(10));
    int NumCards = 1 + static_cast<int>(R.below(4));
    bool AddOk = true;
    for (int C = 0; C < NumClauses; ++C) {
      std::vector<Lit> Cl;
      int Len = 1 + static_cast<int>(R.below(3));
      for (int L = 0; L < Len; ++L)
        Cl.push_back(mkLit(Vars[R.below(N)], R.chance(0.5)));
      Clauses.push_back(Cl);
      AddOk = S.addClause(Cl) && AddOk;
    }
    for (int C = 0; C < NumCards; ++C) {
      CardSpec Spec;
      int Len = 2 + static_cast<int>(R.below(static_cast<uint64_t>(N - 1)));
      std::set<Var> Used;
      for (int L = 0; L < Len; ++L) {
        Var V = Vars[R.below(N)];
        if (!Used.insert(V).second)
          continue;
        Spec.Lits.push_back(mkLit(V, R.chance(0.5)));
      }
      if (Spec.Lits.size() < 2)
        continue; // Too few distinct literals; skip this constraint.
      Spec.K = 1 + static_cast<int>(R.below(Spec.Lits.size()));
      Spec.AtMostKind = R.chance(0.5);
      CardSpecs.push_back(Spec);
      if (Spec.AtMostKind)
        AddOk = S.addAtMost(Spec.Lits, Spec.K) && AddOk;
      else
        AddOk = S.addAtLeast(Spec.Lits, Spec.K) && AddOk;
    }

    auto SatisfiedBy = [&](uint32_t Bits) {
      auto Val = [&](Lit L) {
        bool B = (Bits >> var(L)) & 1;
        return sign(L) ? !B : B;
      };
      for (const auto &Cl : Clauses) {
        bool Any = false;
        for (Lit L : Cl)
          Any = Any || Val(L);
        if (!Any)
          return false;
      }
      for (const auto &Spec : CardSpecs) {
        int Count = 0;
        for (Lit L : Spec.Lits)
          Count += Val(L) ? 1 : 0;
        if (Spec.AtMostKind ? Count > Spec.K : Count < Spec.K)
          return false;
      }
      return true;
    };

    bool BruteSat = false;
    for (uint32_t Bits = 0; Bits < (1u << N) && !BruteSat; ++Bits)
      BruteSat = SatisfiedBy(Bits);

    SolveResult Result = AddOk ? S.solve() : SolveResult::Unsat;
    if (!AddOk)
      Result = SolveResult::Unsat;
    EXPECT_EQ(Result == SolveResult::Sat, BruteSat)
        << "round " << Round << " seed " << GetParam();
    if (Result == SolveResult::Sat) {
      uint32_t Bits = 0;
      for (int I = 0; I < N; ++I)
        if (S.modelValue(Vars[I]) == Value::True)
          Bits |= 1u << I;
      EXPECT_TRUE(SatisfiedBy(Bits))
          << "model does not satisfy the instance";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CardinalityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 99, 123,
                                           2026));

/// Property: random 3-SAT near the phase transition; verify models, and
/// verify UNSAT answers against brute force.
class Random3SatTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Random3SatTest, VerdictMatchesBruteForce) {
  Rng R(GetParam() * 0x9e3779b9ULL + 7);
  constexpr int N = 12;
  int NumClauses = static_cast<int>(4.26 * N);
  Solver S;
  auto Vars = makeVars(S, N);
  std::vector<std::vector<Lit>> Clauses;
  bool AddOk = true;
  for (int C = 0; C < NumClauses; ++C) {
    std::set<Var> Used;
    std::vector<Lit> Cl;
    while (Cl.size() < 3) {
      Var V = Vars[R.below(N)];
      if (Used.insert(V).second)
        Cl.push_back(mkLit(V, R.chance(0.5)));
    }
    Clauses.push_back(Cl);
    AddOk = S.addClause(Cl) && AddOk;
  }
  auto SatisfiedBy = [&](uint32_t Bits) {
    for (const auto &Cl : Clauses) {
      bool Any = false;
      for (Lit L : Cl) {
        bool B = (Bits >> var(L)) & 1;
        Any = Any || (sign(L) ? !B : B);
      }
      if (!Any)
        return false;
    }
    return true;
  };
  bool BruteSat = false;
  for (uint32_t Bits = 0; Bits < (1u << N) && !BruteSat; ++Bits)
    BruteSat = SatisfiedBy(Bits);
  SolveResult Result = AddOk ? S.solve() : SolveResult::Unsat;
  EXPECT_EQ(Result == SolveResult::Sat, BruteSat);
  if (Result == SolveResult::Sat) {
    uint32_t Bits = 0;
    for (int I = 0; I < N; ++I)
      if (S.modelValue(Vars[I]) == Value::True)
        Bits |= 1u << I;
    EXPECT_TRUE(SatisfiedBy(Bits));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3SatTest,
                         ::testing::Range<uint64_t>(0, 25));

//===----------------------------------------------------------------------===//
// Incremental solving and enumeration
//===----------------------------------------------------------------------===//

TEST(IncrementalTest, AddClauseBetweenSolves) {
  Solver S;
  auto Vars = makeVars(S, 3);
  ASSERT_TRUE(S.addClause(mkLit(Vars[0]), mkLit(Vars[1])));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  ASSERT_TRUE(S.addClause(mkLit(Vars[0], true)));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(Vars[1]), Value::True);
  // Adding ~v1 contradicts the forced v1 at the root: addClause reports the
  // inconsistency immediately and subsequent solves stay Unsat.
  EXPECT_FALSE(S.addClause(mkLit(Vars[1], true)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(IncrementalTest, AssumptionsDoNotPersist) {
  Solver S;
  Var V = S.newVar();
  EXPECT_EQ(S.solve({mkLit(V, true)}), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(V), Value::False);
  EXPECT_EQ(S.solve({mkLit(V)}), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(V), Value::True);
}

TEST(IncrementalTest, ConflictingAssumptionsUnsatButRecoverable) {
  Solver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause(mkLit(V)));
  EXPECT_EQ(S.solve({mkLit(V, true)}), SolveResult::Unsat);
  EXPECT_TRUE(S.okay());
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(EnumerationTest, CountsAllProjectedModels) {
  // 4 free variables, no constraints: 16 models over the projection.
  Solver S;
  auto Vars = makeVars(S, 4);
  ModelEnumerator Enum(S, Vars);
  int Count = 0;
  std::set<uint32_t> Distinct;
  while (Enum.next()) {
    ++Count;
    uint32_t Bits = 0;
    for (int I = 0; I < 4; ++I)
      if (S.modelValue(Vars[I]) == Value::True)
        Bits |= 1u << I;
    EXPECT_TRUE(Distinct.insert(Bits).second) << "duplicate model";
    ASSERT_LE(Count, 16) << "enumeration failed to terminate";
  }
  EXPECT_EQ(Count, 16);
  EXPECT_EQ(Enum.count(), 16u);
}

TEST(EnumerationTest, ExactlyOneYieldsNModels) {
  Solver S;
  auto Vars = makeVars(S, 6);
  std::vector<Lit> Lits;
  for (Var V : Vars)
    Lits.push_back(mkLit(V));
  ASSERT_TRUE(S.addExactly(Lits, 1));
  ModelEnumerator Enum(S, Vars);
  int Count = 0;
  while (Enum.next())
    ASSERT_LE(++Count, 6);
  EXPECT_EQ(Count, 6);
}

TEST(EnumerationTest, ProjectionIgnoresVarUndefPlaceholders) {
  // A pruned encoder's variable table keeps VarUndef where a dead call
  // site would have had its A-variable; the enumerator must filter the
  // placeholders and still count the real projection's models.
  Solver S;
  auto Vars = makeVars(S, 3);
  std::vector<Var> Projection = {VarUndef, Vars[0], VarUndef, Vars[1],
                                 Vars[2], VarUndef};
  ModelEnumerator Enum(S, Projection);
  int Count = 0;
  while (Enum.next())
    ASSERT_LE(++Count, 8);
  EXPECT_EQ(Count, 8);
}

TEST(EnumerationTest, ProjectionCollapsesDontCares) {
  // y is unconstrained; projecting on {x} must yield exactly 2 models.
  Solver S;
  Var X = S.newVar();
  Var Y = S.newVar();
  (void)Y;
  ModelEnumerator Enum(S, {X});
  int Count = 0;
  while (Enum.next())
    ASSERT_LE(++Count, 2);
  EXPECT_EQ(Count, 2);
}

TEST(EnumerationTest, CardinalityChooseCount) {
  // Exactly 2 of 5: C(5,2) = 10 models.
  Solver S;
  auto Vars = makeVars(S, 5);
  std::vector<Lit> Lits;
  for (Var V : Vars)
    Lits.push_back(mkLit(V));
  ASSERT_TRUE(S.addExactly(Lits, 2));
  ModelEnumerator Enum(S, Vars);
  int Count = 0;
  while (Enum.next()) {
    int True = 0;
    for (Var V : Vars)
      True += S.modelValue(V) == Value::True ? 1 : 0;
    EXPECT_EQ(True, 2);
    ASSERT_LE(++Count, 10);
  }
  EXPECT_EQ(Count, 10);
}

/// Property: projected enumeration over all variables yields exactly the
/// brute-force model count for random clause+cardinality instances.
class EnumerationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnumerationPropertyTest, CountMatchesBruteForce) {
  Rng R(GetParam() * 1337 + 11);
  constexpr int N = 7;
  Solver S;
  auto Vars = makeVars(S, N);
  std::vector<std::vector<Lit>> Clauses;
  struct CardSpec {
    std::vector<Lit> Lits;
    int K;
  };
  std::vector<CardSpec> CardSpecs;
  bool AddOk = true;
  int NumClauses = static_cast<int>(R.below(6));
  for (int C = 0; C < NumClauses; ++C) {
    std::vector<Lit> Cl;
    int Len = 2 + static_cast<int>(R.below(3));
    for (int L = 0; L < Len; ++L)
      Cl.push_back(mkLit(Vars[R.below(N)], R.chance(0.5)));
    Clauses.push_back(Cl);
    AddOk = S.addClause(Cl) && AddOk;
  }
  int NumCards = 1 + static_cast<int>(R.below(2));
  for (int C = 0; C < NumCards; ++C) {
    CardSpec Spec;
    std::set<Var> Used;
    int Len = 3 + static_cast<int>(R.below(4));
    for (int L = 0; L < Len; ++L) {
      Var V = Vars[R.below(N)];
      if (Used.insert(V).second)
        Spec.Lits.push_back(mkLit(V, R.chance(0.5)));
    }
    if (Spec.Lits.size() < 2)
      continue;
    Spec.K = 1 + static_cast<int>(R.below(Spec.Lits.size() - 1));
    CardSpecs.push_back(Spec);
    AddOk = S.addAtMost(Spec.Lits, Spec.K) && AddOk;
  }
  auto SatisfiedBy = [&](uint32_t Bits) {
    auto Val = [&](Lit L) {
      bool B = (Bits >> var(L)) & 1;
      return sign(L) ? !B : B;
    };
    for (const auto &Cl : Clauses) {
      bool Any = false;
      for (Lit L : Cl)
        Any = Any || Val(L);
      if (!Any)
        return false;
    }
    for (const auto &Spec : CardSpecs) {
      int Count = 0;
      for (Lit L : Spec.Lits)
        Count += Val(L) ? 1 : 0;
      if (Count > Spec.K)
        return false;
    }
    return true;
  };
  int BruteCount = 0;
  for (uint32_t Bits = 0; Bits < (1u << N); ++Bits)
    BruteCount += SatisfiedBy(Bits) ? 1 : 0;
  // A tautological or root-satisfied clause may be dropped; AddOk==false
  // only when the instance is root-unsat, in which case BruteCount is 0.
  if (!AddOk) {
    EXPECT_EQ(BruteCount, 0);
    return;
  }
  ModelEnumerator Enum(S, Vars);
  int Enumerated = 0;
  std::set<uint32_t> Distinct;
  while (Enum.next()) {
    uint32_t Bits = 0;
    for (int I = 0; I < N; ++I)
      if (S.modelValue(Vars[I]) == Value::True)
        Bits |= 1u << I;
    EXPECT_TRUE(SatisfiedBy(Bits)) << "bogus model " << Bits;
    EXPECT_TRUE(Distinct.insert(Bits).second) << "duplicate model " << Bits;
    ASSERT_LE(++Enumerated, BruteCount) << "enumeration overshoots";
  }
  EXPECT_EQ(Enumerated, BruteCount);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumerationPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

TEST(BudgetTest, ConflictBudgetStopsSearch) {
  // A hard pigeonhole instance with a tiny budget must report exhaustion.
  constexpr int Pigeons = 9, Holes = 8;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P) {
    std::vector<Lit> AtLeastOne;
    for (Var V : Row)
      AtLeastOne.push_back(mkLit(V));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (int H = 0; H < Holes; ++H) {
    std::vector<Lit> Column;
    for (int I = 0; I < Pigeons; ++I)
      Column.push_back(mkLit(P[I][H]));
    ASSERT_TRUE(S.addAtMost(Column, 1));
  }
  S.setConflictBudget(10);
  // Running out of budget is "gave up", not an UNSAT proof: the result
  // must be Unknown, and the flag must distinguish it from exhaustion.
  EXPECT_EQ(S.solve(), SolveResult::Unknown);
  EXPECT_TRUE(S.budgetExhausted());
  EXPECT_TRUE(S.okay());
  // Lifting the budget on the same solver still finds the real proof.
  S.setConflictBudget(0);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_FALSE(S.budgetExhausted());
}

// Builds the pigeonhole instance used by the budget/strategy tests:
// Pigeons x Holes, unsatisfiable whenever Pigeons > Holes.
static void buildPigeonhole(Solver &S, int Pigeons, int Holes) {
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P) {
    std::vector<Lit> AtLeastOne;
    for (Var V : Row)
      AtLeastOne.push_back(mkLit(V));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (int H = 0; H < Holes; ++H) {
    std::vector<Lit> Column;
    for (int I = 0; I < Pigeons; ++I)
      Column.push_back(mkLit(P[I][H]));
    ASSERT_TRUE(S.addAtMost(Column, 1));
  }
}

TEST(BudgetTest, AssumptionSolveAlsoReturnsUnknownOnBudget) {
  Solver S;
  buildPigeonhole(S, 9, 8);
  Var Guard = S.newVar();
  S.setConflictBudget(10);
  EXPECT_EQ(S.solve({mkLit(Guard)}), SolveResult::Unknown);
  EXPECT_TRUE(S.budgetExhausted());
  EXPECT_TRUE(S.okay());
}

TEST(BudgetTest, GenuineUnsatIsNotFlaggedAsBudget) {
  Solver S;
  Var X = S.newVar();
  ASSERT_TRUE(S.addClause(mkLit(X)));
  S.setConflictBudget(1);
  // The contradiction is found at the root, well within budget.
  EXPECT_EQ(S.solve({mkLit(X, true)}), SolveResult::Unsat);
  EXPECT_FALSE(S.budgetExhausted());
}

TEST(InterruptTest, InterruptReturnsUnknownAndSolverStaysUsable) {
  Solver S;
  buildPigeonhole(S, 9, 8);
  std::atomic<bool> Stop{true};
  S.setInterrupt(&Stop);
  EXPECT_EQ(S.solve(), SolveResult::Unknown);
  EXPECT_TRUE(S.okay());
  // Clearing the flag lets the same solver finish the proof.
  Stop.store(false);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(StatsTest, CountersAdvance) {
  Solver S;
  auto Vars = makeVars(S, 10);
  Rng R(3);
  for (int C = 0; C < 40; ++C) {
    std::vector<Lit> Cl;
    for (int L = 0; L < 3; ++L)
      Cl.push_back(mkLit(Vars[R.below(10)], R.chance(0.5)));
    S.addClause(Cl);
  }
  (void)S.solve();
  EXPECT_GT(S.stats().Propagations, 0u);
}

//===----------------------------------------------------------------------===//
// All-Undef projections
//===----------------------------------------------------------------------===//

TEST(EnumerationTest, AllUndefProjectionReportsExhaustionNotPoison) {
  // Projection variables the solver has never seen read as Undef; the
  // blocking clause would be empty. That must end the enumeration, not
  // poison the solver with an empty clause (okay() flipping false would
  // break every later, unrelated query on the same solver).
  Solver S;
  ModelEnumerator Enum(S, {5, 7});
  EXPECT_TRUE(Enum.next()); // Empty formula: one vacuous model.
  EXPECT_FALSE(Enum.next());
  EXPECT_TRUE(S.okay());
  EXPECT_FALSE(S.budgetExhausted());
  // The solver is still usable for real work afterwards.
  Var X = S.newVar();
  ASSERT_TRUE(S.addClause(mkLit(X)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(X), Value::True);
}

//===----------------------------------------------------------------------===//
// Strategy table and portfolio racing
//===----------------------------------------------------------------------===//

TEST(StrategyTest, TableHasBaselineFirstAndStrictLookup) {
  const std::vector<SolverStrategy> &Set = portfolioStrategies();
  ASSERT_GE(Set.size(), 2u);
  // Index 0 must be the exact historical defaults - that is what keeps
  // portfolio streams byte-identical.
  EXPECT_STREQ(Set[0].Name, "baseline");
  EXPECT_EQ(Set[0].Restart, RestartPolicy::Luby);
  EXPECT_EQ(Set[0].RestartUnit, 100u);
  EXPECT_EQ(Set[0].SeedXor, 0u);
  EXPECT_EQ(Set[0].BudgetFactor, 1u);
  EXPECT_FALSE(Set[0].Cegar);
  for (const SolverStrategy &S : Set)
    EXPECT_EQ(findStrategy(S.Name), &S);
  EXPECT_EQ(findStrategy("bogus"), nullptr);
  EXPECT_EQ(findStrategy(""), nullptr);
  EXPECT_NE(knownStrategyNames().find("baseline"), std::string::npos);
  EXPECT_NE(knownStrategyNames().find("cegar"), std::string::npos);
}

TEST(StrategyTest, EveryStrategyAgreesWithBaselineOnSatisfiability) {
  // Restart schedules, phases, and seeds steer the search, never the
  // answer: each named configuration must agree with the baseline on a
  // batch of random instances straddling the phase-transition density.
  Rng R(11);
  for (int Inst = 0; Inst < 12; ++Inst) {
    const int NumVars = 14;
    std::vector<std::vector<Lit>> Clauses;
    for (int C = 0; C < 60; ++C) {
      std::vector<Lit> Cl;
      for (int L = 0; L < 3; ++L)
        Cl.push_back(mkLit(static_cast<Var>(R.below(NumVars)),
                           R.chance(0.5)));
      Clauses.push_back(Cl);
    }
    Solver Base;
    makeVars(Base, NumVars);
    for (const auto &Cl : Clauses)
      if (!Base.addClause(Cl))
        break;
    SolveResult Expect = Base.solve();
    for (const SolverStrategy &Strat : portfolioStrategies()) {
      Portfolio P;
      P.configure(false, Strat.Name);
      for (int V = 0; V < NumVars; ++V)
        P.newVar();
      for (const auto &Cl : Clauses)
        if (!P.addClause(Cl))
          break;
      EXPECT_EQ(P.solve(), Expect)
          << "strategy " << Strat.Name << " instance " << Inst;
    }
  }
}

TEST(PortfolioTest, DisabledPathMatchesPlainSolver) {
  Solver S;
  Portfolio P;
  P.configure(false, "");
  buildPigeonhole(S, 5, 4);
  {
    // Same construction through the wrapper.
    std::vector<std::vector<Var>> Rows(5, std::vector<Var>(4));
    for (auto &Row : Rows)
      for (Var &V : Row)
        V = P.newVar();
    for (auto &Row : Rows) {
      std::vector<Lit> AtLeastOne;
      for (Var V : Row)
        AtLeastOne.push_back(mkLit(V));
      ASSERT_TRUE(P.addClause(AtLeastOne));
    }
    for (int H = 0; H < 4; ++H) {
      std::vector<Lit> Column;
      for (int I = 0; I < 5; ++I)
        Column.push_back(mkLit(Rows[I][H]));
      ASSERT_TRUE(P.addAtMost(Column, 1));
    }
  }
  EXPECT_EQ(P.numVars(), S.numVars());
  EXPECT_EQ(P.solve(), S.solve());
  EXPECT_EQ(P.stats().Conflicts, S.stats().Conflicts);
  EXPECT_EQ(P.portfolioStats().Races, 0u);
}

TEST(PortfolioTest, RaceUpgradesBudgetUnknownToUnsat) {
  // Complete CNF over three variables: unsatisfiable, provable in a
  // handful of conflicts. A starved baseline gives up (Unknown); the
  // racers, running at BudgetFactor x the budget, finish the proof, so
  // the portfolio answers Unsat - and budgetExhausted() must NOT claim
  // a budget stop for what is now a real proof.
  Portfolio P;
  P.configure(true, "");
  auto Vars = std::vector<Var>{P.newVar(), P.newVar(), P.newVar()};
  for (int Mask = 0; Mask < 8; ++Mask) {
    std::vector<Lit> Cl;
    for (int I = 0; I < 3; ++I)
      Cl.push_back(mkLit(Vars[static_cast<size_t>(I)], (Mask >> I) & 1));
    if (!P.addClause(Cl))
      break;
  }
  P.setConflictBudget(1);
  EXPECT_EQ(P.solve(), SolveResult::Unsat);
  EXPECT_FALSE(P.budgetExhausted());
  EXPECT_EQ(P.portfolioStats().Races, 1u);
  EXPECT_EQ(P.portfolioStats().UnsatWins, 1u);
}

TEST(PortfolioTest, UnlimitedBudgetNeverLaunchesRacers) {
  Portfolio P;
  P.configure(true, "");
  std::vector<std::vector<Var>> Rows(7, std::vector<Var>(6));
  for (auto &Row : Rows)
    for (Var &V : Row)
      V = P.newVar();
  for (auto &Row : Rows) {
    std::vector<Lit> AtLeastOne;
    for (Var V : Row)
      AtLeastOne.push_back(mkLit(V));
    ASSERT_TRUE(P.addClause(AtLeastOne));
  }
  for (int H = 0; H < 6; ++H) {
    std::vector<Lit> Column;
    for (int I = 0; I < 7; ++I)
      Column.push_back(mkLit(Rows[I][H]));
    ASSERT_TRUE(P.addAtMost(Column, 1));
  }
  // Budget 0 = unlimited: member 0 cannot answer Unknown, so helper
  // proofs could never be consumed and no race may start.
  EXPECT_EQ(P.solve(), SolveResult::Unsat);
  EXPECT_EQ(P.portfolioStats().Races, 0u);
}

TEST(PortfolioTest, CegarPrimaryMaterializesOnlyViolatedClauses) {
  // Relaxation without the lazy clause is Sat with x=y=true; the model
  // violates the deferred clause, which gets materialized, and the full
  // formula then forces x false.
  Portfolio P;
  P.configure(false, "cegar");
  Var X = P.newVar();
  Var Y = P.newVar();
  ASSERT_TRUE(P.addClause(mkLit(Y)));
  P.beginLazy();
  ASSERT_TRUE(P.addClause(mkLit(X, true)));
  P.endLazy();
  EXPECT_EQ(P.solve(), SolveResult::Sat);
  EXPECT_EQ(P.modelValue(X), Value::False);
  EXPECT_EQ(P.modelValue(Y), Value::True);
}

TEST(PortfolioTest, CegarPrimaryFindsUnsatViaMaterialization) {
  // The lazy clauses contradict the eager units; CEGAR must converge to
  // Unsat (not report the relaxation's Sat).
  Portfolio P;
  P.configure(false, "cegar");
  Var X = P.newVar();
  Var Y = P.newVar();
  ASSERT_TRUE(P.addClause(mkLit(X)));
  ASSERT_TRUE(P.addClause(mkLit(Y)));
  P.beginLazy();
  ASSERT_TRUE(P.addClause(mkLit(X, true), mkLit(Y, true)));
  P.endLazy();
  EXPECT_EQ(P.solve(), SolveResult::Unsat);
  EXPECT_FALSE(P.budgetExhausted());
}

} // namespace
