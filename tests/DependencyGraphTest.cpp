//===--- DependencyGraphTest.cpp - API dependency graph tests -------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frozen API dependency graph's contract: a deterministic
/// producer->consumer edge set derived from the same unification kernel
/// the encoder uses. Three layers of checks:
///
///  - shape on a hand-built database (edges, slots, by-ref/generic
///    metadata, dense index, sorted order);
///  - golden stability on bundled crates: the graph frozen inside the
///    shared CrateAnalysis is byte-identical to one rebuilt from a fresh
///    instance with a fresh cache, and agrees with direct CompatCache
///    probes on EVERY (producer, consumer, slot) triple;
///  - the runtime property behind api_coverage: every edge a synthesized
///    program realizes is present in the frozen graph (UnmatchedEdges
///    stays 0 across a campaign slice), so coverage bitsets never
///    silently drop dataflow.
///
//===----------------------------------------------------------------------===//

#include "api/DependencyGraph.h"
#include "core/Session.h"
#include "types/CompatCache.h"
#include "types/Subtyping.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::types;

namespace {

class GraphFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  ApiDatabase Db;

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(parse(I));
    Sig.Output = parse(Out);
    return Db.add(std::move(Sig));
  }

  DependencyGraph build() {
    CompatCache Cache;
    return buildDependencyGraph(Db, Arena, Cache);
  }
};

TEST_F(GraphFixture, EmptyDatabaseYieldsEmptyGraph) {
  DependencyGraph G = build();
  EXPECT_EQ(G.numNodes(), 0u);
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_EQ(G.edgeIndex(0, 0, 0), -1);
}

TEST_F(GraphFixture, ConcreteProducerConsumerChain) {
  ApiId New = addApi("Vec::new", {}, "Vec<i32>");
  ApiId Borrow = addApi("borrow", {"Vec<i32>"}, "&Vec<i32>");
  ApiId Len = addApi("Vec::len", {"&Vec<i32>"}, "usize");
  DependencyGraph G = build();
  EXPECT_EQ(G.numNodes(), 3u);
  // The unifier does not auto-borrow: Vec<i32> reaches the &Vec<i32>
  // slot only through the borrow node, exactly like the synthesizer's
  // builtin::borrow statements.
  EXPECT_EQ(G.edgeIndex(New, Len, 0), -1);
  int ToBorrow = G.edgeIndex(New, Borrow, 0);
  int ToLen = G.edgeIndex(Borrow, Len, 0);
  ASSERT_GE(ToBorrow, 0);
  ASSERT_GE(ToLen, 0);
  const DependencyEdge &E = G.edges()[static_cast<size_t>(ToLen)];
  EXPECT_EQ(E.Producer, Borrow);
  EXPECT_EQ(E.Consumer, Len);
  EXPECT_EQ(E.Slot, 0);
  EXPECT_TRUE(E.ByRef);
  EXPECT_FALSE(E.Generic);
  EXPECT_FALSE(G.edges()[static_cast<size_t>(ToBorrow)].ByRef);
  EXPECT_EQ(G.edgeIndex(Len, New, 0), -1);
}

TEST_F(GraphFixture, GenericEdgesAreFlagged) {
  ApiId New = addApi("Vec::new", {}, "Vec<T>");
  ApiId BorrowMut = addApi("borrow_mut", {"T"}, "&mut T");
  ApiId Push = addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
  DependencyGraph G = build();
  // Vec<T> feeds Push's type-variable slot directly and its &mut slot
  // only through borrow_mut; both edges are generic.
  EXPECT_EQ(G.edgeIndex(New, Push, 0), -1);
  int Slot1 = G.edgeIndex(New, Push, 1);
  int MutSlot0 = G.edgeIndex(BorrowMut, Push, 0);
  ASSERT_GE(Slot1, 0);
  ASSERT_GE(MutSlot0, 0);
  EXPECT_FALSE(G.edges()[static_cast<size_t>(Slot1)].ByRef);
  EXPECT_TRUE(G.edges()[static_cast<size_t>(Slot1)].Generic);
  EXPECT_TRUE(G.edges()[static_cast<size_t>(MutSlot0)].ByRef);
  EXPECT_TRUE(G.edges()[static_cast<size_t>(MutSlot0)].Generic);
}

TEST_F(GraphFixture, EdgesAreSortedAndDenselyIndexed) {
  addApi("a", {}, "i32");
  addApi("b", {"i32", "i32"}, "i32");
  addApi("c", {"i32"}, "u8");
  DependencyGraph G = build();
  const std::vector<DependencyEdge> &Edges = G.edges();
  ASSERT_GT(Edges.size(), 1u);
  for (size_t I = 0; I + 1 < Edges.size(); ++I) {
    const DependencyEdge &L = Edges[I];
    const DependencyEdge &R = Edges[I + 1];
    bool Less = L.Producer < R.Producer ||
                (L.Producer == R.Producer &&
                 (L.Consumer < R.Consumer ||
                  (L.Consumer == R.Consumer && L.Slot < R.Slot)));
    EXPECT_TRUE(Less) << "edges out of order at " << I;
  }
  for (size_t I = 0; I < Edges.size(); ++I)
    EXPECT_EQ(G.edgeIndex(Edges[I].Producer, Edges[I].Consumer,
                          Edges[I].Slot),
              static_cast<int>(I));
}

TEST_F(GraphFixture, BitsetLookupAgreesWithEdgeIndex) {
  // The encoder's O(1) probe path: hasEdge must answer exactly what the
  // binary-searched edge list answers, for every triple.
  ApiId New = addApi("Vec::new", {}, "Vec<T>");
  ApiId BorrowMut = addApi("borrow_mut", {"T"}, "&mut T");
  ApiId Push = addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
  ApiId Lone = addApi("lone", {"u8"}, "String");
  (void)New;
  (void)BorrowMut;
  (void)Lone;
  DependencyGraph G = build();
  for (size_t A = 0; A < Db.size(); ++A)
    for (size_t B = 0; B < Db.size(); ++B)
      for (size_t J = 0; J < Db.get(static_cast<ApiId>(B)).Inputs.size();
           ++J)
        EXPECT_EQ(G.hasEdge(static_cast<ApiId>(A), static_cast<ApiId>(B),
                            static_cast<int>(J)),
                  G.edgeIndex(static_cast<ApiId>(A), static_cast<ApiId>(B),
                              static_cast<int>(J)) >= 0)
            << A << " -> " << B << "#" << J;
  // Dead-API pass support: a slot no output can feed reports no
  // producer, a fed slot reports at least one.
  EXPECT_FALSE(G.slotHasProducer(Lone, 0));
  EXPECT_TRUE(G.slotHasProducer(Push, 0));
  EXPECT_TRUE(G.slotHasProducer(Push, 1));
}

//===----------------------------------------------------------------------===//
// Golden stability on bundled crates.
//===----------------------------------------------------------------------===//

/// The graph frozen inside the shared per-crate analysis must be
/// byte-identical to one rebuilt from scratch: same instance-independent
/// rename discipline, same kernel, no dependence on the analysis'
/// cache-warming order.
TEST(DependencyGraphGoldenTest, FrozenGraphMatchesFreshRebuild) {
  Session S;
  for (const char *Name : {"slab", "base16", "smallvec"}) {
    const CrateSpec *Spec = S.find(Name);
    ASSERT_NE(Spec, nullptr) << Name;
    std::shared_ptr<const CrateAnalysis> Analysis = S.analysisFor(*Spec);
    ASSERT_NE(Analysis, nullptr) << Name;
    std::unique_ptr<CrateInstance> Inst = Spec->instantiate();
    CompatCache Fresh;
    DependencyGraph Rebuilt =
        buildDependencyGraph(Inst->Db, Inst->Arena, Fresh);
    EXPECT_EQ(Analysis->graph().describe(Inst->Db),
              Rebuilt.describe(Inst->Db))
        << Name;
    EXPECT_GT(Rebuilt.numEdges(), 0u) << Name;
  }
}

/// Every edge (and every absent edge) agrees with a direct probe of the
/// compatibility kernel on the renamed signatures — the graph is a
/// faithful tabulation, not an approximation.
TEST(DependencyGraphGoldenTest, EveryEdgeAgreesWithDirectProbes) {
  Session S;
  for (const char *Name : {"slab", "base16"}) {
    const CrateSpec *Spec = S.find(Name);
    ASSERT_NE(Spec, nullptr) << Name;
    std::unique_ptr<CrateInstance> Inst = Spec->instantiate();
    CompatCache BuildCache;
    DependencyGraph G =
        buildDependencyGraph(Inst->Db, Inst->Arena, BuildCache);

    const size_t N = Inst->Db.size();
    std::vector<const Type *> RenOut(N, nullptr);
    std::vector<std::vector<const Type *>> RenIn(N);
    for (size_t K = 0; K < N; ++K) {
      const ApiSig &Sig = Inst->Db.get(static_cast<ApiId>(K));
      std::string Suffix = "a" + std::to_string(K);
      RenOut[K] = renameVars(Inst->Arena, Sig.Output, Suffix);
      for (const Type *In : Sig.Inputs)
        RenIn[K].push_back(renameVars(Inst->Arena, In, Suffix));
    }

    CompatCache Probe;
    size_t Edges = 0;
    for (size_t A = 0; A < N; ++A) {
      for (size_t B = 0; B < N; ++B)
        for (size_t J = 0; J < RenIn[B].size(); ++J) {
          bool Unifies = Probe.unifiable2(RenOut[A], RenIn[B][J]);
          int Idx = G.edgeIndex(static_cast<ApiId>(A),
                                static_cast<ApiId>(B),
                                static_cast<int>(J));
          EXPECT_EQ(Idx >= 0, Unifies)
              << Name << ": " << Inst->Db.get(static_cast<ApiId>(A)).Name
              << " -> " << Inst->Db.get(static_cast<ApiId>(B)).Name << "#"
              << J;
          // The O(1) bitset probe the encoder uses must agree too -
          // that agreement is the pruning-soundness invariant
          // (DESIGN.md 5g).
          EXPECT_EQ(G.hasEdge(static_cast<ApiId>(A), static_cast<ApiId>(B),
                              static_cast<int>(J)),
                    Unifies)
              << Name << ": " << Inst->Db.get(static_cast<ApiId>(A)).Name
              << " -> " << Inst->Db.get(static_cast<ApiId>(B)).Name << "#"
              << J;
          Edges += Idx >= 0;
        }
    }
    EXPECT_EQ(Edges, G.numEdges()) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Realized edges are a subset of the frozen graph.
//===----------------------------------------------------------------------===//

/// Property over a small campaign slice: every dataflow edge in every
/// emitted program maps onto a frozen graph edge (after canonicalizing
/// refined APIs back to their polymorphic originals), so UnmatchedEdges
/// — the "graph missed something" diagnostic — stays zero, and marking
/// makes visible progress.
TEST(DependencyGraphGoldenTest, RealizedEdgesAreSubsetOfGraph) {
  Session S;
  RunConfig Config;
  Config.BudgetSeconds = 30;
  Config.SnapshotInterval = 10;
  for (const char *Name : {"slab", "base16", "smallvec"}) {
    for (uint64_t Seed : {2021u, 2022u}) {
      Config.Seed = Seed;
      RunResult R = S.runOne(Name, Config);
      ASSERT_TRUE(R.Supported) << Name;
      const coverage::ApiCoverageData &D = R.ApiCoverage;
      EXPECT_EQ(D.UnmatchedEdges, 0u) << Name << " seed " << Seed;
      EXPECT_GT(D.NodesTotal, 0u) << Name;
      EXPECT_GT(D.EdgesTotal, 0u) << Name;
      EXPECT_GT(D.nodesCovered(), 0u) << Name << " seed " << Seed;
      EXPECT_GT(D.edgesCovered(), 0u) << Name << " seed " << Seed;
      EXPECT_LE(D.edgesCovered(), D.EdgesTotal) << Name;
      EXPECT_LE(D.nodesCovered(), D.NodesTotal) << Name;
    }
  }
}

/// Disabling tracking zeroes the section without touching the rest of
/// the run.
TEST(DependencyGraphGoldenTest, TrackingCanBeDisabled) {
  Session S;
  RunConfig Config;
  Config.BudgetSeconds = 30;
  Config.TrackApiCoverage = false;
  RunResult R = S.runOne("slab", Config);
  ASSERT_TRUE(R.Supported);
  EXPECT_TRUE(R.ApiCoverage.empty());
  EXPECT_EQ(R.ApiCoverage.NodesTotal, 0u);
  EXPECT_GT(R.Synthesized, 0u);
}

} // namespace
