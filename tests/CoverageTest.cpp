//===--- CoverageTest.cpp - Tests for the coverage substrate --------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "coverage/CoverageMap.h"

#include <gtest/gtest.h>

using namespace syrust::coverage;

namespace {

TEST(CoverageTest, StartsAtZero) {
  CoverageMap M(10, 20, 4, 8);
  CoverageNumbers N = M.numbers();
  EXPECT_DOUBLE_EQ(N.ComponentLine, 0);
  EXPECT_DOUBLE_EQ(N.LibraryLine, 0);
  EXPECT_DOUBLE_EQ(N.ComponentBranch, 0);
  EXPECT_DOUBLE_EQ(N.LibraryBranch, 0);
}

TEST(CoverageTest, ComponentAndLibraryRatios) {
  CoverageMap M(10, 20, 4, 8);
  M.coverLines(0, 5); // Half the component, quarter of the library.
  CoverageNumbers N = M.numbers();
  EXPECT_DOUBLE_EQ(N.ComponentLine, 50.0);
  EXPECT_DOUBLE_EQ(N.LibraryLine, 25.0);
}

TEST(CoverageTest, LinesOutsideComponentCountOnlyForLibrary) {
  CoverageMap M(10, 20, 4, 8);
  M.coverLines(10, 20);
  CoverageNumbers N = M.numbers();
  EXPECT_DOUBLE_EQ(N.ComponentLine, 0.0);
  EXPECT_DOUBLE_EQ(N.LibraryLine, 50.0);
}

TEST(CoverageTest, BranchArmsCountSeparately) {
  CoverageMap M(10, 20, 4, 8);
  M.coverBranch(0, true);
  EXPECT_DOUBLE_EQ(M.numbers().ComponentBranch, 100.0 / 8);
  M.coverBranch(0, false);
  EXPECT_DOUBLE_EQ(M.numbers().ComponentBranch, 2 * 100.0 / 8);
  // Re-covering the same arm changes nothing.
  M.coverBranch(0, true);
  EXPECT_DOUBLE_EQ(M.numbers().ComponentBranch, 2 * 100.0 / 8);
}

TEST(CoverageTest, OutOfRangeClamped) {
  CoverageMap M(4, 6, 1, 2);
  M.coverLines(-5, 100);
  EXPECT_DOUBLE_EQ(M.numbers().LibraryLine, 100.0);
  M.coverBranch(99, true); // Silently ignored.
  EXPECT_DOUBLE_EQ(M.numbers().LibraryBranch, 0.0);
}

TEST(CoverageTest, SnapshotsAndSaturation) {
  CoverageMap M(10, 10, 1, 1);
  M.coverLines(0, 2);
  M.snapshot(100);
  M.coverLines(0, 8);
  M.snapshot(200);
  M.snapshot(300); // No change after 200.
  EXPECT_EQ(M.snapshots().size(), 3u);
  EXPECT_DOUBLE_EQ(M.saturationTime(), 200);
}

TEST(CoverageTest, SaturationWithNoSnapshotsIsMinusOne) {
  CoverageMap M(10, 10, 1, 1);
  EXPECT_DOUBLE_EQ(M.saturationTime(), -1);
}

} // namespace
