//===--- CoverageTest.cpp - Tests for the coverage substrate --------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "coverage/ApiPairCoverage.h"
#include "coverage/CoverageMap.h"
#include "types/CompatCache.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::coverage;
using namespace syrust::program;
using namespace syrust::types;

namespace {

TEST(CoverageTest, StartsAtZero) {
  CoverageMap M(10, 20, 4, 8);
  CoverageNumbers N = M.numbers();
  EXPECT_DOUBLE_EQ(N.ComponentLine, 0);
  EXPECT_DOUBLE_EQ(N.LibraryLine, 0);
  EXPECT_DOUBLE_EQ(N.ComponentBranch, 0);
  EXPECT_DOUBLE_EQ(N.LibraryBranch, 0);
}

TEST(CoverageTest, ComponentAndLibraryRatios) {
  CoverageMap M(10, 20, 4, 8);
  M.coverLines(0, 5); // Half the component, quarter of the library.
  CoverageNumbers N = M.numbers();
  EXPECT_DOUBLE_EQ(N.ComponentLine, 50.0);
  EXPECT_DOUBLE_EQ(N.LibraryLine, 25.0);
}

TEST(CoverageTest, LinesOutsideComponentCountOnlyForLibrary) {
  CoverageMap M(10, 20, 4, 8);
  M.coverLines(10, 20);
  CoverageNumbers N = M.numbers();
  EXPECT_DOUBLE_EQ(N.ComponentLine, 0.0);
  EXPECT_DOUBLE_EQ(N.LibraryLine, 50.0);
}

TEST(CoverageTest, BranchArmsCountSeparately) {
  CoverageMap M(10, 20, 4, 8);
  M.coverBranch(0, true);
  EXPECT_DOUBLE_EQ(M.numbers().ComponentBranch, 100.0 / 8);
  M.coverBranch(0, false);
  EXPECT_DOUBLE_EQ(M.numbers().ComponentBranch, 2 * 100.0 / 8);
  // Re-covering the same arm changes nothing.
  M.coverBranch(0, true);
  EXPECT_DOUBLE_EQ(M.numbers().ComponentBranch, 2 * 100.0 / 8);
}

TEST(CoverageTest, OutOfRangeClamped) {
  CoverageMap M(4, 6, 1, 2);
  M.coverLines(-5, 100);
  EXPECT_DOUBLE_EQ(M.numbers().LibraryLine, 100.0);
  M.coverBranch(99, true); // Silently ignored.
  EXPECT_DOUBLE_EQ(M.numbers().LibraryBranch, 0.0);
}

TEST(CoverageTest, SnapshotsAndSaturation) {
  CoverageMap M(10, 10, 1, 1);
  M.coverLines(0, 2);
  M.snapshot(100);
  M.coverLines(0, 8);
  M.snapshot(200);
  M.snapshot(300); // No change after 200.
  EXPECT_EQ(M.snapshots().size(), 3u);
  EXPECT_DOUBLE_EQ(M.saturationTime(), 200);
}

TEST(CoverageTest, SaturationWithNoSnapshotsIsMinusOne) {
  CoverageMap M(10, 10, 1, 1);
  EXPECT_DOUBLE_EQ(M.saturationTime(), -1);
}

//===----------------------------------------------------------------------===//
// ApiPairCoverage: marking, merge, JSON, saturation.
//===----------------------------------------------------------------------===//

/// A three-API database whose dependency graph is small enough to reason
/// about by hand: Vec::new produces, Vec::push consumes twice (once
/// by-ref, once through its type variable), Vec::len is concrete.
class ApiCoverageFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  ApiDatabase Db;
  ApiId New, Push, Len;

  void SetUp() override {
    New = addApi("Vec::new", {}, "Vec<T>");
    Push = addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
    Len = addApi("Vec::len", {"&Vec<i32>"}, "usize");
  }

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out, ApiId RefinedFrom = ApiIdInvalid) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(parse(I));
    Sig.Output = parse(Out);
    Sig.RefinedFrom = RefinedFrom;
    return Db.add(std::move(Sig));
  }

  api::DependencyGraph build() {
    CompatCache Cache;
    return buildDependencyGraph(Db, Arena, Cache);
  }

  /// `let v1 = Vec::new(); Vec::push(m, v1)` over one template input m —
  /// the fresh Vec flows into Push's type-variable slot, realizing
  /// exactly the (New, Push, 1) edge (the &mut slot takes the input).
  Program newThenPush(ApiId PushId) {
    Program P;
    P.Inputs.push_back({"m", parse("&mut Vec<i32>")});
    Stmt S0;
    S0.Api = New;
    S0.Out = 1;
    Stmt S1;
    S1.Api = PushId;
    S1.Args = {0, 1};
    S1.Out = 2;
    P.Stmts = {S0, S1};
    return P;
  }
};

TEST_F(ApiCoverageFixture, MarkProgramWalksDataflow) {
  api::DependencyGraph G = build();
  ApiPairCoverage Cov(G);
  ApiPairCoverage::MarkDelta Delta = Cov.markProgram(newThenPush(Push), Db);
  EXPECT_EQ(Delta.NewNodes, 2u);
  EXPECT_EQ(Delta.NewEdges, 1u);
  EXPECT_EQ(Delta.Unmatched, 0u);
  ApiCoverageData D = Cov.data();
  EXPECT_EQ(D.NodesTotal, 3u);
  EXPECT_EQ(D.nodesCovered(), 2u);
  EXPECT_EQ(D.edgesCovered(), 1u);
  // Re-marking the same program covers nothing new.
  Delta = Cov.markProgram(newThenPush(Push), Db);
  EXPECT_EQ(Delta.NewNodes, 0u);
  EXPECT_EQ(Delta.NewEdges, 0u);
}

TEST_F(ApiCoverageFixture, RefinedApisCanonicalizeToTheirOriginals) {
  api::DependencyGraph G = build();
  // A monomorphized copy the refinement engine might add mid-run: it is
  // not a graph node, but its RefinedFrom chain leads back to Push.
  ApiId Mono =
      addApi("Vec::push", {"&mut Vec<i32>", "i32"}, "()", Push);
  ApiPairCoverage Cov(G);
  ApiPairCoverage::MarkDelta Delta = Cov.markProgram(newThenPush(Mono), Db);
  EXPECT_EQ(Delta.NewNodes, 2u);
  EXPECT_EQ(Delta.NewEdges, 1u);
  EXPECT_EQ(Delta.Unmatched, 0u);
}

TEST_F(ApiCoverageFixture, EdgesOutsideTheGraphAreCountedNotMarked) {
  api::DependencyGraph G = build();
  // usize does not unify into &mut Vec<T>: wiring Len's output into
  // Push's slot 0 realizes an edge the graph does not have.
  Program P;
  P.Inputs.push_back({"v", parse("&Vec<i32>")});
  Stmt S0;
  S0.Api = Len;
  S0.Args = {0};
  S0.Out = 1;
  Stmt S1;
  S1.Api = Push;
  S1.Args = {1, 0};
  S1.Out = 2;
  P.Stmts = {S0, S1};
  ApiPairCoverage Cov(G);
  ApiPairCoverage::MarkDelta Delta = Cov.markProgram(P, Db);
  EXPECT_EQ(Delta.Unmatched, 1u);
  EXPECT_EQ(Cov.data().UnmatchedEdges, 1u);
}

TEST_F(ApiCoverageFixture, SnapshotsYieldSaturation) {
  api::DependencyGraph G = build();
  ApiPairCoverage Cov(G);
  EXPECT_DOUBLE_EQ(Cov.data().SaturationSeconds, -1);
  Cov.snapshot(10);
  Cov.markProgram(newThenPush(Push), Db);
  Cov.snapshot(20);
  Cov.snapshot(30); // No change after 20.
  ApiCoverageData D = Cov.data();
  ASSERT_EQ(D.Snaps.size(), 3u);
  EXPECT_DOUBLE_EQ(D.SaturationSeconds, 20);
  EXPECT_EQ(D.Snaps[1].EdgesCovered, 1u);
}

TEST_F(ApiCoverageFixture, JsonRoundTrips) {
  api::DependencyGraph G = build();
  ApiPairCoverage Cov(G);
  Cov.markProgram(newThenPush(Push), Db);
  Cov.snapshot(15);
  ApiCoverageData D = Cov.data();
  ApiCoverageData Back;
  std::string Err;
  ASSERT_TRUE(apiCoverageFromJson(apiCoverageToJson(D), Back, Err)) << Err;
  EXPECT_EQ(Back.NodesTotal, D.NodesTotal);
  EXPECT_EQ(Back.EdgesTotal, D.EdgesTotal);
  EXPECT_EQ(Back.NodeBits, D.NodeBits);
  EXPECT_EQ(Back.EdgeBits, D.EdgeBits);
  EXPECT_EQ(Back.UnmatchedEdges, D.UnmatchedEdges);
  ASSERT_EQ(Back.Snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(Back.Snaps[0].AtSeconds, 15);
  EXPECT_DOUBLE_EQ(Back.SaturationSeconds, D.SaturationSeconds);

  ApiCoverageData Bad;
  EXPECT_FALSE(apiCoverageFromJson(json::Value(), Bad, Err));
}

TEST_F(ApiCoverageFixture, MergeOrsBitsAndDropsSnapshots) {
  api::DependencyGraph G = build();
  ApiPairCoverage CovA(G), CovB(G);
  CovA.markProgram(newThenPush(Push), Db);
  CovA.snapshot(10);
  Program JustLen;
  JustLen.Inputs.push_back({"v", parse("&Vec<i32>")});
  Stmt S0;
  S0.Api = Len;
  S0.Args = {0};
  S0.Out = 1;
  JustLen.Stmts = {S0};
  CovB.markProgram(JustLen, Db);

  ApiCoverageData A = CovA.data(), B = CovB.data();
  ApiCoverageData Merged = A;
  Merged.mergeFrom(B);
  EXPECT_EQ(Merged.nodesCovered(), 3u); // New, Push from A; Len from B.
  EXPECT_EQ(Merged.edgesCovered(), 1u);
  // Only commutative state survives a merge.
  EXPECT_TRUE(Merged.Snaps.empty());
  EXPECT_DOUBLE_EQ(Merged.SaturationSeconds, -1);

  // Merge commutes on the bits.
  ApiCoverageData Flipped = B;
  Flipped.mergeFrom(A);
  EXPECT_EQ(Flipped.NodeBits, Merged.NodeBits);
  EXPECT_EQ(Flipped.EdgeBits, Merged.EdgeBits);

  // Merging into an empty document adopts the other side.
  ApiCoverageData Empty;
  Empty.mergeFrom(A);
  EXPECT_EQ(Empty.NodesTotal, A.NodesTotal);
  EXPECT_EQ(Empty.NodeBits, A.NodeBits);
  // And merging an empty document is a no-op.
  ApiCoverageData Copy = A;
  Copy.mergeFrom(ApiCoverageData());
  EXPECT_EQ(Copy.NodeBits, A.NodeBits);
}

TEST_F(ApiCoverageFixture, MergeConflictIsReportedNotSilent) {
  api::DependencyGraph G = build();
  ApiPairCoverage Cov(G);
  Cov.markProgram(newThenPush(Push), Db);
  ApiCoverageData A = Cov.data();

  // Clean merges report no conflict: empty other side, empty this side,
  // and matching totals.
  ApiCoverageData Target = A;
  EXPECT_FALSE(Target.mergeFrom(ApiCoverageData()));
  ApiCoverageData Adopt;
  EXPECT_FALSE(Adopt.mergeFrom(A));
  EXPECT_FALSE(Target.mergeFrom(A));

  // Two non-empty documents with different totals is a genuine
  // conflict: the smaller side's covered bits are discarded, and the
  // regression being pinned is that this used to happen silently.
  ApiCoverageData Other;
  Other.NodesTotal = A.NodesTotal + 1;
  Other.EdgesTotal = A.EdgesTotal + 1;
  Other.NodeBits.assign((Other.NodesTotal + 7) / 8, 0);
  Other.EdgeBits.assign((Other.EdgesTotal + 7) / 8, 0);
  Other.NodeBits[0] = 1;
  ApiCoverageData Bigger = A;
  EXPECT_TRUE(Bigger.mergeFrom(Other));
  EXPECT_EQ(Bigger.EdgesTotal, Other.EdgesTotal); // Larger graph won.
  ApiCoverageData Smaller = Other;
  EXPECT_TRUE(Smaller.mergeFrom(A));
  EXPECT_EQ(Smaller.EdgesTotal, Other.EdgesTotal); // Kept, A discarded.
  EXPECT_EQ(Smaller.UnmatchedEdges, A.UnmatchedEdges + Other.UnmatchedEdges);
}

TEST_F(ApiCoverageFixture, ZeroCoverageRunKeepsSaturationSentinel) {
  api::DependencyGraph G = build();
  ApiPairCoverage Cov(G);
  // Snapshots exist but nothing was ever covered: saturation must stay
  // the -1 sentinel. The regression being pinned: data() used to report
  // the first snapshot's timestamp as a real saturation instant.
  Cov.snapshot(10);
  Cov.snapshot(20);
  ApiCoverageData D = Cov.data();
  ASSERT_EQ(D.Snaps.size(), 2u);
  EXPECT_EQ(D.edgesCovered(), 0u);
  EXPECT_DOUBLE_EQ(D.SaturationSeconds, -1);

  // And the sentinel survives the serialize -> parse round trip.
  ApiCoverageData Back;
  std::string Err;
  ASSERT_TRUE(apiCoverageFromJson(apiCoverageToJson(D), Back, Err)) << Err;
  EXPECT_DOUBLE_EQ(Back.SaturationSeconds, -1);
}

TEST_F(ApiCoverageFixture, SentinelSurvivesStandaloneCoverageDocument) {
  api::DependencyGraph G = build();
  ApiPairCoverage Cov(G);
  Cov.snapshot(10); // Zero coverage: saturation is the -1 sentinel.
  ApiCoverageData D = Cov.data();
  ASSERT_DOUBLE_EQ(D.SaturationSeconds, -1);

  // kind:"coverage" document: serialize, re-parse the dumped text, and
  // pull the entry back out - the sentinel must never be revived as a
  // real timestamp.
  json::Value Doc = coverageDocumentToJson({{"vecdeque", D}});
  json::ParseResult P = json::parse(Doc.dump());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &Entry = P.Val.get("crates").at(0);
  EXPECT_EQ(Entry.get("crate").asString(), "vecdeque");
  ApiCoverageData Back;
  std::string Err;
  ASSERT_TRUE(
      apiCoverageFromJson(Entry.get("api_coverage"), Back, Err))
      << Err;
  EXPECT_DOUBLE_EQ(Back.SaturationSeconds, -1);

  // Merging parsed documents keeps the sentinel too (merge drops all
  // per-run timing state).
  ApiCoverageData Merged;
  Merged.mergeFrom(Back);
  EXPECT_DOUBLE_EQ(Merged.SaturationSeconds, -1);
}

} // namespace
