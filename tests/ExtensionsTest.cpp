//===--- ExtensionsTest.cpp - Tests for the Section 7.4 extensions --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BugMinimizer.h"
#include "core/SyRustDriver.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::program;

namespace {

//===----------------------------------------------------------------------===//
// Bug minimization
//===----------------------------------------------------------------------===//

TEST(MinimizerTest, ShrinksPaddedLeakProgramToOneLine) {
  auto Inst = findCrate("crossbeam-queue")->instantiate();
  api::ApiId Poly = api::ApiIdInvalid, Len = api::ApiIdInvalid;
  for (size_t I = 0; I < Inst->Db.size(); ++I) {
    const auto &Sig = Inst->Db.get(static_cast<api::ApiId>(I));
    if (Sig.Name == "ArrayQueue::new")
      Poly = static_cast<api::ApiId>(I);
    if (Sig.Name == "queue::usable_capacity")
      Len = static_cast<api::ApiId>(I);
  }
  ASSERT_NE(Poly, api::ApiIdInvalid);
  ASSERT_NE(Len, api::ApiIdInvalid);

  // Bug programs always come from checker-accepted code, i.e. through a
  // refinement-concretized constructor; build that concrete variant here.
  const auto *QTy =
      Inst->Arena.named("ArrayQueue", {Inst->Arena.prim("usize")});
  api::ApiSig Concrete = Inst->Db.get(Poly);
  Concrete.Inputs = {Inst->Arena.prim("usize")};
  Concrete.Output = QTy;
  Concrete.Bounds.clear();
  Concrete.RefinedFrom = Poly;
  api::ApiId New = Inst->Db.add(std::move(Concrete));

  // A padded program: two irrelevant lines around the leaking constructor.
  VarId Base = static_cast<VarId>(Inst->Inputs.size());
  Program P;
  P.Inputs = Inst->Inputs;
  P.Stmts.push_back(Stmt{Len, {0}, Base, Inst->Arena.prim("usize")});
  P.Stmts.push_back(Stmt{New, {0}, Base + 1, QTy});
  P.Stmts.push_back(
      Stmt{Len, {Base}, Base + 2, Inst->Arena.prim("usize")});

  MinimizedBug Min =
      minimizeBugProgram(*Inst, P, UbKind::MemoryLeak);
  EXPECT_EQ(Min.Lines, 1);
  ASSERT_EQ(Min.Program.Stmts.size(), 1u);
  EXPECT_EQ(Min.Program.Stmts[0].Api, New);
}

TEST(MinimizerTest, KeepsLoadBearingLines) {
  // The bitvec chain is already minimal: nothing can be removed.
  RunConfig C;
  C.BudgetSeconds = 8000;
  C.StopOnFirstBug = true;
  C.MinimizeBugs = true;
  RunResult R = SyRustDriver(*findCrate("bitvec"), C).run();
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.MinimizedLines, 5);
}

TEST(MinimizerTest, DriverReportsMinimizedLeak) {
  RunConfig C;
  C.BudgetSeconds = 60;
  C.StopOnFirstBug = true;
  C.MinimizeBugs = true;
  RunResult R = SyRustDriver(*findCrate("crossbeam-queue"), C).run();
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.MinimizedLines, 1);
  EXPECT_FALSE(R.MinimizedProgram.empty());
}

//===----------------------------------------------------------------------===//
// Length interleaving (7.4.3)
//===----------------------------------------------------------------------===//

TEST(InterleaveTest, FindsShallowBugUnderBothSchedules) {
  // Both schedules must find crossbeam's 3-line chain. (Empirically,
  // round-robin scheduling does NOT pay off on these models - the bugs
  // sit either early in Algorithm 1's order or deep within their own
  // length class - which is exactly the kind of result the paper's
  // Section 7.4.3 asks about; the ext_scheduling_mutation bench reports
  // the comparison.)
  RunConfig Plain;
  Plain.BudgetSeconds = 8000;
  Plain.StopOnFirstBug = true;
  RunConfig Inter = Plain;
  Inter.InterleaveLengths = true;
  RunResult RPlain = SyRustDriver(*findCrate("crossbeam"), Plain).run();
  RunResult RInter = SyRustDriver(*findCrate("crossbeam"), Inter).run();
  EXPECT_TRUE(RPlain.BugFound);
  EXPECT_TRUE(RInter.BugFound);
}

TEST(InterleaveTest, StillFindsDeepBug) {
  // Interleaving trades depth-within-a-length for breadth-across-lengths;
  // it must still find bitvec's deep bug, even if later.
  RunConfig Inter;
  Inter.BudgetSeconds = 40000;
  Inter.StopOnFirstBug = true;
  Inter.InterleaveLengths = true;
  RunResult R = SyRustDriver(*findCrate("bitvec"), Inter).run();
  EXPECT_TRUE(R.BugFound);
}

TEST(InterleaveTest, EnumeratesSameProgramSet) {
  // On an exhaustible space, interleaved and sequential enumeration must
  // produce the same number of distinct programs (different order, no
  // losses, no duplicates).
  RunConfig A;
  A.BudgetSeconds = 1e9;
  A.MaxTests = 500000;
  RunConfig B = A;
  B.InterleaveLengths = true;
  RunResult RA = SyRustDriver(*findCrate("hcid"), A).run();
  RunResult RB = SyRustDriver(*findCrate("hcid"), B).run();
  ASSERT_TRUE(RA.SpaceExhausted);
  ASSERT_TRUE(RB.SpaceExhausted);
  EXPECT_EQ(RA.Synthesized, RB.Synthesized);
}

//===----------------------------------------------------------------------===//
// Input mutation (7.4.2)
//===----------------------------------------------------------------------===//

TEST(MutationTest, RaisesBranchCoverage) {
  RunConfig Fixed;
  Fixed.BudgetSeconds = 400;
  RunConfig Mutated = Fixed;
  Mutated.MutateInputs = true;
  RunResult RFixed = SyRustDriver(*findCrate("bstr"), Fixed).run();
  RunResult RMut = SyRustDriver(*findCrate("bstr"), Mutated).run();
  EXPECT_GE(RMut.Coverage.ComponentBranch,
            RFixed.Coverage.ComponentBranch);
}

TEST(MutationTest, StillDeterministic) {
  RunConfig C;
  C.BudgetSeconds = 60;
  C.MutateInputs = true;
  RunResult A = SyRustDriver(*findCrate("slab"), C).run();
  RunResult B = SyRustDriver(*findCrate("slab"), C).run();
  EXPECT_EQ(A.Synthesized, B.Synthesized);
  EXPECT_EQ(A.Rejected, B.Rejected);
  EXPECT_EQ(A.Coverage.ComponentBranch, B.Coverage.ComponentBranch);
}

} // namespace
