//===--- CompatTest.cpp - Memoized compat kernel + shared analysis --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the two memoization layers end to end: the CompatCache memo
/// tables (answers identical to direct computation, hit/miss accounting,
/// read-only base chaining), the copy-on-write overlay TypeArena and
/// CrateInstance (pointer identity with the base, isolation between
/// workers), and the driver-level guarantee that the --no-compat-cache
/// escape hatch changes throughput only - the emitted program stream is
/// byte-identical with the cache on or off.
///
//===----------------------------------------------------------------------===//

#include "core/CrateAnalysis.h"
#include "core/Session.h"
#include "types/CompatCache.h"
#include "types/Subtyping.h"
#include "types/Type.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::types;

namespace {

class CompatCacheFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T", "U", "K", "V"}};

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << "parse failed: " << Parser.error();
    return T;
  }

  std::vector<const Type *> sampleTypes() {
    return {parse("i32"),           parse("String"),
            parse("Vec<T>"),        parse("Vec<String>"),
            parse("&mut Vec<T>"),   parse("&mut Vec<String>"),
            parse("&String"),       parse("&mut String"),
            parse("Option<T>"),     parse("Option<i32>"),
            parse("(T, U)"),        parse("(String, i32)"),
            parse("HashMap<K, V>"), parse("T")};
  }
};

TEST_F(CompatCacheFixture, AnswersMatchDirectComputation) {
  CompatCache Cache;
  std::vector<const Type *> Types = sampleTypes();
  for (const Type *A : Types)
    for (const Type *B : Types) {
      Substitution SU;
      EXPECT_EQ(Cache.unifiable2(A, B), unifiable(A, B, SU))
          << A->str() << " ~ " << B->str();
      Substitution SS;
      EXPECT_EQ(Cache.subtype2(A, B), isSubtype(A, B, SS))
          << A->str() << " <= " << B->str();
    }
  // Every answer again, this time from the memo tables.
  const CompatCache::Stats After = Cache.stats();
  for (const Type *A : Types)
    for (const Type *B : Types) {
      Substitution SU;
      EXPECT_EQ(Cache.unifiable2(A, B), unifiable(A, B, SU));
      Substitution SS;
      EXPECT_EQ(Cache.subtype2(A, B), isSubtype(A, B, SS));
    }
  EXPECT_EQ(Cache.stats().Misses, After.Misses);
  EXPECT_EQ(Cache.stats().Hits,
            After.Hits + 2 * Types.size() * Types.size());
}

TEST_F(CompatCacheFixture, JointProbeSharesOneSubstitution) {
  CompatCache Cache;
  // T binds to String through slot 1, so slot 2 cannot take i32: the
  // joint probe must fail even though each slot unifies in isolation.
  const Type *P = parse("T");
  EXPECT_TRUE(Cache.unifiable2(parse("String"), P));
  EXPECT_TRUE(Cache.unifiable2(parse("i32"), P));
  EXPECT_FALSE(
      Cache.unifiableJoint(parse("String"), P, parse("i32"), P));
  EXPECT_TRUE(
      Cache.unifiableJoint(parse("String"), P, parse("String"), P));
  // Direct equivalent for the failing case.
  Substitution Joint;
  EXPECT_TRUE(unifiable(parse("String"), P, Joint));
  EXPECT_FALSE(unifiable(parse("i32"), P, Joint));
  // Repeats are hits.
  uint64_t Misses = Cache.stats().Misses;
  EXPECT_FALSE(
      Cache.unifiableJoint(parse("String"), P, parse("i32"), P));
  EXPECT_EQ(Cache.stats().Misses, Misses);
}

TEST_F(CompatCacheFixture, ChainedCacheHitsBaseReadOnly) {
  CompatCache Base;
  const Type *A = parse("Vec<String>");
  const Type *P = parse("Vec<T>");
  EXPECT_TRUE(Base.unifiable2(A, P));
  const size_t BaseSize = Base.size();
  const CompatCache::Stats BaseStats = Base.stats();

  CompatCache Derived(&Base);
  // Answered from the base chain: counted as a BaseHit on the derived
  // cache, no stat or entry change on the base.
  EXPECT_TRUE(Derived.unifiable2(A, P));
  EXPECT_EQ(Derived.stats().BaseHits, 1u);
  EXPECT_EQ(Derived.stats().Hits, 0u);
  EXPECT_EQ(Derived.stats().Misses, 0u);
  EXPECT_EQ(Derived.size(), 0u);
  EXPECT_EQ(Base.size(), BaseSize);
  EXPECT_EQ(Base.stats().Hits, BaseStats.Hits);
  EXPECT_EQ(Base.stats().Misses, BaseStats.Misses);

  // A pair the base has never seen computes and stores locally.
  EXPECT_TRUE(Derived.unifiable2(parse("Option<i32>"), parse("Option<T>")));
  EXPECT_EQ(Derived.stats().Misses, 1u);
  EXPECT_EQ(Derived.size(), 1u);
  EXPECT_EQ(Base.size(), BaseSize);

  // Once stored locally, repeats are local hits, not base hits.
  EXPECT_TRUE(Derived.unifiable2(parse("Option<i32>"), parse("Option<T>")));
  EXPECT_EQ(Derived.stats().Hits, 1u);
  EXPECT_EQ(Derived.stats().BaseHits, 1u);
}

//===----------------------------------------------------------------------===//
// Overlay arena: copy-on-write over a frozen base pool.
//===----------------------------------------------------------------------===//

TEST(OverlayArenaTest, BaseTypesKeepPointerIdentity) {
  TypeArena Base;
  const Type *VecI32 = Base.named("Vec", {Base.prim("i32")});
  const Type *T = Base.typeVar("T");
  const size_t BaseLocal = Base.localSize();

  TypeArena Over(Base, Overlay);
  // Requests for base-interned types resolve to the very same pointers,
  // so substitutions and cache keys built against the base stay valid.
  EXPECT_EQ(Over.named("Vec", {Over.prim("i32")}), VecI32);
  EXPECT_EQ(Over.typeVar("T"), T);
  EXPECT_EQ(Over.localSize(), 0u);

  // New types land in the overlay; the base pool is untouched.
  const Type *Fresh = Over.named("Vec", {Over.named("Fresh")});
  EXPECT_NE(Fresh, nullptr);
  EXPECT_GT(Over.localSize(), 0u);
  EXPECT_EQ(Base.localSize(), BaseLocal);
  EXPECT_EQ(Over.size(), Base.localSize() + Over.localSize());
}

TEST(OverlayArenaTest, VarIndicesContinueAcrossOverlay) {
  TypeArena Base;
  const Type *T = Base.typeVar("T");
  const Type *U = Base.typeVar("U");
  EXPECT_GE(T->varIndex(), 0);
  EXPECT_NE(T->varIndex(), U->varIndex());

  // The overlay resumes the base's index sequence: a fresh var never
  // collides with any base var, so one flat Substitution can span both.
  TypeArena Over(Base, Overlay);
  const Type *V = Over.typeVar("V");
  EXPECT_NE(V->varIndex(), T->varIndex());
  EXPECT_NE(V->varIndex(), U->varIndex());
  EXPECT_EQ(Over.typeVar("T"), T); // base var, base index

  Substitution S;
  EXPECT_TRUE(S.bind(T, Base.prim("i32")));
  EXPECT_TRUE(S.bind(V, Base.prim("u8")));
  EXPECT_EQ(S.lookup(T), Base.prim("i32"));
  EXPECT_EQ(S.lookup(V), Base.prim("u8"));
}

//===----------------------------------------------------------------------===//
// Shared crate analysis: one frozen base, isolated worker overlays.
//===----------------------------------------------------------------------===//

TEST(CrateAnalysisTest, WorkerInstancesAreIsolated) {
  Session S;
  const crates::CrateSpec *Spec = S.find("slab");
  ASSERT_NE(Spec, nullptr);
  std::shared_ptr<const CrateAnalysis> Analysis = S.analysisFor(*Spec);
  ASSERT_NE(Analysis, nullptr);
  EXPECT_GT(Analysis->matrixEntries(), 0u);
  // Session memoizes: same crate, same analysis object.
  EXPECT_EQ(S.analysisFor(*Spec).get(), Analysis.get());

  std::unique_ptr<crates::CrateInstance> W1 =
      Analysis->makeWorkerInstance();
  std::unique_ptr<crates::CrateInstance> W2 =
      Analysis->makeWorkerInstance();
  const size_t BaseApis = Analysis->base().Db.activeIds().size();
  const size_t BaseLocal = Analysis->base().Arena.localSize();

  // A refinement-style mutation in one worker (ban an API, intern a new
  // instantiation) is invisible to the base and to the other worker.
  ASSERT_FALSE(W1->Db.activeIds().empty());
  W1->Db.ban(W1->Db.activeIds().front());
  W1->Arena.named("OnlyInW1");
  EXPECT_EQ(W1->Db.activeIds().size(), BaseApis - 1);
  EXPECT_EQ(W2->Db.activeIds().size(), BaseApis);
  EXPECT_EQ(Analysis->base().Db.activeIds().size(), BaseApis);
  EXPECT_GT(W1->Arena.localSize(), 0u);
  EXPECT_EQ(W2->Arena.localSize(), 0u);
  EXPECT_EQ(Analysis->base().Arena.localSize(), BaseLocal);
}

//===----------------------------------------------------------------------===//
// Driver level: the cache changes throughput, never the program stream.
//===----------------------------------------------------------------------===//

TEST(CompatCacheDriverTest, CacheOnOffEmitIdenticalProgramStreams) {
  Session S;
  for (const char *Crate : {"slab", "bytes"}) {
    RunConfig C;
    C.BudgetSeconds = 30;
    C.SnapshotInterval = 10;
    C.RecordTests = 256;

    RunConfig Off = C;
    Off.UseCompatCache = false;

    RunResult On = S.runOne(Crate, C);
    RunResult NoCache = S.runOne(Crate, Off);

    EXPECT_EQ(On.Synthesized, NoCache.Synthesized) << Crate;
    EXPECT_EQ(On.Rejected, NoCache.Rejected) << Crate;
    EXPECT_EQ(On.Executed, NoCache.Executed) << Crate;
    EXPECT_EQ(On.UbCount, NoCache.UbCount) << Crate;
    ASSERT_EQ(On.Db.records().size(), NoCache.Db.records().size())
        << Crate;
    for (size_t I = 0; I < On.Db.records().size(); ++I) {
      const TestRecord &A = On.Db.records()[I];
      const TestRecord &B = NoCache.Db.records()[I];
      EXPECT_EQ(A.Source, B.Source) << Crate << " record " << I;
      EXPECT_EQ(A.Verdict, B.Verdict) << Crate << " record " << I;
      EXPECT_EQ(A.Hash, B.Hash) << Crate << " record " << I;
    }

    // The cache side actually exercised the memo tables; the no-cache
    // side never touched them.
    EXPECT_GT(On.Synth.CompatHits + On.Synth.CompatBaseHits, 0u)
        << Crate;
    EXPECT_EQ(NoCache.Synth.CompatHits, 0u) << Crate;
    EXPECT_EQ(NoCache.Synth.CompatBaseHits, 0u) << Crate;
    EXPECT_EQ(NoCache.Synth.CompatMisses, 0u) << Crate;
  }
}

} // namespace
