//===--- JsonTest.cpp - Tests for the JSON substrate and diagnostics ------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rustsim/DiagnosticJson.h"
#include "support/Json.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::json;
using namespace syrust::rustsim;
using namespace syrust::types;

namespace {

//===----------------------------------------------------------------------===//
// JSON value / parser
//===----------------------------------------------------------------------===//

TEST(JsonTest, DumpPrimitives) {
  EXPECT_EQ(Value::null().dump(), "null");
  EXPECT_EQ(Value::boolean(true).dump(), "true");
  EXPECT_EQ(Value::integer(-42).dump(), "-42");
  EXPECT_EQ(Value::string("a\"b\n").dump(), "\"a\\\"b\\n\"");
}

TEST(JsonTest, DumpNested) {
  Value Obj = Value::object();
  Obj.set("k", Value::integer(1));
  Value Arr = Value::array();
  Arr.push(Value::string("x"));
  Arr.push(Value::boolean(false));
  Obj.set("list", std::move(Arr));
  EXPECT_EQ(Obj.dump(), "{\"k\":1,\"list\":[\"x\",false]}");
}

TEST(JsonTest, ParseRoundTrip) {
  const char *Doc =
      "{\"a\":1,\"b\":[true,null,\"s\"],\"c\":{\"d\":-2.5}}";
  ParseResult R = parse(Doc);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Val.get("a").asInt(), 1);
  EXPECT_EQ(R.Val.get("b").size(), 3u);
  EXPECT_TRUE(R.Val.get("b").at(1).isNull());
  EXPECT_DOUBLE_EQ(R.Val.get("c").get("d").asDouble(), -2.5);
  // dump-parse-dump is a fixpoint.
  EXPECT_EQ(parse(R.Val.dump()).Val.dump(), R.Val.dump());
}

TEST(JsonTest, ParseWithWhitespace) {
  ParseResult R = parse("  { \"x\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Val.get("x").at(1).asInt(), 2);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  Value V = Value::string("tab\there\nnew\\slash\"quote");
  ParseResult R = parse(V.dump());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Val.asString(), "tab\there\nnew\\slash\"quote");
}

TEST(JsonTest, HostileBytesEscapeToPureAsciiAndRoundTrip) {
  // Control bytes, DEL, and high (non-ASCII) bytes - e.g. UTF-8 in a
  // checker message - must all be \uXXXX-escaped byte-for-byte. Signed
  // char must not sign-extend 0x80..0xff into bogus escapes.
  const std::string Hostile = std::string("a\x01b\x1f") + "\x7f\x80\xff" +
                              "caf\xc3\xa9\"\\\n";
  Value V = Value::string(Hostile);
  std::string Wire = V.dump();
  for (char C : Wire) {
    unsigned char U = static_cast<unsigned char>(C);
    EXPECT_GE(U, 0x20u);
    EXPECT_LT(U, 0x7fu);
  }
  ParseResult R = parse(Wire);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Val.asString(), Hostile);
  // dump-parse-dump is a fixpoint even for hostile bytes.
  EXPECT_EQ(R.Val.dump(), Wire);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(parse("{").Ok);
  EXPECT_FALSE(parse("[1,]").Ok);
  EXPECT_FALSE(parse("{\"a\" 1}").Ok);
  EXPECT_FALSE(parse("\"unterminated").Ok);
  EXPECT_FALSE(parse("12 34").Ok);
  EXPECT_FALSE(parse("").Ok);
}

TEST(JsonTest, MissingKeysAreNull) {
  Value Obj = Value::object();
  EXPECT_TRUE(Obj.get("nope").isNull());
  EXPECT_FALSE(Obj.has("nope"));
}

//===----------------------------------------------------------------------===//
// Diagnostic wire format (the paper's --message-format=json channel)
//===----------------------------------------------------------------------===//

class DiagJsonFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};

  const Type *ty(const char *S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr);
    return T;
  }

  /// Serializes and re-parses; expects success.
  Diagnostic roundTrip(const Diagnostic &D) {
    std::string Wire = diagnosticToJson(D);
    Diagnostic Out;
    std::string Error;
    EXPECT_TRUE(diagnosticFromJson(Wire, Arena, Out, Error))
        << Error << "\n" << Wire;
    return Out;
  }
};

TEST_F(DiagJsonFixture, TraitErrorRoundTrips) {
  Diagnostic D;
  D.Detail = ErrorDetail::TraitBound;
  D.Category = categoryOf(D.Detail);
  D.Line = 3;
  D.Api = 7;
  D.Message = "the trait bound `Msb0: BitStore` is not satisfied";
  D.ActualInputs = {ty("&mut Vec<String>"), ty("String")};
  D.BadTypeVar = "T";
  D.MissingTrait = "BitStore";
  D.BadBinding = ty("Vec<String>");

  Diagnostic Out = roundTrip(D);
  EXPECT_EQ(Out.Detail, D.Detail);
  EXPECT_EQ(Out.Category, D.Category);
  EXPECT_EQ(Out.Line, 3);
  EXPECT_EQ(Out.Api, 7);
  EXPECT_EQ(Out.Message, D.Message);
  // Types re-intern to the SAME pointers (same arena).
  ASSERT_EQ(Out.ActualInputs.size(), 2u);
  EXPECT_EQ(Out.ActualInputs[0], D.ActualInputs[0]);
  EXPECT_EQ(Out.ActualInputs[1], D.ActualInputs[1]);
  EXPECT_EQ(Out.BadBinding, D.BadBinding);
  EXPECT_EQ(Out.BadTypeVar, "T");
  EXPECT_EQ(Out.MissingTrait, "BitStore");
}

TEST_F(DiagJsonFixture, PolymorphismFixRoundTrips) {
  Diagnostic D;
  D.Detail = ErrorDetail::Polymorphism;
  D.Category = categoryOf(D.Detail);
  D.Line = 0;
  D.Api = 2;
  D.Message = "mismatched types: expected `Option<String>`";
  D.ActualInputs = {ty("&mut Vec<String>")};
  D.ExpectedOutput = ty("Option<String>");
  Diagnostic Out = roundTrip(D);
  EXPECT_EQ(Out.ExpectedOutput, D.ExpectedOutput);
  ASSERT_EQ(Out.ActualInputs.size(), 1u);
  EXPECT_EQ(Out.ActualInputs[0], D.ActualInputs[0]);
}

TEST_F(DiagJsonFixture, RenamedTypeVariablesRoundTrip) {
  // Encoder-level context types can carry renamed variables ("T#a5");
  // the wire format must preserve them as variables.
  const Type *Poly =
      Arena.named("Option", {Arena.typeVar("T#a5")});
  Diagnostic D;
  D.Detail = ErrorDetail::Polymorphism;
  D.Category = categoryOf(D.Detail);
  D.ActualInputs = {Poly};
  Diagnostic Out = roundTrip(D);
  ASSERT_EQ(Out.ActualInputs.size(), 1u);
  EXPECT_EQ(Out.ActualInputs[0], Poly);
  EXPECT_FALSE(Out.ActualInputs[0]->isConcrete());
}

TEST_F(DiagJsonFixture, EveryDetailTagRoundTrips) {
  for (ErrorDetail Detail :
       {ErrorDetail::TraitBound, ErrorDetail::Polymorphism,
        ErrorDetail::DefaultTypeParam, ErrorDetail::TypeMismatch,
        ErrorDetail::Ownership, ErrorDetail::Borrowing,
        ErrorDetail::AnonLifetime, ErrorDetail::Arity,
        ErrorDetail::MethodNotFound}) {
    Diagnostic D;
    D.Detail = Detail;
    D.Category = categoryOf(Detail);
    D.Message = "m";
    Diagnostic Out = roundTrip(D);
    EXPECT_EQ(Out.Detail, Detail);
    EXPECT_EQ(Out.Category, categoryOf(Detail));
  }
}

TEST_F(DiagJsonFixture, HostileMessageBytesRoundTrip) {
  // Real compiler messages carry UTF-8 (backticked identifiers can hold
  // any byte); the wire format must stay pure ASCII yet reproduce the
  // message byte-for-byte.
  Diagnostic D;
  D.Detail = ErrorDetail::Ownership;
  D.Category = categoryOf(D.Detail);
  D.Line = 1;
  D.Api = 3;
  D.Message = std::string("use of moved value: `caf\xc3\xa9`\x01\x7f");
  D.BadTypeVar = "\x80T\xff";
  std::string Wire = diagnosticToJson(D);
  for (char C : Wire)
    EXPECT_LT(static_cast<unsigned char>(C), 0x80u);
  Diagnostic Out = roundTrip(D);
  EXPECT_EQ(Out.Message, D.Message);
  EXPECT_EQ(Out.BadTypeVar, D.BadTypeVar);
}

TEST_F(DiagJsonFixture, RejectsForeignRecords) {
  Diagnostic Out;
  std::string Error;
  EXPECT_FALSE(diagnosticFromJson("{\"reason\":\"build-finished\"}",
                                  Arena, Out, Error));
  EXPECT_FALSE(diagnosticFromJson("not json", Arena, Out, Error));
  // Category/detail mismatch is rejected.
  EXPECT_FALSE(diagnosticFromJson(
      "{\"reason\":\"compiler-message\",\"detail\":\"trait\","
      "\"category\":\"Misc\",\"message\":\"m\",\"line\":0,\"api\":0}",
      Arena, Out, Error));
}

} // namespace
