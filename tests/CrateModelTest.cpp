//===--- CrateModelTest.cpp - Tests for the library-model corpus ----------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "crates/CrateRegistry.h"
#include "miri/Interpreter.h"
#include "rustsim/Checker.h"

#include <gtest/gtest.h>

#include <set>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::program;

namespace {

//===----------------------------------------------------------------------===//
// Registry invariants (the Figure 12 inventory)
//===----------------------------------------------------------------------===//

TEST(CrateRegistryTest, ThirtyCratesInFigure12Order) {
  const auto &Crates = allCrates();
  ASSERT_EQ(Crates.size(), 30u);
  EXPECT_EQ(Crates.front().Info.Name, "smallvec");
  EXPECT_EQ(Crates.back().Info.Name, "utf8-width");
  // 15 data-structure crates first, then 15 encodings.
  for (size_t I = 0; I < 15; ++I)
    EXPECT_EQ(Crates[I].Info.Category, "DS") << Crates[I].Info.Name;
  for (size_t I = 15; I < 30; ++I)
    EXPECT_EQ(Crates[I].Info.Category, "EN") << Crates[I].Info.Name;
}

TEST(CrateRegistryTest, NamesAreUniqueAndFindable) {
  std::set<std::string> Names;
  for (const CrateSpec &Spec : allCrates()) {
    EXPECT_TRUE(Names.insert(Spec.Info.Name).second) << Spec.Info.Name;
    EXPECT_EQ(findCrate(Spec.Info.Name), &Spec);
  }
  EXPECT_EQ(findCrate("does-not-exist"), nullptr);
}

TEST(CrateRegistryTest, DownloadsDescendWithinCategory) {
  const auto &Crates = allCrates();
  for (size_t I = 1; I < Crates.size(); ++I) {
    if (Crates[I].Info.Category != Crates[I - 1].Info.Category)
      continue;
    EXPECT_LT(Crates[I].Info.Downloads, Crates[I - 1].Info.Downloads)
        << Crates[I].Info.Name;
  }
}

TEST(CrateRegistryTest, ExactlyTwoExcludedClosureCrates) {
  std::vector<std::string> Excluded;
  for (const CrateSpec &Spec : allCrates())
    if (!Spec.Info.SupportsSynthesis)
      Excluded.push_back(Spec.Info.Name);
  ASSERT_EQ(Excluded.size(), 2u);
  EXPECT_EQ(Excluded[0], "cookie-factory");
  EXPECT_EQ(Excluded[1], "jsonrpc-client-core");
}

TEST(CrateRegistryTest, FourBuggyCratesMatchFigure7) {
  auto Bugs = buggyCrates();
  ASSERT_EQ(Bugs.size(), 4u);
  ASSERT_TRUE(Bugs[0] && Bugs[1] && Bugs[2] && Bugs[3]);
  EXPECT_EQ(Bugs[0]->Info.Name, "crossbeam-queue");
  EXPECT_EQ(Bugs[0]->Bug->MinLines, 1);
  EXPECT_EQ(Bugs[0]->Bug->Kind, UbKind::MemoryLeak);
  EXPECT_EQ(Bugs[1]->Info.Name, "crossbeam");
  EXPECT_EQ(Bugs[1]->Bug->MinLines, 3);
  EXPECT_EQ(Bugs[1]->Bug->Kind, UbKind::DanglingPointer);
  EXPECT_EQ(Bugs[2]->Info.Name, "bitvec");
  EXPECT_EQ(Bugs[2]->Bug->MinLines, 5);
  EXPECT_EQ(Bugs[2]->Bug->Kind, UbKind::UseAfterFree);
  EXPECT_EQ(Bugs[3]->Info.Name, "encoding_rs");
  EXPECT_EQ(Bugs[3]->Bug->MinLines, 4);
  EXPECT_EQ(Bugs[3]->Bug->Kind, UbKind::OutOfBoundsPointer);
}

//===----------------------------------------------------------------------===//
// Every model instantiates into a coherent world
//===----------------------------------------------------------------------===//

class EveryCrateTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EveryCrateTest, InstantiatesCoherently) {
  const CrateSpec &Spec = allCrates()[GetParam()];
  auto Inst = Spec.instantiate();
  if (!Spec.Info.SupportsSynthesis)
    return;

  // Builtins present; at least 8 library APIs; all semantics registered.
  ASSERT_EQ(Inst->Builtins.size(), 3u) << Spec.Info.Name;
  size_t LibApis = 0;
  for (size_t I = 0; I < Inst->Db.size(); ++I) {
    const ApiSig &Sig = Inst->Db.get(static_cast<ApiId>(I));
    if (Sig.Builtin != BuiltinKind::None)
      continue;
    ++LibApis;
    EXPECT_FALSE(Sig.Name.empty());
    ASSERT_NE(Sig.Output, nullptr) << Sig.Name;
    EXPECT_NE(Inst->Registry.lookupApi(Sig.SemanticsKey), nullptr)
        << Spec.Info.Name << "::" << Sig.Name;
  }
  EXPECT_GE(LibApis, 8u) << Spec.Info.Name;

  // Template inputs exist and the init factory produces matching values.
  ASSERT_FALSE(Inst->Inputs.empty()) << Spec.Info.Name;
  AbstractHeap Heap;
  Rng R(1);
  auto Values = Inst->Init(Heap, R);
  EXPECT_EQ(Values.size(), Inst->Inputs.size());

  // Coverage layout sane.
  EXPECT_GT(Inst->ComponentLines, 0);
  EXPECT_GE(Inst->LibraryLines, Inst->ComponentLines);
  EXPECT_GE(Inst->LibraryBranches, Inst->ComponentBranches);
  EXPECT_GE(Inst->MaxLen, 1);

  // Pinned APIs must be valid ids of non-builtin APIs.
  for (ApiId Id : Inst->Pinned) {
    ASSERT_GE(Id, 0);
    ASSERT_LT(static_cast<size_t>(Id), Inst->Db.size());
    EXPECT_EQ(Inst->Db.get(Id).Builtin, BuiltinKind::None);
  }
}

TEST_P(EveryCrateTest, TemplateOnlyProgramIsCleanUnderMiri) {
  // Dropping the template inputs untouched must not be UB for any model
  // (the injected bugs all require API calls).
  const CrateSpec &Spec = allCrates()[GetParam()];
  if (!Spec.Info.SupportsSynthesis)
    return;
  auto Inst = Spec.instantiate();
  Program P;
  P.Inputs = Inst->Inputs;
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  ExecResult Res = Interp.run(P);
  EXPECT_FALSE(Res.UbFound)
      << Spec.Info.Name << ": " << Res.Report.Message;
}

INSTANTIATE_TEST_SUITE_P(AllCrates, EveryCrateTest,
                         ::testing::Range<size_t>(0, 30),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string Name =
                               allCrates()[Info.param].Info.Name;
                           for (char &C : Name)
                             if (C == '-' || C == '_')
                               C = '0';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Hand-written minimal bug triggers (independent of the synthesizer)
//===----------------------------------------------------------------------===//

/// Finds an API id by name; fails the test when missing.
ApiId findApi(const CrateInstance &Inst, const std::string &Name) {
  for (size_t I = 0; I < Inst.Db.size(); ++I)
    if (Inst.Db.get(static_cast<ApiId>(I)).Name == Name)
      return static_cast<ApiId>(I);
  ADD_FAILURE() << "API not found: " << Name;
  return ApiIdInvalid;
}

TEST(BugTriggerTest, CrossbeamQueueLeakInOneLine) {
  auto Inst = findCrate("crossbeam-queue")->instantiate();
  ApiId New = findApi(*Inst, "ArrayQueue::new");
  Program P;
  P.Inputs = Inst->Inputs;
  P.Stmts.push_back(
      Stmt{New, {0}, static_cast<VarId>(Inst->Inputs.size()),
           Inst->Arena.named("ArrayQueue",
                             {Inst->Arena.prim("usize")})});
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  ExecResult Res = Interp.run(P);
  ASSERT_TRUE(Res.UbFound);
  EXPECT_EQ(Res.Report.Kind, UbKind::MemoryLeak);
}

TEST(BugTriggerTest, CrossbeamDanglingPointerInThreeLines) {
  auto Inst = findCrate("crossbeam")->instantiate();
  ApiId New = findApi(*Inst, "Collector::new");
  ApiId Register = findApi(*Inst, "Collector::register");
  VarId Base = static_cast<VarId>(Inst->Inputs.size());
  Program P;
  P.Inputs = Inst->Inputs;
  const auto *CollectorTy = Inst->Arena.named("Collector");
  P.Stmts.push_back(Stmt{New, {}, Base, CollectorTy});
  P.Stmts.push_back(Stmt{Inst->Builtins[1], {Base}, Base + 1,
                         Inst->Arena.ref(CollectorTy, false)});
  P.Stmts.push_back(Stmt{Register, {Base + 1}, Base + 2,
                         Inst->Arena.named("LocalHandle")});
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  ExecResult Res = Interp.run(P);
  ASSERT_TRUE(Res.UbFound);
  EXPECT_EQ(Res.Report.Kind, UbKind::DanglingPointer);
}

TEST(BugTriggerTest, BitvecUseAfterFreeInFiveLines) {
  auto Inst = findCrate("bitvec")->instantiate();
  ApiId Repeat = findApi(*Inst, "BitVec::repeat");
  ApiId Push = findApi(*Inst, "BitVec::push");
  ApiId IntoBox = findApi(*Inst, "BitVec::into_boxed_bitslice");
  VarId Base = static_cast<VarId>(Inst->Inputs.size());
  const auto *BvTy = Inst->Arena.named(
      "BitVec", {Inst->Arena.named("Msb0"), Inst->Arena.prim("usize")});
  Program P;
  P.Inputs = Inst->Inputs;
  P.Stmts.push_back(Stmt{Repeat, {0, 1}, Base, BvTy});
  P.Stmts.push_back(Stmt{Inst->Builtins[0], {Base}, Base + 1, BvTy});
  P.Stmts.push_back(Stmt{Inst->Builtins[2], {Base + 1}, Base + 2,
                         Inst->Arena.ref(BvTy, true)});
  P.Stmts.push_back(Stmt{Push, {Base + 2, 0}, Base + 3,
                         Inst->Arena.unit()});
  P.Stmts.push_back(
      Stmt{IntoBox, {Base + 1}, Base + 4,
           Inst->Arena.named("BitBox", {Inst->Arena.named("Msb0"),
                                        Inst->Arena.prim("usize")})});
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  ExecResult Res = Interp.run(P);
  ASSERT_TRUE(Res.UbFound);
  EXPECT_EQ(Res.Report.Kind, UbKind::UseAfterFree);
}

TEST(BugTriggerTest, BitvecCleanWithoutPush) {
  // Without the reallocation the conversion path is sound - the bug needs
  // the full five-line chain.
  auto Inst = findCrate("bitvec")->instantiate();
  ApiId Repeat = findApi(*Inst, "BitVec::repeat");
  ApiId IntoBox = findApi(*Inst, "BitVec::into_boxed_bitslice");
  VarId Base = static_cast<VarId>(Inst->Inputs.size());
  const auto *BvTy = Inst->Arena.named(
      "BitVec", {Inst->Arena.named("Msb0"), Inst->Arena.prim("usize")});
  Program P;
  P.Inputs = Inst->Inputs;
  P.Stmts.push_back(Stmt{Repeat, {0, 1}, Base, BvTy});
  P.Stmts.push_back(
      Stmt{IntoBox, {Base}, Base + 1,
           Inst->Arena.named("BitBox", {Inst->Arena.named("Msb0"),
                                        Inst->Arena.prim("usize")})});
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  ExecResult Res = Interp.run(P);
  EXPECT_FALSE(Res.UbFound) << Res.Report.Message;
}

TEST(BugTriggerTest, EncodingRsOobPointerInFourLines) {
  auto Inst = findCrate("encoding_rs")->instantiate();
  ApiId Decode = findApi(*Inst, "Decoder::decode_to_utf16");
  VarId Base = static_cast<VarId>(Inst->Inputs.size());
  const auto *DecoderTy = Inst->Arena.named("Decoder");
  Program P;
  P.Inputs = Inst->Inputs;
  P.Stmts.push_back(Stmt{Inst->Builtins[0], {0}, Base, DecoderTy});
  P.Stmts.push_back(Stmt{Inst->Builtins[2], {Base}, Base + 1,
                         Inst->Arena.ref(DecoderTy, true)});
  P.Stmts.push_back(Stmt{Inst->Builtins[1], {1}, Base + 2,
                         Inst->Arena.ref(Inst->Arena.named("Utf8Bytes"),
                                         false)});
  P.Stmts.push_back(Stmt{Decode, {Base + 1, Base + 2}, Base + 3,
                         Inst->Arena.prim("usize")});
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  ExecResult Res = Interp.run(P);
  ASSERT_TRUE(Res.UbFound);
  EXPECT_EQ(Res.Report.Kind, UbKind::OutOfBoundsPointer);
}

//===----------------------------------------------------------------------===//
// Bug triggers also pass the compiler (they must be synthesizable)
//===----------------------------------------------------------------------===//

TEST(BugTriggerTest, MinimalTriggersTypecheck) {
  // The one-line crossbeam-queue trigger through the eagerly-refined
  // constructor is exercised end-to-end by the driver test; here we check
  // the bitvec chain, which needs no refinement.
  auto Inst = findCrate("bitvec")->instantiate();
  ApiId Repeat = findApi(*Inst, "BitVec::repeat");
  ApiId Push = findApi(*Inst, "BitVec::push");
  ApiId IntoBox = findApi(*Inst, "BitVec::into_boxed_bitslice");
  VarId Base = static_cast<VarId>(Inst->Inputs.size());
  const auto *BvTy = Inst->Arena.named(
      "BitVec", {Inst->Arena.named("Msb0"), Inst->Arena.prim("usize")});
  Program P;
  P.Inputs = Inst->Inputs;
  P.Stmts.push_back(Stmt{Repeat, {0, 1}, Base, BvTy});
  P.Stmts.push_back(Stmt{Inst->Builtins[0], {Base}, Base + 1, BvTy});
  P.Stmts.push_back(Stmt{Inst->Builtins[2], {Base + 1}, Base + 2,
                         Inst->Arena.ref(BvTy, true)});
  P.Stmts.push_back(Stmt{Push, {Base + 2, 0}, Base + 3,
                         Inst->Arena.unit()});
  P.Stmts.push_back(
      Stmt{IntoBox, {Base + 1}, Base + 4,
           Inst->Arena.named("BitBox", {Inst->Arena.named("Msb0"),
                                        Inst->Arena.prim("usize")})});
  syrust::rustsim::Checker Check(Inst->Arena, Inst->Traits);
  auto R = Check.check(P, Inst->Db);
  EXPECT_TRUE(R.Success) << R.Diag.Message;
}

} // namespace
