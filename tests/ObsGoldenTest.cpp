//===--- ObsGoldenTest.cpp - Golden-trace determinism tests ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder's contract: because every timestamp comes from the
/// SimClock, two runs with the same seed must produce byte-identical trace
/// and metrics documents, the recorder must not change what the pipeline
/// computes, and the trace must be analyzable by `syrust report`'s
/// summarizer.
///
//===----------------------------------------------------------------------===//

#include "core/SyRustDriver.h"
#include "report/TraceReport.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;

namespace {

RunConfig tracedConfig() {
  RunConfig C;
  C.BudgetSeconds = 60;
  C.SnapshotInterval = 10;
  C.Seed = 2021;
  return C;
}

struct Traced {
  RunResult Result;
  std::string TraceJson;
  std::string MetricsJsonl;
};

Traced runTraced(const char *Crate) {
  obs::Recorder Rec;
  Traced T;
  T.Result = SyRustDriver(*findCrate(Crate), tracedConfig(), &Rec).run();
  T.TraceJson = Rec.tracer().chromeJson();
  T.MetricsJsonl = Rec.metrics().jsonl();
  return T;
}

TEST(ObsGoldenTest, SameSeedGivesByteIdenticalTraceAndMetrics) {
  Traced A = runTraced("slab");
  Traced B = runTraced("slab");
  EXPECT_EQ(A.TraceJson, B.TraceJson);
  EXPECT_EQ(A.MetricsJsonl, B.MetricsJsonl);
  EXPECT_GT(A.TraceJson.size(), 0u);
}

TEST(ObsGoldenTest, RecorderDoesNotPerturbTheRun) {
  Traced Traced = runTraced("slab");
  RunResult Plain = SyRustDriver(*findCrate("slab"), tracedConfig()).run();
  EXPECT_EQ(Traced.Result.Synthesized, Plain.Synthesized);
  EXPECT_EQ(Traced.Result.Rejected, Plain.Rejected);
  EXPECT_EQ(Traced.Result.Executed, Plain.Executed);
  EXPECT_EQ(Traced.Result.UbCount, Plain.UbCount);
  EXPECT_EQ(Traced.Result.ElapsedSeconds, Plain.ElapsedSeconds);
  EXPECT_EQ(Traced.Result.Synth.Emitted, Plain.Synth.Emitted);
  EXPECT_EQ(Traced.Result.Refine.ComboBlocks, Plain.Refine.ComboBlocks);
}

TEST(ObsGoldenTest, TraceIsValidChromeTraceJson) {
  Traced T = runTraced("slab");
  json::ParseResult P = json::parse(T.TraceJson);
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &Events = P.Val.get("traceEvents");
  ASSERT_EQ(Events.kind(), json::Value::Kind::Array);
  ASSERT_GT(Events.size(), 0u);
  // Every event carries the mandatory trace-event fields, and no event
  // leaks wall-clock (the determinism contract).
  for (size_t I = 0; I < Events.size(); ++I) {
    const json::Value &E = Events.at(I);
    EXPECT_TRUE(E.has("name"));
    EXPECT_TRUE(E.has("ph"));
    EXPECT_TRUE(E.has("ts"));
    EXPECT_TRUE(E.has("pid"));
    EXPECT_TRUE(E.has("tid"));
    if (E.has("args"))
      EXPECT_FALSE(E.get("args").has("wall_us"));
  }
  // The driver's umbrella span is present.
  EXPECT_NE(T.TraceJson.find("\"name\":\"candidate\""),
            std::string::npos);
}

TEST(ObsGoldenTest, MetricsFollowSnapshotCadence) {
  Traced T = runTraced("slab");
  // 60 s budget at a 10 s interval: six periodic lines + one terminal.
  size_t Lines = 0;
  for (char C : T.MetricsJsonl)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 7u);
  // First line is valid JSON with the cumulative counters at t=10.
  json::ParseResult P =
      json::parse(T.MetricsJsonl.substr(0, T.MetricsJsonl.find('\n')));
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Val.get("t").asDouble(), 10.0);
  EXPECT_GT(P.Val.get("counters").get("driver.synthesized").asInt(), 0);
}

TEST(ObsGoldenTest, TraceReportSummarizesStages) {
  Traced T = runTraced("slab");
  report::TraceSummary S;
  std::string Err;
  ASSERT_TRUE(report::summarizeTrace(T.TraceJson, S, Err)) << Err;
  ASSERT_TRUE(S.Spans.count("candidate"));
  ASSERT_TRUE(S.Spans.count("stage.compile"));
  ASSERT_TRUE(S.Spans.count("stage.execute"));
  ASSERT_TRUE(S.Spans.count("stage.synthesize"));
  // One umbrella span per synthesized candidate.
  EXPECT_EQ(S.Spans["candidate"].Count, T.Result.Synthesized);
  EXPECT_GT(S.EndSeconds, 0.0);
  EXPECT_GT(S.Instants["compile.verdict"], 0u);

  std::string Rendered = report::renderTraceSummary(S);
  EXPECT_NE(Rendered.find("stage.compile"), std::string::npos);
  EXPECT_NE(Rendered.find("Per-stage latency"), std::string::npos);
}

TEST(ObsGoldenTest, SummarizerRejectsGarbage) {
  report::TraceSummary S;
  std::string Err;
  EXPECT_FALSE(report::summarizeTrace("not json", S, Err));
  EXPECT_FALSE(Err.empty());
  Err.clear();
  EXPECT_FALSE(report::summarizeTrace("{\"foo\":1}", S, Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
